//! Routing algorithms for torus and mesh networks.
//!
//! The base [`Network`] routes with dimension-ordered
//! routing (DOR), correcting the lowest-index dimension first. That is the
//! discipline assumed by the congestion analysis in the `embeddings` crate and
//! by most real mesh/torus routers (e-cube routing). This module adds two
//! variations used by the ablation benchmarks:
//!
//! * **reverse dimension order** — correct the highest-index dimension first
//!   (the classic XY-versus-YX comparison on 2-D meshes);
//! * **Valiant's randomized two-phase routing** — route to a random
//!   intermediate node first, then to the destination, trading path length
//!   for much better worst-case load balance on adversarial patterns.
//!
//! Routes are always built from shortest per-phase dimension-ordered paths,
//! so a single-phase route has length equal to the network distance and a
//! Valiant route has at most twice the network diameter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::network::Network;

/// The routing discipline used to expand a (source, destination) pair into a
/// hop-by-hop path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingAlgorithm {
    /// Dimension-ordered routing, lowest-index dimension first (e-cube).
    DimensionOrdered,
    /// Dimension-ordered routing, highest-index dimension first.
    ReverseDimensionOrdered,
    /// Valiant's two-phase randomized routing: dimension-ordered to a
    /// pseudo-random intermediate node, then dimension-ordered to the
    /// destination. The seed makes routes reproducible.
    Valiant {
        /// Seed mixed into the per-message intermediate choice.
        seed: u64,
    },
}

impl RoutingAlgorithm {
    /// A short human-readable name, used in benchmark and report labels.
    pub fn name(self) -> &'static str {
        match self {
            RoutingAlgorithm::DimensionOrdered => "dimension-ordered",
            RoutingAlgorithm::ReverseDimensionOrdered => "reverse dimension-ordered",
            RoutingAlgorithm::Valiant { .. } => "valiant",
        }
    }
}

/// Appends the path from `from` to `to` (excluding the source, including the
/// destination) to `out`, correcting dimensions in the order given by
/// `dims`. Delegates to the network's single route-expansion loop, which
/// uses the shared next-hop rule of [`topology::routing`] — the same rule
/// the congestion model applies — advancing coordinate and index in place,
/// so repeated expansion into a reused buffer never allocates.
fn route_ordered_into(network: &Network, from: u64, to: u64, dims: &[usize], out: &mut Vec<u64>) {
    network.route_ordered_into(from, to, dims, out);
}

/// The pseudo-random Valiant intermediate node for the message `from → to`.
fn valiant_intermediate(network: &Network, from: u64, to: u64, seed: u64) -> u64 {
    let mix = seed
        ^ from.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ to.rotate_left(32).wrapping_mul(0xD1B5_4A32_D192_ED03);
    let mut rng = StdRng::seed_from_u64(mix);
    rng.gen_range(0..network.size())
}

/// A router: a routing algorithm bound to a network.
#[derive(Clone, Debug)]
pub struct Router {
    algorithm: RoutingAlgorithm,
    forward_dims: Vec<usize>,
    reverse_dims: Vec<usize>,
}

impl Router {
    /// Creates a router for `network` using `algorithm`.
    pub fn new(network: &Network, algorithm: RoutingAlgorithm) -> Self {
        let forward_dims: Vec<usize> = (0..network.grid().dim()).collect();
        let reverse_dims: Vec<usize> = forward_dims.iter().rev().copied().collect();
        Router {
            algorithm,
            forward_dims,
            reverse_dims,
        }
    }

    /// The routing algorithm this router implements.
    pub fn algorithm(&self) -> RoutingAlgorithm {
        self.algorithm
    }

    /// The hop-by-hop route from `from` to `to` (excluding the source,
    /// including the destination). Empty when `from == to`.
    pub fn route(&self, network: &Network, from: u64, to: u64) -> Vec<u64> {
        let mut path = Vec::new();
        self.route_into(network, from, to, &mut path);
        path
    }

    /// Appends the hop-by-hop route from `from` to `to` to `out` — the
    /// batched form of [`Router::route`] for expanding many routes into a
    /// reused (or shared, flat) hop buffer without per-route allocation.
    pub fn route_into(&self, network: &Network, from: u64, to: u64, out: &mut Vec<u64>) {
        match self.algorithm {
            RoutingAlgorithm::DimensionOrdered => {
                route_ordered_into(network, from, to, &self.forward_dims, out);
            }
            RoutingAlgorithm::ReverseDimensionOrdered => {
                route_ordered_into(network, from, to, &self.reverse_dims, out);
            }
            RoutingAlgorithm::Valiant { seed } => {
                if from == to {
                    return;
                }
                let middle = valiant_intermediate(network, from, to, seed);
                route_ordered_into(network, from, middle, &self.forward_dims, out);
                route_ordered_into(network, middle, to, &self.forward_dims, out);
            }
        }
    }

    /// The length (number of hops) of the route from `from` to `to`.
    pub fn hops(&self, network: &Network, from: u64, to: u64) -> u64 {
        match self.algorithm {
            // Single-phase dimension-ordered routes are shortest paths.
            RoutingAlgorithm::DimensionOrdered | RoutingAlgorithm::ReverseDimensionOrdered => {
                network.hops(from, to)
            }
            RoutingAlgorithm::Valiant { .. } => self.route(network, from, to).len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{Grid, Shape};

    fn network(torus: bool, radices: &[u32]) -> Network {
        let shape = Shape::new(radices.to_vec()).unwrap();
        Network::new(if torus {
            Grid::torus(shape)
        } else {
            Grid::mesh(shape)
        })
    }

    fn assert_valid_route(net: &Network, from: u64, to: u64, route: &[u64]) {
        let mut previous = from;
        for &step in route {
            assert!(
                net.grid().adjacent(previous, step).unwrap(),
                "non-adjacent hop {previous} → {step}"
            );
            previous = step;
        }
        if from != to {
            assert_eq!(*route.last().unwrap(), to);
        } else {
            assert!(route.is_empty());
        }
    }

    #[test]
    fn forward_dor_matches_the_network_routes() {
        for net in [network(true, &[4, 2, 3]), network(false, &[3, 5])] {
            let router = Router::new(&net, RoutingAlgorithm::DimensionOrdered);
            for from in 0..net.size() {
                for to in 0..net.size() {
                    assert_eq!(router.route(&net, from, to), net.route(from, to));
                }
            }
        }
    }

    #[test]
    fn reverse_dor_routes_are_shortest_but_differently_shaped() {
        let net = network(false, &[4, 4]);
        let router = Router::new(&net, RoutingAlgorithm::ReverseDimensionOrdered);
        let mut any_different = false;
        for from in 0..net.size() {
            for to in 0..net.size() {
                let route = router.route(&net, from, to);
                assert_eq!(route.len() as u64, net.hops(from, to));
                assert_valid_route(&net, from, to, &route);
                if route != net.route(from, to) {
                    any_different = true;
                }
            }
        }
        // YX routing must visit different intermediate nodes than XY for some pair.
        assert!(any_different);
    }

    #[test]
    fn valiant_routes_are_valid_and_reproducible() {
        let net = network(true, &[4, 4]);
        let a = Router::new(&net, RoutingAlgorithm::Valiant { seed: 7 });
        let b = Router::new(&net, RoutingAlgorithm::Valiant { seed: 7 });
        let c = Router::new(&net, RoutingAlgorithm::Valiant { seed: 8 });
        let mut any_seed_difference = false;
        for from in 0..net.size() {
            for to in 0..net.size() {
                let route = a.route(&net, from, to);
                assert_valid_route(&net, from, to, &route);
                assert!(route.len() as u64 <= 2 * net.grid().diameter());
                assert_eq!(route, b.route(&net, from, to));
                if route != c.route(&net, from, to) {
                    any_seed_difference = true;
                }
                assert_eq!(a.hops(&net, from, to), route.len() as u64);
            }
        }
        assert!(any_seed_difference);
    }

    #[test]
    fn single_phase_hops_equal_distance() {
        let net = network(false, &[4, 2, 3]);
        for algorithm in [
            RoutingAlgorithm::DimensionOrdered,
            RoutingAlgorithm::ReverseDimensionOrdered,
        ] {
            let router = Router::new(&net, algorithm);
            for from in 0..net.size() {
                for to in 0..net.size() {
                    assert_eq!(
                        router.hops(&net, from, to),
                        net.grid().distance_index(from, to).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn algorithm_names_are_distinct() {
        let names = [
            RoutingAlgorithm::DimensionOrdered.name(),
            RoutingAlgorithm::ReverseDimensionOrdered.name(),
            RoutingAlgorithm::Valiant { seed: 0 }.name(),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }
}
