//! Collective operations scheduled over embedded rings.
//!
//! The paper's Hamiltonian-circuit corollaries (every torus, and every
//! even-size mesh of dimension ≥ 2, has a Hamiltonian circuit — Corollaries
//! 25 and 29, realized by the `h_L` embedding) are exactly what a ring-based
//! collective needs: a cyclic order of all nodes in which successive nodes
//! are physically adjacent. This module builds the classic ring
//! reduce-scatter / all-gather ("ring allreduce") schedule on top of such an
//! order and simulates it, so the benefit of a dilation-1 ring over an
//! arbitrary node order can be measured in cycles rather than asserted.
//!
//! A ring allreduce over `n` nodes runs `2(n − 1)` phases; in each phase
//! every node sends one chunk to its successor on the ring. With a
//! dilation-1 ring every phase is a single-hop, contention-free exchange, so
//! the whole collective finishes in `2(n − 1)` cycles — the textbook bound.
//! With a poor ring order the same schedule pays both longer routes and link
//! contention.

use embeddings::basic::embed_ring_in;
use embeddings::Embedding;
use topology::Grid;

use crate::network::Network;
use crate::routing::RoutingAlgorithm;
use crate::sim::Placement;
use crate::stats::simulate_detailed;
use crate::traffic::Workload;

/// A cyclic order of the nodes of a network, used as the logical ring of a
/// ring-based collective.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingOrder {
    nodes: Vec<u64>,
}

impl RingOrder {
    /// The natural order `0, 1, …, n − 1` — the naive ring a library would
    /// use if it ignored the topology.
    pub fn natural(n: u64) -> RingOrder {
        RingOrder {
            nodes: (0..n).collect(),
        }
    }

    /// An explicit order.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is not a permutation of `0..nodes.len()`.
    pub fn from_order(nodes: Vec<u64>) -> RingOrder {
        let n = nodes.len() as u64;
        let mut seen = vec![false; nodes.len()];
        for &node in &nodes {
            assert!(
                node < n,
                "ring order references node {node} outside [0, {n})"
            );
            assert!(!seen[node as usize], "ring order repeats node {node}");
            seen[node as usize] = true;
        }
        RingOrder { nodes }
    }

    /// The ring order induced by the paper's ring embedding of the host: the
    /// `k`-th ring position is the host node `h_L(k)` (Theorems 24 and 28).
    /// For toruses and even-size meshes of dimension ≥ 2 this is a
    /// Hamiltonian circuit, so successive ring positions are neighbors.
    ///
    /// # Errors
    ///
    /// Propagates the error of [`embed_ring_in`] for hosts that admit no
    /// ring embedding of the requested size (never happens for valid grids).
    pub fn from_paper_embedding(host: &Grid) -> embeddings::error::Result<RingOrder> {
        let embedding = embed_ring_in(host)?;
        Ok(RingOrder::from_embedding(&embedding))
    }

    /// The ring order induced by an arbitrary ring-guest embedding.
    pub fn from_embedding(embedding: &Embedding) -> RingOrder {
        RingOrder {
            nodes: (0..embedding.size())
                .map(|k| embedding.map_index(k))
                .collect(),
        }
    }

    /// The number of ring positions.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The host node at ring position `k`.
    pub fn node_at(&self, k: usize) -> u64 {
        self.nodes[k]
    }

    /// The maximum host distance between successive ring positions — the
    /// dilation of the ring order seen as a ring embedding.
    pub fn dilation(&self, network: &Network) -> u64 {
        let n = self.nodes.len();
        (0..n)
            .map(|k| network.hops(self.nodes[k], self.nodes[(k + 1) % n]))
            .max()
            .unwrap_or(0)
    }

    /// The single-phase workload of the collective: every ring position
    /// sends one chunk to its successor.
    pub fn phase_workload(&self, network: &Network) -> Workload {
        let n = self.nodes.len();
        let pairs = (0..n)
            .map(|k| (self.nodes[k], self.nodes[(k + 1) % n]))
            .collect();
        Workload::try_new(network.size(), pairs).expect("ring nodes are network nodes")
    }
}

/// The result of simulating a ring collective.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectiveStats {
    /// Number of phases (2·(n − 1) for allreduce, n − 1 for reduce-scatter).
    pub phases: u64,
    /// Total cycles across all phases (phases are serialized: a phase cannot
    /// start before the previous one delivered every chunk).
    pub total_cycles: u64,
    /// Total link traversals across all phases.
    pub total_hops: u64,
    /// Worst per-phase cycle count.
    pub worst_phase_cycles: u64,
    /// The ring order's dilation (1 for the paper's Hamiltonian rings).
    pub ring_dilation: u64,
}

impl CollectiveStats {
    /// The textbook lower bound for the same collective on a unit-dilation
    /// ring: one cycle per phase.
    pub fn ideal_cycles(&self) -> u64 {
        self.phases
    }

    /// Slowdown relative to the unit-dilation ring.
    pub fn slowdown(&self) -> f64 {
        if self.phases == 0 {
            1.0
        } else {
            self.total_cycles as f64 / self.phases as f64
        }
    }
}

/// Simulates a ring allreduce (reduce-scatter followed by all-gather) over
/// the given ring order: `2·(n − 1)` identical neighbor-shift phases, each
/// phase completing before the next begins.
///
/// # Panics
///
/// Panics if the ring order's length differs from the network size.
pub fn simulate_ring_allreduce(network: &Network, order: &RingOrder) -> CollectiveStats {
    simulate_ring_collective(network, order, 2 * (network.size().saturating_sub(1)))
}

/// Simulates a ring reduce-scatter: `n − 1` neighbor-shift phases.
///
/// # Panics
///
/// Panics if the ring order's length differs from the network size.
pub fn simulate_ring_reduce_scatter(network: &Network, order: &RingOrder) -> CollectiveStats {
    simulate_ring_collective(network, order, network.size().saturating_sub(1))
}

fn simulate_ring_collective(network: &Network, order: &RingOrder, phases: u64) -> CollectiveStats {
    assert_eq!(
        order.len() as u64,
        network.size(),
        "ring order must cover every network node"
    );
    let workload = order.phase_workload(network);
    let placement = Placement::identity(network.size());
    // Every phase sends the same pattern, so simulate one phase and scale;
    // the phase barrier makes phases independent.
    let phase = simulate_detailed(
        network,
        &workload,
        &placement,
        RoutingAlgorithm::DimensionOrdered,
        1,
    );
    CollectiveStats {
        phases,
        total_cycles: phase.cycles * phases,
        total_hops: phase.total_hops * phases,
        worst_phase_cycles: phase.cycles,
        ring_dilation: order.dilation(network),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn paper_ring_order_is_a_unit_dilation_hamiltonian_circuit() {
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::torus(shape(&[5, 5])),
            Grid::mesh(shape(&[4, 6])),
            Grid::hypercube(4).unwrap(),
        ] {
            let network = Network::new(grid.clone());
            let order = RingOrder::from_paper_embedding(&grid).unwrap();
            assert_eq!(order.len() as u64, grid.size());
            assert_eq!(order.dilation(&network), 1, "{grid}");
        }
    }

    #[test]
    fn allreduce_on_the_paper_ring_meets_the_textbook_cycle_count() {
        let grid = Grid::mesh(shape(&[4, 6]));
        let network = Network::new(grid.clone());
        let order = RingOrder::from_paper_embedding(&grid).unwrap();
        let stats = simulate_ring_allreduce(&network, &order);
        assert_eq!(stats.phases, 2 * 23);
        assert_eq!(stats.ring_dilation, 1);
        assert_eq!(stats.worst_phase_cycles, 1);
        assert_eq!(stats.total_cycles, stats.ideal_cycles());
        assert!((stats.slowdown() - 1.0).abs() < 1e-12);
        assert_eq!(stats.total_hops, 24 * 2 * 23);
    }

    #[test]
    fn natural_order_is_slower_than_the_paper_ring_on_a_mesh() {
        let grid = Grid::mesh(shape(&[8, 8]));
        let network = Network::new(grid.clone());
        let paper = RingOrder::from_paper_embedding(&grid).unwrap();
        let naive = RingOrder::natural(64);
        let good = simulate_ring_allreduce(&network, &paper);
        let bad = simulate_ring_allreduce(&network, &naive);
        assert_eq!(good.ring_dilation, 1);
        assert!(bad.ring_dilation > 1);
        assert!(bad.total_cycles > good.total_cycles);
        assert!(bad.total_hops > good.total_hops);
        assert!(bad.slowdown() > 1.0);
    }

    #[test]
    fn reduce_scatter_is_half_an_allreduce() {
        let grid = Grid::torus(shape(&[4, 4]));
        let network = Network::new(grid.clone());
        let order = RingOrder::from_paper_embedding(&grid).unwrap();
        let rs = simulate_ring_reduce_scatter(&network, &order);
        let ar = simulate_ring_allreduce(&network, &order);
        assert_eq!(rs.phases, 15);
        assert_eq!(ar.phases, 30);
        assert_eq!(2 * rs.total_cycles, ar.total_cycles);
    }

    #[test]
    fn explicit_orders_are_validated() {
        let order = RingOrder::from_order(vec![2, 0, 1, 3]);
        assert_eq!(order.node_at(0), 2);
        assert_eq!(order.len(), 4);
        assert!(!order.is_empty());
    }

    #[test]
    #[should_panic(expected = "repeats node")]
    fn repeated_nodes_are_rejected() {
        let _ = RingOrder::from_order(vec![0, 1, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "ring order must cover")]
    fn mismatched_ring_length_is_rejected() {
        let network = Network::new(Grid::mesh(shape(&[4, 4])));
        let order = RingOrder::natural(8);
        let _ = simulate_ring_allreduce(&network, &order);
    }
}
