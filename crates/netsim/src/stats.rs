//! Detailed simulation statistics: per-link loads and latency distributions.
//!
//! [`crate::sim::simulate`] reports aggregate hop counts and the makespan in
//! cycles. When comparing placements (or routing algorithms) it is often more
//! informative to look at the *distribution* of message latencies and at how
//! evenly the traffic spreads over the links. This module provides
//! [`simulate_detailed`], which runs the same synchronous store-and-forward
//! model but additionally records, for every message, the cycle in which it
//! was delivered, and, for every directed link, how many messages traversed
//! it.

use std::collections::HashMap;

use crate::network::Network;
use crate::routing::{Router, RoutingAlgorithm};
use crate::sim::Placement;
use crate::traffic::Workload;

/// Traffic load per directed link, measured by counting route traversals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkLoads {
    loads: HashMap<(u64, u64), u64>,
}

impl LinkLoads {
    /// Builds the static link loads of routing every workload message once
    /// under the given placement and router (no contention model — this is
    /// the offered load, the netsim analogue of
    /// `embeddings::congestion::congestion`).
    pub fn offered(
        network: &Network,
        workload: &Workload,
        placement: &Placement,
        router: &Router,
    ) -> LinkLoads {
        let mut loads: HashMap<(u64, u64), u64> = HashMap::new();
        for &(src_task, dst_task) in workload.pairs() {
            let mut current = placement.node_of(src_task);
            for next in router.route(network, current, placement.node_of(dst_task)) {
                *loads.entry((current, next)).or_insert(0) += 1;
                current = next;
            }
        }
        LinkLoads { loads }
    }

    /// The number of traversals of the directed link `from → to`.
    pub fn load(&self, from: u64, to: u64) -> u64 {
        self.loads.get(&(from, to)).copied().unwrap_or(0)
    }

    /// The number of distinct directed links carrying at least one message.
    pub fn used_links(&self) -> u64 {
        self.loads.len() as u64
    }

    /// The heaviest per-link load.
    pub fn max_load(&self) -> u64 {
        self.loads.values().copied().max().unwrap_or(0)
    }

    /// The total number of link traversals (equals the total hop count).
    pub fn total_traversals(&self) -> u64 {
        self.loads.values().sum()
    }

    /// The mean load over links that carry at least one message.
    pub fn mean_load(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.total_traversals() as f64 / self.loads.len() as f64
        }
    }

    /// Load histogram: load value → number of directed links with that load.
    pub fn histogram(&self) -> std::collections::BTreeMap<u64, u64> {
        let mut histogram = std::collections::BTreeMap::new();
        for &load in self.loads.values() {
            *histogram.entry(load).or_insert(0) += 1;
        }
        histogram
    }

    fn record(&mut self, from: u64, to: u64) {
        *self.loads.entry((from, to)).or_insert(0) += 1;
    }
}

/// Summary statistics of a set of message latencies (in cycles).
#[derive(Clone, Debug, PartialEq)]
pub struct LatencySummary {
    /// Number of messages.
    pub messages: u64,
    /// Mean delivery cycle.
    pub mean: f64,
    /// Median (50th percentile) delivery cycle.
    pub p50: u64,
    /// 95th percentile delivery cycle.
    pub p95: u64,
    /// 99th percentile delivery cycle.
    pub p99: u64,
    /// Worst-case delivery cycle (equals the makespan).
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes a list of per-message latencies. Zero-length input yields
    /// an all-zero summary.
    pub fn from_latencies(latencies: &[u64]) -> LatencySummary {
        if latencies.is_empty() {
            return LatencySummary {
                messages: 0,
                mean: 0.0,
                p50: 0,
                p95: 0,
                p99: 0,
                max: 0,
            };
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        // Nearest-rank percentile: the smallest value below which at least
        // p·N of the samples fall.
        let percentile = |p: f64| -> u64 {
            let rank = (p * sorted.len() as f64).ceil().max(1.0) as usize;
            sorted[rank - 1]
        };
        LatencySummary {
            messages: sorted.len() as u64,
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            p50: percentile(0.50),
            p95: percentile(0.95),
            p99: percentile(0.99),
            max: *sorted.last().unwrap(),
        }
    }
}

/// The full result of a detailed simulation run.
#[derive(Clone, Debug)]
pub struct DetailedStats {
    /// Total messages delivered.
    pub messages: u64,
    /// Sum of route lengths over all messages.
    pub total_hops: u64,
    /// Longest route of any message.
    pub max_hops: u64,
    /// Cycles until the last message was delivered (makespan).
    pub cycles: u64,
    /// Per-message delivery-cycle distribution.
    pub latency: LatencySummary,
    /// Per-directed-link traversal counts.
    pub link_loads: LinkLoads,
}

impl DetailedStats {
    /// Mean hops per message.
    pub fn average_hops(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.messages as f64
        }
    }
}

/// Runs `rounds` rounds of the workload with the given placement and routing
/// algorithm, recording per-message latencies and per-link loads.
///
/// The contention model is the same as [`crate::sim::simulate`]: each
/// directed link carries at most one message per cycle, and messages that
/// lose arbitration wait (lower message index wins, which corresponds to
/// FIFO order of injection).
///
/// # Panics
///
/// Panics if the workload has more tasks than the placement, or the placement
/// references nodes outside the network.
pub fn simulate_detailed(
    network: &Network,
    workload: &Workload,
    placement: &Placement,
    algorithm: RoutingAlgorithm,
    rounds: usize,
) -> DetailedStats {
    assert!(
        workload.tasks() <= placement.tasks(),
        "workload has more tasks than the placement"
    );
    assert!(
        (0..placement.tasks()).all(|t| placement.node_of(t) < network.size()),
        "placement references nodes outside the network"
    );
    let router = Router::new(network, algorithm);

    struct Message {
        route: Vec<u64>,
        position: usize,
        current: u64,
        delivered_at: u64,
    }

    let mut messages: Vec<Message> = Vec::with_capacity(rounds * workload.messages_per_round());
    let mut link_loads = LinkLoads::default();
    for _ in 0..rounds {
        for &(src_task, dst_task) in workload.pairs() {
            let src = placement.node_of(src_task);
            let dst = placement.node_of(dst_task);
            let route = router.route(network, src, dst);
            let mut current = src;
            for &next in &route {
                link_loads.record(current, next);
                current = next;
            }
            messages.push(Message {
                route,
                position: 0,
                current: src,
                delivered_at: 0,
            });
        }
    }

    let total_messages = messages.len() as u64;
    let total_hops: u64 = messages.iter().map(|m| m.route.len() as u64).sum();
    let max_hops: u64 = messages
        .iter()
        .map(|m| m.route.len() as u64)
        .max()
        .unwrap_or(0);

    let mut cycles = 0u64;
    let mut remaining: usize = messages
        .iter()
        .filter(|m| m.position < m.route.len())
        .count();
    let mut claimed: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
    while remaining > 0 {
        cycles += 1;
        claimed.clear();
        for message in &mut messages {
            if message.position >= message.route.len() {
                continue;
            }
            let next = message.route[message.position];
            let link = (message.current, next);
            if claimed.insert(link) {
                message.current = next;
                message.position += 1;
                if message.position == message.route.len() {
                    message.delivered_at = cycles;
                    remaining -= 1;
                }
            }
        }
    }

    let latencies: Vec<u64> = messages
        .iter()
        .filter(|m| !m.route.is_empty())
        .map(|m| m.delivered_at)
        .collect();

    DetailedStats {
        messages: total_messages,
        total_hops,
        max_hops,
        cycles,
        latency: LatencySummary::from_latencies(&latencies),
        link_loads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use crate::sim::simulate;
    use embeddings::basic::embed_ring_in;
    use topology::{Grid, Shape};

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn detailed_stats_agree_with_the_aggregate_simulator() {
        let host = Grid::mesh(shape(&[4, 6]));
        let embedding = embed_ring_in(&host).unwrap();
        let network = Network::new(host);
        let workload = Workload::from_task_graph(embedding.guest());
        let placement = Placement::from_embedding(&embedding);

        let aggregate = simulate(&network, &workload, &placement, 2);
        let detailed = simulate_detailed(
            &network,
            &workload,
            &placement,
            RoutingAlgorithm::DimensionOrdered,
            2,
        );
        assert_eq!(detailed.messages, aggregate.messages);
        assert_eq!(detailed.total_hops, aggregate.total_hops);
        assert_eq!(detailed.max_hops, aggregate.max_hops);
        assert_eq!(detailed.cycles, aggregate.cycles);
        assert_eq!(detailed.latency.max, detailed.cycles);
        assert_eq!(detailed.link_loads.total_traversals(), detailed.total_hops);
        assert!((detailed.average_hops() - aggregate.average_hops()).abs() < 1e-12);
    }

    #[test]
    fn latency_summary_percentiles_are_ordered() {
        let latencies: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_latencies(&latencies);
        assert_eq!(s.messages, 100);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn empty_latency_summary_is_all_zero() {
        let s = LatencySummary::from_latencies(&[]);
        assert_eq!(s.messages, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn offered_loads_match_simulated_loads() {
        let network = Network::new(Grid::torus(shape(&[4, 4])));
        let workload = patterns::tornado(16);
        let placement = Placement::identity(16);
        let router = Router::new(&network, RoutingAlgorithm::DimensionOrdered);
        let offered = LinkLoads::offered(&network, &workload, &placement, &router);
        let detailed = simulate_detailed(
            &network,
            &workload,
            &placement,
            RoutingAlgorithm::DimensionOrdered,
            1,
        );
        assert_eq!(offered, detailed.link_loads);
        assert_eq!(offered.total_traversals(), detailed.total_hops);
        assert!(offered.max_load() >= 1);
        let histogram = offered.histogram();
        assert_eq!(
            histogram
                .iter()
                .map(|(load, links)| load * links)
                .sum::<u64>(),
            offered.total_traversals()
        );
    }

    #[test]
    fn valiant_spreads_adversarial_traffic_at_the_cost_of_hops() {
        // Bit-complement on a mesh funnels dimension-ordered traffic through
        // the center; Valiant routing pays extra hops but lowers (or at least
        // never worsens by the same factor) the peak link load on average.
        let network = Network::new(Grid::mesh(shape(&[4, 4])));
        let workload = patterns::bit_complement(4);
        let placement = Placement::identity(16);
        let dor = simulate_detailed(
            &network,
            &workload,
            &placement,
            RoutingAlgorithm::DimensionOrdered,
            1,
        );
        let valiant = simulate_detailed(
            &network,
            &workload,
            &placement,
            RoutingAlgorithm::Valiant { seed: 1 },
            1,
        );
        assert!(valiant.total_hops >= dor.total_hops);
        assert!(dor.link_loads.max_load() >= 2);
        // Both deliver everything; makespans are positive.
        assert!(dor.cycles >= 1 && valiant.cycles >= 1);
    }

    #[test]
    fn hotspot_latency_tail_reflects_serialization() {
        // Everyone sends to node 0: the links into the hot spot serialize the
        // messages, so the p99/max latency far exceeds the median.
        let network = Network::new(Grid::mesh(shape(&[4, 4])));
        let workload = patterns::hotspot(16, 0, 1);
        let placement = Placement::identity(16);
        let stats = simulate_detailed(
            &network,
            &workload,
            &placement,
            RoutingAlgorithm::DimensionOrdered,
            1,
        );
        assert_eq!(stats.messages, 15);
        assert!(stats.cycles > stats.max_hops);
        assert!(stats.latency.max > stats.latency.p50);
        // The two links entering node 0 (from node 1 and node 4) carry all 15
        // messages between them.
        let into_hotspot = stats.link_loads.load(1, 0) + stats.link_loads.load(4, 0);
        assert_eq!(into_hotspot, 15);
    }
}
