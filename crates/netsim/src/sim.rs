//! A synchronous store-and-forward routing simulator.
//!
//! The model is deliberately simple and deterministic:
//!
//! * tasks are placed on network nodes by a [`Placement`] (usually an
//!   embedding from the `embeddings` crate);
//! * each round, every workload pair injects one message at its source node;
//! * messages follow dimension-ordered shortest routes;
//! * each directed link carries at most one message per cycle; messages that
//!   lose arbitration wait in FIFO order.
//!
//! The simulator reports both distance statistics (hops, which the embedding
//! theorems bound via the dilation cost) and the schedule makespan in cycles
//! (which additionally reflects link contention).

use embeddings::Embedding;

use crate::network::Network;
use crate::traffic::Workload;

/// Why an explicit placement table was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// Two tasks were assigned to the same network node.
    NotInjective {
        /// The first task assigned to the node.
        first_task: u64,
        /// The later task assigned to the same node.
        second_task: u64,
        /// The doubly-assigned node.
        node: u64,
    },
}

impl core::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlacementError::NotInjective {
                first_task,
                second_task,
                node,
            } => write!(
                f,
                "placement must be injective: tasks {first_task} and {second_task} \
                 are both assigned to node {node}"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// An assignment of logical tasks to network nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    map: Vec<u64>,
}

impl Placement {
    /// The identity placement: task `i` runs on node `i`.
    pub fn identity(tasks: u64) -> Self {
        Placement {
            map: (0..tasks).collect(),
        }
    }

    /// A placement defined by an explicit table, rejecting non-injective
    /// tables as an error — the fallible path for library code assembling
    /// placements from untrusted input.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::NotInjective`] naming the colliding tasks
    /// if two tasks share a node.
    pub fn try_from_table(map: Vec<u64>) -> Result<Self, PlacementError> {
        let mut first_assignment = std::collections::HashMap::new();
        for (task, &node) in map.iter().enumerate() {
            if let Some(&first_task) = first_assignment.get(&node) {
                return Err(PlacementError::NotInjective {
                    first_task,
                    second_task: task as u64,
                    node,
                });
            }
            first_assignment.insert(node, task as u64);
        }
        Ok(Placement { map })
    }

    /// A placement defined by an explicit table.
    ///
    /// # Panics
    ///
    /// Panics if the table is not injective; use
    /// [`Placement::try_from_table`] to handle that case as an error.
    #[deprecated(note = "use `Placement::try_from_table` and handle the error")]
    pub fn from_table(map: Vec<u64>) -> Self {
        Self::try_from_table(map).expect("placement must be injective")
    }

    /// The placement induced by an embedding: task `x` (a guest node) runs on
    /// host node `f(x)`.
    pub fn from_embedding(embedding: &Embedding) -> Self {
        Placement {
            map: (0..embedding.size())
                .map(|x| embedding.map_index(x))
                .collect(),
        }
    }

    /// The network node hosting `task`.
    pub fn node_of(&self, task: u64) -> u64 {
        self.map[task as usize]
    }

    /// The number of placed tasks.
    pub fn tasks(&self) -> u64 {
        self.map.len() as u64
    }
}

/// Aggregate results of a simulation.
///
/// On a pristine network every injected message is delivered, so
/// `delivered == messages` and the degradation counters stay zero; under a
/// [`crate::chaos::FaultPlan`] the invariant is instead
/// `delivered + dropped == messages`.
#[derive(Clone, Debug, PartialEq)]
pub struct SimStats {
    /// Total number of messages injected (delivered plus dropped).
    pub messages: u64,
    /// Messages that reached their destination.
    pub delivered: u64,
    /// Messages abandoned because no masked route existed (always 0 on a
    /// pristine network).
    pub dropped: u64,
    /// Sum of route lengths over all delivered messages.
    pub total_hops: u64,
    /// Longest route of any delivered message — bounded by
    /// `dilation × guest diameter` when the workload is a task graph embedded
    /// with that dilation (pristine networks only).
    pub max_hops: u64,
    /// Hops taken beyond the pristine shortest-path distance, summed over
    /// delivered messages (always 0 on a pristine network).
    pub detour_hops: u64,
    /// Cycles needed to deliver every message under one-message-per-link
    /// arbitration.
    pub cycles: u64,
}

impl SimStats {
    /// Mean hops per delivered message.
    pub fn average_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Fraction of injected messages that were delivered (1.0 for an empty
    /// simulation, so pristine runs read as fully delivered).
    pub fn delivered_fraction(&self) -> f64 {
        if self.messages == 0 {
            1.0
        } else {
            self.delivered as f64 / self.messages as f64
        }
    }
}

/// Runs `rounds` rounds of the workload on the network under the given
/// placement and returns aggregate statistics.
///
/// # Panics
///
/// Panics if the workload has more tasks than the placement, or the placement
/// references nodes outside the network.
pub fn simulate(
    network: &Network,
    workload: &Workload,
    placement: &Placement,
    rounds: usize,
) -> SimStats {
    assert!(
        workload.tasks() <= placement.tasks(),
        "workload has more tasks than the placement"
    );
    assert!(
        (0..placement.tasks()).all(|t| placement.node_of(t) < network.size()),
        "placement references nodes outside the network"
    );

    // All routes live in one flat hop buffer (expanded with the shared,
    // in-place next-hop primitive via `route_into`); messages are just
    // (offset, length) views plus their traversal state. One round's routes
    // are identical every round, so they are expanded once and the
    // remaining rounds reference the same hops.
    struct Message {
        start: usize,
        len: usize,
        position: usize, // number of hops already taken
        current: u64,
    }

    let pairs_per_round = workload.pairs().len();
    let mut hops: Vec<u64> = Vec::new();
    let mut messages: Vec<Message> = Vec::with_capacity(rounds * pairs_per_round);
    if rounds > 0 {
        for &(src_task, dst_task) in workload.pairs() {
            let src = placement.node_of(src_task);
            let dst = placement.node_of(dst_task);
            let start = hops.len();
            network.route_into(src, dst, &mut hops);
            messages.push(Message {
                start,
                len: hops.len() - start,
                position: 0,
                current: src,
            });
        }
    }
    for _ in 1..rounds {
        for i in 0..pairs_per_round {
            let Message { start, len, .. } = messages[i];
            messages.push(Message {
                start,
                len,
                position: 0,
                current: placement.node_of(workload.pairs()[i].0),
            });
        }
    }

    let total_messages = messages.len() as u64;
    let total_hops: u64 = messages.iter().map(|m| m.len as u64).sum();
    let max_hops: u64 = messages.iter().map(|m| m.len as u64).max().unwrap_or(0);

    // Cycle loop with one-message-per-directed-link arbitration.
    let mut cycles = 0u64;
    let mut remaining: usize = messages.iter().filter(|m| m.position < m.len).count();
    let mut claimed: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
    while remaining > 0 {
        cycles += 1;
        claimed.clear();
        for message in &mut messages {
            if message.position >= message.len {
                continue;
            }
            let next = hops[message.start + message.position];
            let link = (message.current, next);
            if claimed.insert(link) {
                message.current = next;
                message.position += 1;
                if message.position == message.len {
                    remaining -= 1;
                }
            }
        }
    }

    SimStats {
        messages: total_messages,
        delivered: total_messages,
        dropped: 0,
        total_hops,
        max_hops,
        detour_hops: 0,
        cycles,
    }
}

/// Convenience wrapper: simulate the neighbor-exchange workload of
/// `embedding.guest()` on a network built over `embedding.host()`, placing
/// tasks with the embedding itself.
pub fn simulate_embedding(embedding: &Embedding, rounds: usize) -> SimStats {
    let network = Network::new(embedding.host().clone());
    let workload = Workload::from_task_graph(embedding.guest());
    let placement = Placement::from_embedding(embedding);
    simulate(&network, &workload, &placement, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use embeddings::basic::embed_ring_in;
    use topology::{Grid, Shape};

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn identity_placement_on_a_ring_delivers_in_one_cycle_per_direction() {
        // Neighbor exchange on a ring placed identically on the same ring:
        // every message travels one hop; opposite directions use different
        // directed links, so everything lands in a single cycle.
        let ring = Grid::ring(8).unwrap();
        let network = Network::new(ring.clone());
        let workload = Workload::from_task_graph(&ring);
        let placement = Placement::identity(8);
        let stats = simulate(&network, &workload, &placement, 1);
        assert_eq!(stats.messages, 16);
        assert_eq!(stats.total_hops, 16);
        assert_eq!(stats.max_hops, 1);
        assert_eq!(stats.cycles, 1);
        assert!((stats.average_hops() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn good_embeddings_deliver_neighbor_exchange_with_unit_hops() {
        // A unit-dilation embedding keeps every neighbor exchange at one hop.
        let host = Grid::mesh(shape(&[4, 2, 3]));
        let embedding = embed_ring_in(&host).unwrap();
        assert_eq!(embedding.dilation(), 1);
        let stats = simulate_embedding(&embedding, 1);
        assert_eq!(stats.max_hops, 1);
        assert_eq!(stats.total_hops, stats.messages);
    }

    #[test]
    fn naive_placement_is_worse_than_the_paper_embedding() {
        // Ring task graph on a (4,6)-mesh: the paper's embedding keeps
        // neighbors adjacent; the row-major placement pays the mesh width on
        // the wrap-around edge.
        let host = Grid::mesh(shape(&[4, 6]));
        let ring = Grid::ring(24).unwrap();
        let network = Network::new(host.clone());
        let workload = Workload::from_task_graph(&ring);

        let good = Placement::from_embedding(&embed_ring_in(&host).unwrap());
        let naive = Placement::identity(24);

        let good_stats = simulate(&network, &workload, &good, 1);
        let naive_stats = simulate(&network, &workload, &naive, 1);
        assert!(good_stats.total_hops < naive_stats.total_hops);
        assert!(good_stats.max_hops < naive_stats.max_hops);
        assert!(good_stats.cycles <= naive_stats.cycles);
    }

    #[test]
    fn multiple_rounds_scale_message_counts() {
        let host = Grid::torus(shape(&[3, 3]));
        let embedding = embed_ring_in(&host).unwrap();
        let one = simulate_embedding(&embedding, 1);
        let three = simulate_embedding(&embedding, 3);
        assert_eq!(three.messages, 3 * one.messages);
        assert_eq!(three.total_hops, 3 * one.total_hops);
        assert!(three.cycles >= one.cycles);
    }

    #[test]
    fn random_workload_runs_to_completion() {
        let network = Network::new(Grid::mesh(shape(&[4, 4])));
        let workload = Workload::uniform_random(16, 64, 42);
        let placement = Placement::identity(16);
        let stats = simulate(&network, &workload, &placement, 2);
        assert_eq!(stats.messages, 128);
        assert!(stats.cycles >= stats.max_hops);
        assert!(stats.total_hops >= stats.messages); // no self messages
    }

    #[test]
    #[should_panic(expected = "injective")]
    fn non_injective_placement_panics() {
        // Pins the deprecated constructor's panic contract until removal.
        #[allow(deprecated)]
        let _ = Placement::from_table(vec![0, 1, 1]);
    }

    #[test]
    fn try_from_table_reports_the_collision() {
        let placement = Placement::try_from_table(vec![3, 0, 2]).unwrap();
        assert_eq!(placement.tasks(), 3);
        assert_eq!(placement.node_of(0), 3);
        match Placement::try_from_table(vec![0, 5, 1, 5]) {
            Err(PlacementError::NotInjective {
                first_task,
                second_task,
                node,
            }) => {
                assert_eq!((first_task, second_task, node), (1, 3, 5));
            }
            other => panic!("expected NotInjective, got {other:?}"),
        }
        let message = Placement::try_from_table(vec![0, 0])
            .unwrap_err()
            .to_string();
        assert!(message.contains("injective"));
        assert!(message.contains("node 0"));
    }

    #[test]
    fn zero_rounds_deliver_nothing() {
        let ring = Grid::ring(4).unwrap();
        let network = Network::new(ring.clone());
        let workload = Workload::from_task_graph(&ring);
        let stats = simulate(&network, &workload, &Placement::identity(4), 0);
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.cycles, 0);
    }
}
