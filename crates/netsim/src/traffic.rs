//! Traffic patterns: which pairs of tasks exchange messages.
//!
//! The paper's motivation for graph embeddings is matching a task graph's
//! communication pattern to a physical network. A [`Workload`] is exactly
//! that task graph, flattened to a list of communicating task pairs; the
//! simulator sends one message per pair per round after the tasks have been
//! placed on network nodes by an embedding (or any other placement).
//!
//! Beyond task-graph and uniform-random traffic, this module provides the
//! adversarial generators used by the `chaos` subsystem: Zipf-skewed hotspot
//! destinations ([`zipf_hotspot`]), on/off bursty arrival schedules
//! ([`bursty_schedule`]), and multi-tenant composition of several embedded
//! guests onto one shared host ([`multi_tenant`]).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use topology::Grid;

use crate::sim::Placement;

/// Why an explicit workload pair list was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadError {
    /// A pair references a task outside `[0, tasks)`.
    TaskOutOfRange {
        /// The position of the offending pair in the list.
        pair_index: usize,
        /// The offending pair.
        pair: (u64, u64),
        /// The declared number of tasks.
        tasks: u64,
    },
    /// A multi-tenant guest placement maps a task onto a node outside the
    /// shared host.
    GuestOutsideHost {
        /// The position of the guest in the tenant list.
        guest_index: usize,
        /// The offending host node.
        node: u64,
        /// The number of host nodes.
        host_nodes: u64,
    },
    /// A multi-tenant guest workload has more tasks than its placement maps.
    GuestExceedsPlacement {
        /// The position of the guest in the tenant list.
        guest_index: usize,
        /// The guest workload's task count.
        tasks: u64,
        /// The guest placement's task count.
        placed: u64,
    },
}

impl core::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WorkloadError::TaskOutOfRange {
                pair_index,
                pair: (a, b),
                tasks,
            } => write!(
                f,
                "workload pair #{pair_index} ({a}, {b}) references tasks outside [0, {tasks})"
            ),
            WorkloadError::GuestOutsideHost {
                guest_index,
                node,
                host_nodes,
            } => write!(
                f,
                "tenant #{guest_index} places a task on node {node}, \
                 outside the {host_nodes}-node host"
            ),
            WorkloadError::GuestExceedsPlacement {
                guest_index,
                tasks,
                placed,
            } => write!(
                f,
                "tenant #{guest_index} has {tasks} tasks but its placement \
                 only maps {placed}"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A communication workload over `tasks` logical tasks: a list of directed
/// (source task, destination task) pairs, each carrying one message per
/// simulated round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Workload {
    tasks: u64,
    pairs: Vec<(u64, u64)>,
}

impl Workload {
    /// Creates a workload from explicit pairs, rejecting out-of-range task
    /// references as an error — the fallible path for library code (such as
    /// `explab` trial construction) assembling workloads from generated or
    /// untrusted pair lists.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::TaskOutOfRange`] naming the first offending
    /// pair if any pair references a task `>= tasks`.
    pub fn try_new(tasks: u64, pairs: Vec<(u64, u64)>) -> Result<Self, WorkloadError> {
        for (pair_index, &(a, b)) in pairs.iter().enumerate() {
            if a >= tasks || b >= tasks {
                return Err(WorkloadError::TaskOutOfRange {
                    pair_index,
                    pair: (a, b),
                    tasks,
                });
            }
        }
        Ok(Workload { tasks, pairs })
    }

    /// Creates a workload from explicit pairs.
    ///
    /// # Panics
    ///
    /// Panics if any pair references a task `>= tasks`; use
    /// [`Workload::try_new`] to handle that case as an error.
    #[deprecated(note = "use `Workload::try_new` and handle the error")]
    pub fn new(tasks: u64, pairs: Vec<(u64, u64)>) -> Self {
        Self::try_new(tasks, pairs).expect("workload references tasks outside the task range")
    }

    /// The neighbor-exchange workload of a task graph: every edge of `graph`
    /// becomes a pair of messages, one in each direction. This is the
    /// workload whose dilation the embedding theorems bound.
    pub fn from_task_graph(graph: &Grid) -> Self {
        let mut pairs = Vec::with_capacity(2 * graph.num_edges() as usize);
        for (a, b) in graph.edges() {
            pairs.push((a, b));
            pairs.push((b, a));
        }
        Workload {
            tasks: graph.size(),
            pairs,
        }
    }

    /// A uniform-random workload: `messages` pairs drawn uniformly (source ≠
    /// destination), seeded for reproducibility.
    pub fn uniform_random(tasks: u64, messages: usize, seed: u64) -> Self {
        assert!(tasks >= 2, "need at least two tasks");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pairs = Vec::with_capacity(messages);
        for _ in 0..messages {
            let a = rng.gen_range(0..tasks);
            let mut b = rng.gen_range(0..tasks);
            while b == a {
                b = rng.gen_range(0..tasks);
            }
            pairs.push((a, b));
        }
        Workload { tasks, pairs }
    }

    /// The number of logical tasks.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// The communicating pairs.
    pub fn pairs(&self) -> &[(u64, u64)] {
        &self.pairs
    }

    /// The number of messages per round.
    pub fn messages_per_round(&self) -> usize {
        self.pairs.len()
    }
}

/// A hotspot workload with Zipf-skewed destinations: `messages` pairs whose
/// sources are uniform and whose destinations follow a Zipf law with exponent
/// `skew` over a seeded random ranking of the tasks (so the hot task is not
/// always task 0). `skew = 0` degenerates to uniform destinations; larger
/// exponents concentrate traffic on ever fewer tasks. Self-pairs are
/// filtered the same way [`Workload::uniform_random`] filters them.
///
/// # Panics
///
/// Panics if `tasks < 2` or `skew` is not finite and non-negative.
pub fn zipf_hotspot(tasks: u64, messages: usize, skew: f64, seed: u64) -> Workload {
    assert!(tasks >= 2, "need at least two tasks");
    assert!(
        skew.is_finite() && skew >= 0.0,
        "skew must be finite and non-negative"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // Rank → task: a seeded permutation, so rank 0 (the hottest
    // destination) lands on an arbitrary task instead of always task 0.
    let mut ranked: Vec<u64> = (0..tasks).collect();
    use rand::seq::SliceRandom;
    ranked.shuffle(&mut rng);

    // Cumulative Zipf weights 1/(k+1)^skew over the ranks.
    let mut cumulative = Vec::with_capacity(tasks as usize);
    let mut total = 0.0f64;
    for k in 0..tasks {
        total += 1.0 / ((k + 1) as f64).powf(skew);
        cumulative.push(total);
    }

    let mut pairs = Vec::with_capacity(messages);
    for _ in 0..messages {
        let a = rng.gen_range(0..tasks);
        let b = loop {
            // A uniform draw in [0, total), binary-searched against the
            // cumulative weights: the first rank whose cumulative weight
            // exceeds the draw.
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * total;
            let rank = cumulative.partition_point(|&c| c <= u);
            let candidate = ranked[rank.min(ranked.len() - 1)];
            if candidate != a {
                break candidate;
            }
        };
        pairs.push((a, b));
    }
    Workload { tasks, pairs }
}

/// An on/off bursty arrival schedule: one workload per round, where each
/// source task of `base` transmits for `on` rounds and then stays silent for
/// `off` rounds, with a seeded per-source phase offset so bursts are not
/// globally synchronized. Round `r` keeps a pair of `base` exactly when its
/// source is in the on-phase of its cycle.
///
/// # Panics
///
/// Panics if `on + off == 0`.
pub fn bursty_schedule(
    base: &Workload,
    rounds: usize,
    on: u32,
    off: u32,
    seed: u64,
) -> Vec<Workload> {
    let period = u64::from(on) + u64::from(off);
    assert!(period > 0, "on + off must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let phases: Vec<u64> = (0..base.tasks())
        .map(|_| rng.gen_range(0..period))
        .collect();
    (0..rounds as u64)
        .map(|r| {
            let pairs = base
                .pairs()
                .iter()
                .copied()
                .filter(|&(a, _)| (r + phases[a as usize]) % period < u64::from(on))
                .collect();
            Workload {
                tasks: base.tasks(),
                pairs,
            }
        })
        .collect()
}

/// Composes `K` embedded guests' workloads onto one shared host: each guest
/// pair `(a, b)` becomes the host-node pair `(P(a), P(b))` under that guest's
/// placement, and the result is a host-level workload over `host_nodes`
/// tasks, simulated with [`Placement::identity`]. Different guests may place
/// tasks on the same host node — that contention is exactly what the
/// multi-tenant scenario measures — but each guest's own placement must stay
/// within the host.
///
/// # Errors
///
/// Returns [`WorkloadError::GuestExceedsPlacement`] when a guest workload
/// references more tasks than its placement maps, and
/// [`WorkloadError::GuestOutsideHost`] when a placement maps a task outside
/// `[0, host_nodes)`.
pub fn multi_tenant(
    host_nodes: u64,
    guests: &[(&Workload, &Placement)],
) -> Result<Workload, WorkloadError> {
    let mut pairs = Vec::with_capacity(guests.iter().map(|(w, _)| w.pairs().len()).sum());
    for (guest_index, &(workload, placement)) in guests.iter().enumerate() {
        if workload.tasks() > placement.tasks() {
            return Err(WorkloadError::GuestExceedsPlacement {
                guest_index,
                tasks: workload.tasks(),
                placed: placement.tasks(),
            });
        }
        for task in 0..workload.tasks() {
            let node = placement.node_of(task);
            if node >= host_nodes {
                return Err(WorkloadError::GuestOutsideHost {
                    guest_index,
                    node,
                    host_nodes,
                });
            }
        }
        for &(a, b) in workload.pairs() {
            pairs.push((placement.node_of(a), placement.node_of(b)));
        }
    }
    Ok(Workload {
        tasks: host_nodes,
        pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::Shape;

    #[test]
    fn task_graph_workload_has_two_messages_per_edge() {
        let ring = Grid::ring(8).unwrap();
        let w = Workload::from_task_graph(&ring);
        assert_eq!(w.tasks(), 8);
        assert_eq!(w.messages_per_round() as u64, 2 * ring.num_edges());
        // Every pair is an edge.
        for &(a, b) in w.pairs() {
            assert!(ring.adjacent(a, b).unwrap());
        }
    }

    #[test]
    fn uniform_random_is_reproducible_and_loop_free() {
        let a = Workload::uniform_random(16, 100, 7);
        let b = Workload::uniform_random(16, 100, 7);
        let c = Workload::uniform_random(16, 100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.pairs().iter().all(|&(x, y)| x != y && x < 16 && y < 16));
    }

    #[test]
    fn mesh_task_graph_workload() {
        let mesh = Grid::mesh(Shape::new(vec![3, 3]).unwrap());
        let w = Workload::from_task_graph(&mesh);
        assert_eq!(w.messages_per_round() as u64, 2 * mesh.num_edges());
    }

    #[test]
    fn uniform_random_pins_message_counts_with_no_self_pairs() {
        // Self-pairs are rejected at generation by redrawing the
        // destination, so the requested message count is delivered exactly —
        // no pair is silently lost to the filter.
        for (tasks, messages, seed) in [(2u64, 37usize, 1u64), (16, 100, 7), (24, 48, 1987)] {
            let w = Workload::uniform_random(tasks, messages, seed);
            assert_eq!(w.messages_per_round(), messages);
            assert_eq!(w.pairs().len(), messages);
            assert!(w.pairs().iter().all(|&(a, b)| a != b));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_pairs_panic() {
        // Pins the deprecated constructor's panic contract until removal.
        #[allow(deprecated)]
        let _ = Workload::new(4, vec![(0, 4)]);
    }

    #[test]
    fn zipf_hotspot_skews_destinations_and_is_reproducible() {
        let a = zipf_hotspot(32, 2000, 1.2, 7);
        let b = zipf_hotspot(32, 2000, 1.2, 7);
        assert_eq!(a, b);
        assert_eq!(a.messages_per_round(), 2000);
        assert!(a.pairs().iter().all(|&(x, y)| x != y && x < 32 && y < 32));

        // The hottest destination of a skewed draw must receive far more
        // than the uniform share (2000/32 ≈ 63 messages).
        let mut counts = [0usize; 32];
        for &(_, b) in a.pairs() {
            counts[b as usize] += 1;
        }
        let hottest = counts.iter().max().copied().unwrap();
        assert!(hottest > 250, "hottest destination got {hottest} messages");

        // skew = 0 degenerates to (near-)uniform destinations.
        let uniform = zipf_hotspot(32, 2000, 0.0, 7);
        let mut flat = [0usize; 32];
        for &(_, b) in uniform.pairs() {
            flat[b as usize] += 1;
        }
        assert!(flat.iter().max().copied().unwrap() < 150);
    }

    #[test]
    fn bursty_schedule_gates_sources_on_their_phase() {
        let base = Workload::try_new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let schedule = bursty_schedule(&base, 12, 2, 2, 11);
        assert_eq!(schedule.len(), 12);
        // Every round keeps a subset of the base pairs, and each source's
        // on/off pattern repeats with period on + off = 4.
        for (r, w) in schedule.iter().enumerate() {
            assert_eq!(w.tasks(), base.tasks());
            for pair in w.pairs() {
                assert!(base.pairs().contains(pair));
            }
            if r + 4 < schedule.len() {
                assert_eq!(w.pairs(), schedule[r + 4].pairs());
            }
        }
        // Each source transmits in exactly half the rounds of each period.
        for src in 0..4u64 {
            let active = schedule
                .iter()
                .filter(|w| w.pairs().iter().any(|&(a, _)| a == src))
                .count();
            assert_eq!(active, 6, "source {src} active {active} rounds");
        }
        // Reproducible per seed.
        let again = bursty_schedule(&base, 12, 2, 2, 11);
        assert_eq!(schedule, again);
    }

    #[test]
    fn multi_tenant_composes_guests_through_their_placements() {
        let guest = Workload::try_new(3, vec![(0, 1), (1, 2)]).unwrap();
        let p0 = Placement::try_from_table(vec![0, 1, 2]).unwrap();
        let p1 = Placement::try_from_table(vec![3, 4, 5]).unwrap();
        let composed = multi_tenant(6, &[(&guest, &p0), (&guest, &p1)]).unwrap();
        assert_eq!(composed.tasks(), 6);
        assert_eq!(
            composed.pairs(),
            &[(0, 1), (1, 2), (3, 4), (4, 5)],
            "guest pairs mapped through each tenant's placement"
        );

        // Overlapping tenant placements are allowed — contention is the
        // scenario being measured.
        let overlapping = multi_tenant(6, &[(&guest, &p0), (&guest, &p0)]).unwrap();
        assert_eq!(overlapping.messages_per_round(), 4);

        // A placement that leaves the host is rejected with a typed error.
        match multi_tenant(4, &[(&guest, &p0), (&guest, &p1)]) {
            Err(WorkloadError::GuestOutsideHost {
                guest_index,
                node,
                host_nodes,
            }) => assert_eq!((guest_index, node, host_nodes), (1, 4, 4)),
            other => panic!("expected GuestOutsideHost, got {other:?}"),
        }

        // A guest bigger than its placement is rejected too.
        let big = Workload::try_new(4, vec![(0, 3)]).unwrap();
        match multi_tenant(6, &[(&big, &p0)]) {
            Err(WorkloadError::GuestExceedsPlacement {
                guest_index,
                tasks,
                placed,
            }) => assert_eq!((guest_index, tasks, placed), (0, 4, 3)),
            other => panic!("expected GuestExceedsPlacement, got {other:?}"),
        }
    }

    #[test]
    fn try_new_reports_the_offending_pair() {
        let ok = Workload::try_new(4, vec![(0, 1), (3, 2)]).unwrap();
        assert_eq!(ok.tasks(), 4);
        assert_eq!(ok.messages_per_round(), 2);
        match Workload::try_new(4, vec![(0, 1), (5, 2)]) {
            Err(WorkloadError::TaskOutOfRange {
                pair_index,
                pair,
                tasks,
            }) => {
                assert_eq!((pair_index, pair, tasks), (1, (5, 2), 4));
            }
            other => panic!("expected TaskOutOfRange, got {other:?}"),
        }
        let message = Workload::try_new(2, vec![(0, 2)]).unwrap_err().to_string();
        assert!(message.contains("outside [0, 2)"));
        assert!(message.contains("pair #0"));
    }
}
