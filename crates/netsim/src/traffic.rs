//! Traffic patterns: which pairs of tasks exchange messages.
//!
//! The paper's motivation for graph embeddings is matching a task graph's
//! communication pattern to a physical network. A [`Workload`] is exactly
//! that task graph, flattened to a list of communicating task pairs; the
//! simulator sends one message per pair per round after the tasks have been
//! placed on network nodes by an embedding (or any other placement).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use topology::Grid;

/// A communication workload over `tasks` logical tasks: a list of directed
/// (source task, destination task) pairs, each carrying one message per
/// simulated round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Workload {
    tasks: u64,
    pairs: Vec<(u64, u64)>,
}

impl Workload {
    /// Creates a workload from explicit pairs.
    ///
    /// # Panics
    ///
    /// Panics if any pair references a task `>= tasks`.
    pub fn new(tasks: u64, pairs: Vec<(u64, u64)>) -> Self {
        assert!(
            pairs.iter().all(|&(a, b)| a < tasks && b < tasks),
            "workload references tasks outside [0, {tasks})"
        );
        Workload { tasks, pairs }
    }

    /// The neighbor-exchange workload of a task graph: every edge of `graph`
    /// becomes a pair of messages, one in each direction. This is the
    /// workload whose dilation the embedding theorems bound.
    pub fn from_task_graph(graph: &Grid) -> Self {
        let mut pairs = Vec::with_capacity(2 * graph.num_edges() as usize);
        for (a, b) in graph.edges() {
            pairs.push((a, b));
            pairs.push((b, a));
        }
        Workload {
            tasks: graph.size(),
            pairs,
        }
    }

    /// A uniform-random workload: `messages` pairs drawn uniformly (source ≠
    /// destination), seeded for reproducibility.
    pub fn uniform_random(tasks: u64, messages: usize, seed: u64) -> Self {
        assert!(tasks >= 2, "need at least two tasks");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pairs = Vec::with_capacity(messages);
        for _ in 0..messages {
            let a = rng.gen_range(0..tasks);
            let mut b = rng.gen_range(0..tasks);
            while b == a {
                b = rng.gen_range(0..tasks);
            }
            pairs.push((a, b));
        }
        Workload { tasks, pairs }
    }

    /// The number of logical tasks.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// The communicating pairs.
    pub fn pairs(&self) -> &[(u64, u64)] {
        &self.pairs
    }

    /// The number of messages per round.
    pub fn messages_per_round(&self) -> usize {
        self.pairs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::Shape;

    #[test]
    fn task_graph_workload_has_two_messages_per_edge() {
        let ring = Grid::ring(8).unwrap();
        let w = Workload::from_task_graph(&ring);
        assert_eq!(w.tasks(), 8);
        assert_eq!(w.messages_per_round() as u64, 2 * ring.num_edges());
        // Every pair is an edge.
        for &(a, b) in w.pairs() {
            assert!(ring.adjacent(a, b).unwrap());
        }
    }

    #[test]
    fn uniform_random_is_reproducible_and_loop_free() {
        let a = Workload::uniform_random(16, 100, 7);
        let b = Workload::uniform_random(16, 100, 7);
        let c = Workload::uniform_random(16, 100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.pairs().iter().all(|&(x, y)| x != y && x < 16 && y < 16));
    }

    #[test]
    fn mesh_task_graph_workload() {
        let mesh = Grid::mesh(Shape::new(vec![3, 3]).unwrap());
        let w = Workload::from_task_graph(&mesh);
        assert_eq!(w.messages_per_round() as u64, 2 * mesh.num_edges());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_pairs_panic() {
        let _ = Workload::new(4, vec![(0, 4)]);
    }
}
