//! Traffic patterns: which pairs of tasks exchange messages.
//!
//! The paper's motivation for graph embeddings is matching a task graph's
//! communication pattern to a physical network. A [`Workload`] is exactly
//! that task graph, flattened to a list of communicating task pairs; the
//! simulator sends one message per pair per round after the tasks have been
//! placed on network nodes by an embedding (or any other placement).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use topology::Grid;

/// Why an explicit workload pair list was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadError {
    /// A pair references a task outside `[0, tasks)`.
    TaskOutOfRange {
        /// The position of the offending pair in the list.
        pair_index: usize,
        /// The offending pair.
        pair: (u64, u64),
        /// The declared number of tasks.
        tasks: u64,
    },
}

impl core::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WorkloadError::TaskOutOfRange {
                pair_index,
                pair: (a, b),
                tasks,
            } => write!(
                f,
                "workload pair #{pair_index} ({a}, {b}) references tasks outside [0, {tasks})"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A communication workload over `tasks` logical tasks: a list of directed
/// (source task, destination task) pairs, each carrying one message per
/// simulated round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Workload {
    tasks: u64,
    pairs: Vec<(u64, u64)>,
}

impl Workload {
    /// Creates a workload from explicit pairs, rejecting out-of-range task
    /// references as an error — the fallible path for library code (such as
    /// `explab` trial construction) assembling workloads from generated or
    /// untrusted pair lists.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::TaskOutOfRange`] naming the first offending
    /// pair if any pair references a task `>= tasks`.
    pub fn try_new(tasks: u64, pairs: Vec<(u64, u64)>) -> Result<Self, WorkloadError> {
        for (pair_index, &(a, b)) in pairs.iter().enumerate() {
            if a >= tasks || b >= tasks {
                return Err(WorkloadError::TaskOutOfRange {
                    pair_index,
                    pair: (a, b),
                    tasks,
                });
            }
        }
        Ok(Workload { tasks, pairs })
    }

    /// Creates a workload from explicit pairs.
    ///
    /// # Panics
    ///
    /// Panics if any pair references a task `>= tasks`; use
    /// [`Workload::try_new`] to handle that case as an error.
    pub fn new(tasks: u64, pairs: Vec<(u64, u64)>) -> Self {
        Self::try_new(tasks, pairs).expect("workload references tasks outside the task range")
    }

    /// The neighbor-exchange workload of a task graph: every edge of `graph`
    /// becomes a pair of messages, one in each direction. This is the
    /// workload whose dilation the embedding theorems bound.
    pub fn from_task_graph(graph: &Grid) -> Self {
        let mut pairs = Vec::with_capacity(2 * graph.num_edges() as usize);
        for (a, b) in graph.edges() {
            pairs.push((a, b));
            pairs.push((b, a));
        }
        Workload {
            tasks: graph.size(),
            pairs,
        }
    }

    /// A uniform-random workload: `messages` pairs drawn uniformly (source ≠
    /// destination), seeded for reproducibility.
    pub fn uniform_random(tasks: u64, messages: usize, seed: u64) -> Self {
        assert!(tasks >= 2, "need at least two tasks");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pairs = Vec::with_capacity(messages);
        for _ in 0..messages {
            let a = rng.gen_range(0..tasks);
            let mut b = rng.gen_range(0..tasks);
            while b == a {
                b = rng.gen_range(0..tasks);
            }
            pairs.push((a, b));
        }
        Workload { tasks, pairs }
    }

    /// The number of logical tasks.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// The communicating pairs.
    pub fn pairs(&self) -> &[(u64, u64)] {
        &self.pairs
    }

    /// The number of messages per round.
    pub fn messages_per_round(&self) -> usize {
        self.pairs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::Shape;

    #[test]
    fn task_graph_workload_has_two_messages_per_edge() {
        let ring = Grid::ring(8).unwrap();
        let w = Workload::from_task_graph(&ring);
        assert_eq!(w.tasks(), 8);
        assert_eq!(w.messages_per_round() as u64, 2 * ring.num_edges());
        // Every pair is an edge.
        for &(a, b) in w.pairs() {
            assert!(ring.adjacent(a, b).unwrap());
        }
    }

    #[test]
    fn uniform_random_is_reproducible_and_loop_free() {
        let a = Workload::uniform_random(16, 100, 7);
        let b = Workload::uniform_random(16, 100, 7);
        let c = Workload::uniform_random(16, 100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.pairs().iter().all(|&(x, y)| x != y && x < 16 && y < 16));
    }

    #[test]
    fn mesh_task_graph_workload() {
        let mesh = Grid::mesh(Shape::new(vec![3, 3]).unwrap());
        let w = Workload::from_task_graph(&mesh);
        assert_eq!(w.messages_per_round() as u64, 2 * mesh.num_edges());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_pairs_panic() {
        let _ = Workload::new(4, vec![(0, 4)]);
    }

    #[test]
    fn try_new_reports_the_offending_pair() {
        let ok = Workload::try_new(4, vec![(0, 1), (3, 2)]).unwrap();
        assert_eq!(ok.tasks(), 4);
        assert_eq!(ok.messages_per_round(), 2);
        match Workload::try_new(4, vec![(0, 1), (5, 2)]) {
            Err(WorkloadError::TaskOutOfRange {
                pair_index,
                pair,
                tasks,
            }) => {
                assert_eq!((pair_index, pair, tasks), (1, (5, 2), 4));
            }
            other => panic!("expected TaskOutOfRange, got {other:?}"),
        }
        let message = Workload::try_new(2, vec![(0, 2)]).unwrap_err().to_string();
        assert!(message.contains("outside [0, 2)"));
        assert!(message.contains("pair #0"));
    }
}
