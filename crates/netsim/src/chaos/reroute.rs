//! Fault-aware routing: dimension-ordered routing with detours, and an
//! offline BFS table router as ground truth.
//!
//! Both routers consult only a [`FaultMask`] overlay; the pristine network
//! is never modified. Both report unreachability as the typed
//! [`RouteOutcome::Unreachable`] instead of panicking, so a faulted
//! simulation always completes and reports *how much* was lost.
//!
//! [`DetourRouter`] is the online router: it follows the pristine
//! dimension-ordered rule while the preferred arc is up, greedily misroutes
//! around masked links otherwise, and falls back to a masked-BFS escape walk
//! when greed strands it. Its reachability verdict *always* agrees with BFS
//! (the walked prefix proves the source and the escape point are in the same
//! masked component), and a delivered path is at most
//! `masked-BFS-hops + 2 × budget` hops long, where the budget is
//! `4 × diameter + 8` — the bound the differential property tests pin.
//!
//! [`TableRouter`] is the offline ground truth: per-destination reverse BFS
//! over the masked adjacency, cached per destination, walking shortest
//! masked paths with a smallest-index tie-break.

use std::collections::HashMap;

use crate::chaos::faults::{link_slot_between, FaultMask};
use crate::network::Network;

/// The typed result of routing one message on a degraded network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteOutcome {
    /// A path was found; `path` excludes the source and includes the
    /// destination (empty when source == destination).
    Delivered {
        /// The hop-by-hop path.
        path: Vec<u64>,
        /// Hops taken beyond the pristine shortest-path distance.
        detour_hops: u64,
    },
    /// No masked path exists (or an endpoint is down).
    Unreachable {
        /// The source node.
        from: u64,
        /// The destination node.
        to: u64,
    },
}

impl RouteOutcome {
    /// The delivered path, if any.
    pub fn path(&self) -> Option<&[u64]> {
        match self {
            RouteOutcome::Delivered { path, .. } => Some(path),
            RouteOutcome::Unreachable { .. } => None,
        }
    }

    /// Whether the message was delivered.
    pub fn is_delivered(&self) -> bool {
        matches!(self, RouteOutcome::Delivered { .. })
    }
}

/// Distances to `to` over the masked graph, by reverse BFS from the
/// destination: `u64::MAX` marks unreachable nodes (and every node when the
/// destination itself is down).
pub fn masked_distances_to(network: &Network, mask: &FaultMask, to: u64) -> Vec<u64> {
    let n = network.size() as usize;
    let mut distance = vec![u64::MAX; n];
    if !mask.node_up(to) {
        return distance;
    }
    let grid = network.grid();
    let mut frontier = std::collections::VecDeque::new();
    distance[to as usize] = 0;
    frontier.push_back(to);
    while let Some(node) = frontier.pop_front() {
        let next = distance[node as usize] + 1;
        for &neighbor in network.adjacency().neighbors(node as usize) {
            let neighbor = u64::from(neighbor);
            if distance[neighbor as usize] != u64::MAX
                || !mask.node_up(neighbor)
                || !mask.link_up(link_slot_between(grid, node, neighbor))
            {
                continue;
            }
            distance[neighbor as usize] = next;
            frontier.push_back(neighbor);
        }
    }
    distance
}

/// Whether the directed step `from → to` is usable under `mask`: the far
/// endpoint and the connecting link are both up.
fn step_up(network: &Network, mask: &FaultMask, from: u64, to: u64) -> bool {
    mask.node_up(to) && mask.link_up(link_slot_between(network.grid(), from, to))
}

/// The online fault-aware router: DOR while possible, greedy misroute around
/// masked arcs, masked-BFS escape when stranded.
#[derive(Clone, Debug)]
pub struct DetourRouter<'a> {
    network: &'a Network,
    mask: &'a FaultMask,
    budget: u64,
}

impl<'a> DetourRouter<'a> {
    /// Binds the router to a network and a fault mask, with the default
    /// misroute budget of `4 × diameter + 8` hops.
    pub fn new(network: &'a Network, mask: &'a FaultMask) -> Self {
        let budget = 4 * network.grid().diameter() + 8;
        DetourRouter {
            network,
            mask,
            budget,
        }
    }

    /// The misroute budget: the maximum hops spent in the DOR/greedy phases
    /// before the router switches to the BFS escape walk.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Routes one message, returning the typed outcome. Deterministic: ties
    /// in the greedy phase break toward the pristine-closest then
    /// smallest-index neighbor, and the escape walk breaks ties toward the
    /// smallest index.
    pub fn route(&self, from: u64, to: u64) -> RouteOutcome {
        let network = self.network;
        let mask = self.mask;
        if !mask.node_up(from) || !mask.node_up(to) {
            return RouteOutcome::Unreachable { from, to };
        }
        if from == to {
            return RouteOutcome::Delivered {
                path: Vec::new(),
                detour_hops: 0,
            };
        }

        let mut visited = vec![false; network.size() as usize];
        visited[from as usize] = true;
        let mut current = from;
        let mut path: Vec<u64> = Vec::new();

        // Phases 1–2: pristine DOR while its arc is up, greedy misroute
        // otherwise, over a simple (visited-once) path with a hop budget.
        while current != to && (path.len() as u64) < self.budget {
            let preferred = network
                .next_hop(current, to)
                .filter(|&next| !visited[next as usize] && step_up(network, mask, current, next));
            let next = preferred.or_else(|| {
                network
                    .adjacency()
                    .neighbors(current as usize)
                    .iter()
                    .map(|&n| u64::from(n))
                    .filter(|&n| !visited[n as usize] && step_up(network, mask, current, n))
                    .min_by_key(|&n| (network.hops(n, to), n))
            });
            match next {
                Some(next) => {
                    visited[next as usize] = true;
                    path.push(next);
                    current = next;
                }
                None => break, // stranded: every usable neighbor already visited
            }
        }

        if current != to {
            // Phase 3: escape along shortest masked paths. The walked prefix
            // proves `from` and `current` share a masked component, so
            // reachability here is exactly BFS reachability from `from`.
            let distance = masked_distances_to(network, mask, to);
            if distance[current as usize] == u64::MAX {
                return RouteOutcome::Unreachable { from, to };
            }
            while current != to {
                let downhill = network
                    .adjacency()
                    .neighbors(current as usize)
                    .iter()
                    .map(|&n| u64::from(n))
                    .filter(|&n| {
                        distance[n as usize] == distance[current as usize] - 1
                            && step_up(network, mask, current, n)
                    })
                    .min()
                    .expect("a finite BFS distance always has a downhill neighbor");
                path.push(downhill);
                current = downhill;
            }
        }

        let detour_hops = path.len() as u64 - network.hops(from, to);
        RouteOutcome::Delivered { path, detour_hops }
    }
}

/// The offline ground-truth router: shortest masked paths from per-
/// destination reverse-BFS tables, cached across calls.
#[derive(Clone, Debug)]
pub struct TableRouter<'a> {
    network: &'a Network,
    mask: &'a FaultMask,
    tables: HashMap<u64, Vec<u64>>,
}

impl<'a> TableRouter<'a> {
    /// Binds the router to a network and a fault mask with an empty cache.
    pub fn new(network: &'a Network, mask: &'a FaultMask) -> Self {
        TableRouter {
            network,
            mask,
            tables: HashMap::new(),
        }
    }

    /// The masked distance table toward `to`, computing and caching it on
    /// first use.
    pub fn distances_to(&mut self, to: u64) -> &[u64] {
        self.tables
            .entry(to)
            .or_insert_with(|| masked_distances_to(self.network, self.mask, to))
    }

    /// The masked shortest-path distance from `from` to `to`, or `None` when
    /// unreachable.
    pub fn hops(&mut self, from: u64, to: u64) -> Option<u64> {
        if !self.mask.node_up(from) {
            return None;
        }
        match self.distances_to(to)[from as usize] {
            u64::MAX => None,
            d => Some(d),
        }
    }

    /// Routes one message along a shortest masked path (smallest-index
    /// tie-break), returning the typed outcome.
    pub fn route(&mut self, from: u64, to: u64) -> RouteOutcome {
        let (network, mask) = (self.network, self.mask);
        if !mask.node_up(from) || !mask.node_up(to) {
            return RouteOutcome::Unreachable { from, to };
        }
        let distance = self.distances_to(to);
        if distance[from as usize] == u64::MAX {
            return RouteOutcome::Unreachable { from, to };
        }
        let mut path = Vec::with_capacity(distance[from as usize] as usize);
        let mut current = from;
        while current != to {
            let downhill = network
                .adjacency()
                .neighbors(current as usize)
                .iter()
                .map(|&n| u64::from(n))
                .filter(|&n| {
                    distance[n as usize] == distance[current as usize] - 1
                        && step_up(network, mask, current, n)
                })
                .min()
                .expect("a finite BFS distance always has a downhill neighbor");
            path.push(downhill);
            current = downhill;
        }
        let detour_hops = path.len() as u64 - network.hops(from, to);
        RouteOutcome::Delivered { path, detour_hops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::faults::FaultPlan;
    use topology::{Grid, Shape};

    fn network(torus: bool, radices: &[u32]) -> Network {
        let shape = Shape::new(radices.to_vec()).unwrap();
        Network::new(if torus {
            Grid::torus(shape)
        } else {
            Grid::mesh(shape)
        })
    }

    fn assert_walk(network: &Network, mask: &FaultMask, from: u64, to: u64, path: &[u64]) {
        let mut current = from;
        for &next in path {
            assert!(network.grid().adjacent(current, next).unwrap());
            assert!(
                step_up(network, mask, current, next),
                "{current} → {next} is masked"
            );
            current = next;
        }
        if from != to {
            assert_eq!(current, to);
        } else {
            assert!(path.is_empty());
        }
    }

    #[test]
    fn pristine_mask_reproduces_dimension_ordered_routes() {
        for net in [network(true, &[4, 2, 3]), network(false, &[4, 4])] {
            let mask = FaultMask::pristine(net.grid());
            let detour = DetourRouter::new(&net, &mask);
            for from in 0..net.size() {
                for to in 0..net.size() {
                    match detour.route(from, to) {
                        RouteOutcome::Delivered { path, detour_hops } => {
                            assert_eq!(path, net.route(from, to));
                            assert_eq!(detour_hops, 0);
                        }
                        other => panic!("pristine route {from}→{to} was {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn detour_routes_around_a_masked_link() {
        // 4×4 mesh: kill the link on the direct row path; the detour must
        // still deliver, strictly longer than the pristine distance.
        let net = network(false, &[4, 4]);
        let grid = net.grid();
        let path = net.route(0, 3);
        let slot = link_slot_between(grid, 0, path[0]);
        let mask = FaultPlan::none().fail_link(slot).mask_at(grid, 0);
        let detour = DetourRouter::new(&net, &mask);
        match detour.route(0, 3) {
            RouteOutcome::Delivered { path, detour_hops } => {
                assert_walk(&net, &mask, 0, 3, &path);
                assert!(detour_hops >= 2, "detour_hops = {detour_hops}");
                assert_eq!(path.len() as u64, net.hops(0, 3) + detour_hops);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn severed_networks_report_unreachable_not_panic() {
        // Cut every link crossing the row boundary of a 2×4 mesh: the two
        // rows become separate components.
        let net = network(false, &[2, 4]);
        let grid = net.grid();
        let mut plan = FaultPlan::none();
        for (a, b) in grid.edges() {
            let (ca, cb) = (grid.coord(a).unwrap(), grid.coord(b).unwrap());
            if ca.get(0) != cb.get(0) {
                plan = plan.fail_link(link_slot_between(grid, a, b));
            }
        }
        let mask = plan.mask_at(grid, 0);
        let detour = DetourRouter::new(&net, &mask);
        let mut table = TableRouter::new(&net, &mask);
        assert_eq!(
            detour.route(0, 4),
            RouteOutcome::Unreachable { from: 0, to: 4 }
        );
        assert_eq!(
            table.route(0, 4),
            RouteOutcome::Unreachable { from: 0, to: 4 }
        );
        assert_eq!(table.hops(0, 4), None);
        // Within a component both routers still deliver.
        assert!(detour.route(0, 3).is_delivered());
        assert!(table.route(4, 7).is_delivered());
    }

    #[test]
    fn down_endpoints_are_unreachable() {
        let net = network(true, &[3, 3]);
        let mask = FaultPlan::none().fail_node(4).mask_at(net.grid(), 0);
        let detour = DetourRouter::new(&net, &mask);
        let mut table = TableRouter::new(&net, &mask);
        assert!(!detour.route(4, 0).is_delivered());
        assert!(!detour.route(0, 4).is_delivered());
        assert!(!table.route(4, 0).is_delivered());
        assert!(!table.route(0, 4).is_delivered());
        // Traffic not involving the dead node routes around it.
        match detour.route(3, 5) {
            RouteOutcome::Delivered { path, .. } => {
                assert!(!path.contains(&4));
                assert_walk(&net, &mask, 3, 5, &path);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn table_router_paths_are_shortest_masked_paths() {
        let net = network(true, &[4, 4]);
        let plan = FaultPlan::random_links(net.grid(), 6, 17);
        let mask = plan.mask_at(net.grid(), 0);
        let mut table = TableRouter::new(&net, &mask);
        for from in 0..net.size() {
            for to in 0..net.size() {
                let expected = masked_distances_to(&net, &mask, to)[from as usize];
                match table.route(from, to) {
                    RouteOutcome::Delivered { path, .. } => {
                        assert_eq!(path.len() as u64, expected);
                        assert_walk(&net, &mask, from, to, &path);
                    }
                    RouteOutcome::Unreachable { .. } => assert_eq!(expected, u64::MAX),
                }
            }
        }
    }
}
