//! Faulted end-to-end simulation: a [`FaultPlan`] applied to the synchronous
//! store-and-forward simulator.
//!
//! [`simulate_chaos`] is the degraded counterpart of
//! [`crate::sim::simulate`]: the same one-message-per-pair-per-round
//! injection and the same one-message-per-directed-link arbitration, but
//! each round's messages are routed under the fault mask in effect at that
//! round ([`FaultPlan::mask_at`]). Messages whose destination is unreachable
//! are counted as dropped instead of panicking; delivered messages record
//! how far the detour took them beyond the pristine shortest path.
//!
//! Routes are fixed at injection time (store-and-forward with source
//! routing): a failure scheduled for round `r` affects the routes of rounds
//! `≥ r`, not messages already in flight. An empty plan therefore reproduces
//! the pristine simulator's statistics bit for bit.

use crate::chaos::faults::FaultPlan;
use crate::chaos::reroute::{DetourRouter, RouteOutcome, TableRouter};
use crate::network::Network;
use crate::sim::{Placement, SimStats};
use crate::traffic::Workload;

/// Which fault-aware router a chaos scenario uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosRouting {
    /// The online DOR-with-detour router ([`DetourRouter`]).
    Detour,
    /// The offline BFS ground-truth router ([`TableRouter`]).
    BfsTable,
}

impl ChaosRouting {
    /// A short human-readable name, used in report and benchmark labels.
    pub fn name(self) -> &'static str {
        match self {
            ChaosRouting::Detour => "detour",
            ChaosRouting::BfsTable => "bfs-table",
        }
    }
}

/// Runs `rounds` rounds of `workload` under `plan`, routing with `routing`.
/// See the module docs for the exact semantics; the returned [`SimStats`]
/// satisfies `delivered + dropped == messages`.
///
/// # Panics
///
/// Panics if the workload has more tasks than the placement, the placement
/// references nodes outside the network, or the plan references links or
/// nodes the network does not have.
pub fn simulate_chaos(
    network: &Network,
    workload: &Workload,
    placement: &Placement,
    rounds: usize,
    plan: &FaultPlan,
    routing: ChaosRouting,
) -> SimStats {
    let per_round: Vec<&Workload> = (0..rounds).map(|_| workload).collect();
    simulate_chaos_schedule(network, &per_round, placement, plan, routing)
}

/// The per-round-schedule form of [`simulate_chaos`], for workloads that
/// change from round to round (such as [`crate::traffic::bursty_schedule`]):
/// round `r` injects the pairs of `schedule[r]`.
///
/// # Panics
///
/// Panics under the same conditions as [`simulate_chaos`].
pub fn simulate_chaos_schedule(
    network: &Network,
    schedule: &[&Workload],
    placement: &Placement,
    plan: &FaultPlan,
    routing: ChaosRouting,
) -> SimStats {
    for workload in schedule {
        assert!(
            workload.tasks() <= placement.tasks(),
            "workload has more tasks than the placement"
        );
    }
    assert!(
        (0..placement.tasks()).all(|t| placement.node_of(t) < network.size()),
        "placement references nodes outside the network"
    );
    plan.validate(network.grid())
        .expect("fault plan must reference links and nodes of this network");

    struct Message {
        start: usize,
        len: usize,
        position: usize,
        current: u64,
    }

    let grid = network.grid();
    let mut hops: Vec<u64> = Vec::new();
    let mut messages: Vec<Message> = Vec::new();
    let mut dropped = 0u64;
    let mut detour_hops = 0u64;

    // Rounds are processed in epochs between scheduled failures, so the
    // mask — and any routing state derived from it (the BFS table cache) —
    // is rebuilt only when an event actually fires.
    let rounds = schedule.len() as u64;
    let mut round = 0u64;
    while round < rounds {
        let mut epoch_end = round + 1;
        while epoch_end < rounds && !plan.changes_at(epoch_end) {
            epoch_end += 1;
        }
        let mask = plan.mask_at(grid, round);
        let detour = DetourRouter::new(network, &mask);
        let mut table = TableRouter::new(network, &mask);
        for r in round..epoch_end {
            for &(src_task, dst_task) in schedule[r as usize].pairs() {
                let src = placement.node_of(src_task);
                let dst = placement.node_of(dst_task);
                let outcome = match routing {
                    ChaosRouting::Detour => detour.route(src, dst),
                    ChaosRouting::BfsTable => table.route(src, dst),
                };
                match outcome {
                    RouteOutcome::Delivered {
                        path,
                        detour_hops: d,
                    } => {
                        let start = hops.len();
                        hops.extend_from_slice(&path);
                        detour_hops += d;
                        messages.push(Message {
                            start,
                            len: path.len(),
                            position: 0,
                            current: src,
                        });
                    }
                    RouteOutcome::Unreachable { .. } => dropped += 1,
                }
            }
        }
        round = epoch_end;
    }

    let delivered = messages.len() as u64;
    let total_hops: u64 = messages.iter().map(|m| m.len as u64).sum();
    let max_hops: u64 = messages.iter().map(|m| m.len as u64).max().unwrap_or(0);

    // The same cycle loop as the pristine simulator: one message per
    // directed link per cycle, claimed in message (FIFO) order.
    let mut cycles = 0u64;
    let mut remaining: usize = messages.iter().filter(|m| m.position < m.len).count();
    let mut claimed: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
    while remaining > 0 {
        cycles += 1;
        claimed.clear();
        for message in &mut messages {
            if message.position >= message.len {
                continue;
            }
            let next = hops[message.start + message.position];
            let link = (message.current, next);
            if claimed.insert(link) {
                message.current = next;
                message.position += 1;
                if message.position == message.len {
                    remaining -= 1;
                }
            }
        }
    }

    SimStats {
        messages: delivered + dropped,
        delivered,
        dropped,
        total_hops,
        max_hops,
        detour_hops,
        cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::faults::link_slot_between;
    use crate::sim::simulate;
    use topology::{Grid, Shape};

    fn network(torus: bool, radices: &[u32]) -> Network {
        let shape = Shape::new(radices.to_vec()).unwrap();
        Network::new(if torus {
            Grid::torus(shape)
        } else {
            Grid::mesh(shape)
        })
    }

    #[test]
    fn an_empty_plan_reproduces_the_pristine_simulator() {
        let net = network(true, &[4, 4]);
        let workload = Workload::uniform_random(16, 48, 7);
        let placement = Placement::identity(16);
        let pristine = simulate(&net, &workload, &placement, 3);
        for routing in [ChaosRouting::Detour, ChaosRouting::BfsTable] {
            let chaos = simulate_chaos(&net, &workload, &placement, 3, &FaultPlan::none(), routing);
            if routing == ChaosRouting::Detour {
                // The detour router follows the exact DOR arcs, so every
                // counter — including the congestion-sensitive makespan —
                // matches bit for bit.
                assert_eq!(chaos, pristine, "{}", routing.name());
            } else {
                // BFS paths are shortest but may pick different arcs, so
                // only the distance statistics are pinned.
                assert_eq!(chaos.messages, pristine.messages);
                assert_eq!(chaos.delivered, pristine.delivered);
                assert_eq!(chaos.total_hops, pristine.total_hops);
                assert_eq!(chaos.max_hops, pristine.max_hops);
            }
            assert_eq!(chaos.dropped, 0);
            assert_eq!(chaos.detour_hops, 0);
            assert!((chaos.delivered_fraction() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn faulted_runs_conserve_messages() {
        let net = network(false, &[4, 4]);
        let workload = Workload::uniform_random(16, 64, 11);
        let placement = Placement::identity(16);
        for percent in [5, 10, 25] {
            for routing in [ChaosRouting::Detour, ChaosRouting::BfsTable] {
                let plan = FaultPlan::random_link_percent(net.grid(), percent, 1987);
                let stats = simulate_chaos(&net, &workload, &placement, 2, &plan, routing);
                assert_eq!(stats.delivered + stats.dropped, stats.messages);
                assert_eq!(stats.messages, 128);
                assert!(stats.cycles >= stats.max_hops);
            }
        }
    }

    #[test]
    fn scheduled_failures_only_affect_later_rounds() {
        // A 1×8 ring: failing the link 3–4 at round 1 leaves round 0
        // pristine and forces later 3→4 traffic the long way around.
        let net = network(true, &[8]);
        let slot = link_slot_between(net.grid(), 3, 4);
        let workload = Workload::try_new(8, vec![(3, 4)]).unwrap();
        let placement = Placement::identity(8);
        let plan = FaultPlan::none().fail_at(1, slot);

        let one = simulate_chaos(&net, &workload, &placement, 1, &plan, ChaosRouting::Detour);
        assert_eq!((one.delivered, one.total_hops, one.detour_hops), (1, 1, 0));

        let two = simulate_chaos(&net, &workload, &placement, 2, &plan, ChaosRouting::Detour);
        assert_eq!(two.delivered, 2);
        // Round 0 takes the direct hop; round 1 detours the other way
        // around the ring (7 hops).
        assert_eq!(two.total_hops, 1 + 7);
        assert_eq!(two.detour_hops, 6);
    }

    #[test]
    fn node_failures_drop_traffic_addressed_to_them() {
        let net = network(true, &[3, 3]);
        let workload = Workload::try_new(9, vec![(0, 4), (4, 8), (0, 8)]).unwrap();
        let placement = Placement::identity(9);
        let plan = FaultPlan::none().fail_node(4);
        let stats = simulate_chaos(&net, &workload, &placement, 1, &plan, ChaosRouting::Detour);
        assert_eq!(stats.dropped, 2, "both pairs touching node 4 are dropped");
        assert_eq!(stats.delivered, 1);
        assert!(stats.delivered_fraction() < 0.4);
    }

    #[test]
    fn bursty_schedules_flow_through_the_schedule_form() {
        let net = network(true, &[4, 4]);
        let base = Workload::uniform_random(16, 32, 3);
        let schedule = crate::traffic::bursty_schedule(&base, 6, 2, 2, 5);
        let refs: Vec<&Workload> = schedule.iter().collect();
        let injected: u64 = schedule.iter().map(|w| w.pairs().len() as u64).sum();
        let placement = Placement::identity(16);
        let plan = FaultPlan::random_link_percent(net.grid(), 5, 13);
        let stats = simulate_chaos_schedule(&net, &refs, &placement, &plan, ChaosRouting::Detour);
        assert_eq!(stats.messages, injected);
        assert_eq!(stats.delivered + stats.dropped, injected);
    }

    #[test]
    #[should_panic(expected = "fault plan must reference")]
    fn foreign_plans_are_rejected() {
        let net = network(false, &[2, 2]);
        let plan = FaultPlan::none().fail_node(99);
        let workload = Workload::uniform_random(4, 4, 1);
        let _ = simulate_chaos(
            &net,
            &workload,
            &Placement::identity(4),
            1,
            &plan,
            ChaosRouting::Detour,
        );
    }
}
