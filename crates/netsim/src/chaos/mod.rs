//! Fault injection, degraded routing, and faulted end-to-end simulation.
//!
//! The paper's dilation and congestion bounds hold on *pristine* toruses and
//! meshes; this subsystem measures what happens to them when the network
//! degrades. It is built around one invariant: **faults are an overlay, not
//! a new graph**. A [`FaultPlan`] expands to a [`FaultMask`] — two flat
//! boolean vectors indexed by [`topology::Grid::link_index`] slot and node
//! index — and every degraded code path consults that mask while the
//! pristine [`crate::Network`] (its adjacency, distances, and DOR rule)
//! stays untouched. That keeps fault application O(faults), keeps pristine
//! and degraded results comparable on the same structures, and makes "no
//! faults" bit-identical to the pristine simulator.
//!
//! The pieces:
//!
//! * [`faults`] — [`FaultPlan`] (seeded, serializable, scheduled failures)
//!   and the [`FaultMask`] overlay;
//! * [`reroute`] — the online [`DetourRouter`] (DOR with greedy misroute and
//!   a BFS escape) and the offline [`TableRouter`] ground truth, both
//!   returning [`RouteOutcome`] instead of panicking;
//! * [`scenario`] — [`simulate_chaos`], the faulted counterpart of
//!   [`crate::simulate`], reporting delivered/dropped/detour counters in
//!   [`crate::SimStats`];
//! * the adversarial traffic generators live in [`crate::traffic`]
//!   ([`crate::traffic::zipf_hotspot`], [`crate::traffic::bursty_schedule`],
//!   [`crate::traffic::multi_tenant`]).
//!
//! # Example
//!
//! ```
//! use netsim::chaos::{simulate_chaos, ChaosRouting, FaultPlan};
//! use netsim::{Network, Placement, Workload};
//! use topology::{Grid, Shape};
//!
//! let network = Network::new(Grid::torus(Shape::new(vec![4, 4]).unwrap()));
//! let workload = Workload::uniform_random(16, 64, 7);
//! let plan = FaultPlan::random_link_percent(network.grid(), 10, 1987);
//! let stats = simulate_chaos(
//!     &network,
//!     &workload,
//!     &Placement::identity(16),
//!     2,
//!     &plan,
//!     ChaosRouting::Detour,
//! );
//! // Typed outcomes: every message is accounted for, none panics.
//! assert_eq!(stats.delivered + stats.dropped, stats.messages);
//! ```

pub mod faults;
pub mod reroute;
pub mod scenario;

pub use faults::{
    link_slot_between, live_link_slots, FailAt, FaultError, FaultMask, FaultParseError, FaultPlan,
};
pub use reroute::{masked_distances_to, DetourRouter, RouteOutcome, TableRouter};
pub use scenario::{simulate_chaos, simulate_chaos_schedule, ChaosRouting};
