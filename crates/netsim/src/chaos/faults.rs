//! Fault plans and fault masks: which links and nodes are down, and when.
//!
//! A [`FaultPlan`] is a *value*: a seeded, serializable description of the
//! failures a scenario injects — base sets of failed links and nodes plus
//! time-scheduled [`FailAt`] events. It is applied to a network as a cheap
//! [`FaultMask`] overlay (two flat boolean vectors indexed by
//! [`Grid::link_index`] slot and node index); the underlying graph is never
//! rebuilt, so the pristine topology, its routing tables, and its distance
//! arithmetic all stay valid and the mask is the *single* place degraded
//! state lives.
//!
//! Links are identified by the dense undirected link slots of
//! [`Grid::link_index`] — the same slots the congestion model uses — so a
//! failed link blocks both directions at once, exactly like a severed cable.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use topology::Grid;

/// Why a fault plan was rejected for a particular grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// A failed link slot is outside `[0, link_count)` or names a slot that
    /// carries no link on this grid (mesh boundary or torus wrap alias).
    LinkOutOfRange {
        /// The offending link slot.
        link: u64,
        /// The grid's link-slot count.
        link_count: u64,
    },
    /// A failed node is outside `[0, size)`.
    NodeOutOfRange {
        /// The offending node.
        node: u64,
        /// The grid's node count.
        nodes: u64,
    },
}

impl core::fmt::Display for FaultError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultError::LinkOutOfRange { link, link_count } => {
                write!(
                    f,
                    "link slot {link} is not a live link (slots: 0..{link_count})"
                )
            }
            FaultError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} outside the {nodes}-node grid")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Why a serialized fault plan failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultParseError {
    /// The 1-based line of the offending text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FaultParseError {}

/// A time-scheduled failure: `link` goes down at the start of `round` and
/// stays down for the rest of the scenario (failures accumulate; repair is a
/// different scenario, not an event).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FailAt {
    /// The first simulated round in which the link is down.
    pub round: u64,
    /// The failed link slot (see [`Grid::link_index`]).
    pub link: u64,
}

/// A seeded, serializable set of failures: links and nodes down from round 0
/// plus scheduled [`FailAt`] events. Plans are plain values — build them with
/// the seeded samplers or the builder methods, ship them as text with
/// [`FaultPlan::to_text`], and apply them to a grid with
/// [`FaultPlan::mask_at`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    failed_links: Vec<u64>,
    failed_nodes: Vec<u64>,
    events: Vec<FailAt>,
}

/// The link slots that actually carry a link on `grid`: every `(tail, dim)`
/// pair whose forward step exists and is the link's canonical tail. Mesh
/// boundaries have no forward link; on a radix-2 torus ring the two
/// directions collapse onto one doubly-covered link whose canonical tail is
/// the digit-0 endpoint.
pub fn live_link_slots(grid: &Grid) -> Vec<u64> {
    let mut slots = Vec::new();
    for node in grid.nodes() {
        let coord = grid.coord(node).expect("node indices are in range");
        for dim in 0..grid.dim() {
            let l = grid.shape().radix(dim);
            let digit = coord.get(dim);
            let live = if grid.is_torus() {
                l > 2 || (l == 2 && digit == 0)
            } else {
                digit + 1 < l
            };
            if live {
                slots.push(grid.link_index(node, dim));
            }
        }
    }
    slots
}

impl FaultPlan {
    /// The empty plan: nothing fails.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            failed_links: Vec::new(),
            failed_nodes: Vec::new(),
            events: Vec::new(),
        }
    }

    /// A plan failing `count` distinct live links of `grid`, chosen by a
    /// seeded shuffle of the live link slots (so the same seed always fails
    /// the same links). `count` is clamped to the number of live links.
    pub fn random_links(grid: &Grid, count: u64, seed: u64) -> Self {
        let mut slots = live_link_slots(grid);
        let mut rng = StdRng::seed_from_u64(seed);
        slots.shuffle(&mut rng);
        slots.truncate(count.min(slots.len() as u64) as usize);
        slots.sort_unstable();
        FaultPlan {
            seed,
            failed_links: slots,
            failed_nodes: Vec::new(),
            events: Vec::new(),
        }
    }

    /// A plan failing approximately `percent`% of the live links of `grid`
    /// (integer rounding to nearest, at least one link when `percent > 0`).
    pub fn random_link_percent(grid: &Grid, percent: u32, seed: u64) -> Self {
        let live = live_link_slots(grid).len() as u64;
        let count = if percent == 0 {
            0
        } else {
            ((live * u64::from(percent) + 50) / 100).max(1)
        };
        Self::random_links(grid, count, seed)
    }

    /// A plan failing `count` distinct nodes of `grid`, chosen by a seeded
    /// shuffle. `count` is clamped to the node count.
    pub fn random_nodes(grid: &Grid, count: u64, seed: u64) -> Self {
        let mut nodes: Vec<u64> = grid.nodes().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        nodes.shuffle(&mut rng);
        nodes.truncate(count.min(nodes.len() as u64) as usize);
        nodes.sort_unstable();
        FaultPlan {
            seed,
            failed_nodes: nodes,
            failed_links: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Adds a link failure present from round 0.
    pub fn fail_link(mut self, link: u64) -> Self {
        if let Err(at) = self.failed_links.binary_search(&link) {
            self.failed_links.insert(at, link);
        }
        self
    }

    /// Adds a node failure present from round 0.
    pub fn fail_node(mut self, node: u64) -> Self {
        if let Err(at) = self.failed_nodes.binary_search(&node) {
            self.failed_nodes.insert(at, node);
        }
        self
    }

    /// Schedules `link` to fail at the start of `round`.
    pub fn fail_at(mut self, round: u64, link: u64) -> Self {
        let event = FailAt { round, link };
        if let Err(at) = self.events.binary_search(&event) {
            self.events.insert(at, event);
        }
        self
    }

    /// The seed the plan was sampled with (0 for hand-built plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The links down from round 0, as sorted link slots.
    pub fn failed_links(&self) -> &[u64] {
        &self.failed_links
    }

    /// The nodes down from round 0, sorted.
    pub fn failed_nodes(&self) -> &[u64] {
        &self.failed_nodes
    }

    /// The scheduled failures, sorted by round then link.
    pub fn events(&self) -> &[FailAt] {
        &self.events
    }

    /// Whether the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.failed_links.is_empty() && self.failed_nodes.is_empty() && self.events.is_empty()
    }

    /// Checks every referenced link slot and node against `grid`.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultError`] naming an out-of-range (or
    /// link-free) slot or node.
    pub fn validate(&self, grid: &Grid) -> Result<(), FaultError> {
        let live = live_link_slots(grid);
        let link_count = grid.link_count();
        for &link in self
            .failed_links
            .iter()
            .chain(self.events.iter().map(|e| &e.link))
        {
            if live.binary_search(&link).is_err() {
                return Err(FaultError::LinkOutOfRange { link, link_count });
            }
        }
        for &node in &self.failed_nodes {
            if node >= grid.size() {
                return Err(FaultError::NodeOutOfRange {
                    node,
                    nodes: grid.size(),
                });
            }
        }
        Ok(())
    }

    /// The overlay mask in effect at `round`: the base failures plus every
    /// event whose round has arrived. Failures accumulate, so
    /// `mask_at(g, r)` only ever shrinks the usable network as `r` grows.
    pub fn mask_at(&self, grid: &Grid, round: u64) -> FaultMask {
        let mut mask = FaultMask::pristine(grid);
        for &link in &self.failed_links {
            mask.fail_link(link);
        }
        for &node in &self.failed_nodes {
            mask.fail_node(node);
        }
        for event in &self.events {
            if event.round <= round {
                mask.fail_link(event.link);
            }
        }
        mask
    }

    /// Whether any scheduled event fires exactly at `round` — the rounds
    /// where a cached mask (and any routing state derived from it) must be
    /// rebuilt.
    pub fn changes_at(&self, round: u64) -> bool {
        self.events.iter().any(|e| e.round == round)
    }

    /// Serializes the plan as line-oriented text (`faultplan v1`), the
    /// inverse of [`FaultPlan::parse`].
    pub fn to_text(&self) -> String {
        let list = |values: &[u64]| {
            values
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::from("faultplan v1\n");
        out.push_str(&format!("seed = {}\n", self.seed));
        if !self.failed_links.is_empty() {
            out.push_str(&format!("links = {}\n", list(&self.failed_links)));
        }
        if !self.failed_nodes.is_empty() {
            out.push_str(&format!("nodes = {}\n", list(&self.failed_nodes)));
        }
        if !self.events.is_empty() {
            let events = self
                .events
                .iter()
                .map(|e| format!("{}@{}", e.round, e.link))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("events = {events}\n"));
        }
        out
    }

    /// Parses the `faultplan v1` text format produced by
    /// [`FaultPlan::to_text`]: a `faultplan v1` header, then `key = value`
    /// lines (`seed`, `links`, `nodes`, `events`), with `#` comments and
    /// blank lines ignored. Event lists use `round@link` entries.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultParseError`] naming the first offending line.
    pub fn parse(text: &str) -> Result<Self, FaultParseError> {
        let fail = |line: usize, message: String| Err(FaultParseError { line, message });
        let mut plan = FaultPlan::none();
        let mut saw_header = false;
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            if !saw_header {
                if content != "faultplan v1" {
                    return fail(line, format!("expected `faultplan v1`, got {content:?}"));
                }
                saw_header = true;
                continue;
            }
            let Some((key, value)) = content.split_once('=') else {
                return fail(line, format!("expected `key = value`, got {content:?}"));
            };
            let (key, value) = (key.trim(), value.trim());
            let numbers = |value: &str| -> Result<Vec<u64>, String> {
                value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse::<u64>().map_err(|_| format!("bad number {s:?}")))
                    .collect()
            };
            match key {
                "seed" => match value.parse() {
                    Ok(seed) => plan.seed = seed,
                    Err(_) => return fail(line, format!("bad seed {value:?}")),
                },
                "links" => match numbers(value) {
                    Ok(mut links) => {
                        links.sort_unstable();
                        links.dedup();
                        plan.failed_links = links;
                    }
                    Err(message) => return fail(line, message),
                },
                "nodes" => match numbers(value) {
                    Ok(mut nodes) => {
                        nodes.sort_unstable();
                        nodes.dedup();
                        plan.failed_nodes = nodes;
                    }
                    Err(message) => return fail(line, message),
                },
                "events" => {
                    let mut events = Vec::new();
                    for entry in value.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        let Some((round, link)) = entry.split_once('@') else {
                            return fail(line, format!("expected `round@link`, got {entry:?}"));
                        };
                        match (round.trim().parse(), link.trim().parse()) {
                            (Ok(round), Ok(link)) => events.push(FailAt { round, link }),
                            _ => return fail(line, format!("bad event {entry:?}")),
                        }
                    }
                    events.sort_unstable();
                    events.dedup();
                    plan.events = events;
                }
                other => return fail(line, format!("unknown key {other:?}")),
            }
        }
        if !saw_header {
            return fail(1, "empty fault plan".to_string());
        }
        Ok(plan)
    }
}

/// The overlay mask a [`FaultPlan`] expands to for one round: flat boolean
/// vectors over link slots and nodes. All degraded-routing code consults
/// *only* this mask; the pristine [`Grid`] underneath is untouched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultMask {
    link_down: Vec<bool>,
    node_down: Vec<bool>,
}

impl FaultMask {
    /// The all-up mask for `grid`.
    pub fn pristine(grid: &Grid) -> Self {
        FaultMask {
            link_down: vec![false; grid.link_count() as usize],
            node_down: vec![false; grid.size() as usize],
        }
    }

    /// Marks a link slot down (both directions).
    pub fn fail_link(&mut self, link: u64) {
        self.link_down[link as usize] = true;
    }

    /// Marks a node down.
    pub fn fail_node(&mut self, node: u64) {
        self.node_down[node as usize] = true;
    }

    /// Whether the link in `slot` is up.
    #[inline]
    pub fn link_up(&self, slot: u64) -> bool {
        !self.link_down[slot as usize]
    }

    /// Whether `node` is up.
    #[inline]
    pub fn node_up(&self, node: u64) -> bool {
        !self.node_down[node as usize]
    }

    /// Whether the mask marks nothing down (degraded routing can then take
    /// the pristine fast path).
    pub fn is_pristine(&self) -> bool {
        !self.link_down.iter().any(|&d| d) && !self.node_down.iter().any(|&d| d)
    }
}

/// The canonical link slot of the (undirected) link between adjacent nodes
/// `a` and `b`: the slot [`topology::routing::link_slot_of_hop`] would
/// assign to the hop `a → b` (or equivalently `b → a`). The canonical tail
/// is the endpoint whose *forward* step reaches the other; on a radix-2
/// torus ring both steps are forward and the digit-0 endpoint is the tail.
///
/// # Panics
///
/// Panics if `a` and `b` are not adjacent in `grid`.
pub fn link_slot_between(grid: &Grid, a: u64, b: u64) -> u64 {
    let ca = grid.coord(a).expect("node indices are in range");
    let cb = grid.coord(b).expect("node indices are in range");
    for dim in 0..grid.dim() {
        let (da, db) = (ca.get(dim), cb.get(dim));
        if da == db {
            continue;
        }
        let l = grid.shape().radix(dim);
        let forward = if grid.is_torus() {
            (da + 1) % l == db
        } else {
            da + 1 == db
        };
        let wrapped = forward && da + 1 == l;
        let tail = if forward && !(wrapped && l == 2) {
            a
        } else {
            b
        };
        return grid.link_index(tail, dim);
    }
    panic!("nodes {a} and {b} are not adjacent");
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::Shape;

    fn torus(radices: &[u32]) -> Grid {
        Grid::torus(Shape::new(radices.to_vec()).unwrap())
    }

    fn mesh(radices: &[u32]) -> Grid {
        Grid::mesh(Shape::new(radices.to_vec()).unwrap())
    }

    #[test]
    fn live_link_slots_count_the_edges() {
        for grid in [
            torus(&[4, 4]),
            torus(&[2, 3]),
            torus(&[2, 2, 2]),
            mesh(&[4, 4]),
            mesh(&[3, 2, 5]),
        ] {
            assert_eq!(
                live_link_slots(&grid).len() as u64,
                grid.num_edges(),
                "live slots must be exactly the undirected edges of {grid}"
            );
        }
    }

    #[test]
    fn link_slot_between_matches_the_routing_slots() {
        // Every edge, taken in both directions, must land on the same slot,
        // and distinct edges on distinct slots.
        for grid in [
            torus(&[4, 4]),
            torus(&[2, 3]),
            mesh(&[3, 4]),
            torus(&[2, 2]),
        ] {
            let mut seen = std::collections::HashSet::new();
            for (a, b) in grid.edges() {
                let slot = link_slot_between(&grid, a, b);
                assert_eq!(slot, link_slot_between(&grid, b, a));
                assert!(seen.insert(slot), "slot {slot} reused in {grid}");
            }
            let live = live_link_slots(&grid);
            assert_eq!(seen.len(), live.len());
            assert!(live.iter().all(|s| seen.contains(s)));
        }
    }

    #[test]
    fn random_links_are_seeded_distinct_and_clamped() {
        let grid = torus(&[4, 4]);
        let a = FaultPlan::random_links(&grid, 5, 7);
        let b = FaultPlan::random_links(&grid, 5, 7);
        let c = FaultPlan::random_links(&grid, 5, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.failed_links().len(), 5);
        assert!(a.validate(&grid).is_ok());
        let all = FaultPlan::random_links(&grid, 10_000, 7);
        assert_eq!(all.failed_links().len() as u64, grid.num_edges());

        let one = FaultPlan::random_link_percent(&grid, 1, 7);
        assert_eq!(one.failed_links().len(), 1, "1% of 32 links rounds up to 1");
        let zero = FaultPlan::random_link_percent(&grid, 0, 7);
        assert!(zero.failed_links().is_empty());
    }

    #[test]
    fn masks_accumulate_scheduled_events() {
        let grid = torus(&[4, 4]);
        let plan = FaultPlan::none().fail_link(3).fail_at(2, 7).fail_at(5, 9);
        let m0 = plan.mask_at(&grid, 0);
        assert!(!m0.link_up(3) && m0.link_up(7) && m0.link_up(9));
        let m2 = plan.mask_at(&grid, 2);
        assert!(!m2.link_up(3) && !m2.link_up(7) && m2.link_up(9));
        let m9 = plan.mask_at(&grid, 9);
        assert!(!m9.link_up(3) && !m9.link_up(7) && !m9.link_up(9));
        assert!(plan.changes_at(2) && plan.changes_at(5));
        assert!(!plan.changes_at(3));
    }

    #[test]
    fn text_round_trips() {
        let grid = mesh(&[4, 4]);
        let plan = FaultPlan::random_links(&grid, 4, 42)
            .fail_node(5)
            .fail_at(3, 1)
            .fail_at(1, 2);
        let text = plan.to_text();
        assert_eq!(FaultPlan::parse(&text).unwrap(), plan);

        let empty = FaultPlan::none();
        assert!(empty.is_empty());
        assert_eq!(FaultPlan::parse(&empty.to_text()).unwrap(), empty);
    }

    #[test]
    fn parse_rejects_malformed_text() {
        for (text, line) in [
            ("", 1),
            ("plan v1", 1),
            ("faultplan v1\nlinks 3", 2),
            ("faultplan v1\nseed = x", 2),
            ("faultplan v1\nevents = 3", 2),
            ("faultplan v1\nbogus = 1", 2),
        ] {
            let error = FaultPlan::parse(text).unwrap_err();
            assert_eq!(error.line, line, "for {text:?}: {error}");
        }
        // Comments and blank lines are ignored.
        let ok = FaultPlan::parse("# preamble\n\nfaultplan v1\nseed = 3 # trailing\n").unwrap();
        assert_eq!(ok.seed(), 3);
    }

    #[test]
    fn validate_rejects_foreign_slots() {
        let grid = mesh(&[2, 2]);
        // Slot 3 = link_index(1, 1): node 1 = (0,1) has no forward link in
        // dim 1 on a 2×2 mesh, so the slot is dead even though it is < 8.
        let dead = FaultPlan::none().fail_link(3);
        assert!(matches!(
            dead.validate(&grid),
            Err(FaultError::LinkOutOfRange { link: 3, .. })
        ));
        let node = FaultPlan::none().fail_node(9);
        assert!(matches!(
            node.validate(&grid),
            Err(FaultError::NodeOutOfRange { node: 9, nodes: 4 })
        ));
        let error = dead.validate(&grid).unwrap_err().to_string();
        assert!(error.contains("slot 3"));
    }
}
