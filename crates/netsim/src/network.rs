//! A torus/mesh interconnection network with dimension-ordered routing.

use topology::csr::CsrAdjacency;
use topology::{Coord, Grid};

/// A network instance: a torus or mesh topology plus the routing metadata the
/// simulator needs (materialized adjacency and per-node coordinates).
#[derive(Clone, Debug)]
pub struct Network {
    grid: Grid,
    adjacency: CsrAdjacency,
}

impl Network {
    /// Builds a network over the given topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology is too large to materialize (more than
    /// `u32::MAX` nodes); the simulator is meant for networks that fit in
    /// memory.
    pub fn new(grid: Grid) -> Self {
        let adjacency = CsrAdjacency::build(&grid).expect("network fits in memory");
        Network { grid, adjacency }
    }

    /// The underlying topology.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The number of nodes.
    pub fn size(&self) -> u64 {
        self.grid.size()
    }

    /// The materialized adjacency.
    pub fn adjacency(&self) -> &CsrAdjacency {
        &self.adjacency
    }

    /// The next hop from `from` toward `to` under dimension-ordered routing:
    /// correct the lowest-index dimension whose coordinate differs, moving in
    /// the shorter direction (with wrap-around only on toruses).
    ///
    /// Returns `None` if `from == to`.
    pub fn next_hop(&self, from: u64, to: u64) -> Option<u64> {
        if from == to {
            return None;
        }
        let a: Coord = self.grid.coord(from).expect("node in range");
        let b: Coord = self.grid.coord(to).expect("node in range");
        for j in 0..self.grid.dim() {
            let (x, y) = (a.get(j), b.get(j));
            if x == y {
                continue;
            }
            let l = self.grid.shape().radix(j);
            let step: i64 = if self.grid.is_torus() {
                // Move in the direction of the shorter arc.
                let forward = (y as i64 - x as i64).rem_euclid(l as i64);
                let backward = (x as i64 - y as i64).rem_euclid(l as i64);
                if forward <= backward {
                    1
                } else {
                    -1
                }
            } else if y > x {
                1
            } else {
                -1
            };
            let next_digit = (x as i64 + step).rem_euclid(l as i64) as u32;
            let mut next = a;
            next.set(j, next_digit);
            return Some(self.grid.index(&next).expect("valid coordinate"));
        }
        None
    }

    /// The full dimension-ordered route from `from` to `to`, excluding the
    /// source and including the destination.
    pub fn route(&self, from: u64, to: u64) -> Vec<u64> {
        let mut path = Vec::new();
        let mut current = from;
        while let Some(next) = self.next_hop(current, to) {
            path.push(next);
            current = next;
        }
        path
    }

    /// The number of hops of the dimension-ordered route — equal to the
    /// shortest-path distance for toruses and meshes.
    pub fn hops(&self, from: u64, to: u64) -> u64 {
        self.grid.distance_index(from, to).expect("nodes in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::Shape;

    fn network(kind_torus: bool, radices: &[u32]) -> Network {
        let shape = Shape::new(radices.to_vec()).unwrap();
        Network::new(if kind_torus {
            Grid::torus(shape)
        } else {
            Grid::mesh(shape)
        })
    }

    #[test]
    fn routes_have_shortest_length() {
        for net in [
            network(true, &[4, 2, 3]),
            network(false, &[4, 2, 3]),
            network(true, &[5, 5]),
            network(false, &[3, 3, 3]),
        ] {
            for from in 0..net.size() {
                for to in 0..net.size() {
                    let route = net.route(from, to);
                    assert_eq!(
                        route.len() as u64,
                        net.hops(from, to),
                        "route length from {from} to {to} in {}",
                        net.grid()
                    );
                    // Every step moves between adjacent nodes.
                    let mut previous = from;
                    for &step in &route {
                        assert!(net.grid().adjacent(previous, step).unwrap());
                        previous = step;
                    }
                    if from != to {
                        assert_eq!(*route.last().unwrap(), to);
                    } else {
                        assert!(route.is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn torus_routes_use_wraparound() {
        let net = network(true, &[8]);
        // From 0 to 7 the shorter arc goes backwards through the wrap edge.
        assert_eq!(net.route(0, 7), vec![7]);
        assert_eq!(net.route(0, 6), vec![7, 6]);
    }

    #[test]
    fn mesh_routes_never_wrap() {
        let net = network(false, &[8]);
        assert_eq!(net.route(0, 7).len(), 7);
    }

    #[test]
    fn next_hop_of_identical_nodes_is_none() {
        let net = network(true, &[3, 3]);
        assert_eq!(net.next_hop(4, 4), None);
    }
}
