//! A torus/mesh interconnection network with dimension-ordered routing.
//!
//! The next-hop rule itself lives in [`topology::routing`] and is shared
//! with the congestion model in the `embeddings` crate, so the simulator and
//! the analytical model can never disagree about which arc a route takes.

use topology::csr::CsrAdjacency;
use topology::routing::{for_each_hop, next_hop_toward};
use topology::{Coord, Grid};

/// A network instance: a torus or mesh topology plus the routing metadata the
/// simulator needs (materialized adjacency and per-node coordinates).
#[derive(Clone, Debug)]
pub struct Network {
    grid: Grid,
    adjacency: CsrAdjacency,
    forward_dims: Vec<usize>,
}

impl Network {
    /// Builds a network over the given topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology is too large to materialize (more than
    /// `u32::MAX` nodes); the simulator is meant for networks that fit in
    /// memory.
    pub fn new(grid: Grid) -> Self {
        let adjacency = CsrAdjacency::build(&grid).expect("network fits in memory");
        let forward_dims = (0..grid.dim()).collect();
        Network {
            grid,
            adjacency,
            forward_dims,
        }
    }

    /// The underlying topology.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The number of nodes.
    pub fn size(&self) -> u64 {
        self.grid.size()
    }

    /// The materialized adjacency.
    pub fn adjacency(&self) -> &CsrAdjacency {
        &self.adjacency
    }

    /// The next hop from `from` toward `to` under dimension-ordered routing:
    /// correct the lowest-index dimension whose coordinate differs, moving in
    /// the shorter direction (with wrap-around only on toruses, equidistant
    /// arcs forward) — the shared rule of [`topology::routing`].
    ///
    /// Returns `None` if `from == to`.
    pub fn next_hop(&self, from: u64, to: u64) -> Option<u64> {
        let a: Coord = self.grid.coord(from).expect("node in range");
        let b: Coord = self.grid.coord(to).expect("node in range");
        let next = next_hop_toward(&self.grid, &a, &b, &self.forward_dims)?;
        Some(self.grid.index(&next).expect("valid coordinate"))
    }

    /// The full dimension-ordered route from `from` to `to`, excluding the
    /// source and including the destination.
    pub fn route(&self, from: u64, to: u64) -> Vec<u64> {
        let mut path = Vec::new();
        self.route_into(from, to, &mut path);
        path
    }

    /// Appends the dimension-ordered route from `from` to `to` (excluding
    /// the source, including the destination) to `out`.
    ///
    /// This is the batched form of [`Network::route`]: the route expansion
    /// advances a coordinate and its index in place, so expanding millions
    /// of routes into reused (or shared, flat) hop buffers never touches the
    /// allocator beyond the buffer's own growth.
    pub fn route_into(&self, from: u64, to: u64, out: &mut Vec<u64>) {
        self.route_ordered_into(from, to, &self.forward_dims, out);
    }

    /// The one route-expansion loop shared by [`Network::route_into`] and
    /// the `Router` variants: appends the hops from `from` to `to`
    /// correcting dimensions in the order given by `dims`.
    pub(crate) fn route_ordered_into(
        &self,
        from: u64,
        to: u64,
        dims: &[usize],
        out: &mut Vec<u64>,
    ) {
        let current = self.grid.coord(from).expect("node in range");
        let target = self.grid.coord(to).expect("node in range");
        for_each_hop(&self.grid, &current, from, &target, dims, |_, _, after| {
            out.push(after);
        });
    }

    /// The number of hops of the dimension-ordered route — equal to the
    /// shortest-path distance for toruses and meshes.
    pub fn hops(&self, from: u64, to: u64) -> u64 {
        self.grid.distance_index(from, to).expect("nodes in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::Shape;

    fn network(kind_torus: bool, radices: &[u32]) -> Network {
        let shape = Shape::new(radices.to_vec()).unwrap();
        Network::new(if kind_torus {
            Grid::torus(shape)
        } else {
            Grid::mesh(shape)
        })
    }

    #[test]
    fn routes_have_shortest_length() {
        for net in [
            network(true, &[4, 2, 3]),
            network(false, &[4, 2, 3]),
            network(true, &[5, 5]),
            network(false, &[3, 3, 3]),
        ] {
            for from in 0..net.size() {
                for to in 0..net.size() {
                    let route = net.route(from, to);
                    assert_eq!(
                        route.len() as u64,
                        net.hops(from, to),
                        "route length from {from} to {to} in {}",
                        net.grid()
                    );
                    // Every step moves between adjacent nodes.
                    let mut previous = from;
                    for &step in &route {
                        assert!(net.grid().adjacent(previous, step).unwrap());
                        previous = step;
                    }
                    if from != to {
                        assert_eq!(*route.last().unwrap(), to);
                    } else {
                        assert!(route.is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn torus_routes_use_wraparound() {
        let net = network(true, &[8]);
        // From 0 to 7 the shorter arc goes backwards through the wrap edge.
        assert_eq!(net.route(0, 7), vec![7]);
        assert_eq!(net.route(0, 6), vec![7, 6]);
    }

    #[test]
    fn mesh_routes_never_wrap() {
        let net = network(false, &[8]);
        assert_eq!(net.route(0, 7).len(), 7);
    }

    #[test]
    fn next_hop_of_identical_nodes_is_none() {
        let net = network(true, &[3, 3]);
        assert_eq!(net.next_hop(4, 4), None);
    }

    #[test]
    fn route_into_appends_to_a_reused_buffer() {
        let net = network(true, &[4, 2, 3]);
        let mut buffer = Vec::new();
        for from in 0..net.size() {
            for to in 0..net.size() {
                let start = buffer.len();
                net.route_into(from, to, &mut buffer);
                assert_eq!(&buffer[start..], net.route(from, to).as_slice());
            }
        }
    }

    #[test]
    fn equidistant_arcs_route_forward() {
        // Even radix: node 0 to its antipode 2 on a 4-ring has two length-2
        // arcs; the shared tie-break must take the forward one through 1.
        let net = network(true, &[4]);
        assert_eq!(net.next_hop(0, 2), Some(1));
        assert_eq!(net.route(0, 2), vec![1, 2]);
    }
}
