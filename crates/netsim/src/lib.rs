//! A small synchronous store-and-forward routing simulator over torus and
//! mesh networks.
//!
//! The paper motivates graph embeddings as a way to match the communication
//! pattern of a parallel task graph to the interconnection network of a
//! machine. This crate closes that loop for the examples and benchmarks of
//! the repository: given a task graph, a network, and a placement (usually an
//! embedding produced by the `embeddings` crate), it measures how many hops
//! and cycles the neighbor-exchange traffic actually takes — so the effect of
//! dilation on routed latency can be observed rather than asserted.
//!
//! Beyond the aggregate simulator ([`sim`]), the crate provides
//!
//! * [`routing`] — dimension-ordered routing (forward and reverse) and
//!   Valiant's randomized two-phase routing;
//! * [`patterns`] — classic permutation and collective traffic patterns
//!   (transpose, bit reversal, bit complement, shuffle, shift, tornado,
//!   hot spot, all-to-all, broadcast);
//! * [`stats`] — detailed runs recording per-message latency distributions
//!   and per-link loads;
//! * [`optimize`] — a simulated-makespan [`embeddings::optim::Objective`],
//!   so the local-search optimizer can refine placements against the
//!   simulator itself;
//! * [`collective`] — ring reduce-scatter / allreduce schedules built on the
//!   paper's Hamiltonian-circuit embeddings (Corollaries 25 and 29);
//! * [`chaos`] — fault injection ([`chaos::FaultPlan`] overlays), degraded
//!   routing with typed [`chaos::RouteOutcome`]s, adversarial traffic
//!   generators, and the faulted simulator [`chaos::simulate_chaos`].
//!
//! # Example
//!
//! ```
//! use embeddings::basic::embed_ring_in;
//! use netsim::sim::simulate_embedding;
//! use topology::{Grid, Shape};
//!
//! let host = Grid::mesh(Shape::new(vec![4, 6]).unwrap());
//! let embedding = embed_ring_in(&host).unwrap();
//! let stats = simulate_embedding(&embedding, 1);
//! // Unit dilation ⇒ every neighbor exchange is a single hop.
//! assert_eq!(stats.max_hops, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod collective;
pub mod network;
pub mod optimize;
pub mod patterns;
pub mod routing;
pub mod sim;
pub mod stats;
pub mod traffic;

pub use chaos::{
    simulate_chaos, simulate_chaos_schedule, ChaosRouting, DetourRouter, FaultMask, FaultPlan,
    RouteOutcome, TableRouter,
};
pub use collective::{
    simulate_ring_allreduce, simulate_ring_reduce_scatter, CollectiveStats, RingOrder,
};
pub use network::Network;
pub use optimize::{MakespanError, MakespanObjective};
pub use routing::{Router, RoutingAlgorithm};
pub use sim::{simulate, simulate_embedding, Placement, PlacementError, SimStats};
pub use stats::{simulate_detailed, DetailedStats, LatencySummary, LinkLoads};
pub use traffic::{bursty_schedule, multi_tenant, zipf_hotspot, Workload, WorkloadError};

/// Commonly used items.
pub mod prelude {
    pub use crate::chaos::{
        simulate_chaos, simulate_chaos_schedule, ChaosRouting, DetourRouter, FaultMask, FaultPlan,
        RouteOutcome, TableRouter,
    };
    pub use crate::collective::{
        simulate_ring_allreduce, simulate_ring_reduce_scatter, CollectiveStats, RingOrder,
    };
    pub use crate::network::Network;
    pub use crate::optimize::{MakespanError, MakespanObjective};
    pub use crate::patterns;
    pub use crate::routing::{Router, RoutingAlgorithm};
    pub use crate::sim::{simulate, simulate_embedding, Placement, PlacementError, SimStats};
    pub use crate::stats::{simulate_detailed, DetailedStats, LatencySummary, LinkLoads};
    pub use crate::traffic::{
        bursty_schedule, multi_tenant, zipf_hotspot, Workload, WorkloadError,
    };
}
