//! The simulated-makespan optimization objective, with delta-aware
//! re-evaluation.
//!
//! [`MakespanObjective`] plugs the store-and-forward simulator into the
//! [`embeddings::optim`] local-search engine: the cost of a placement table
//! is the makespan (cycles) of delivering a fixed workload with that table
//! as the task placement, with the total routed hop count as the
//! tie-breaker — exactly the numbers [`crate::sim::simulate`] reports.
//!
//! Earlier revisions re-simulated the whole workload from scratch on every
//! proposed move (route expansion, placement validation and a
//! hash-set-arbitrated cycle loop per swap), which capped the objective at
//! small step counts. This version makes makespan a first-class objective by
//! splitting an evaluation into its two halves and making the first one
//! incremental:
//!
//! * **routes** are cached per workload pair as `(next node, directed link
//!   slot)` hop lists. A swap of the images of tasks `a` and `b` re-routes
//!   *only the message pairs whose source or destination is one of the two
//!   moved tasks* (every simulated round injects the same pairs, so those
//!   pairs cover every touched round) — `O(degree × path length)` instead of
//!   re-expanding every route;
//! * **arbitration** is re-run only where a change can reach. Messages
//!   interact exclusively through shared directed link slots, so the cached
//!   routes partition into *contention components* (union–find over slots:
//!   each route chains its own slots together, shared slots merge routes).
//!   A re-routed pair dirties the slots of both its old and its new route;
//!   only the components containing a dirty slot replay arbitration —
//!   every other message keeps its cached delivery cycle, and the makespan
//!   is the maximum over the per-message cycle cache. The replay runs on
//!   flat, clock-stamped claim vectors indexed by directed link slot, with
//!   an order-preserving active list that drops delivered messages: no
//!   hashing, no allocation after warm-up. A swap that touches no workload
//!   pair (possible when the optimizer's guest has more nodes than the
//!   workload has tasks) skips re-arbitration entirely.
//!
//! Skipping clean components is exact, not approximate: a component with no
//! dirty slot contains only unchanged routes (a changed route's slots are
//! all dirty), shares no slot with any changed or replayed message, and all
//! messages inject at cycle 1 — so its schedule under full arbitration is
//! bit-identical to its cached one. The replayed components' active list
//! stays in ascending message-index order, replaying the exact priority
//! rule of [`crate::sim::simulate`] (message-index order, one message per
//! directed link per cycle, FIFO blocking) — `rebuild` recomputes
//! everything from scratch and is the differential anchor, and the netsim
//! tests plus the embeddings proptest wall check every incremental path
//! against [`crate::sim::simulate`] on random walks.

use embeddings::optim::{Cost, Objective};
use topology::routing::{for_each_hop, link_slot_of_hop};

use crate::network::Network;
use crate::traffic::Workload;

/// One cached hop: the node the message moves to and the directed-link claim
/// slot the move occupies for one cycle.
type Hop = (u64, u64);

/// Why a [`MakespanObjective`] could not be constructed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MakespanError {
    /// The schedule is too large: the arbitration scratch indexes messages
    /// (workload pairs × rounds) with `u32`, so an evaluation is capped at
    /// `u32::MAX` messages. A request-supplied workload or round count that
    /// blows past the cap is a typed error here rather than a silent index
    /// truncation (and a meaningless schedule) later.
    ScheduleTooLarge {
        /// The number of workload pairs.
        pairs: usize,
        /// The number of rounds per evaluation.
        rounds: usize,
    },
}

impl core::fmt::Display for MakespanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MakespanError::ScheduleTooLarge { pairs, rounds } => write!(
                f,
                "schedule of {pairs} workload pairs x {rounds} rounds exceeds the \
                 {} messages one evaluation can arbitrate",
                u32::MAX
            ),
        }
    }
}

impl std::error::Error for MakespanError {}

/// Minimize the simulated makespan (cycles to deliver the workload under
/// one-message-per-directed-link arbitration), with the total routed hop
/// count as the tie-breaker.
///
/// See the [module docs](self) for the delta-aware evaluation strategy.
pub struct MakespanObjective {
    network: Network,
    workload: Workload,
    rounds: usize,
    dims: Vec<usize>,
    /// Cached route of each workload pair under the current table (hop
    /// buffers keep their capacity across re-routes).
    routes: Vec<Vec<Hop>>,
    /// `task_pairs[t]` = indices of the workload pairs with source or
    /// destination task `t`.
    task_pairs: Vec<Vec<u32>>,
    /// Sum of cached route lengths (per round).
    route_hops: u64,
    /// Dedup stamps so a pair touching both swapped tasks re-routes once.
    pair_epoch: Vec<u64>,
    epoch: u64,
    /// Directed-link claim stamps: `stamp[slot] == clock` means the slot is
    /// taken in the current cycle. Never reset — the clock only grows.
    stamp: Vec<u64>,
    clock: u64,
    /// Arbitration scratch, reused across evaluations.
    position: Vec<u32>,
    active: Vec<u32>,
    next_active: Vec<u32>,
    affected: Vec<u32>,
    touched: Vec<u64>,
    /// Delivery cycle of each message (round-major index; 0 for empty
    /// routes). The makespan is the maximum; clean contention components
    /// keep their entries across incremental evaluations.
    msg_cycles: Vec<u64>,
    /// Union–find parents over directed slots, rebuilt per incremental
    /// evaluation to partition routes into contention components.
    slot_parent: Vec<u32>,
    /// `root_epoch[root] == epoch` marks a dirty component this evaluation.
    root_epoch: Vec<u64>,
    /// Old + new slots of every route changed since the last arbitration.
    dirty_slots: Vec<u64>,
    cost: Cost,
}

/// Union–find `find` with path halving, as a free function so it can borrow
/// the parent vector while other fields of the objective stay borrowed.
fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

/// Union–find merge of the components of `a` and `b`.
fn union(parent: &mut [u32], a: u32, b: u32) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra != rb {
        parent[rb as usize] = ra;
    }
}

impl MakespanObjective {
    /// Creates the objective: `workload` is delivered on `network` for
    /// `rounds` rounds per evaluation.
    ///
    /// # Errors
    ///
    /// [`MakespanError::ScheduleTooLarge`] when `pairs × rounds` exceeds the
    /// `u32` message index space of the arbitration scratch.
    pub fn new(network: Network, workload: Workload, rounds: usize) -> Result<Self, MakespanError> {
        let pairs = workload.pairs().len();
        if pairs as u128 * rounds.max(1) as u128 > u32::MAX as u128 {
            return Err(MakespanError::ScheduleTooLarge { pairs, rounds });
        }
        let mut task_pairs: Vec<Vec<u32>> = vec![Vec::new(); workload.tasks() as usize];
        for (index, &(src, dst)) in workload.pairs().iter().enumerate() {
            task_pairs[src as usize].push(index as u32);
            if dst != src {
                task_pairs[dst as usize].push(index as u32);
            }
        }
        let dims = (0..network.grid().dim()).collect();
        let stamp = vec![0; 2 * network.grid().link_count() as usize];
        Ok(MakespanObjective {
            network,
            workload,
            rounds,
            dims,
            routes: vec![Vec::new(); pairs],
            task_pairs,
            route_hops: 0,
            pair_epoch: vec![0; pairs],
            epoch: 0,
            stamp,
            clock: 0,
            position: Vec::new(),
            active: Vec::new(),
            next_active: Vec::new(),
            affected: Vec::new(),
            touched: Vec::new(),
            msg_cycles: Vec::new(),
            slot_parent: Vec::new(),
            root_epoch: Vec::new(),
            dirty_slots: Vec::new(),
            cost: Cost {
                primary: 0,
                secondary: 0,
            },
        })
    }

    /// Re-expands the cached route of pair `pair` under `table`, keeping
    /// `route_hops` in sync. Hops are stored with their directed claim slot
    /// (`2 × canonical link slot + direction bit`) so arbitration needs no
    /// coordinate math. Both the old and the new route's slots are appended
    /// to `dirty_slots`, marking every contention component this change can
    /// reach (the full evaluation of `rebuild` clears the list instead).
    fn route_pair(&mut self, pair: usize, table: &[u64]) {
        let (src_task, dst_task) = self.workload.pairs()[pair];
        let from = table[src_task as usize];
        let to = table[dst_task as usize];
        let grid = self.network.grid();
        let mut dirty = std::mem::take(&mut self.dirty_slots);
        let route = &mut self.routes[pair];
        self.route_hops -= route.len() as u64;
        dirty.extend(route.iter().map(|&(_, slot)| slot));
        route.clear();
        let current = grid.coord(from).expect("placement node in range");
        let target = grid.coord(to).expect("placement node in range");
        for_each_hop(
            grid,
            &current,
            from,
            &target,
            &self.dims,
            |hop, before, after| {
                let link = link_slot_of_hop(grid, hop, before, after);
                let slot = 2 * link + u64::from(before < after);
                route.push((after, slot));
            },
        );
        dirty.extend(route.iter().map(|&(_, slot)| slot));
        self.route_hops += route.len() as u64;
        self.dirty_slots = dirty;
    }

    /// Replays the arbitration of [`crate::sim::simulate`] over the
    /// messages currently in `active` (ascending message index — the
    /// priority order of the full simulator; indices are round-major,
    /// pair-minor, the order the full simulator builds its message list
    /// in): every active message injects at cycle 1, each directed link
    /// carries one message per cycle, blocked messages retry in place, and
    /// each delivery records its cycle in `msg_cycles`. Callers must reset
    /// `position` to 0 for every active message. Messages left out of
    /// `active` keep their cached delivery cycles — exact whenever they
    /// share no directed slot with any active message, because disjoint
    /// slots never contend and all messages inject at cycle 1.
    fn arbitrate_active(&mut self) {
        let pairs = self.routes.len();
        let mut cycle = 0u64;
        while !self.active.is_empty() {
            cycle += 1;
            self.clock += 1;
            self.next_active.clear();
            for &m in &self.active {
                let route = &self.routes[m as usize % pairs];
                let (_, slot) = route[self.position[m as usize] as usize];
                if self.stamp[slot as usize] != self.clock {
                    self.stamp[slot as usize] = self.clock;
                    self.position[m as usize] += 1;
                    if (self.position[m as usize] as usize) < route.len() {
                        self.next_active.push(m);
                    } else {
                        self.msg_cycles[m as usize] = cycle;
                    }
                } else {
                    self.next_active.push(m);
                }
            }
            std::mem::swap(&mut self.active, &mut self.next_active);
        }
    }

    /// Caches and returns the cost implied by the current `msg_cycles` and
    /// route lengths.
    fn finish_cost(&mut self) -> Cost {
        self.cost = Cost {
            primary: self.msg_cycles.iter().copied().max().unwrap_or(0),
            secondary: self.route_hops * self.rounds as u64,
        };
        self.cost
    }

    /// Recomputes the schedule from the cached routes, arbitrating every
    /// message from scratch — the differential anchor for the incremental
    /// path.
    fn evaluate_full(&mut self) -> Cost {
        let pairs = self.routes.len();
        let total = pairs * self.rounds;
        self.position.clear();
        self.position.resize(total, 0);
        self.msg_cycles.clear();
        self.msg_cycles.resize(total, 0);
        self.active.clear();
        for m in 0..total {
            if !self.routes[m % pairs].is_empty() {
                self.active.push(m as u32);
            }
        }
        self.arbitrate_active();
        self.finish_cost()
    }

    /// Re-arbitrates only the contention components reachable from
    /// `dirty_slots` (consumed here): union–find over the directed slots of
    /// the *current* routes partitions messages into slot-sharing
    /// components, and a component replays iff it contains a dirty slot.
    /// Every other message keeps its cached delivery cycle — see the module
    /// docs for why skipping clean components is bit-exact.
    fn evaluate_incremental(&mut self) -> Cost {
        let pairs = self.routes.len();
        let total = pairs * self.rounds;
        debug_assert_eq!(
            self.msg_cycles.len(),
            total,
            "rebuild must run before incremental evaluation"
        );

        // Partition: chain each route's slots together; shared slots merge
        // routes transitively.
        let slots = self.stamp.len();
        self.slot_parent.clear();
        self.slot_parent.extend(0..slots as u32);
        for route in &self.routes {
            let mut hops = route.iter();
            if let Some(&(_, first)) = hops.next() {
                for &(_, slot) in hops {
                    union(&mut self.slot_parent, first as u32, slot as u32);
                }
            }
        }

        // Mark the components holding any old or new slot of a changed
        // route. Dirty slots no current route uses root singleton
        // components with no messages — harmless. The `epoch` stamp was
        // bumped by `resync_touched`, so stale marks never match.
        self.root_epoch.resize(slots, 0);
        let mut dirty = std::mem::take(&mut self.dirty_slots);
        for &slot in &dirty {
            let root = find(&mut self.slot_parent, slot as u32);
            self.root_epoch[root as usize] = self.epoch;
        }
        dirty.clear();
        self.dirty_slots = dirty;

        // Replay exactly the messages of dirty components, in ascending
        // message-index order. A route's slots all share one component, so
        // its first slot's root classifies the whole message. Pairs with
        // empty routes have no slots and never contend; their cached cycle
        // is 0 and stays valid (a route is empty iff its pair is a
        // self-send, which no table change can alter).
        self.active.clear();
        for m in 0..total {
            let route = &self.routes[m % pairs];
            let Some(&(_, first)) = route.first() else {
                continue;
            };
            let root = find(&mut self.slot_parent, first as u32);
            if self.root_epoch[root as usize] == self.epoch {
                self.position[m] = 0;
                self.active.push(m as u32);
            }
        }
        self.arbitrate_active();
        self.finish_cost()
    }

    /// The shared delta path: re-routes every workload pair touched by any
    /// task in `touched` (deduplicated), then re-arbitrates the reachable
    /// contention components once. Returns the cached cost untouched when
    /// no pair is affected.
    fn resync_touched(&mut self, table: &[u64], touched: &[u64]) -> Cost {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut affected = std::mem::take(&mut self.affected);
        affected.clear();
        for &task in touched {
            let Some(pairs) = self.task_pairs.get(task as usize) else {
                // The guest has more nodes than the workload has tasks, and
                // this task is outside the workload: nothing to re-route.
                continue;
            };
            for &pair in pairs {
                if self.pair_epoch[pair as usize] != epoch {
                    self.pair_epoch[pair as usize] = epoch;
                    affected.push(pair);
                }
            }
        }
        if affected.is_empty() {
            // No touched task sends or receives: routes — and therefore the
            // schedule — are unchanged.
            self.affected = affected;
            return self.cost;
        }
        for &pair in &affected {
            self.route_pair(pair as usize, table);
        }
        self.affected = affected;
        self.evaluate_incremental()
    }
}

impl Objective for MakespanObjective {
    fn name(&self) -> &'static str {
        "makespan"
    }

    fn rebuild(&mut self, table: &[u64]) -> Cost {
        // The old full-re-simulation objective validated injectivity through
        // `Placement::try_from_table` on every evaluation; the delta path
        // keeps the loud contract violation (two tasks on one node would
        // otherwise yield a plausible-looking but meaningless schedule) as a
        // debug-build check at rebuild time, off the per-move hot path.
        #[cfg(debug_assertions)]
        {
            let mut seen = vec![false; self.network.size() as usize];
            for (task, &node) in table.iter().enumerate() {
                assert!(
                    !std::mem::replace(&mut seen[node as usize], true),
                    "placement table must be injective: task {task} re-uses node {node}"
                );
            }
        }
        for pair in 0..self.routes.len() {
            self.route_pair(pair, table);
        }
        // Full evaluation re-arbitrates everything; the dirty-slot trail
        // the re-routes left behind is moot.
        self.dirty_slots.clear();
        self.evaluate_full()
    }

    fn apply_swap(&mut self, table: &[u64], a: u64, b: u64) -> Cost {
        if a == b {
            return self.cost;
        }
        self.resync_touched(table, &[a, b])
    }

    fn apply_disjoint_swaps(&mut self, table: &mut [u64], swaps: &[(u64, u64)]) -> Cost {
        // A compound move (segment reversal, k-cycle rotation batch, block
        // swap) re-routes the pairs of *every* transposed task but pays the
        // arbitration pass once — the override the default per-swap loop
        // exists for, since arbitration dominates this objective's
        // evaluation.
        let mut touched = std::mem::take(&mut self.touched);
        touched.clear();
        for &(a, b) in swaps {
            table.swap(a as usize, b as usize);
            if a != b {
                touched.push(a);
                touched.push(b);
            }
        }
        let cost = self.resync_touched(table, &touched);
        self.touched = touched;
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embeddings::auto::embed;
    use embeddings::optim::{Optimizer, OptimizerConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use topology::{Grid, Shape};

    use crate::sim::{simulate, Placement};

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    /// The full-re-simulation reference: what the old objective computed.
    fn full_cost(network: &Network, workload: &Workload, rounds: usize, table: &[u64]) -> Cost {
        let placement = Placement::try_from_table(table.to_vec()).expect("injective");
        let stats = simulate(network, workload, &placement, rounds);
        Cost {
            primary: stats.cycles,
            secondary: stats.total_hops,
        }
    }

    #[test]
    fn makespan_objective_matches_direct_simulation() {
        let guest = Grid::ring(12).unwrap();
        let host = Grid::mesh(shape(&[3, 4]));
        let e = embed(&guest, &host).unwrap();
        let workload = Workload::from_task_graph(&guest);
        let mut objective =
            MakespanObjective::new(Network::new(host.clone()), workload.clone(), 1).unwrap();
        let table = e.to_table().unwrap();
        let cost = objective.rebuild(&table);
        let stats = simulate(
            &Network::new(host),
            &workload,
            &Placement::from_embedding(&e),
            1,
        );
        assert_eq!(cost.primary, stats.cycles);
        assert_eq!(cost.secondary, stats.total_hops);
    }

    #[test]
    fn delta_swaps_match_full_resimulation_exactly() {
        // Differential check: a long random walk of incremental swap
        // updates must report, at every step, exactly the cost a full
        // re-simulation computes — including multi-round schedules.
        for (guest, host, rounds) in [
            (Grid::torus(shape(&[3, 4])), Grid::mesh(shape(&[3, 4])), 1),
            (Grid::torus(shape(&[4, 6])), Grid::mesh(shape(&[4, 6])), 2),
            (Grid::ring(16).unwrap(), Grid::mesh(shape(&[4, 4])), 3),
        ] {
            let e = embed(&guest, &host).unwrap();
            let workload = Workload::from_task_graph(&guest);
            let network = Network::new(host.clone());
            let mut objective =
                MakespanObjective::new(Network::new(host.clone()), workload.clone(), rounds)
                    .unwrap();
            let mut table = e.to_table().unwrap();
            let mut cost = objective.rebuild(&table);
            assert_eq!(cost, full_cost(&network, &workload, rounds, &table));
            let n = guest.size();
            let mut rng = StdRng::seed_from_u64(23);
            for _ in 0..120 {
                let a = rng.gen_range(0u64..n);
                let mut b = rng.gen_range(0u64..n - 1);
                if b >= a {
                    b += 1;
                }
                table.swap(a as usize, b as usize);
                cost = objective.apply_swap(&table, a, b);
                assert_eq!(
                    cost,
                    full_cost(&network, &workload, rounds, &table),
                    "{guest} -> {host} rounds={rounds} after swapping {a},{b}"
                );
            }
            // And the incremental end state equals a fresh rebuild.
            let mut fresh =
                MakespanObjective::new(Network::new(host.clone()), workload.clone(), rounds)
                    .unwrap();
            assert_eq!(cost, fresh.rebuild(&table));
        }
    }

    /// Two four-task rings pinned to opposite rows of a 4×4 mesh, with the
    /// middle rows unused: their routes share no directed slots, so the
    /// contention partition always has (at least) two clean-able components.
    fn two_cluster_workload() -> (Network, Workload, Vec<u64>) {
        let host = Grid::mesh(shape(&[4, 4]));
        let pairs = vec![
            (0u64, 1u64),
            (1, 2),
            (2, 3),
            (3, 0),
            (12, 13),
            (13, 14),
            (14, 15),
            (15, 12),
        ];
        let workload = Workload::try_new(16, pairs).unwrap();
        let table: Vec<u64> = (0..16).collect();
        (Network::new(host), workload, table)
    }

    #[test]
    fn multi_component_walks_match_full_resimulation() {
        // The sparse case the contention-component replay exists for: most
        // swaps touch one cluster (or no cluster at all), so the other
        // cluster's cached cycles must carry over bit-exactly while its
        // component is skipped. Random swaps and reversal batches, checked
        // against a full re-simulation at every step.
        let (network, workload, mut table) = two_cluster_workload();
        let rounds = 2;
        let mut objective = MakespanObjective::new(
            Network::new(network.grid().clone()),
            workload.clone(),
            rounds,
        )
        .unwrap();
        let mut cost = objective.rebuild(&table);
        assert_eq!(cost, full_cost(&network, &workload, rounds, &table));
        let n = table.len() as u64;
        let mut rng = StdRng::seed_from_u64(87);
        for step in 0..120 {
            if rng.gen_bool(0.25) {
                let len = rng.gen_range(2u64..=6);
                let start = rng.gen_range(0u64..=n - len);
                let swaps: Vec<(u64, u64)> = (0..len / 2)
                    .map(|i| (start + i, start + len - 1 - i))
                    .collect();
                cost = objective.apply_disjoint_swaps(&mut table, &swaps);
            } else {
                let a = rng.gen_range(0u64..n);
                let mut b = rng.gen_range(0u64..n - 1);
                if b >= a {
                    b += 1;
                }
                table.swap(a as usize, b as usize);
                cost = objective.apply_swap(&table, a, b);
            }
            assert_eq!(
                cost,
                full_cost(&network, &workload, rounds, &table),
                "step {step}"
            );
        }
        let mut fresh =
            MakespanObjective::new(Network::new(network.grid().clone()), workload, rounds).unwrap();
        assert_eq!(cost, fresh.rebuild(&table));
    }

    #[test]
    fn clean_components_are_skipped_not_replayed() {
        // White-box proof that the incremental path really skips clean
        // components instead of recomputing them: corrupt the cached
        // delivery cycle of a message in the *other* cluster, apply a swap
        // confined to the first cluster, and watch the corruption survive
        // into the reported cost. A full replay would wash it out — which
        // is exactly what the final rebuild then does.
        let (network, workload, mut table) = two_cluster_workload();
        let mut objective =
            MakespanObjective::new(Network::new(network.grid().clone()), workload.clone(), 1)
                .unwrap();
        let honest = objective.rebuild(&table);
        // Message 4 is pair (12, 13): routed entirely inside the bottom row.
        objective.msg_cycles[4] = 777;
        // Swap two top-row placements: dirty slots stay in the top row.
        table.swap(0, 1);
        let tainted = objective.apply_swap(&table, 0, 1);
        assert_eq!(
            tainted.primary, 777,
            "the bottom-row component was replayed, not skipped"
        );
        // A rebuild discards every cached cycle and restores the truth.
        let rebuilt = objective.rebuild(&table);
        assert_eq!(rebuilt, full_cost(&network, &workload, 1, &table));
        assert_eq!(rebuilt.secondary, honest.secondary, "same routed hops");
    }

    #[test]
    fn swaps_outside_the_workload_are_free_and_exact() {
        // A workload over fewer tasks than the placement has nodes: swapping
        // two unused tasks must keep the cached cost — and agree with the
        // full simulator, which never sees the unused tasks at all.
        let host = Grid::mesh(shape(&[4, 4]));
        let workload = Workload::uniform_random(8, 24, 5);
        let network = Network::new(host.clone());
        let mut objective =
            MakespanObjective::new(Network::new(host), workload.clone(), 1).unwrap();
        let mut table: Vec<u64> = (0..16).collect();
        let before = objective.rebuild(&table);
        table.swap(12, 15);
        let after = objective.apply_swap(&table, 12, 15);
        assert_eq!(before, after);
        assert_eq!(after, full_cost(&network, &workload, 1, &table));
        // A swap moving one workload task and one unused task re-routes
        // only the touched pairs and still matches.
        table.swap(2, 14);
        let mixed = objective.apply_swap(&table, 2, 14);
        assert_eq!(mixed, full_cost(&network, &workload, 1, &table));
    }

    #[test]
    fn disjoint_swap_batches_match_full_resimulation_and_undo() {
        // A segment reversal reaches the objective as one batch of disjoint
        // transpositions (one arbitration pass); it must price the final
        // table exactly like the full simulator and undo by re-applying.
        let guest = Grid::torus(shape(&[4, 6]));
        let host = Grid::mesh(shape(&[4, 6]));
        let e = embed(&guest, &host).unwrap();
        let workload = Workload::from_task_graph(&guest);
        let network = Network::new(host.clone());
        let mut objective =
            MakespanObjective::new(Network::new(host), workload.clone(), 2).unwrap();
        let mut table = e.to_table().unwrap();
        let before = objective.rebuild(&table);
        // Reverse the run 5..=10: transpositions (5,10), (6,9), (7,8).
        let swaps = [(5u64, 10u64), (6, 9), (7, 8)];
        let batched = objective.apply_disjoint_swaps(&mut table, &swaps);
        assert_eq!(batched, full_cost(&network, &workload, 2, &table));
        // Matches the per-swap default path on a fresh objective.
        let mut sequential = MakespanObjective::new(
            Network::new(Grid::mesh(shape(&[4, 6]))),
            workload.clone(),
            2,
        )
        .unwrap();
        let mut seq_table = e.to_table().unwrap();
        sequential.rebuild(&seq_table);
        let mut seq_cost = before;
        for &(a, b) in &swaps {
            seq_table.swap(a as usize, b as usize);
            seq_cost = sequential.apply_swap(&seq_table, a, b);
        }
        assert_eq!(batched, seq_cost);
        assert_eq!(table, seq_table);
        // Re-applying the same batch undoes the reversal exactly.
        let undone = objective.apply_disjoint_swaps(&mut table, &swaps);
        assert_eq!(undone, before);
        assert_eq!(table, e.to_table().unwrap());
    }

    #[test]
    fn rejected_moves_undo_exactly() {
        let guest = Grid::torus(shape(&[3, 4]));
        let host = Grid::mesh(shape(&[3, 4]));
        let e = embed(&guest, &host).unwrap();
        let workload = Workload::from_task_graph(&guest);
        let mut objective = MakespanObjective::new(Network::new(host), workload, 1).unwrap();
        let mut table = e.to_table().unwrap();
        let before = objective.rebuild(&table);
        table.swap(3, 9);
        objective.apply_swap(&table, 3, 9);
        table.swap(3, 9);
        let after = objective.apply_swap(&table, 3, 9);
        assert_eq!(before, after);
    }

    #[test]
    fn optimizer_never_worsens_the_makespan() {
        let guest = Grid::torus(shape(&[3, 4]));
        let host = Grid::mesh(shape(&[3, 4]));
        let e = embed(&guest, &host).unwrap();
        let workload = Workload::from_task_graph(&guest);
        let mut objective =
            MakespanObjective::new(Network::new(host.clone()), workload, 1).unwrap();
        let outcome = Optimizer::new(OptimizerConfig {
            seed: 5,
            steps: 400,
            ..OptimizerConfig::default()
        })
        .optimize(&e, &mut objective)
        .unwrap();
        assert!(outcome.report.best <= outcome.report.initial);
        assert!(outcome.embedding.is_injective());
        // The returned table reproduces the reported best cost.
        assert_eq!(objective.rebuild(&outcome.table), outcome.report.best);
    }

    #[test]
    fn oversized_schedules_are_typed_errors() {
        // pairs × rounds beyond u32::MAX would truncate the arbitration
        // message indices; the constructor must refuse, not wrap.
        let host = Grid::mesh(shape(&[2, 3]));
        let workload = Workload::from_task_graph(&Grid::ring(6).unwrap());
        let pairs = workload.pairs().len();
        let rounds = (u32::MAX as usize / pairs) + 1;
        let err = MakespanObjective::new(Network::new(host), workload, rounds)
            .err()
            .expect("oversized schedule must be rejected");
        assert_eq!(err, MakespanError::ScheduleTooLarge { pairs, rounds });
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn zero_rounds_cost_nothing() {
        let guest = Grid::ring(6).unwrap();
        let host = Grid::mesh(shape(&[2, 3]));
        let workload = Workload::from_task_graph(&guest);
        let mut objective = MakespanObjective::new(Network::new(host), workload, 0).unwrap();
        let table: Vec<u64> = (0..6).collect();
        let cost = objective.rebuild(&table);
        assert_eq!(
            cost,
            Cost {
                primary: 0,
                secondary: 0
            }
        );
    }
}
