//! The simulated-makespan optimization objective, with delta-aware
//! re-evaluation.
//!
//! [`MakespanObjective`] plugs the store-and-forward simulator into the
//! [`embeddings::optim`] local-search engine: the cost of a placement table
//! is the makespan (cycles) of delivering a fixed workload with that table
//! as the task placement, with the total routed hop count as the
//! tie-breaker — exactly the numbers [`crate::sim::simulate`] reports.
//!
//! Earlier revisions re-simulated the whole workload from scratch on every
//! proposed move (route expansion, placement validation and a
//! hash-set-arbitrated cycle loop per swap), which capped the objective at
//! small step counts. This version makes makespan a first-class objective by
//! splitting an evaluation into its two halves and making the first one
//! incremental:
//!
//! * **routes** are cached per workload pair as `(next node, directed link
//!   slot)` hop lists. A swap of the images of tasks `a` and `b` re-routes
//!   *only the message pairs whose source or destination is one of the two
//!   moved tasks* (every simulated round injects the same pairs, so those
//!   pairs cover every touched round) — `O(degree × path length)` instead of
//!   re-expanding every route;
//! * **arbitration** is re-run over the cached routes — link contention is
//!   global, so a changed route can displace any message — but on flat,
//!   clock-stamped claim vectors indexed by directed link slot, with an
//!   order-preserving active list that drops delivered messages. No hashing,
//!   no allocation after warm-up, and a swap that touches no workload pair
//!   (possible when the optimizer's guest has more nodes than the workload
//!   has tasks) skips re-arbitration entirely.
//!
//! The arbitration pass replays the exact priority rule of
//! [`crate::sim::simulate`] (message-index order, one message per directed
//! link per cycle, FIFO blocking), so the incremental path is bit-identical
//! to full re-simulation — `rebuild` recomputes everything from scratch and
//! is the differential anchor, and the netsim proptest suite checks
//! `apply_swap` against [`crate::sim::simulate`] on random walks.

use embeddings::optim::{Cost, Objective};
use topology::routing::{for_each_hop, link_slot_of_hop};

use crate::network::Network;
use crate::traffic::Workload;

/// One cached hop: the node the message moves to and the directed-link claim
/// slot the move occupies for one cycle.
type Hop = (u64, u64);

/// Why a [`MakespanObjective`] could not be constructed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MakespanError {
    /// The schedule is too large: the arbitration scratch indexes messages
    /// (workload pairs × rounds) with `u32`, so an evaluation is capped at
    /// `u32::MAX` messages. A request-supplied workload or round count that
    /// blows past the cap is a typed error here rather than a silent index
    /// truncation (and a meaningless schedule) later.
    ScheduleTooLarge {
        /// The number of workload pairs.
        pairs: usize,
        /// The number of rounds per evaluation.
        rounds: usize,
    },
}

impl core::fmt::Display for MakespanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MakespanError::ScheduleTooLarge { pairs, rounds } => write!(
                f,
                "schedule of {pairs} workload pairs x {rounds} rounds exceeds the \
                 {} messages one evaluation can arbitrate",
                u32::MAX
            ),
        }
    }
}

impl std::error::Error for MakespanError {}

/// Minimize the simulated makespan (cycles to deliver the workload under
/// one-message-per-directed-link arbitration), with the total routed hop
/// count as the tie-breaker.
///
/// See the [module docs](self) for the delta-aware evaluation strategy.
pub struct MakespanObjective {
    network: Network,
    workload: Workload,
    rounds: usize,
    dims: Vec<usize>,
    /// Cached route of each workload pair under the current table (hop
    /// buffers keep their capacity across re-routes).
    routes: Vec<Vec<Hop>>,
    /// `task_pairs[t]` = indices of the workload pairs with source or
    /// destination task `t`.
    task_pairs: Vec<Vec<u32>>,
    /// Sum of cached route lengths (per round).
    route_hops: u64,
    /// Dedup stamps so a pair touching both swapped tasks re-routes once.
    pair_epoch: Vec<u64>,
    epoch: u64,
    /// Directed-link claim stamps: `stamp[slot] == clock` means the slot is
    /// taken in the current cycle. Never reset — the clock only grows.
    stamp: Vec<u64>,
    clock: u64,
    /// Arbitration scratch, reused across evaluations.
    position: Vec<u32>,
    active: Vec<u32>,
    next_active: Vec<u32>,
    affected: Vec<u32>,
    touched: Vec<u64>,
    cost: Cost,
}

impl MakespanObjective {
    /// Creates the objective: `workload` is delivered on `network` for
    /// `rounds` rounds per evaluation.
    ///
    /// # Errors
    ///
    /// [`MakespanError::ScheduleTooLarge`] when `pairs × rounds` exceeds the
    /// `u32` message index space of the arbitration scratch.
    pub fn new(network: Network, workload: Workload, rounds: usize) -> Result<Self, MakespanError> {
        let pairs = workload.pairs().len();
        if pairs as u128 * rounds.max(1) as u128 > u32::MAX as u128 {
            return Err(MakespanError::ScheduleTooLarge { pairs, rounds });
        }
        let mut task_pairs: Vec<Vec<u32>> = vec![Vec::new(); workload.tasks() as usize];
        for (index, &(src, dst)) in workload.pairs().iter().enumerate() {
            task_pairs[src as usize].push(index as u32);
            if dst != src {
                task_pairs[dst as usize].push(index as u32);
            }
        }
        let dims = (0..network.grid().dim()).collect();
        let stamp = vec![0; 2 * network.grid().link_count() as usize];
        Ok(MakespanObjective {
            network,
            workload,
            rounds,
            dims,
            routes: vec![Vec::new(); pairs],
            task_pairs,
            route_hops: 0,
            pair_epoch: vec![0; pairs],
            epoch: 0,
            stamp,
            clock: 0,
            position: Vec::new(),
            active: Vec::new(),
            next_active: Vec::new(),
            affected: Vec::new(),
            touched: Vec::new(),
            cost: Cost {
                primary: 0,
                secondary: 0,
            },
        })
    }

    /// Re-expands the cached route of pair `pair` under `table`, keeping
    /// `route_hops` in sync. Hops are stored with their directed claim slot
    /// (`2 × canonical link slot + direction bit`) so arbitration needs no
    /// coordinate math.
    fn route_pair(&mut self, pair: usize, table: &[u64]) {
        let (src_task, dst_task) = self.workload.pairs()[pair];
        let from = table[src_task as usize];
        let to = table[dst_task as usize];
        let grid = self.network.grid();
        let route = &mut self.routes[pair];
        self.route_hops -= route.len() as u64;
        route.clear();
        let current = grid.coord(from).expect("placement node in range");
        let target = grid.coord(to).expect("placement node in range");
        for_each_hop(
            grid,
            &current,
            from,
            &target,
            &self.dims,
            |hop, before, after| {
                let link = link_slot_of_hop(grid, hop, before, after);
                let slot = 2 * link + u64::from(before < after);
                route.push((after, slot));
            },
        );
        self.route_hops += route.len() as u64;
    }

    /// Replays the arbitration of [`crate::sim::simulate`] over the cached
    /// routes: every round injects one message per pair at cycle 1, messages
    /// contend in message-index order (round-major, pair-minor — the order
    /// the full simulator builds its message list in), each directed link
    /// carries one message per cycle, and blocked messages retry in place.
    fn arbitrate(&mut self) -> u64 {
        let pairs = self.routes.len();
        let total = pairs * self.rounds;
        self.position.clear();
        self.position.resize(total, 0);
        self.active.clear();
        for m in 0..total {
            if !self.routes[m % pairs].is_empty() {
                self.active.push(m as u32);
            }
        }
        let mut cycles = 0u64;
        while !self.active.is_empty() {
            cycles += 1;
            self.clock += 1;
            self.next_active.clear();
            for &m in &self.active {
                let route = &self.routes[m as usize % pairs];
                let (_, slot) = route[self.position[m as usize] as usize];
                if self.stamp[slot as usize] != self.clock {
                    self.stamp[slot as usize] = self.clock;
                    self.position[m as usize] += 1;
                    if (self.position[m as usize] as usize) < route.len() {
                        self.next_active.push(m);
                    }
                } else {
                    self.next_active.push(m);
                }
            }
            std::mem::swap(&mut self.active, &mut self.next_active);
        }
        cycles
    }

    /// Recomputes the cost from the cached routes.
    fn evaluate(&mut self) -> Cost {
        self.cost = Cost {
            primary: self.arbitrate(),
            secondary: self.route_hops * self.rounds as u64,
        };
        self.cost
    }

    /// The shared delta path: re-routes every workload pair touched by any
    /// task in `touched` (deduplicated), then re-arbitrates once. Returns
    /// the cached cost untouched when no pair is affected.
    fn resync_touched(&mut self, table: &[u64], touched: &[u64]) -> Cost {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut affected = std::mem::take(&mut self.affected);
        affected.clear();
        for &task in touched {
            let Some(pairs) = self.task_pairs.get(task as usize) else {
                // The guest has more nodes than the workload has tasks, and
                // this task is outside the workload: nothing to re-route.
                continue;
            };
            for &pair in pairs {
                if self.pair_epoch[pair as usize] != epoch {
                    self.pair_epoch[pair as usize] = epoch;
                    affected.push(pair);
                }
            }
        }
        if affected.is_empty() {
            // No touched task sends or receives: routes — and therefore the
            // schedule — are unchanged.
            self.affected = affected;
            return self.cost;
        }
        for &pair in &affected {
            self.route_pair(pair as usize, table);
        }
        self.affected = affected;
        self.evaluate()
    }
}

impl Objective for MakespanObjective {
    fn name(&self) -> &'static str {
        "makespan"
    }

    fn rebuild(&mut self, table: &[u64]) -> Cost {
        // The old full-re-simulation objective validated injectivity through
        // `Placement::try_from_table` on every evaluation; the delta path
        // keeps the loud contract violation (two tasks on one node would
        // otherwise yield a plausible-looking but meaningless schedule) as a
        // debug-build check at rebuild time, off the per-move hot path.
        #[cfg(debug_assertions)]
        {
            let mut seen = vec![false; self.network.size() as usize];
            for (task, &node) in table.iter().enumerate() {
                assert!(
                    !std::mem::replace(&mut seen[node as usize], true),
                    "placement table must be injective: task {task} re-uses node {node}"
                );
            }
        }
        for pair in 0..self.routes.len() {
            self.route_pair(pair, table);
        }
        self.evaluate()
    }

    fn apply_swap(&mut self, table: &[u64], a: u64, b: u64) -> Cost {
        if a == b {
            return self.cost;
        }
        self.resync_touched(table, &[a, b])
    }

    fn apply_disjoint_swaps(&mut self, table: &mut [u64], swaps: &[(u64, u64)]) -> Cost {
        // A compound move (segment reversal) re-routes the pairs of *every*
        // transposed task but pays the arbitration pass once — the override
        // the default per-swap loop exists for, since arbitration dominates
        // this objective's evaluation.
        let mut touched = std::mem::take(&mut self.touched);
        touched.clear();
        for &(a, b) in swaps {
            table.swap(a as usize, b as usize);
            if a != b {
                touched.push(a);
                touched.push(b);
            }
        }
        let cost = self.resync_touched(table, &touched);
        self.touched = touched;
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embeddings::auto::embed;
    use embeddings::optim::{Optimizer, OptimizerConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use topology::{Grid, Shape};

    use crate::sim::{simulate, Placement};

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    /// The full-re-simulation reference: what the old objective computed.
    fn full_cost(network: &Network, workload: &Workload, rounds: usize, table: &[u64]) -> Cost {
        let placement = Placement::try_from_table(table.to_vec()).expect("injective");
        let stats = simulate(network, workload, &placement, rounds);
        Cost {
            primary: stats.cycles,
            secondary: stats.total_hops,
        }
    }

    #[test]
    fn makespan_objective_matches_direct_simulation() {
        let guest = Grid::ring(12).unwrap();
        let host = Grid::mesh(shape(&[3, 4]));
        let e = embed(&guest, &host).unwrap();
        let workload = Workload::from_task_graph(&guest);
        let mut objective =
            MakespanObjective::new(Network::new(host.clone()), workload.clone(), 1).unwrap();
        let table = e.to_table().unwrap();
        let cost = objective.rebuild(&table);
        let stats = simulate(
            &Network::new(host),
            &workload,
            &Placement::from_embedding(&e),
            1,
        );
        assert_eq!(cost.primary, stats.cycles);
        assert_eq!(cost.secondary, stats.total_hops);
    }

    #[test]
    fn delta_swaps_match_full_resimulation_exactly() {
        // Differential check: a long random walk of incremental swap
        // updates must report, at every step, exactly the cost a full
        // re-simulation computes — including multi-round schedules.
        for (guest, host, rounds) in [
            (Grid::torus(shape(&[3, 4])), Grid::mesh(shape(&[3, 4])), 1),
            (Grid::torus(shape(&[4, 6])), Grid::mesh(shape(&[4, 6])), 2),
            (Grid::ring(16).unwrap(), Grid::mesh(shape(&[4, 4])), 3),
        ] {
            let e = embed(&guest, &host).unwrap();
            let workload = Workload::from_task_graph(&guest);
            let network = Network::new(host.clone());
            let mut objective =
                MakespanObjective::new(Network::new(host.clone()), workload.clone(), rounds)
                    .unwrap();
            let mut table = e.to_table().unwrap();
            let mut cost = objective.rebuild(&table);
            assert_eq!(cost, full_cost(&network, &workload, rounds, &table));
            let n = guest.size();
            let mut rng = StdRng::seed_from_u64(23);
            for _ in 0..120 {
                let a = rng.gen_range(0u64..n);
                let mut b = rng.gen_range(0u64..n - 1);
                if b >= a {
                    b += 1;
                }
                table.swap(a as usize, b as usize);
                cost = objective.apply_swap(&table, a, b);
                assert_eq!(
                    cost,
                    full_cost(&network, &workload, rounds, &table),
                    "{guest} -> {host} rounds={rounds} after swapping {a},{b}"
                );
            }
            // And the incremental end state equals a fresh rebuild.
            let mut fresh =
                MakespanObjective::new(Network::new(host.clone()), workload.clone(), rounds)
                    .unwrap();
            assert_eq!(cost, fresh.rebuild(&table));
        }
    }

    #[test]
    fn swaps_outside_the_workload_are_free_and_exact() {
        // A workload over fewer tasks than the placement has nodes: swapping
        // two unused tasks must keep the cached cost — and agree with the
        // full simulator, which never sees the unused tasks at all.
        let host = Grid::mesh(shape(&[4, 4]));
        let workload = Workload::uniform_random(8, 24, 5);
        let network = Network::new(host.clone());
        let mut objective =
            MakespanObjective::new(Network::new(host), workload.clone(), 1).unwrap();
        let mut table: Vec<u64> = (0..16).collect();
        let before = objective.rebuild(&table);
        table.swap(12, 15);
        let after = objective.apply_swap(&table, 12, 15);
        assert_eq!(before, after);
        assert_eq!(after, full_cost(&network, &workload, 1, &table));
        // A swap moving one workload task and one unused task re-routes
        // only the touched pairs and still matches.
        table.swap(2, 14);
        let mixed = objective.apply_swap(&table, 2, 14);
        assert_eq!(mixed, full_cost(&network, &workload, 1, &table));
    }

    #[test]
    fn disjoint_swap_batches_match_full_resimulation_and_undo() {
        // A segment reversal reaches the objective as one batch of disjoint
        // transpositions (one arbitration pass); it must price the final
        // table exactly like the full simulator and undo by re-applying.
        let guest = Grid::torus(shape(&[4, 6]));
        let host = Grid::mesh(shape(&[4, 6]));
        let e = embed(&guest, &host).unwrap();
        let workload = Workload::from_task_graph(&guest);
        let network = Network::new(host.clone());
        let mut objective =
            MakespanObjective::new(Network::new(host), workload.clone(), 2).unwrap();
        let mut table = e.to_table().unwrap();
        let before = objective.rebuild(&table);
        // Reverse the run 5..=10: transpositions (5,10), (6,9), (7,8).
        let swaps = [(5u64, 10u64), (6, 9), (7, 8)];
        let batched = objective.apply_disjoint_swaps(&mut table, &swaps);
        assert_eq!(batched, full_cost(&network, &workload, 2, &table));
        // Matches the per-swap default path on a fresh objective.
        let mut sequential = MakespanObjective::new(
            Network::new(Grid::mesh(shape(&[4, 6]))),
            workload.clone(),
            2,
        )
        .unwrap();
        let mut seq_table = e.to_table().unwrap();
        sequential.rebuild(&seq_table);
        let mut seq_cost = before;
        for &(a, b) in &swaps {
            seq_table.swap(a as usize, b as usize);
            seq_cost = sequential.apply_swap(&seq_table, a, b);
        }
        assert_eq!(batched, seq_cost);
        assert_eq!(table, seq_table);
        // Re-applying the same batch undoes the reversal exactly.
        let undone = objective.apply_disjoint_swaps(&mut table, &swaps);
        assert_eq!(undone, before);
        assert_eq!(table, e.to_table().unwrap());
    }

    #[test]
    fn rejected_moves_undo_exactly() {
        let guest = Grid::torus(shape(&[3, 4]));
        let host = Grid::mesh(shape(&[3, 4]));
        let e = embed(&guest, &host).unwrap();
        let workload = Workload::from_task_graph(&guest);
        let mut objective = MakespanObjective::new(Network::new(host), workload, 1).unwrap();
        let mut table = e.to_table().unwrap();
        let before = objective.rebuild(&table);
        table.swap(3, 9);
        objective.apply_swap(&table, 3, 9);
        table.swap(3, 9);
        let after = objective.apply_swap(&table, 3, 9);
        assert_eq!(before, after);
    }

    #[test]
    fn optimizer_never_worsens_the_makespan() {
        let guest = Grid::torus(shape(&[3, 4]));
        let host = Grid::mesh(shape(&[3, 4]));
        let e = embed(&guest, &host).unwrap();
        let workload = Workload::from_task_graph(&guest);
        let mut objective =
            MakespanObjective::new(Network::new(host.clone()), workload, 1).unwrap();
        let outcome = Optimizer::new(OptimizerConfig {
            seed: 5,
            steps: 400,
            ..OptimizerConfig::default()
        })
        .optimize(&e, &mut objective)
        .unwrap();
        assert!(outcome.report.best <= outcome.report.initial);
        assert!(outcome.embedding.is_injective());
        // The returned table reproduces the reported best cost.
        assert_eq!(objective.rebuild(&outcome.table), outcome.report.best);
    }

    #[test]
    fn oversized_schedules_are_typed_errors() {
        // pairs × rounds beyond u32::MAX would truncate the arbitration
        // message indices; the constructor must refuse, not wrap.
        let host = Grid::mesh(shape(&[2, 3]));
        let workload = Workload::from_task_graph(&Grid::ring(6).unwrap());
        let pairs = workload.pairs().len();
        let rounds = (u32::MAX as usize / pairs) + 1;
        let err = MakespanObjective::new(Network::new(host), workload, rounds)
            .err()
            .expect("oversized schedule must be rejected");
        assert_eq!(err, MakespanError::ScheduleTooLarge { pairs, rounds });
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn zero_rounds_cost_nothing() {
        let guest = Grid::ring(6).unwrap();
        let host = Grid::mesh(shape(&[2, 3]));
        let workload = Workload::from_task_graph(&guest);
        let mut objective = MakespanObjective::new(Network::new(host), workload, 0).unwrap();
        let table: Vec<u64> = (0..6).collect();
        let cost = objective.rebuild(&table);
        assert_eq!(
            cost,
            Cost {
                primary: 0,
                secondary: 0
            }
        );
    }
}
