//! The simulated-makespan optimization objective.
//!
//! [`MakespanObjective`] plugs the store-and-forward simulator into the
//! [`embeddings::optim`] local-search engine: the cost of a placement table
//! is the makespan (cycles) of simulating a fixed workload with that table
//! as the task placement, validated through [`Placement::try_from_table`].
//!
//! Unlike the congestion and dilation objectives, the makespan has no useful
//! incremental decomposition — a single swap can rearrange arbitration
//! outcomes across the whole schedule — so both [`Objective::rebuild`] and
//! [`Objective::apply_swap`] re-simulate from scratch. The trait allows
//! full-recompute implementations; they are simply slower per move, which is
//! why sweep configurations default this objective to fewer steps.

use embeddings::optim::{Cost, Objective};

use crate::network::Network;
use crate::sim::{simulate, Placement};
use crate::traffic::Workload;

/// Minimize the simulated makespan (cycles to deliver the workload under
/// one-message-per-link arbitration), with the total routed hop count as the
/// tie-breaker.
pub struct MakespanObjective {
    network: Network,
    workload: Workload,
    rounds: usize,
}

impl MakespanObjective {
    /// Creates the objective: `workload` is simulated on `network` for
    /// `rounds` rounds per evaluation.
    pub fn new(network: Network, workload: Workload, rounds: usize) -> Self {
        MakespanObjective {
            network,
            workload,
            rounds,
        }
    }

    fn evaluate(&self, table: &[u64]) -> Cost {
        let placement = Placement::try_from_table(table.to_vec())
            .expect("optimizer tables are permutations, hence injective");
        let stats = simulate(&self.network, &self.workload, &placement, self.rounds);
        Cost {
            primary: stats.cycles,
            secondary: stats.total_hops,
        }
    }
}

impl Objective for MakespanObjective {
    fn name(&self) -> &'static str {
        "makespan"
    }

    fn rebuild(&mut self, table: &[u64]) -> Cost {
        self.evaluate(table)
    }

    fn apply_swap(&mut self, table: &[u64], _a: u64, _b: u64) -> Cost {
        self.evaluate(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embeddings::auto::embed;
    use embeddings::optim::{Optimizer, OptimizerConfig};
    use topology::{Grid, Shape};

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn makespan_objective_matches_direct_simulation() {
        let guest = Grid::ring(12).unwrap();
        let host = Grid::mesh(shape(&[3, 4]));
        let e = embed(&guest, &host).unwrap();
        let workload = Workload::from_task_graph(&guest);
        let mut objective = MakespanObjective::new(Network::new(host.clone()), workload.clone(), 1);
        let table = e.to_table().unwrap();
        let cost = objective.rebuild(&table);
        let stats = simulate(
            &Network::new(host),
            &workload,
            &Placement::from_embedding(&e),
            1,
        );
        assert_eq!(cost.primary, stats.cycles);
        assert_eq!(cost.secondary, stats.total_hops);
    }

    #[test]
    fn optimizer_never_worsens_the_makespan() {
        let guest = Grid::torus(shape(&[3, 4]));
        let host = Grid::mesh(shape(&[3, 4]));
        let e = embed(&guest, &host).unwrap();
        let workload = Workload::from_task_graph(&guest);
        let mut objective = MakespanObjective::new(Network::new(host.clone()), workload, 1);
        let outcome = Optimizer::new(OptimizerConfig {
            seed: 5,
            steps: 60,
            ..OptimizerConfig::default()
        })
        .optimize(&e, &mut objective)
        .unwrap();
        assert!(outcome.report.best <= outcome.report.initial);
        assert!(outcome.embedding.is_injective());
        // The returned table reproduces the reported best cost.
        assert_eq!(objective.rebuild(&outcome.table), outcome.report.best);
    }
}
