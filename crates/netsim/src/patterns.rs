//! Classic communication patterns from the parallel-processing literature.
//!
//! The paper motivates embeddings with task graphs from image processing,
//! robotics and scientific computation. Beyond plain neighbor exchange
//! ([`Workload::from_task_graph`]), interconnection networks are customarily
//! stressed with a standard set of permutation and collective patterns; this
//! module provides reproducible constructors for them so the examples and
//! benchmarks can compare placements under more than one kind of traffic.
//!
//! All patterns are expressed over *task indices*; where a task is placed is
//! decided separately by a [`Placement`](crate::sim::Placement) — typically an
//! embedding from the `embeddings` crate.

use crate::traffic::Workload;

/// Matrix transpose over a `rows × cols` logical task grid: task `(i, j)`
/// sends to task `(j, i)`. Tasks are numbered row-major; the workload has
/// `rows · cols` tasks and one message per off-diagonal task.
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
pub fn transpose(rows: u64, cols: u64) -> Workload {
    assert!(rows > 0 && cols > 0, "transpose needs a non-empty grid");
    let tasks = rows * cols;
    let mut pairs = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            let src = i * cols + j;
            // The destination is (j, i) in the transposed (cols × rows) grid,
            // numbered row-major over that grid — a permutation of [rows·cols]
            // for any rows and cols, and the familiar matrix transpose when
            // the grid is square.
            let dst = j * rows + i;
            if src != dst {
                pairs.push((src, dst));
            }
        }
    }
    Workload::try_new(tasks, pairs).expect("generated pairs are in range")
}

/// Bit-reversal permutation over `2^bits` tasks: task `i` sends to the task
/// whose index is `i` with its `bits` low-order bits reversed. A classic
/// adversarial pattern for dimension-ordered routing.
///
/// # Panics
///
/// Panics if `bits` is zero or larger than 63.
pub fn bit_reversal(bits: u32) -> Workload {
    assert!((1..=63).contains(&bits), "bits must be in 1..=63");
    let tasks = 1u64 << bits;
    let pairs = (0..tasks)
        .filter_map(|i| {
            let r = i.reverse_bits() >> (64 - bits);
            (i != r).then_some((i, r))
        })
        .collect();
    Workload::try_new(tasks, pairs).expect("generated pairs are in range")
}

/// Bit-complement permutation over `2^bits` tasks: task `i` sends to `!i`
/// (within `bits` bits). Every message crosses the network bisection.
///
/// # Panics
///
/// Panics if `bits` is zero or larger than 63.
pub fn bit_complement(bits: u32) -> Workload {
    assert!((1..=63).contains(&bits), "bits must be in 1..=63");
    let tasks = 1u64 << bits;
    let mask = tasks - 1;
    let pairs = (0..tasks).map(|i| (i, !i & mask)).collect();
    Workload::try_new(tasks, pairs).expect("generated pairs are in range")
}

/// Perfect-shuffle permutation over `2^bits` tasks: task `i` sends to the
/// task whose index is `i` rotated left by one bit (within `bits` bits).
///
/// # Panics
///
/// Panics if `bits` is zero or larger than 63.
pub fn shuffle(bits: u32) -> Workload {
    assert!((1..=63).contains(&bits), "bits must be in 1..=63");
    let tasks = 1u64 << bits;
    let mask = tasks - 1;
    let pairs = (0..tasks)
        .filter_map(|i| {
            let s = ((i << 1) | (i >> (bits - 1))) & mask;
            (i != s).then_some((i, s))
        })
        .collect();
    Workload::try_new(tasks, pairs).expect("generated pairs are in range")
}

/// Cyclic shift: task `i` sends to task `(i + offset) mod tasks`.
///
/// # Panics
///
/// Panics if `tasks` is zero.
pub fn shift(tasks: u64, offset: u64) -> Workload {
    assert!(tasks > 0, "shift needs at least one task");
    let offset = offset % tasks;
    let pairs = (0..tasks)
        .filter_map(|i| {
            let d = (i + offset) % tasks;
            (i != d).then_some((i, d))
        })
        .collect();
    Workload::try_new(tasks, pairs).expect("generated pairs are in range")
}

/// Tornado traffic: task `i` sends to task `(i + ⌈tasks/2⌉ − 1) mod tasks`,
/// the classic worst case for minimal routing on rings and toruses.
///
/// # Panics
///
/// Panics if `tasks` is smaller than 3 (the pattern degenerates otherwise).
pub fn tornado(tasks: u64) -> Workload {
    assert!(tasks >= 3, "tornado needs at least three tasks");
    shift(tasks, tasks.div_ceil(2) - 1)
}

/// Hot-spot traffic: every task except `target` sends `messages_per_task`
/// messages to `target`.
///
/// # Panics
///
/// Panics if `target >= tasks` or `tasks < 2`.
pub fn hotspot(tasks: u64, target: u64, messages_per_task: usize) -> Workload {
    assert!(tasks >= 2, "hotspot needs at least two tasks");
    assert!(target < tasks, "target task out of range");
    let mut pairs = Vec::with_capacity((tasks as usize - 1) * messages_per_task);
    for i in (0..tasks).filter(|&i| i != target) {
        for _ in 0..messages_per_task {
            pairs.push((i, target));
        }
    }
    Workload::try_new(tasks, pairs).expect("generated pairs are in range")
}

/// All-to-all personalized exchange: every ordered pair of distinct tasks
/// exchanges one message. `tasks² − tasks` messages per round.
///
/// # Panics
///
/// Panics if `tasks < 2`.
pub fn all_to_all(tasks: u64) -> Workload {
    assert!(tasks >= 2, "all-to-all needs at least two tasks");
    let mut pairs = Vec::with_capacity((tasks * (tasks - 1)) as usize);
    for i in 0..tasks {
        for j in 0..tasks {
            if i != j {
                pairs.push((i, j));
            }
        }
    }
    Workload::try_new(tasks, pairs).expect("generated pairs are in range")
}

/// One-to-all broadcast from `root`: the root sends one message to every
/// other task.
///
/// # Panics
///
/// Panics if `root >= tasks` or `tasks < 2`.
pub fn broadcast(tasks: u64, root: u64) -> Workload {
    assert!(tasks >= 2, "broadcast needs at least two tasks");
    assert!(root < tasks, "root task out of range");
    let pairs = (0..tasks)
        .filter(|&i| i != root)
        .map(|i| (root, i))
        .collect();
    Workload::try_new(tasks, pairs).expect("generated pairs are in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(workload: &Workload) -> bool {
        // Every task appears at most once as a source and at most once as a
        // destination (fixed points are dropped from the pair list).
        let mut sources = std::collections::HashSet::new();
        let mut destinations = std::collections::HashSet::new();
        workload
            .pairs()
            .iter()
            .all(|&(a, b)| sources.insert(a) && destinations.insert(b))
    }

    #[test]
    fn transpose_is_a_permutation_with_fixed_diagonal() {
        let w = transpose(4, 4);
        assert_eq!(w.tasks(), 16);
        // 4 diagonal tasks send nothing.
        assert_eq!(w.messages_per_round(), 12);
        assert!(is_permutation(&w));
        // (1, 2) → (2, 1): 1·4+2 = 6 → 2·4+1 = 9.
        assert!(w.pairs().contains(&(6, 9)));
    }

    #[test]
    fn non_square_transpose_is_still_a_permutation() {
        for (rows, cols) in [(2, 3), (3, 5), (4, 2)] {
            let w = transpose(rows, cols);
            assert!(is_permutation(&w), "{rows}×{cols}");
            assert!(w
                .pairs()
                .iter()
                .all(|&(a, b)| a < rows * cols && b < rows * cols));
        }
    }

    #[test]
    fn bit_reversal_is_an_involution() {
        let w = bit_reversal(4);
        assert_eq!(w.tasks(), 16);
        assert!(is_permutation(&w));
        for &(a, b) in w.pairs() {
            assert!(w.pairs().contains(&(b, a)));
        }
        // 0b0001 → 0b1000.
        assert!(w.pairs().contains(&(1, 8)));
    }

    #[test]
    fn bit_complement_pairs_opposite_corners() {
        let w = bit_complement(4);
        assert_eq!(w.messages_per_round(), 16);
        assert!(is_permutation(&w));
        assert!(w.pairs().contains(&(0, 15)));
        assert!(w.pairs().contains(&(5, 10)));
    }

    #[test]
    fn shuffle_rotates_bits_left() {
        let w = shuffle(3);
        // 0b011 → 0b110, 0b100 → 0b001.
        assert!(w.pairs().contains(&(3, 6)));
        assert!(w.pairs().contains(&(4, 1)));
        assert!(is_permutation(&w));
    }

    #[test]
    fn shift_and_tornado_wrap_around() {
        let w = shift(10, 3);
        assert_eq!(w.messages_per_round(), 10);
        assert!(w.pairs().contains(&(9, 2)));
        let t = tornado(8);
        // ⌈8/2⌉ − 1 = 3.
        assert!(t.pairs().contains(&(0, 3)));
        assert!(t.pairs().contains(&(7, 2)));
        assert!(is_permutation(&t));
    }

    #[test]
    fn shift_by_zero_or_multiple_of_n_is_empty() {
        assert_eq!(shift(6, 0).messages_per_round(), 0);
        assert_eq!(shift(6, 12).messages_per_round(), 0);
    }

    #[test]
    fn hotspot_concentrates_on_the_target() {
        let w = hotspot(9, 4, 2);
        assert_eq!(w.messages_per_round(), 16);
        assert!(w.pairs().iter().all(|&(a, b)| b == 4 && a != 4));
    }

    #[test]
    fn all_to_all_counts() {
        let w = all_to_all(5);
        assert_eq!(w.messages_per_round(), 20);
        assert!(w.pairs().iter().all(|&(a, b)| a != b));
    }

    #[test]
    fn broadcast_reaches_everyone_once() {
        let w = broadcast(7, 2);
        assert_eq!(w.messages_per_round(), 6);
        assert!(w.pairs().iter().all(|&(a, _)| a == 2));
        let destinations: std::collections::HashSet<u64> =
            w.pairs().iter().map(|&(_, b)| b).collect();
        assert_eq!(destinations.len(), 6);
    }

    #[test]
    #[should_panic(expected = "target task out of range")]
    fn hotspot_rejects_bad_target() {
        let _ = hotspot(4, 4, 1);
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn bit_reversal_rejects_zero_bits() {
        let _ = bit_reversal(0);
    }
}
