//! Property-based tests for the chaos subsystem: the detour router must
//! agree with the BFS ground truth on reachability, its delivered paths must
//! stay within the documented overhead bound, and a `FaultPlan` seed must
//! reproduce bit-identical statistics.

use netsim::chaos::{
    masked_distances_to, simulate_chaos, ChaosRouting, DetourRouter, FaultPlan, RouteOutcome,
    TableRouter,
};
use netsim::{Network, Placement, Workload};
use proptest::prelude::*;
use topology::{Grid, Shape};

/// Strategy producing a small faulted 2-D or 3-D grid: the network plus a
/// seeded plan failing a fraction of its links (and sometimes nodes).
fn faulted_network() -> impl Strategy<Value = (Network, FaultPlan)> {
    let shape = proptest::collection::vec(2u32..=5, 2..=3)
        .prop_filter("keep sizes manageable", |radices| {
            radices.iter().map(|&l| l as u64).product::<u64>() <= 100
        });
    (shape, proptest::bool::ANY, 0u32..=30, 0u64..=2, 0u64..1000).prop_map(
        |(radices, torus, percent, nodes, seed)| {
            let shape = Shape::new(radices).unwrap();
            let grid = if torus {
                Grid::torus(shape)
            } else {
                Grid::mesh(shape)
            };
            let mut plan = FaultPlan::random_link_percent(&grid, percent, seed);
            for &node in FaultPlan::random_nodes(&grid, nodes, seed ^ 0xF00D)
                .failed_nodes()
                .iter()
            {
                plan = plan.fail_node(node);
            }
            (Network::new(grid), plan)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn detour_agrees_with_bfs_on_reachability_and_respects_the_hop_bound(
        (network, plan) in faulted_network(),
        pair in (0u64..100, 0u64..100),
    ) {
        let n = network.size();
        let (from, to) = (pair.0 % n, pair.1 % n);
        let mask = plan.mask_at(network.grid(), 0);
        let detour = DetourRouter::new(&network, &mask);
        let bfs = masked_distances_to(&network, &mask, to);
        let reachable = mask.node_up(from) && mask.node_up(to) && bfs[from as usize] != u64::MAX;
        match detour.route(from, to) {
            RouteOutcome::Delivered { path, detour_hops } => {
                prop_assert!(reachable, "detour delivered an unreachable pair");
                // The delivered path is a valid masked walk …
                let mut current = from;
                for &next in &path {
                    prop_assert!(network.grid().adjacent(current, next).unwrap());
                    prop_assert!(mask.node_up(next));
                    current = next;
                }
                if from != to {
                    prop_assert_eq!(current, to);
                }
                // … whose length is the pristine distance plus the reported
                // detour, bounded by masked-BFS hops + 2 × the misroute
                // budget.
                prop_assert_eq!(path.len() as u64, network.hops(from, to) + detour_hops);
                prop_assert!(
                    path.len() as u64 <= bfs[from as usize] + 2 * detour.budget(),
                    "path {} exceeds bfs {} + 2×budget {}",
                    path.len(),
                    bfs[from as usize],
                    detour.budget()
                );
            }
            RouteOutcome::Unreachable { .. } => {
                prop_assert!(!reachable, "detour dropped a BFS-reachable pair");
            }
        }
    }

    #[test]
    fn table_router_delivers_exactly_the_bfs_distance(
        (network, plan) in faulted_network(),
        pair in (0u64..100, 0u64..100),
    ) {
        let n = network.size();
        let (from, to) = (pair.0 % n, pair.1 % n);
        let mask = plan.mask_at(network.grid(), 0);
        let mut table = TableRouter::new(&network, &mask);
        let bfs = masked_distances_to(&network, &mask, to);
        match table.route(from, to) {
            RouteOutcome::Delivered { path, .. } => {
                prop_assert_eq!(path.len() as u64, bfs[from as usize]);
            }
            RouteOutcome::Unreachable { .. } => {
                prop_assert!(
                    !mask.node_up(from) || !mask.node_up(to) || bfs[from as usize] == u64::MAX
                );
            }
        }
    }

    #[test]
    fn faulted_simulations_conserve_messages_and_never_panic(
        (network, plan) in faulted_network(),
        messages in 1usize..48,
        rounds in 1usize..3,
        seed in 0u64..1000,
    ) {
        let n = network.size();
        let workload = Workload::uniform_random(n, messages, seed);
        let placement = Placement::identity(n);
        for routing in [ChaosRouting::Detour, ChaosRouting::BfsTable] {
            let stats = simulate_chaos(&network, &workload, &placement, rounds, &plan, routing);
            prop_assert_eq!(stats.messages as usize, messages * rounds);
            prop_assert_eq!(stats.delivered + stats.dropped, stats.messages);
            prop_assert!(stats.cycles >= stats.max_hops);
            prop_assert!(stats.total_hops >= stats.delivered); // no self traffic
            if plan.is_empty() {
                prop_assert_eq!(stats.dropped, 0);
                prop_assert_eq!(stats.detour_hops, 0);
            }
        }
    }

    #[test]
    fn a_fault_plan_seed_reproduces_bit_identical_stats(
        (network, plan) in faulted_network(),
        messages in 1usize..32,
        seed in 0u64..1000,
    ) {
        // The plan (not the masks derived from it) is the value: rebuilding
        // the plan from its own seed and text serialization must reproduce
        // exactly the same simulation statistics.
        let n = network.size();
        let workload = Workload::uniform_random(n, messages, seed);
        let placement = Placement::identity(n);
        let reparsed = FaultPlan::parse(&plan.to_text()).unwrap();
        prop_assert_eq!(&reparsed, &plan);
        for routing in [ChaosRouting::Detour, ChaosRouting::BfsTable] {
            let once = simulate_chaos(&network, &workload, &placement, 2, &plan, routing);
            let again = simulate_chaos(&network, &workload, &placement, 2, &reparsed, routing);
            prop_assert_eq!(once, again);
        }
    }
}
