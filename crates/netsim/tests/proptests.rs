//! Property-based tests for the routing simulator: routes are always valid
//! walks of the right length, permutation patterns are permutations, and the
//! simulator's conservation laws hold for random workloads and placements.

use netsim::patterns;
use netsim::{simulate, simulate_detailed, Network, Placement, Router, RoutingAlgorithm, Workload};
use proptest::prelude::*;
use topology::{Grid, Shape};

/// Strategy producing a small network (torus or mesh, ≤ 128 nodes).
fn small_network() -> impl Strategy<Value = Network> {
    let shape = proptest::collection::vec(2u32..=5, 1..=3)
        .prop_filter("keep sizes manageable", |radices| {
            radices.iter().map(|&l| l as u64).product::<u64>() <= 128
        });
    (shape, proptest::bool::ANY).prop_map(|(radices, torus)| {
        let shape = Shape::new(radices).unwrap();
        Network::new(if torus {
            Grid::torus(shape)
        } else {
            Grid::mesh(shape)
        })
    })
}

/// Checks that `route` is a walk of adjacent nodes from `from` to `to`.
fn assert_walk(network: &Network, from: u64, to: u64, route: &[u64]) -> Result<(), TestCaseError> {
    let mut current = from;
    for &next in route {
        prop_assert!(network.grid().adjacent(current, next).unwrap());
        current = next;
    }
    if from != to {
        prop_assert_eq!(current, to);
    } else {
        prop_assert!(route.is_empty());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_routing_algorithm_produces_valid_walks(
        network in small_network(),
        pair in (0u64..128, 0u64..128),
        seed in 0u64..1000,
    ) {
        let n = network.size();
        let (from, to) = (pair.0 % n, pair.1 % n);
        for algorithm in [
            RoutingAlgorithm::DimensionOrdered,
            RoutingAlgorithm::ReverseDimensionOrdered,
            RoutingAlgorithm::Valiant { seed },
        ] {
            let router = Router::new(&network, algorithm);
            let route = router.route(&network, from, to);
            assert_walk(&network, from, to, &route)?;
            match algorithm {
                RoutingAlgorithm::Valiant { .. } => {
                    prop_assert!(route.len() as u64 <= 2 * network.grid().diameter());
                }
                _ => prop_assert_eq!(route.len() as u64, network.hops(from, to)),
            }
        }
    }

    #[test]
    fn permutation_patterns_have_unique_sources_and_destinations(bits in 1u32..=6) {
        for workload in [
            patterns::bit_reversal(bits),
            patterns::bit_complement(bits),
            patterns::shuffle(bits),
        ] {
            let mut sources = std::collections::HashSet::new();
            let mut destinations = std::collections::HashSet::new();
            for &(a, b) in workload.pairs() {
                prop_assert!(a < workload.tasks() && b < workload.tasks());
                prop_assert!(a != b);
                prop_assert!(sources.insert(a));
                prop_assert!(destinations.insert(b));
            }
        }
    }

    #[test]
    fn shift_and_transpose_are_permutations(
        rows in 2u64..=6,
        cols in 2u64..=6,
        offset in 0u64..=40,
    ) {
        for workload in [patterns::transpose(rows, cols), patterns::shift(rows * cols, offset)] {
            let mut destinations = std::collections::HashSet::new();
            for &(a, b) in workload.pairs() {
                prop_assert!(a != b);
                prop_assert!(destinations.insert(b));
            }
        }
    }

    #[test]
    fn simulation_conservation_laws_hold_for_random_traffic(
        network in small_network(),
        messages in 1usize..64,
        seed in 0u64..1000,
        rounds in 1usize..3,
    ) {
        let n = network.size();
        let workload = Workload::uniform_random(n, messages, seed);
        let placement = Placement::identity(n);
        let aggregate = simulate(&network, &workload, &placement, rounds);
        prop_assert_eq!(aggregate.messages as usize, messages * rounds);
        prop_assert!(aggregate.max_hops <= network.grid().diameter());
        prop_assert!(aggregate.cycles >= aggregate.max_hops);
        prop_assert!(aggregate.total_hops >= aggregate.messages); // no self traffic
        prop_assert!(aggregate.total_hops <= aggregate.messages * network.grid().diameter());

        let detailed = simulate_detailed(
            &network,
            &workload,
            &placement,
            RoutingAlgorithm::DimensionOrdered,
            rounds,
        );
        prop_assert_eq!(detailed.messages, aggregate.messages);
        prop_assert_eq!(detailed.total_hops, aggregate.total_hops);
        prop_assert_eq!(detailed.max_hops, aggregate.max_hops);
        prop_assert_eq!(detailed.cycles, aggregate.cycles);
        prop_assert_eq!(detailed.link_loads.total_traversals(), detailed.total_hops);
        prop_assert_eq!(detailed.latency.max, detailed.cycles);
        prop_assert!(detailed.latency.p50 <= detailed.latency.p95);
        prop_assert!(detailed.latency.p95 <= detailed.latency.p99);
        prop_assert!(detailed.latency.p99 <= detailed.latency.max);
    }

    #[test]
    fn delta_makespan_equals_full_resimulation(
        network in small_network(),
        messages in 4usize..48,
        rounds in 1usize..3,
        seed in 0u64..1000,
        swaps in proptest::collection::vec((0u64..128, 0u64..127), 1..40),
    ) {
        // The delta-aware MakespanObjective must report, after every
        // incremental swap, exactly the (cycles, total hops) a full
        // re-simulation of the same table computes.
        use embeddings::optim::{Cost, Objective};
        use netsim::MakespanObjective;

        let n = network.size();
        let workload = Workload::uniform_random(n, messages, seed);
        let mut table: Vec<u64> = (0..n).collect();
        let mut objective =
            MakespanObjective::new(network.clone(), workload.clone(), rounds).unwrap();
        let mut cost = objective.rebuild(&table);
        let full = |table: &[u64]| -> Cost {
            let placement = Placement::try_from_table(table.to_vec()).unwrap();
            let stats = simulate(&network, &workload, &placement, rounds);
            Cost { primary: stats.cycles, secondary: stats.total_hops }
        };
        prop_assert_eq!(cost, full(&table));
        for (raw_a, raw_b) in swaps {
            let a = raw_a % n;
            let mut b = raw_b % (n - 1).max(1);
            if b >= a {
                b = (b + 1) % n;
            }
            table.swap(a as usize, b as usize);
            cost = objective.apply_swap(&table, a, b);
            prop_assert_eq!(cost, full(&table), "after swapping {} and {}", a, b);
        }
    }

    #[test]
    fn embedding_placements_keep_max_hops_at_the_dilation(
        torus_guest in proptest::bool::ANY,
        torus_host in proptest::bool::ANY,
    ) {
        // Ring guest of 24 nodes on the paper's (4,2,3) host of either kind.
        let shape = Shape::new(vec![4, 2, 3]).unwrap();
        let host = if torus_host { Grid::torus(shape) } else { Grid::mesh(shape) };
        let guest = if torus_guest {
            Grid::ring(24).unwrap()
        } else {
            Grid::line(24).unwrap()
        };
        let embedding = embeddings::auto::embed(&guest, &host).unwrap();
        let stats = netsim::sim::simulate_embedding(&embedding, 1);
        prop_assert_eq!(stats.max_hops, embedding.dilation());
    }
}
