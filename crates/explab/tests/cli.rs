//! Exit-code and error-message tests of the `lab` CLI.
//!
//! Every failure mode must print a `Display`-rendered message to stderr and
//! exit non-zero — never panic. Exit codes follow the contract documented in
//! `src/bin/lab.rs`: `1` for usage/plan/IO errors, `2` for failed checks.

use std::path::PathBuf;
use std::process::{Command, Output};

fn lab(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lab"))
        .args(args)
        .output()
        .expect("spawn lab")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// A throwaway file path in the target temp dir.
fn temp_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("lab-cli-test-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp plan");
    path
}

#[test]
fn no_subcommand_is_a_usage_error() {
    let out = lab(&[]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("usage"));
}

#[test]
fn unknown_subcommand_and_stray_arguments_exit_one() {
    let out = lab(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("unknown subcommand"));

    let out = lab(&["plans", "--what"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("unexpected argument"));
}

#[test]
fn unknown_builtin_plan_prints_display_message() {
    let out = lab(&["run", "--plan", "nope"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("unknown built-in plan"), "{stderr}");
    assert!(stderr.contains("nope"));
}

#[test]
fn plan_file_parse_failures_name_the_line_and_exit_one() {
    let path = temp_file("bad-seed.plan", "seed = x\nfamily paper\n");
    let out = lab(&["run", "--plan-file", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("line 1"), "{stderr}");
    assert!(stderr.contains("seed must be a u64"), "{stderr}");
}

#[test]
fn invalid_optimizer_settings_exit_one() {
    let path = temp_file("bad-optimize.plan", "optimize = warp\nfamily paper\n");
    let out = lab(&["expand", "--plan-file", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr_of(&out).contains("optimize must be"),
        "{}",
        stderr_of(&out)
    );

    let path = temp_file("stray-steps.plan", "optim_steps = 10\nfamily paper\n");
    let out = lab(&["expand", "--plan-file", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr_of(&out).contains("optim_steps requires"),
        "{}",
        stderr_of(&out)
    );
}

#[test]
fn missing_plan_file_exits_one_with_io_message() {
    let out = lab(&["run", "--plan-file", "/definitely/not/here.plan"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("cannot read"));
}

#[test]
fn invalid_workers_values_exit_one() {
    for bad in ["x", "-3", "1.5", ""] {
        let out = lab(&["run", "--plan", "smoke", "--workers", bad]);
        assert_eq!(out.status.code(), Some(1), "--workers {bad:?}");
        assert!(
            stderr_of(&out).contains("--workers must be an integer"),
            "--workers {bad:?}: {}",
            stderr_of(&out)
        );
    }
    // A value that parses but would spawn an absurd number of OS threads is
    // rejected up front instead of panicking in the executor.
    let out = lab(&["run", "--plan", "smoke", "--workers", "1000000"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("at most"), "{}", stderr_of(&out));
}

#[test]
fn mutually_exclusive_plan_flags_exit_one() {
    let out = lab(&["run", "--plan", "smoke", "--plan-file", "x.plan"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("mutually exclusive"));
}

#[test]
fn bad_format_is_rejected_before_the_sweep_runs() {
    let out = lab(&["run", "--plan", "smoke", "--format", "yaml"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("--format must be"));
}

#[test]
fn report_check_against_a_missing_file_exits_one() {
    let out = lab(&[
        "report",
        "--check",
        "--out",
        "/definitely/not/EXPERIMENTS.md",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("cannot read"));
}

#[test]
fn successful_tiny_run_exits_zero() {
    let path = temp_file(
        "tiny.plan",
        "name = tiny\nseed = 3\noptimize = congestion\noptim_steps = 50\n\
         optim_shards = 2\nfamily ring_into max_size=8 max_dim=2\n",
    );
    let out = lab(&[
        "run",
        "--plan-file",
        path.to_str().unwrap(),
        "--workers",
        "2",
    ]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("0 bound violations"));
}

#[test]
fn invalid_shard_settings_exit_one() {
    let path = temp_file(
        "zero-shards.plan",
        "optimize = congestion\noptim_shards = 0\nfamily paper\n",
    );
    let out = lab(&["expand", "--plan-file", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr_of(&out).contains("optim_shards must be at least 1"),
        "{}",
        stderr_of(&out)
    );

    let path = temp_file("stray-shards.plan", "optim_shards = 2\nfamily paper\n");
    let out = lab(&["expand", "--plan-file", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr_of(&out).contains("optim_shards requires"),
        "{}",
        stderr_of(&out)
    );
}

#[test]
fn doccheck_accepts_valid_cross_references() {
    let experiments = temp_file(
        "EXPERIMENTS.md",
        "# EXPERIMENTS\n\n## Table 1 — things\n\n## Table 2 — more things\n",
    );
    // Validate the generated file against itself (self-references only).
    let out = lab(&["doccheck", experiments.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("all valid"));
    std::fs::remove_file(&experiments).ok();
}

#[test]
fn doccheck_rejects_dangling_links_tables_and_paths() {
    let doc = temp_file(
        "dangling.md",
        "see [gone](no-such-file.md) and `crates/nope/src/lib.rs`\n",
    );
    let out = lab(&["doccheck", doc.to_str().unwrap()]);
    std::fs::remove_file(&doc).ok();
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("no-such-file.md"), "{stderr}");
    assert!(stderr.contains("crates/nope/src/lib.rs"), "{stderr}");

    // A table reference with no matching heading in the sibling
    // EXPERIMENTS.md is drift, not a typo to ignore.
    let dir = std::env::temp_dir().join(format!("lab-doccheck-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("EXPERIMENTS.md"), "## Table 1 — only\n").unwrap();
    std::fs::write(
        dir.join("ARCH.md"),
        "results in Table 9 of EXPERIMENTS.md\n",
    )
    .unwrap();
    let out = lab(&["doccheck", dir.join("ARCH.md").to_str().unwrap()]);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("Table 9"), "{}", stderr_of(&out));
}

#[test]
fn doccheck_validates_urls_anchors_and_bench_baselines() {
    // Malformed arXiv / DOI / hostless URLs, a duplicate heading anchor and
    // a missing BENCH_*.json baseline each produce their own problem line.
    let doc = temp_file(
        "badrefs.md",
        "# Title\n\n\
         see https://arxiv.org/abs/not-an-id and https://doi.org/wrong\n\
         and http://nohost plus the baseline BENCH_missing.json\n\n\
         # Title\n",
    );
    let out = lab(&["doccheck", doc.to_str().unwrap()]);
    std::fs::remove_file(&doc).ok();
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("arXiv URL"), "{stderr}");
    assert!(stderr.contains("DOI URL"), "{stderr}");
    assert!(stderr.contains("no dotted host"), "{stderr}");
    assert!(stderr.contains("duplicate heading anchor"), "{stderr}");
    assert!(stderr.contains("BENCH_missing.json"), "{stderr}");

    // Canonical forms pass: a real arXiv id, a real DOI, unique anchors,
    // and a glob placeholder (`BENCH_*.json`) that names no concrete file.
    let doc = temp_file(
        "goodrefs.md",
        "# Title\n\n\
         see https://arxiv.org/abs/2302.13237 and https://doi.org/10.1000/x\n\
         (CI gates every `BENCH_*.json` baseline)\n\n\
         ## Subtitle\n",
    );
    let out = lab(&["doccheck", doc.to_str().unwrap()]);
    std::fs::remove_file(&doc).ok();
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
}

#[test]
fn doccheck_rejects_flags_and_missing_files() {
    let out = lab(&["doccheck", "--strict"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("file paths only"));

    let out = lab(&["doccheck", "/definitely/not/here.md"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("cannot read"));
}
