//! Integration tests of the sweep executor: determinism, shard-count
//! invariance, and a differential check against direct library calls.

use embeddings::auto::{embed, predicted_dilation};
use embeddings::congestion::congestion;
use embeddings::verify::verify;
use explab::executor::{expand, run};
use explab::plan::{Family, ObjectiveKind, OptimSpec, SweepPlan, WorkloadSpec};
use explab::report::experiments_markdown;

fn test_plan() -> SweepPlan {
    SweepPlan {
        name: "test".into(),
        seed: 20260729,
        rounds: 1,
        families: vec![
            Family::Paper,
            Family::RingInto {
                max_size: 12,
                max_dim: 3,
            },
            Family::TorusToMesh {
                max_size: 12,
                max_dim: 3,
            },
            Family::Random {
                count: 8,
                max_size: 20,
                max_dim: 3,
            },
        ],
        workloads: vec![
            WorkloadSpec::Neighbor,
            WorkloadSpec::Tornado,
            WorkloadSpec::Random,
        ],
        optimize: Some(OptimSpec {
            objective: ObjectiveKind::Congestion,
            steps: 150,
        }),
    }
}

#[test]
fn same_plan_and_seed_produce_bit_identical_jsonl() {
    let plan = test_plan();
    let first = run(&plan, 2);
    let second = run(&plan, 2);
    assert_eq!(first.records, second.records);
    assert_eq!(first.to_jsonl(), second.to_jsonl());

    // A different seed changes at least the random family's trials.
    let mut reseeded = plan.clone();
    reseeded.seed = 1;
    assert_ne!(run(&reseeded, 2).to_jsonl(), first.to_jsonl());
}

#[test]
fn worker_count_never_changes_the_records() {
    let plan = test_plan();
    let reference = run(&plan, 1);
    for workers in [2, 3, 5, 8, 0] {
        let sharded = run(&plan, workers);
        assert_eq!(
            sharded.records, reference.records,
            "workers={workers} diverged from the sequential sweep"
        );
        assert_eq!(sharded.to_jsonl(), reference.to_jsonl());
    }
    // The rendered report is likewise shard-invariant.
    let note = "shard-invariance test";
    assert_eq!(
        experiments_markdown(&reference, note),
        experiments_markdown(&run(&plan, 4), note)
    );
}

#[test]
fn trial_metrics_match_direct_library_calls() {
    let plan = test_plan();
    let outcome = run(&plan, 3);
    let specs = expand(&plan);
    assert_eq!(outcome.records.len(), specs.len());
    let mut checked = 0;
    for record in &outcome.records {
        let spec = &specs[record.id];
        let Some(metrics) = record.metrics() else {
            // The planner must agree that the pair is unsupported.
            assert!(
                embed(&spec.guest, &spec.host).is_err()
                    || predicted_dilation(&spec.guest, &spec.host).is_err(),
                "trial {} unsupported but the planner covers {} -> {}",
                record.id,
                spec.guest,
                spec.host
            );
            continue;
        };
        let embedding = embed(&spec.guest, &spec.host).expect("supported pair");
        let verification = verify(&embedding, 0).expect("in-budget guest");
        let congestion_report = congestion(&embedding).expect("valid embedding");
        assert_eq!(metrics.construction, embedding.name());
        assert_eq!(
            metrics.predicted_dilation,
            predicted_dilation(&spec.guest, &spec.host).unwrap()
        );
        assert_eq!(metrics.measured_dilation, verification.dilation);
        assert_eq!(metrics.average_dilation, verification.average_dilation);
        assert_eq!(metrics.guest_edges, verification.edges);
        assert_eq!(metrics.injective, verification.injective);
        assert_eq!(metrics.max_congestion, congestion_report.max_congestion);
        assert_eq!(
            metrics.average_congestion,
            congestion_report.average_congestion
        );
        assert_eq!(metrics.used_host_links, congestion_report.used_host_edges);
        assert!(record.bound_ok());
        checked += 1;
    }
    assert!(checked > 50, "only {checked} supported trials checked");
}

#[test]
fn jsonl_has_one_line_per_trial_in_id_order() {
    let plan = SweepPlan::builtin("smoke").unwrap();
    let outcome = run(&plan, 4);
    let jsonl = outcome.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), outcome.records.len());
    for (index, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"id\":{index},")),
            "line {index} out of order: {line}"
        );
        assert!(line.ends_with('}'));
    }
}

#[test]
fn parsed_plan_files_run_end_to_end() {
    let text = "
        name = from-file
        seed = 3
        workloads = neighbor, alltoall
        family same_shape max_size=10 max_dim=2
    ";
    let plan = SweepPlan::parse(text).unwrap();
    let outcome = run(&plan, 2);
    assert_eq!(outcome.plan_name, "from-file");
    assert!(outcome.supported() > 0);
    assert!(outcome.bound_violations().is_empty());
    // alltoall applies to every guest here (all sizes <= 64).
    let with_alltoall = outcome
        .records
        .iter()
        .filter_map(|r| r.metrics())
        .filter(|m| m.workloads.iter().any(|w| w.workload == "alltoall"))
        .count();
    assert_eq!(with_alltoall, outcome.supported());
}
