//! Integration tests of the sweep executor: determinism, shard-count
//! invariance, and a differential check against direct library calls.

use embeddings::auto::{embed, predicted_dilation};
use embeddings::congestion::congestion;
use embeddings::verify::verify;
use explab::executor::{expand, run};
use explab::plan::{
    ChaosSpec, Family, ObjectiveKind, OptimSpec, SweepPlan, WirelengthSpec, WorkloadSpec,
};
use explab::report::experiments_markdown;

fn test_plan() -> SweepPlan {
    SweepPlan {
        name: "test".into(),
        seed: 20260729,
        rounds: 1,
        families: vec![
            Family::Paper,
            Family::RingInto {
                max_size: 12,
                max_dim: 3,
            },
            Family::TorusToMesh {
                max_size: 12,
                max_dim: 3,
            },
            Family::Random {
                count: 8,
                max_size: 20,
                max_dim: 3,
            },
            Family::HypercubeTorus { max_dim: 4 },
        ],
        workloads: vec![
            WorkloadSpec::Neighbor,
            WorkloadSpec::Tornado,
            WorkloadSpec::Random,
        ],
        optimize: Some(OptimSpec {
            objective: ObjectiveKind::Congestion,
            steps: 150,
            shards: 2,
            portfolio: true,
        }),
        // The wirelength stage rides along on the hypercube-guest trials so
        // the determinism and shard-invariance tests also pin it.
        wirelength: Some(WirelengthSpec {
            steps: 120,
            shards: 2,
        }),
        // Chaos rows ride along so the determinism and shard-invariance
        // tests below also pin the faulted re-simulations.
        chaos: Some(ChaosSpec {
            loss_percents: vec![10],
            tenants: vec![2],
        }),
    }
}

#[test]
fn same_plan_and_seed_produce_bit_identical_jsonl() {
    let plan = test_plan();
    let first = run(&plan, 2);
    let second = run(&plan, 2);
    assert_eq!(first.records, second.records);
    assert_eq!(first.to_jsonl(), second.to_jsonl());

    // A different seed changes at least the random family's trials.
    let mut reseeded = plan.clone();
    reseeded.seed = 1;
    assert_ne!(run(&reseeded, 2).to_jsonl(), first.to_jsonl());
}

#[test]
fn worker_count_never_changes_the_records() {
    let plan = test_plan();
    let reference = run(&plan, 1);
    for workers in [2, 3, 5, 8, 0] {
        let sharded = run(&plan, workers);
        assert_eq!(
            sharded.records, reference.records,
            "workers={workers} diverged from the sequential sweep"
        );
        assert_eq!(sharded.to_jsonl(), reference.to_jsonl());
    }
    // The rendered report is likewise shard-invariant.
    let note = "shard-invariance test";
    assert_eq!(
        experiments_markdown(&reference, note),
        experiments_markdown(&run(&plan, 4), note)
    );
}

#[test]
fn trial_metrics_match_direct_library_calls() {
    let plan = test_plan();
    let outcome = run(&plan, 3);
    let specs = expand(&plan);
    assert_eq!(outcome.records.len(), specs.len());
    let mut checked = 0;
    for record in &outcome.records {
        let spec = &specs[record.id];
        let Some(metrics) = record.metrics() else {
            // The planner must agree that the pair is unsupported.
            assert!(
                embed(&spec.guest, &spec.host).is_err()
                    || predicted_dilation(&spec.guest, &spec.host).is_err(),
                "trial {} unsupported but the planner covers {} -> {}",
                record.id,
                spec.guest,
                spec.host
            );
            continue;
        };
        let embedding = embed(&spec.guest, &spec.host).expect("supported pair");
        let verification = verify(&embedding, 0).expect("in-budget guest");
        let congestion_report = congestion(&embedding).expect("valid embedding");
        assert_eq!(metrics.construction, embedding.name());
        assert_eq!(
            metrics.predicted_dilation,
            predicted_dilation(&spec.guest, &spec.host).unwrap()
        );
        assert_eq!(metrics.measured_dilation, verification.dilation);
        assert_eq!(metrics.average_dilation, verification.average_dilation);
        assert_eq!(metrics.guest_edges, verification.edges);
        assert_eq!(metrics.injective, verification.injective);
        assert_eq!(metrics.max_congestion, congestion_report.max_congestion);
        assert_eq!(
            metrics.average_congestion,
            congestion_report.average_congestion
        );
        assert_eq!(metrics.used_host_links, congestion_report.used_host_edges);
        assert!(record.bound_ok());
        checked += 1;
    }
    assert!(checked > 50, "only {checked} supported trials checked");
}

#[test]
fn sharded_optimizer_records_are_worker_invariant_and_consistent() {
    // The per-trial sharded annealing stage must keep records bit-identical
    // for any executor worker count, carry one provenance entry per shard,
    // and reduce to the lexicographically best (cost, seed, shard) walk.
    let mut plan = test_plan();
    plan.optimize = Some(OptimSpec {
        objective: ObjectiveKind::Congestion,
        steps: 120,
        shards: 3,
        portfolio: true,
    });
    let reference = run(&plan, 1);
    assert_eq!(run(&plan, 4).records, reference.records);

    let mut optimized_trials = 0;
    for record in &reference.records {
        let Some(o) = record.metrics().and_then(|m| m.optimized.as_ref()) else {
            continue;
        };
        optimized_trials += 1;
        assert_eq!(o.shards, 3);
        assert_eq!(o.shard_reports.len(), 3);
        let min = o
            .shard_reports
            .iter()
            .map(|s| (s.best_primary, s.best_secondary, s.seed, s.shard))
            .min()
            .unwrap();
        let winner = &o.shard_reports[o.winner_shard as usize];
        assert_eq!(
            (
                winner.best_primary,
                winner.best_secondary,
                winner.seed,
                winner.shard
            ),
            min,
            "winner is not the lexicographic best in trial {}",
            record.id
        );
        assert_eq!(o.winner_seed, winner.seed);
        // The JSONL line exposes the provenance.
        let json = record.to_json_line();
        assert!(json.contains("\"shard_reports\":["));
        assert!(json.contains("\"winner_shard\""));
    }
    assert!(optimized_trials > 20, "only {optimized_trials} optimized");

    // One shard reproduces the sequential walk: shard_reports[0] of an
    // N-shard run equals the single entry of a 1-shard run (same base seed).
    let mut single = plan.clone();
    single.optimize = Some(OptimSpec {
        objective: ObjectiveKind::Congestion,
        steps: 120,
        shards: 1,
        portfolio: true,
    });
    let single_outcome = run(&single, 2);
    for (sharded, sequential) in reference.records.iter().zip(&single_outcome.records) {
        let (Some(s), Some(q)) = (
            sharded.metrics().and_then(|m| m.optimized.as_ref()),
            sequential.metrics().and_then(|m| m.optimized.as_ref()),
        ) else {
            continue;
        };
        assert_eq!(
            s.shard_reports[0], q.shard_reports[0],
            "trial {}",
            sharded.id
        );
        // Best-of-3 never measures worse than the sequential walk.
        assert!(s.max_congestion <= q.max_congestion, "trial {}", sharded.id);
    }
}

#[test]
fn makespan_objective_runs_sharded_in_sweeps() {
    // The delta-aware makespan objective is usable as a first-class sweep
    // objective: a small sharded plan completes with no bound violations.
    let plan = SweepPlan {
        name: "makespan".into(),
        seed: 5,
        rounds: 2,
        families: vec![Family::SameShape {
            max_size: 12,
            max_dim: 2,
        }],
        workloads: vec![WorkloadSpec::Neighbor],
        optimize: Some(OptimSpec {
            objective: ObjectiveKind::Makespan,
            steps: 150,
            shards: 2,
            portfolio: true,
        }),
        wirelength: None,
        chaos: None,
    };
    let outcome = run(&plan, 2);
    assert!(outcome.supported() > 0);
    assert!(outcome.bound_violations().is_empty());
    assert_eq!(run(&plan, 1).records, outcome.records);
    let optimized = outcome
        .records
        .iter()
        .filter_map(|r| r.metrics())
        .filter_map(|m| m.optimized.as_ref())
        .filter(|o| o.objective == "makespan")
        .count();
    assert_eq!(optimized, outcome.supported());
}

#[test]
fn wirelength_stage_respects_tangs_bound_on_every_swept_member() {
    // Satellite check for the cross-paper lab: sweep the whole
    // hypercube_torus family and require every supported trial to carry a
    // wirelength row whose constructive AND annealed wirelengths sit at or
    // above Tang's exact minimum, with annealing never losing ground. A
    // single violation anywhere would mean a broken closed form, a broken
    // incremental objective, or a broken measurement.
    let plan = SweepPlan {
        name: "tang".into(),
        seed: 1987,
        rounds: 1,
        families: vec![Family::HypercubeTorus { max_dim: 5 }],
        workloads: vec![WorkloadSpec::Neighbor],
        optimize: None,
        wirelength: Some(WirelengthSpec {
            steps: 250,
            shards: 2,
        }),
        chaos: None,
    };
    let outcome = run(&plan, 2);
    assert!(outcome.supported() > 0);
    assert!(outcome.bound_violations().is_empty());
    let mut rows = 0;
    for record in &outcome.records {
        let Some(metrics) = record.metrics() else {
            continue;
        };
        let w = metrics
            .wirelength
            .as_ref()
            .expect("every supported family member is a hypercube guest");
        rows += 1;
        assert!(w.injective, "trial {}", record.id);
        assert!(
            w.constructive >= w.bound,
            "trial {}: constructive {} < Tang bound {}",
            record.id,
            w.constructive,
            w.bound
        );
        assert!(
            w.optimized >= w.bound,
            "trial {}: annealed {} < Tang bound {}",
            record.id,
            w.optimized,
            w.bound
        );
        assert!(w.optimized <= w.constructive, "trial {}", record.id);
        assert_eq!(w.shards, 2);
        assert!(record.to_json_line().contains("\"wirelength\":{"));
    }
    assert!(rows >= 8, "only {rows} wirelength rows swept");
    // Worker-count invariance covers the new stage too.
    assert_eq!(run(&plan, 1).records, outcome.records);
}

#[test]
fn jsonl_has_one_line_per_trial_in_id_order() {
    let plan = SweepPlan::builtin("smoke").unwrap();
    let outcome = run(&plan, 4);
    let jsonl = outcome.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), outcome.records.len());
    for (index, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"id\":{index},")),
            "line {index} out of order: {line}"
        );
        assert!(line.ends_with('}'));
    }
}

#[test]
fn parsed_plan_files_run_end_to_end() {
    let text = "
        name = from-file
        seed = 3
        workloads = neighbor, alltoall
        family same_shape max_size=10 max_dim=2
    ";
    let plan = SweepPlan::parse(text).unwrap();
    let outcome = run(&plan, 2);
    assert_eq!(outcome.plan_name, "from-file");
    assert!(outcome.supported() > 0);
    assert!(outcome.bound_violations().is_empty());
    // alltoall applies to every guest here (all sizes <= 64).
    let with_alltoall = outcome
        .records
        .iter()
        .filter_map(|r| r.metrics())
        .filter(|m| m.workloads.iter().any(|w| w.workload == "alltoall"))
        .count();
    assert_eq!(with_alltoall, outcome.supported());
}
