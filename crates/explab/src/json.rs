//! A minimal JSON writer for trial records.
//!
//! The workspace is offline (no serde); trial records only need flat objects
//! with string/number/bool/array fields, so a small push-style builder keeps
//! the JSONL output in one place. Numbers are written deterministically:
//! integers as-is, floats with a fixed six-decimal format so that records
//! compare bit-identically across runs and worker counts.

use core::fmt::Write as _;

/// Escapes a string for inclusion in a JSON document (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float with the fixed precision used across all records.
pub fn number(value: f64) -> String {
    format!("{value:.6}")
}

/// A JSON object under construction.
#[derive(Default)]
pub struct Object {
    fields: Vec<String>,
}

impl Object {
    /// Creates an empty object.
    pub fn new() -> Object {
        Object::default()
    }

    /// Adds a string field.
    pub fn string(mut self, key: &str, value: &str) -> Object {
        self.fields
            .push(format!("{}:{}", escape(key), escape(value)));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Object {
        self.fields.push(format!("{}:{value}", escape(key)));
        self
    }

    /// Adds a float field (fixed six-decimal format).
    pub fn f64(mut self, key: &str, value: f64) -> Object {
        self.fields
            .push(format!("{}:{}", escape(key), number(value)));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Object {
        self.fields.push(format!("{}:{value}", escape(key)));
        self
    }

    /// Adds a pre-rendered JSON value (object, array, or `null`).
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Object {
        self.fields
            .push(format!("{}:{}", escape(key), value.into()));
        self
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Renders a JSON array from pre-rendered element values.
pub fn array(elements: impl IntoIterator<Item = String>) -> String {
    format!("[{}]", elements.into_iter().collect::<Vec<_>>().join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escape("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn objects_render_in_insertion_order() {
        let json = Object::new()
            .string("name", "trial")
            .u64("nodes", 24)
            .f64("avg", 1.5)
            .bool("ok", true)
            .raw("steps", array(vec!["1".to_string(), "2".to_string()]))
            .finish();
        assert_eq!(
            json,
            "{\"name\":\"trial\",\"nodes\":24,\"avg\":1.500000,\"ok\":true,\"steps\":[1,2]}"
        );
    }

    #[test]
    fn numbers_are_fixed_precision() {
        assert_eq!(number(1.0), "1.000000");
        assert_eq!(number(2.0 / 3.0), "0.666667");
    }
}
