//! Error type of the sweep engine.

use core::fmt;

/// `Result` specialized to [`ExplabError`].
pub type Result<T> = core::result::Result<T, ExplabError>;

/// Everything that can go wrong while parsing a plan, expanding it into
/// trials, or rendering a report.
///
/// Note that a shape pair the paper's constructions do not cover is *not* an
/// error: the executor records such trials as unsupported and carries on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExplabError {
    /// A sweep-plan file could not be parsed.
    PlanParse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A plan value was syntactically fine but semantically unusable
    /// (e.g. an empty family list or a zero-trial expansion).
    InvalidPlan {
        /// What was wrong with the plan.
        message: String,
    },
    /// No built-in plan has the requested name.
    UnknownPlan {
        /// The requested name.
        name: String,
    },
    /// The regenerated report differs from the checked-in file
    /// (`lab report --check`).
    ReportDrift {
        /// The first line (1-based) at which the two documents differ.
        line: usize,
    },
    /// Sharded runs disagreed — the executor's determinism guarantee was
    /// violated (this indicates a bug, never a property of the plan).
    ShardMismatch {
        /// Worker counts whose results differed.
        workers: (usize, usize),
    },
}

impl fmt::Display for ExplabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplabError::PlanParse { line, message } => {
                write!(f, "plan line {line}: {message}")
            }
            ExplabError::InvalidPlan { message } => write!(f, "invalid plan: {message}"),
            ExplabError::UnknownPlan { name } => {
                write!(
                    f,
                    "unknown built-in plan {name:?} (run `lab plans` for the list)"
                )
            }
            ExplabError::ReportDrift { line } => write!(
                f,
                "regenerated report differs from the checked-in file starting at line {line}"
            ),
            ExplabError::ShardMismatch { workers } => write!(
                f,
                "sweeps with {} and {} workers produced different results",
                workers.0, workers.1
            ),
        }
    }
}

impl std::error::Error for ExplabError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_context() {
        let e = ExplabError::PlanParse {
            line: 3,
            message: "bad key".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(ExplabError::UnknownPlan { name: "x".into() }
            .to_string()
            .contains("lab plans"));
        assert!(ExplabError::ShardMismatch { workers: (1, 8) }
            .to_string()
            .contains("8 workers"));
    }
}
