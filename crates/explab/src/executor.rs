//! The sharded parallel sweep executor.
//!
//! [`expand`] turns a [`SweepPlan`] into a flat list of [`TrialSpec`]s with
//! per-trial seeds derived from the plan seed and the trial id (never from
//! the shard), and [`run`] fans the trials out over crossbeam workers via
//! [`topology::parallel::parallel_map_reduce`], then reassembles the records
//! in trial-id order. Two invariants make sweeps reproducible:
//!
//! * **determinism** — the same plan and seed produce bit-identical records
//!   (and hence bit-identical JSONL), because every trial is a pure function
//!   of its spec;
//! * **shard invariance** — the worker count only changes *where* a trial
//!   runs, never its spec or its position in the output, so 1 worker and N
//!   workers produce equal results.

use topology::parallel::{parallel_map_reduce, recommended_threads};

use crate::plan::SweepPlan;
use crate::trial::{run_trial, TrialRecord, TrialSpec};

/// SplitMix64: the per-trial seed derivation. Mixing the trial id through a
/// full-avalanche permutation keeps neighboring trials' random workloads
/// uncorrelated. Re-exported from [`topology::parallel`] — the same mixer
/// derives per-shard seeds in `embeddings::optim::parallel`, and one shared
/// copy keeps the constants from drifting apart.
pub use topology::parallel::splitmix64;

/// Expands a plan into its trial list: every family's pairs, in family
/// order, with ids `0..len` and derived seeds.
pub fn expand(plan: &SweepPlan) -> Vec<TrialSpec> {
    let mut specs = Vec::new();
    for (family_index, family) in plan.families.iter().enumerate() {
        // Each family draws from its own seed so that listing the same
        // random family twice produces distinct pairs.
        let family_seed = splitmix64(plan.seed.wrapping_add(family_index as u64));
        for (guest, host) in family.pairs(family_seed) {
            let id = specs.len();
            specs.push(TrialSpec {
                id,
                family: family.name(),
                guest,
                host,
                seed: splitmix64(plan.seed ^ (id as u64)),
                rounds: plan.rounds,
                workloads: plan.workloads.clone(),
                optimize: plan.optimize,
                wirelength: plan.wirelength,
                chaos: plan.chaos.clone(),
            });
        }
    }
    specs
}

/// The result of running a sweep: the plan's identity plus one record per
/// trial, in trial-id order.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepOutcome {
    /// The plan's name.
    pub plan_name: String,
    /// The plan's master seed.
    pub seed: u64,
    /// The worker count the sweep ran with (informational; results are
    /// worker-count invariant).
    pub workers: usize,
    /// One record per trial, ordered by trial id.
    pub records: Vec<TrialRecord>,
}

impl SweepOutcome {
    /// The number of supported (measured) trials.
    pub fn supported(&self) -> usize {
        self.records.iter().filter(|r| r.is_supported()).count()
    }

    /// The trials whose measurements violate a bound (must be none).
    pub fn bound_violations(&self) -> Vec<&TrialRecord> {
        self.records.iter().filter(|r| !r.bound_ok()).collect()
    }

    /// All records as JSON lines (one per trial, trailing newline included).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&record.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// Runs every trial of the plan on `workers` threads (`0` = automatic) and
/// collects the records in trial-id order.
pub fn run(plan: &SweepPlan, workers: usize) -> SweepOutcome {
    let workers = if workers == 0 {
        recommended_threads()
    } else {
        workers
    };
    let specs = expand(plan);
    let mut indexed: Vec<(usize, TrialRecord)> = parallel_map_reduce(
        specs.len() as u64,
        workers,
        Vec::new(),
        |range| {
            specs[range.start as usize..range.end as usize]
                .iter()
                .map(|spec| (spec.id, run_trial(spec)))
                .collect::<Vec<_>>()
        },
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
    );
    indexed.sort_unstable_by_key(|(id, _)| *id);
    SweepOutcome {
        plan_name: plan.name.clone(),
        seed: plan.seed,
        workers,
        records: indexed.into_iter().map(|(_, record)| record).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_ordered_and_seeded_by_id() {
        let plan = SweepPlan::builtin("smoke").unwrap();
        let specs = expand(&plan);
        assert!(!specs.is_empty());
        for (index, spec) in specs.iter().enumerate() {
            assert_eq!(spec.id, index);
            assert_eq!(spec.seed, splitmix64(plan.seed ^ (index as u64)));
            assert_eq!(spec.rounds, plan.rounds);
        }
        // Family blocks appear in plan order.
        let first_family = specs.first().unwrap().family;
        assert_eq!(first_family, plan.families[0].name());
    }

    #[test]
    fn duplicate_random_families_draw_distinct_pairs() {
        let random = crate::plan::Family::Random {
            count: 6,
            max_size: 24,
            max_dim: 3,
        };
        let plan = SweepPlan {
            name: "twice".into(),
            seed: 9,
            rounds: 1,
            families: vec![random.clone(), random],
            workloads: vec![crate::plan::WorkloadSpec::Neighbor],
            optimize: None,
            wirelength: None,
            chaos: None,
        };
        let specs = expand(&plan);
        assert_eq!(specs.len(), 12);
        let pairs: Vec<(String, String)> = specs
            .iter()
            .map(|s| (s.guest.to_string(), s.host.to_string()))
            .collect();
        assert_ne!(pairs[..6], pairs[6..], "both blocks drew the same pairs");
    }

    #[test]
    fn splitmix_avalanche_separates_neighbors() {
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_eq!(splitmix64(7), splitmix64(7));
    }
}
