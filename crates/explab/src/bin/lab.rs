//! `lab` — the experiment-sweep CLI.
//!
//! ```text
//! lab plans                                list the built-in sweep plans
//! lab expand [--plan NAME|--plan-file F]   print the trials a plan expands to
//! lab run    [--plan NAME|--plan-file F]   run a sweep and print the summary
//!            [--workers N] [--jsonl PATH] [--format text|md|csv]
//! lab report [--out PATH] [--check]        regenerate (or verify) EXPERIMENTS.md
//! lab doccheck [FILE ...]                  validate markdown cross-references
//! ```
//!
//! `lab report` runs the built-in `report` plan twice — with 1 worker and
//! with 4 workers — and refuses to write anything unless the two sweeps
//! produce bit-identical records; the resulting document states the check.
//!
//! `lab doccheck` (default files: `EXPERIMENTS.md`, `ARCHITECTURE.md`,
//! `README.md`, `ROADMAP.md`) guards the hand-written documents against
//! drift: every relative markdown link and every back-ticked repo path must
//! name an existing file, every URL must be well-formed (arXiv links in the
//! canonical `arxiv.org/abs/<id>` form, DOI links resolving a `/10.…` DOI),
//! heading anchors must be unique per file, every `BENCH_*.json` baseline
//! mentioned must exist, and every `Table N` reference must match a
//! `## Table N` heading in the EXPERIMENTS.md next to the checked file — so
//! renumbering the generated tables without updating the architecture notes
//! fails CI.
//!
//! Exit codes: `0` success, `1` usage or plan errors, `2` a failed check
//! (report drift, bound violation, shard mismatch, or a dangling doc
//! reference).

use std::process::ExitCode;

use explab::executor::{expand, run};
use explab::plan::SweepPlan;
use explab::report::{experiments_markdown, family_overview};
use explab::ExplabError;
use gridviz::Table;

/// The worker counts `lab report` cross-checks; the note is embedded in the
/// generated document, so both are fixed rather than machine-derived.
const REPORT_WORKERS: (usize, usize) = (1, 4);

/// Upper bound on `--workers` (one OS thread each; sweeps saturate memory
/// bandwidth far below this).
const MAX_WORKERS: usize = 1024;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("usage: lab <plans|expand|run|report> [options]");
        return ExitCode::from(1);
    };
    let result = match command.as_str() {
        "plans" => cmd_plans(rest),
        "expand" => cmd_expand(rest),
        "run" => cmd_run(rest),
        "report" => cmd_report(rest),
        "doccheck" => cmd_doccheck(rest),
        other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(message)) => {
            eprintln!("lab: {message}");
            ExitCode::from(1)
        }
        Err(CliError::Plan(error)) => {
            eprintln!("lab: {error}");
            ExitCode::from(1)
        }
        Err(CliError::Check(message)) => {
            eprintln!("lab: CHECK FAILED: {message}");
            ExitCode::from(2)
        }
        Err(CliError::Io(message)) => {
            eprintln!("lab: {message}");
            ExitCode::from(1)
        }
    }
}

enum CliError {
    Usage(String),
    Plan(ExplabError),
    Check(String),
    Io(String),
}

impl From<ExplabError> for CliError {
    fn from(error: ExplabError) -> Self {
        CliError::Plan(error)
    }
}

/// Pulls `--flag value` out of an option list; the remaining options must be
/// empty when the caller is done.
struct Options {
    args: Vec<String>,
}

impl Options {
    fn new(rest: &[String]) -> Options {
        Options {
            args: rest.to_vec(),
        }
    }

    fn take_value(&mut self, flag: &str) -> Result<Option<String>, CliError> {
        if let Some(index) = self.args.iter().position(|a| a == flag) {
            if index + 1 >= self.args.len() {
                return Err(CliError::Usage(format!("{flag} needs a value")));
            }
            let value = self.args.remove(index + 1);
            self.args.remove(index);
            return Ok(Some(value));
        }
        Ok(None)
    }

    fn take_flag(&mut self, flag: &str) -> bool {
        if let Some(index) = self.args.iter().position(|a| a == flag) {
            self.args.remove(index);
            return true;
        }
        false
    }

    fn finish(self) -> Result<(), CliError> {
        if let Some(stray) = self.args.first() {
            return Err(CliError::Usage(format!("unexpected argument {stray:?}")));
        }
        Ok(())
    }
}

/// Resolves `--plan NAME` / `--plan-file PATH` (default: the `smoke`
/// built-in).
fn load_plan(options: &mut Options) -> Result<SweepPlan, CliError> {
    let name = options.take_value("--plan")?;
    let file = options.take_value("--plan-file")?;
    match (name, file) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--plan and --plan-file are mutually exclusive".into(),
        )),
        (Some(name), None) => Ok(SweepPlan::builtin(&name)?),
        (None, Some(path)) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
            Ok(SweepPlan::parse(&text)?)
        }
        (None, None) => Ok(SweepPlan::builtin("smoke")?),
    }
}

fn cmd_plans(rest: &[String]) -> Result<(), CliError> {
    Options::new(rest).finish()?;
    let mut table = Table::new(vec!["plan", "families", "workloads", "trials"]);
    for name in SweepPlan::BUILTIN_NAMES {
        let plan = SweepPlan::builtin(name)?;
        table.push_row(vec![
            name.to_string(),
            plan.families
                .iter()
                .map(|f| f.name())
                .collect::<Vec<_>>()
                .join(", "),
            plan.workloads
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join(", "),
            expand(&plan).len().to_string(),
        ]);
    }
    print!("{table}");
    Ok(())
}

fn cmd_expand(rest: &[String]) -> Result<(), CliError> {
    let mut options = Options::new(rest);
    let plan = load_plan(&mut options)?;
    options.finish()?;
    let specs = expand(&plan);
    let mut table = Table::new(vec!["id", "family", "guest", "host", "nodes", "seed"]);
    for spec in &specs {
        table.push_row(vec![
            spec.id.to_string(),
            spec.family.to_string(),
            spec.guest.to_string(),
            spec.host.to_string(),
            spec.guest.size().to_string(),
            format!("{:#018x}", spec.seed),
        ]);
    }
    print!("{table}");
    eprintln!("{} trials", specs.len());
    Ok(())
}

fn cmd_run(rest: &[String]) -> Result<(), CliError> {
    let mut options = Options::new(rest);
    let plan = load_plan(&mut options)?;
    let workers: usize = match options.take_value("--workers")? {
        None => 0,
        Some(value) => {
            let workers = value.parse().map_err(|_| {
                CliError::Usage(format!("--workers must be an integer, got {value:?}"))
            })?;
            // Each worker is one OS thread; a runaway value would die in a
            // thread-spawn panic deep inside the executor instead of a
            // usage error here.
            if workers > MAX_WORKERS {
                return Err(CliError::Usage(format!(
                    "--workers must be at most {MAX_WORKERS}, got {workers}"
                )));
            }
            workers
        }
    };
    let jsonl = options.take_value("--jsonl")?;
    let format = options
        .take_value("--format")?
        .unwrap_or_else(|| "text".into());
    options.finish()?;
    // Reject a bad --format before the sweep runs, not after minutes of work.
    if !matches!(format.as_str(), "text" | "md" | "csv") {
        return Err(CliError::Usage(format!(
            "--format must be text, md or csv, got {format:?}"
        )));
    }

    let outcome = run(&plan, workers);
    let streaming_jsonl = jsonl.as_deref() == Some("-");
    if let Some(path) = jsonl {
        if streaming_jsonl {
            print!("{}", outcome.to_jsonl());
        } else {
            std::fs::write(&path, outcome.to_jsonl())
                .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
            eprintln!("wrote {} records to {path}", outcome.records.len());
        }
    }
    // When records stream to stdout, the overview table would corrupt the
    // JSONL for downstream parsers; the stderr summary below still reports
    // the totals.
    if !streaming_jsonl {
        let overview = family_overview(&outcome);
        match format.as_str() {
            "text" => print!("{overview}"),
            "md" => print!("{}", overview.to_markdown()),
            _ => print!("{}", overview.to_csv()),
        }
    }
    eprintln!(
        "plan {}: {} trials, {} supported, {} bound violations",
        outcome.plan_name,
        outcome.records.len(),
        outcome.supported(),
        outcome.bound_violations().len()
    );
    if !outcome.bound_violations().is_empty() {
        return Err(CliError::Check(format!(
            "{} trials violate a bound (dilation/chain prediction, injectivity, \
             or optimizer congestion monotonicity)",
            outcome.bound_violations().len()
        )));
    }
    Ok(())
}

/// The files `lab doccheck` validates when none are given.
const DOCCHECK_DEFAULTS: [&str; 4] = [
    "EXPERIMENTS.md",
    "ARCHITECTURE.md",
    "README.md",
    "ROADMAP.md",
];

/// Extracts the targets of markdown links (`[text](target)`) from `text`.
fn markdown_link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = text[i + 2..].find(')') {
                targets.push(text[i + 2..i + 2 + end].to_string());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    targets
}

/// Extracts back-ticked spans that look like repo paths: no whitespace, a
/// path separator or a doc/data extension, and none of the placeholder
/// characters that mark patterns rather than files.
fn backticked_paths(text: &str) -> Vec<String> {
    text.split('`')
        .skip(1)
        .step_by(2)
        .filter(|span| {
            !span.is_empty()
                && !span.contains(char::is_whitespace)
                && !span.contains(['{', '}', '<', '>', '*', ':', '|'])
                // Absolute paths point outside the repo (e.g. environment
                // notes); only repo-relative references are checkable.
                && !span.starts_with('/')
                && (span.contains('/')
                    || span.ends_with(".md")
                    || span.ends_with(".json")
                    || span.ends_with(".toml"))
        })
        .map(str::to_string)
        .collect()
}

/// Extracts every `http://`/`https://` URL in `text` — bare or inside a
/// markdown link — up to the first whitespace or delimiter, with trailing
/// sentence punctuation stripped.
fn urls(text: &str) -> Vec<String> {
    let mut found = Vec::new();
    for scheme in ["https://", "http://"] {
        for (index, _) in text.match_indices(scheme) {
            let rest = &text[index..];
            let end = rest
                .find(|c: char| {
                    c.is_whitespace() || matches!(c, ')' | ']' | '>' | '"' | '`' | '\'' | ',')
                })
                .unwrap_or(rest.len());
            found.push(rest[..end].trim_end_matches(['.', ';', ':']).to_string());
        }
    }
    found
}

/// Validates one URL: it must carry a dotted host, arXiv links must use the
/// canonical `arxiv.org/abs/<id>` (or `/pdf/<id>`) form, and DOI links must
/// resolve a `/10.…` DOI. Returns a problem description, or `None` when the
/// URL is fine.
fn url_problem(url: &str) -> Option<String> {
    let rest = url
        .strip_prefix("https://")
        .or_else(|| url.strip_prefix("http://"))
        .unwrap_or(url);
    let host = rest.split('/').next().unwrap_or("");
    if host.is_empty() || !host.contains('.') {
        return Some(format!("malformed URL {url:?} (no dotted host)"));
    }
    let path = &rest[host.len()..];
    if host == "arxiv.org" || host.ends_with(".arxiv.org") {
        let id_ok = |id: &str| {
            !id.is_empty()
                && id
                    .chars()
                    .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'v'))
        };
        let ok = ["/abs/", "/pdf/"]
            .iter()
            .any(|prefix| path.strip_prefix(prefix).is_some_and(id_ok));
        if !ok {
            return Some(format!(
                "arXiv URL {url:?} is not of the form https://arxiv.org/abs/<id>"
            ));
        }
    }
    if (host == "doi.org" || host.ends_with(".doi.org")) && !path.starts_with("/10.") {
        return Some(format!("DOI URL {url:?} does not resolve a `/10.…` DOI"));
    }
    None
}

/// The GitHub-style anchors of every markdown heading in `text`, skipping
/// fenced code blocks (a `#` there is a shell comment, not a heading).
fn heading_anchors(text: &str) -> Vec<String> {
    let mut in_fence = false;
    let mut anchors = Vec::new();
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with('#') {
            continue;
        }
        anchors.push(
            line.trim_start_matches('#')
                .trim()
                .chars()
                .filter_map(|c| {
                    if c.is_ascii_alphanumeric() {
                        Some(c.to_ascii_lowercase())
                    } else if c == ' ' || c == '-' {
                        Some('-')
                    } else {
                        None
                    }
                })
                .collect(),
        );
    }
    anchors
}

/// Extracts every `BENCH_<name>.json` baseline reference in `text`,
/// deduplicated (glob placeholders like `BENCH_*.json` are skipped).
fn bench_file_references(text: &str) -> Vec<String> {
    let mut found: Vec<String> = Vec::new();
    for (index, _) in text.match_indices("BENCH_") {
        let rest = &text[index..];
        let Some(end) = rest.find(".json") else {
            continue;
        };
        let stem = &rest["BENCH_".len()..end];
        if !stem.is_empty() && stem.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            found.push(rest[..end + ".json".len()].to_string());
        }
    }
    found.sort();
    found.dedup();
    found
}

/// Extracts the numbers of every `Table N` reference in `text`.
fn table_references(text: &str) -> Vec<u32> {
    let mut numbers = Vec::new();
    for (index, _) in text.match_indices("Table ") {
        let digits: String = text[index + "Table ".len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(number) = digits.parse() {
            numbers.push(number);
        }
    }
    numbers
}

/// The table numbers EXPERIMENTS.md actually defines (`## Table N` headings).
fn table_headings(text: &str) -> Vec<u32> {
    text.lines()
        .filter_map(|line| line.strip_prefix("## Table "))
        .filter_map(|rest| {
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            digits.parse().ok()
        })
        .collect()
}

/// `lab doccheck`: every relative link and back-ticked repo path in the
/// given markdown files must exist, and every `Table N` reference must have
/// a matching heading in the EXPERIMENTS.md that sits next to the file.
fn cmd_doccheck(rest: &[String]) -> Result<(), CliError> {
    if let Some(flag) = rest.iter().find(|a| a.starts_with("--")) {
        return Err(CliError::Usage(format!(
            "doccheck takes file paths only, got {flag:?}"
        )));
    }
    let files: Vec<String> = if rest.is_empty() {
        DOCCHECK_DEFAULTS.iter().map(|f| f.to_string()).collect()
    } else {
        rest.to_vec()
    };
    let mut problems: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| CliError::Io(format!("cannot read {file}: {e}")))?;
        let dir = std::path::Path::new(file)
            .parent()
            .map(std::path::Path::to_path_buf)
            .unwrap_or_default();

        for target in markdown_link_targets(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            let path = target.split('#').next().unwrap_or("");
            if path.is_empty() {
                continue;
            }
            checked += 1;
            if !dir.join(path).exists() {
                problems.push(format!("{file}: link target {path:?} does not exist"));
            }
        }

        for path in backticked_paths(&text) {
            checked += 1;
            if !dir.join(&path).exists() {
                problems.push(format!("{file}: referenced path {path:?} does not exist"));
            }
        }

        for url in urls(&text) {
            checked += 1;
            if let Some(problem) = url_problem(&url) {
                problems.push(format!("{file}: {problem}"));
            }
        }

        // Duplicate heading anchors make `#anchor` links ambiguous (GitHub
        // silently renames the second one to `anchor-1`).
        let mut anchors = heading_anchors(&text);
        checked += anchors.len();
        anchors.sort();
        for window in anchors.windows(2) {
            if window[0] == window[1] {
                problems.push(format!(
                    "{file}: duplicate heading anchor {:?} (intra-document links are ambiguous)",
                    window[0]
                ));
            }
        }

        for name in bench_file_references(&text) {
            checked += 1;
            if !dir.join(&name).exists() {
                problems.push(format!(
                    "{file}: referenced bench baseline {name:?} does not exist"
                ));
            }
        }

        let references = table_references(&text);
        if !references.is_empty() {
            let experiments = dir.join("EXPERIMENTS.md");
            let headings = if file.ends_with("EXPERIMENTS.md") {
                table_headings(&text)
            } else {
                match std::fs::read_to_string(&experiments) {
                    Ok(text) => table_headings(&text),
                    Err(e) => {
                        problems.push(format!(
                            "{file}: references tables but {} is unreadable: {e}",
                            experiments.display()
                        ));
                        continue;
                    }
                }
            };
            for number in references {
                checked += 1;
                if !headings.contains(&number) {
                    problems.push(format!(
                        "{file}: references Table {number}, but EXPERIMENTS.md has no \
                         `## Table {number}` heading (tables renumbered?)"
                    ));
                }
            }
        }
    }
    for problem in &problems {
        eprintln!("lab: doccheck: {problem}");
    }
    if !problems.is_empty() {
        return Err(CliError::Check(format!(
            "{} dangling documentation reference(s)",
            problems.len()
        )));
    }
    eprintln!(
        "doccheck: {} files, {checked} references, all valid",
        files.len()
    );
    Ok(())
}

fn cmd_report(rest: &[String]) -> Result<(), CliError> {
    let mut options = Options::new(rest);
    let out_path = options
        .take_value("--out")?
        .unwrap_or_else(|| "EXPERIMENTS.md".into());
    let check = options.take_flag("--check");
    options.finish()?;

    // In check mode, fail on an unreadable target *before* the two report
    // sweeps run, not after ~20 seconds of work.
    let existing = if check {
        Some(
            std::fs::read_to_string(&out_path)
                .map_err(|e| CliError::Io(format!("cannot read {out_path}: {e}")))?,
        )
    } else {
        None
    };

    let plan = SweepPlan::builtin("report")?;
    let (a, b) = REPORT_WORKERS;
    let sequential = run(&plan, a);
    let sharded = run(&plan, b);
    if sequential.records != sharded.records {
        return Err(CliError::Check(
            ExplabError::ShardMismatch { workers: (a, b) }.to_string(),
        ));
    }
    let violations = sharded.bound_violations().len();
    if violations > 0 {
        return Err(CliError::Check(format!(
            "{violations} trials violate a bound (dilation/chain prediction, \
             injectivity, or optimizer congestion monotonicity)"
        )));
    }
    let note = format!("identical records with {a} and {b} workers");
    let document = experiments_markdown(&sharded, &note);

    if let Some(existing) = existing {
        if existing != document {
            let line = existing
                .lines()
                .zip(document.lines())
                .position(|(a, b)| a != b)
                .map(|i| i + 1)
                .unwrap_or_else(|| existing.lines().count().min(document.lines().count()) + 1);
            return Err(CliError::Check(
                ExplabError::ReportDrift { line }.to_string(),
            ));
        }
        eprintln!(
            "{out_path} is up to date ({} trials)",
            sharded.records.len()
        );
        return Ok(());
    }
    std::fs::write(&out_path, &document)
        .map_err(|e| CliError::Io(format!("cannot write {out_path}: {e}")))?;
    eprintln!(
        "wrote {out_path}: {} trials, {} supported, 0 bound violations",
        sharded.records.len(),
        sharded.supported()
    );
    Ok(())
}
