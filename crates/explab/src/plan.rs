//! Declarative sweep plans: which shape pairs to evaluate, under which
//! workloads.
//!
//! A [`SweepPlan`] is a seed plus a list of [`Family`] generators (each
//! expands into concrete guest/host [`Grid`] pairs) and a list of
//! [`WorkloadSpec`]s (each builds a `netsim` workload over the guest's
//! tasks). Plans come from three places: the built-ins of
//! [`SweepPlan::builtin`], a plan file parsed by [`SweepPlan::parse`], or
//! library code constructing the types directly (see
//! `examples/sweep_small.rs`).
//!
//! # Plan file format
//!
//! Line-oriented, `#` starts a comment:
//!
//! ```text
//! name = my-sweep
//! seed = 42
//! rounds = 1
//! workloads = neighbor, tornado, transpose
//! optimize = congestion      # none (default) | congestion | dilation | wirelength | makespan
//! optim_steps = 800          # annealing steps per shard
//! optim_shards = 4           # independently-seeded annealing walks per trial
//! optim_portfolio = true     # vary shard move mixes/temperatures (needs optimize)
//! wirelength = 600           # anneal hypercube guests toward Tang's bound (none disables)
//! wirelength_shards = 4      # independently-seeded wirelength walks (needs wirelength)
//! chaos = 1, 5, 10           # link-loss percentages for fault-tolerance rows
//! chaos_tenants = 2, 4       # multi-tenant contention sizes (needs chaos)
//! family paper
//! family ring_into max_size=32 max_dim=3
//! family torus_to_mesh max_size=24 max_dim=3
//! family same_shape max_size=32 max_dim=3
//! family hypercube max_dim=5
//! family hypercube_torus max_dim=5
//! family random count=16 max_size=40 max_dim=3
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use topology::families::{distinct_shapes_of_size, grids_of_size, shapes_of_size};
use topology::{GraphKind, Grid, Shape};

use crate::error::{ExplabError, Result};

/// A generator of guest/host shape pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Family {
    /// The paper's worked instances: the summary-table pairs of Sections 3–5.
    Paper,
    /// `ring(n)` into every distinct mesh and torus of size `n`, for every
    /// `n ≤ max_size` — the Section 3 basic-embedding family.
    RingInto {
        /// Largest ring size to sweep.
        max_size: u64,
        /// Largest host dimension.
        max_dim: usize,
    },
    /// Every distinct torus shape into every distinct mesh shape of the same
    /// size, for every size `≤ max_size` — the paper's headline direction.
    TorusToMesh {
        /// Largest pair size to sweep.
        max_size: u64,
        /// Largest shape dimension on either side.
        max_dim: usize,
    },
    /// Each torus into the mesh of the *identical* shape (Lemma 36: dilation
    /// 2 whenever some dimension exceeds 2).
    SameShape {
        /// Largest pair size to sweep.
        max_size: u64,
        /// Largest shape dimension.
        max_dim: usize,
    },
    /// `hypercube(d)` into every distinct mesh and torus of size `2^d`, for
    /// `2 ≤ d ≤ max_dim`.
    Hypercube {
        /// Largest hypercube dimension to sweep.
        max_dim: usize,
    },
    /// `hypercube(d)` into every distinct non-binary *torus* of size `2^d`,
    /// for `2 ≤ d ≤ max_dim` — the cross-paper family behind EXPERIMENTS.md
    /// Table 11: every member has an exact Tang minimum-wirelength bound
    /// (`embeddings::lower_bound::wirelength_lower_bound`), so the
    /// `wirelength` plan key can compare the 1987 constructive embeddings and
    /// sharded-annealed tables against the closed form.
    HypercubeTorus {
        /// Largest hypercube dimension to sweep.
        max_dim: usize,
    },
    /// `count` random same-size pairs: a random size in `[4, max_size]`, a
    /// random ordered shape of that size for each side, and random kinds.
    /// Fully determined by the seed. A parameterization that cannot produce
    /// shapes (e.g. `max_dim = 0`) yields fewer — possibly zero — pairs
    /// rather than retrying forever.
    Random {
        /// How many pairs to draw.
        count: usize,
        /// Largest pair size to draw from.
        max_size: u64,
        /// Largest shape dimension on either side.
        max_dim: usize,
    },
}

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).expect("static shapes are valid")
}

impl Family {
    /// The family's name, as used in plan files and trial records.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Paper => "paper",
            Family::RingInto { .. } => "ring_into",
            Family::TorusToMesh { .. } => "torus_to_mesh",
            Family::SameShape { .. } => "same_shape",
            Family::Hypercube { .. } => "hypercube",
            Family::HypercubeTorus { .. } => "hypercube_torus",
            Family::Random { .. } => "random",
        }
    }

    /// Expands the family into concrete guest/host pairs. `seed` only
    /// matters for [`Family::Random`]; every other family is a pure
    /// enumeration.
    pub fn pairs(&self, seed: u64) -> Vec<(Grid, Grid)> {
        match *self {
            Family::Paper => paper_pairs(),
            Family::RingInto { max_size, max_dim } => {
                let mut out = Vec::new();
                for n in 4..=max_size {
                    let ring = Grid::ring(n).expect("n >= 4");
                    for host in grids_of_size(GraphKind::Mesh, n, max_dim)
                        .into_iter()
                        .chain(grids_of_size(GraphKind::Torus, n, max_dim))
                    {
                        // Skip the identity ring-in-ring pair but keep
                        // ring-in-line (dilation 2) and everything else.
                        if host.is_ring() {
                            continue;
                        }
                        out.push((ring.clone(), host));
                    }
                }
                out
            }
            Family::TorusToMesh { max_size, max_dim } => {
                let mut out = Vec::new();
                for n in 4..=max_size {
                    let guests = distinct_shapes_of_size(n, max_dim);
                    for guest_shape in &guests {
                        for host_shape in &guests {
                            out.push((
                                Grid::torus(guest_shape.clone()),
                                Grid::mesh(host_shape.clone()),
                            ));
                        }
                    }
                }
                out
            }
            Family::SameShape { max_size, max_dim } => {
                let mut out = Vec::new();
                for n in 4..=max_size {
                    for s in distinct_shapes_of_size(n, max_dim) {
                        out.push((Grid::torus(s.clone()), Grid::mesh(s)));
                    }
                }
                out
            }
            Family::Hypercube { max_dim } => {
                let mut out = Vec::new();
                for d in 2..=max_dim {
                    let cube = match Grid::hypercube(d) {
                        Ok(cube) => cube,
                        Err(_) => break,
                    };
                    let n = cube.size();
                    for host in grids_of_size(GraphKind::Mesh, n, d)
                        .into_iter()
                        .chain(grids_of_size(GraphKind::Torus, n, d))
                    {
                        // The hypercube itself appears as the all-2s shape on
                        // both lists; skip the identity pairs.
                        if host.shape().is_binary() {
                            continue;
                        }
                        out.push((cube.clone(), host));
                    }
                }
                out
            }
            Family::HypercubeTorus { max_dim } => {
                let mut out = Vec::new();
                for d in 2..=max_dim {
                    let cube = match Grid::hypercube(d) {
                        Ok(cube) => cube,
                        Err(_) => break,
                    };
                    let n = cube.size();
                    for host in grids_of_size(GraphKind::Torus, n, d) {
                        // The all-2s torus is the hypercube itself; skip the
                        // identity pair (its bound is just the edge count).
                        if host.shape().is_binary() {
                            continue;
                        }
                        out.push((cube.clone(), host));
                    }
                }
                out
            }
            Family::Random {
                count,
                max_size,
                max_dim,
            } => {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_fa71_11e5);
                let mut out = Vec::with_capacity(count);
                // Sizes without a usable shape (e.g. `max_dim = 0`, or a
                // prime too large for one radix) are redrawn; the attempt
                // budget keeps a family that can never produce shapes from
                // spinning forever — it yields fewer (possibly zero) pairs
                // instead.
                let mut attempts = count.saturating_mul(64).max(1024);
                // The smallest pair has 4 nodes; a tighter cap can't be
                // honored, so it produces nothing rather than pairs larger
                // than the caller asked for.
                if max_size < 4 {
                    attempts = 0;
                }
                while out.len() < count && attempts > 0 {
                    attempts -= 1;
                    let n = rng.gen_range(4u64..=max_size);
                    let shapes = shapes_of_size(n, max_dim);
                    if shapes.is_empty() {
                        continue;
                    }
                    let guest = shapes[rng.gen_range(0..shapes.len())].clone();
                    let host = shapes[rng.gen_range(0..shapes.len())].clone();
                    let guest_kind = if rng.gen_bool(0.5) {
                        GraphKind::Torus
                    } else {
                        GraphKind::Mesh
                    };
                    let host_kind = if rng.gen_bool(0.5) {
                        GraphKind::Torus
                    } else {
                        GraphKind::Mesh
                    };
                    out.push((Grid::new(guest_kind, guest), Grid::new(host_kind, host)));
                }
                out
            }
        }
    }
}

/// The paper's summary-table pairs (Sections 3–5), the rows EXPERIMENTS.md
/// reproduces in detail.
fn paper_pairs() -> Vec<(Grid, Grid)> {
    vec![
        (Grid::line(24).unwrap(), Grid::mesh(shape(&[4, 2, 3]))),
        (Grid::ring(24).unwrap(), Grid::mesh(shape(&[4, 2, 3]))),
        (Grid::ring(24).unwrap(), Grid::torus(shape(&[4, 2, 3]))),
        (Grid::ring(9).unwrap(), Grid::mesh(shape(&[3, 3]))),
        (
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[4, 2, 3])),
        ),
        (
            Grid::torus(shape(&[4, 6])),
            Grid::mesh(shape(&[2, 2, 2, 3])),
        ),
        (
            Grid::torus(shape(&[4, 6])),
            Grid::torus(shape(&[2, 2, 2, 3])),
        ),
        (
            Grid::torus(shape(&[9, 15])),
            Grid::mesh(shape(&[3, 3, 3, 5])),
        ),
        (Grid::hypercube(4).unwrap(), Grid::mesh(shape(&[4, 4]))),
        (Grid::hypercube(4).unwrap(), Grid::ring(16).unwrap()),
        (Grid::torus(shape(&[4, 2, 3])), Grid::mesh(shape(&[4, 6]))),
        (Grid::mesh(shape(&[4, 2, 3])), Grid::mesh(shape(&[4, 6]))),
        (Grid::mesh(shape(&[3, 3, 6])), Grid::mesh(shape(&[6, 9]))),
        (Grid::mesh(shape(&[4, 4, 4])), Grid::mesh(shape(&[8, 8]))),
    ]
}

/// A workload generator applied to every trial's guest graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// Neighbor exchange over the guest's edges — the traffic whose hop count
    /// the dilation theorems bound.
    Neighbor,
    /// Tornado traffic (worst case for minimal routing on rings/toruses).
    Tornado,
    /// Matrix transpose over the guest's first dimension × the rest.
    /// Inapplicable to 1-dimensional guests.
    Transpose,
    /// Bit-reversal permutation. Applicable only when the guest size is a
    /// power of two.
    BitReversal,
    /// All-to-all personalized exchange. Applicable only up to 64 tasks (the
    /// message count is quadratic).
    AllToAll,
    /// Uniformly random pairs, two messages per task, seeded per trial.
    Random,
}

/// Which objective the optimizer refines a trial's placement table under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjectiveKind {
    /// Minimize max link congestion (ties: total routed path length);
    /// incremental delta evaluation, the default.
    Congestion,
    /// Minimize total path length / average dilation (ties: max dilation);
    /// incremental delta evaluation.
    Dilation,
    /// Minimize the unit-weight wirelength — the total routed path length
    /// over guest edges, the quantity Tang's bound speaks about (ties: max
    /// per-edge distance); incremental delta evaluation.
    Wirelength,
    /// Minimize the simulated makespan of the guest's neighbor-exchange
    /// workload; every move re-simulates, so prefer small step counts.
    Makespan,
}

impl ObjectiveKind {
    /// The objective's name, as used in plan files and trial records.
    pub fn name(&self) -> &'static str {
        match self {
            ObjectiveKind::Congestion => "congestion",
            ObjectiveKind::Dilation => "dilation",
            ObjectiveKind::Wirelength => "wirelength",
            ObjectiveKind::Makespan => "makespan",
        }
    }

    /// Parses an objective name.
    pub fn from_name(name: &str) -> Option<ObjectiveKind> {
        [
            ObjectiveKind::Congestion,
            ObjectiveKind::Dilation,
            ObjectiveKind::Wirelength,
            ObjectiveKind::Makespan,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }
}

/// The optimizer stage of a plan: refine every supported trial's placement
/// under `objective`, running `shards` independently-seeded annealing walks
/// of `steps` moves each and keeping the lexicographically best result
/// (seeded per trial and per shard, so records stay bit-identical for any
/// worker count — see `embeddings::optim::parallel`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptimSpec {
    /// The objective to refine under.
    pub objective: ObjectiveKind,
    /// Proposed moves per shard.
    pub steps: u64,
    /// Independently-seeded walks per trial (`optim_shards`; 1 = the
    /// sequential optimizer).
    pub shards: u32,
    /// Whether the non-zero shards run the `embeddings::optim::parallel`
    /// portfolio palette (per-shard move mixes and temperature schedules)
    /// instead of seed-only restarts (`optim_portfolio`). Shard 0 always
    /// runs the base config, so the sequential baseline stays comparable.
    pub portfolio: bool,
}

/// The chaos stage of a plan: degraded-operation measurements for every
/// supported trial, produced by `netsim::chaos`.
///
/// For each percentage in `loss_percents` the trial's host network gets a
/// seeded [`netsim::chaos::FaultPlan`] failing that share of its links, and
/// the guest's neighbor-exchange workload is re-simulated with the detour
/// router under both the constructive and (when optimization is on) the
/// annealed placement — plus the implicit pristine 0% baseline row, which
/// must reproduce the unfaulted simulator bit for bit. For each `K` in
/// `tenants`, `K` rotated copies of the constructive placement are composed
/// onto the shared host with [`netsim::traffic::multi_tenant`] and the
/// contention makespan is compared against the single-tenant run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Link-loss percentages (each > 0; the 0% baseline row is implicit).
    pub loss_percents: Vec<u32>,
    /// Multi-tenant sizes `K ≥ 2` to compose onto the shared host.
    pub tenants: Vec<u32>,
}

/// Every workload spec, in the order used by plan listings.
pub const ALL_WORKLOADS: [WorkloadSpec; 6] = [
    WorkloadSpec::Neighbor,
    WorkloadSpec::Tornado,
    WorkloadSpec::Transpose,
    WorkloadSpec::BitReversal,
    WorkloadSpec::AllToAll,
    WorkloadSpec::Random,
];

impl WorkloadSpec {
    /// The spec's name, as used in plan files and trial records.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Neighbor => "neighbor",
            WorkloadSpec::Tornado => "tornado",
            WorkloadSpec::Transpose => "transpose",
            WorkloadSpec::BitReversal => "bitrev",
            WorkloadSpec::AllToAll => "alltoall",
            WorkloadSpec::Random => "random",
        }
    }

    /// Parses a spec name.
    pub fn from_name(name: &str) -> Option<WorkloadSpec> {
        ALL_WORKLOADS.iter().copied().find(|w| w.name() == name)
    }
}

/// The wirelength stage of a plan: for every supported trial whose guest is
/// a hypercube, measure the constructive embedding's wirelength (the total
/// routed path length), anneal the placement under the unit-weight
/// [`embeddings::optim::WirelengthObjective`] with `shards`
/// independently-seeded walks of `steps` moves each, and compare both
/// numbers against Tang's exact minimum
/// (`embeddings::lower_bound::wirelength_lower_bound`) — EXPERIMENTS.md
/// Table 11. A measured wirelength below the bound is a bound violation and
/// fails the trial's `bound_ok`. Non-hypercube guests skip the stage (the
/// closed form does not apply to them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WirelengthSpec {
    /// Proposed annealing moves per shard.
    pub steps: u64,
    /// Independently-seeded walks per trial (`wirelength_shards`; 1 = the
    /// sequential optimizer).
    pub shards: u32,
}

/// The optimizer step count a plan file gets when `optimize` is set without
/// an explicit `optim_steps`.
pub const DEFAULT_OPTIM_STEPS: u64 = 800;

/// The shard count a plan file gets when `optimize` is set without an
/// explicit `optim_shards`.
pub const DEFAULT_OPTIM_SHARDS: u32 = 1;

/// Whether a plan file's optimizer stage runs portfolio shards when
/// `optimize` is set without an explicit `optim_portfolio`.
pub const DEFAULT_OPTIM_PORTFOLIO: bool = false;

/// The shard count a plan file gets when `wirelength` is set without an
/// explicit `wirelength_shards`.
pub const DEFAULT_WIRELENGTH_SHARDS: u32 = 1;

/// A declarative sweep: families × workloads, a seed, and a round count for
/// the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepPlan {
    /// The plan's name (echoed in reports and JSONL records).
    pub name: String,
    /// The master seed; per-trial seeds are derived from it and the trial id.
    pub seed: u64,
    /// Simulated rounds per workload.
    pub rounds: usize,
    /// The shape-pair generators.
    pub families: Vec<Family>,
    /// The workloads run on every supported pair.
    pub workloads: Vec<WorkloadSpec>,
    /// When set, every supported trial additionally refines its placement
    /// with the seeded local-search optimizer and records
    /// constructive-vs-optimized measurements.
    pub optimize: Option<OptimSpec>,
    /// When set, every supported hypercube-guest trial additionally anneals
    /// its placement toward Tang's exact minimum-wirelength bound and
    /// records constructive/annealed/bound wirelengths (Table 11).
    pub wirelength: Option<WirelengthSpec>,
    /// When set, every supported trial additionally records degraded-
    /// operation measurements (fault-tolerance and multi-tenant contention
    /// rows) via `netsim::chaos`.
    pub chaos: Option<ChaosSpec>,
}

impl SweepPlan {
    /// The names of the built-in plans.
    pub const BUILTIN_NAMES: [&'static str; 3] = ["smoke", "report", "bench"];

    /// Looks up a built-in plan by name.
    ///
    /// * `smoke` — a seconds-scale sweep over tiny (≤ 16-node) families, used
    ///   by the CI smoke job;
    /// * `report` — the plan behind `lab report` / the checked-in
    ///   EXPERIMENTS.md;
    /// * `bench` — the fixed small family measured by the
    ///   `explab_throughput` criterion bench.
    ///
    /// # Errors
    ///
    /// Returns [`ExplabError::UnknownPlan`] for any other name.
    pub fn builtin(name: &str) -> Result<SweepPlan> {
        match name {
            // Every smoke shape has at most 64 nodes, so the CI smoke job
            // stays seconds-scale even on one core.
            "smoke" => Ok(SweepPlan {
                name: "smoke".into(),
                seed: 7,
                rounds: 1,
                families: vec![
                    Family::Hypercube { max_dim: 4 },
                    Family::HypercubeTorus { max_dim: 4 },
                    Family::RingInto {
                        max_size: 16,
                        max_dim: 3,
                    },
                    Family::SameShape {
                        max_size: 16,
                        max_dim: 3,
                    },
                    Family::TorusToMesh {
                        max_size: 12,
                        max_dim: 3,
                    },
                ],
                workloads: vec![WorkloadSpec::Neighbor, WorkloadSpec::Tornado],
                optimize: Some(OptimSpec {
                    objective: ObjectiveKind::Congestion,
                    steps: 200,
                    shards: 2,
                    portfolio: true,
                }),
                wirelength: Some(WirelengthSpec {
                    steps: 200,
                    shards: 2,
                }),
                chaos: Some(ChaosSpec {
                    loss_percents: vec![10],
                    tenants: vec![2],
                }),
            }),
            "report" => Ok(SweepPlan {
                name: "report".into(),
                seed: 1987, // the paper's publication year
                rounds: 1,
                families: vec![
                    Family::Paper,
                    Family::RingInto {
                        max_size: 32,
                        max_dim: 3,
                    },
                    Family::TorusToMesh {
                        max_size: 24,
                        max_dim: 3,
                    },
                    Family::SameShape {
                        max_size: 36,
                        max_dim: 3,
                    },
                    Family::Hypercube { max_dim: 6 },
                    Family::HypercubeTorus { max_dim: 6 },
                    Family::Random {
                        count: 24,
                        max_size: 40,
                        max_dim: 3,
                    },
                ],
                workloads: vec![
                    WorkloadSpec::Neighbor,
                    WorkloadSpec::Tornado,
                    WorkloadSpec::Transpose,
                    WorkloadSpec::BitReversal,
                ],
                optimize: Some(OptimSpec {
                    objective: ObjectiveKind::Congestion,
                    steps: 1_200,
                    shards: 4,
                    portfolio: true,
                }),
                wirelength: Some(WirelengthSpec {
                    steps: 1_200,
                    shards: 4,
                }),
                chaos: Some(ChaosSpec {
                    loss_percents: vec![1, 5, 10],
                    tenants: vec![2, 4],
                }),
            }),
            "bench" => Ok(SweepPlan {
                name: "bench".into(),
                seed: 11,
                rounds: 1,
                families: vec![
                    Family::RingInto {
                        max_size: 24,
                        max_dim: 3,
                    },
                    Family::SameShape {
                        max_size: 24,
                        max_dim: 3,
                    },
                ],
                workloads: vec![WorkloadSpec::Neighbor],
                // The bench plan feeds the `explab_throughput` baseline;
                // keeping it optimizer-free (and chaos-free) keeps
                // BENCH_explab.json comparable across PRs (the optimizer and
                // the chaos router have their own benches).
                optimize: None,
                wirelength: None,
                chaos: None,
            }),
            other => Err(ExplabError::UnknownPlan { name: other.into() }),
        }
    }

    /// Parses a plan file (see the module docs for the format).
    ///
    /// # Errors
    ///
    /// Returns [`ExplabError::PlanParse`] with the offending line, or
    /// [`ExplabError::InvalidPlan`] if the parsed plan has no families.
    pub fn parse(text: &str) -> Result<SweepPlan> {
        let mut plan = SweepPlan {
            name: "custom".into(),
            seed: 0,
            rounds: 1,
            families: Vec::new(),
            workloads: vec![WorkloadSpec::Neighbor],
            optimize: None,
            wirelength: None,
            chaos: None,
        };
        let mut optim_steps: Option<u64> = None;
        let mut optim_shards: Option<u32> = None;
        let mut optim_portfolio: Option<bool> = None;
        let mut wirelength_shards: Option<u32> = None;
        let mut chaos_tenants: Option<Vec<u32>> = None;
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            if let Some(rest) = content.strip_prefix("family ") {
                plan.families.push(parse_family(rest.trim(), line)?);
                continue;
            }
            let (key, value) = content
                .split_once('=')
                .ok_or_else(|| ExplabError::PlanParse {
                    line,
                    message: format!("expected `key = value` or `family …`, got {content:?}"),
                })?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "name" => plan.name = value.to_string(),
                "seed" => {
                    plan.seed = value.parse().map_err(|_| ExplabError::PlanParse {
                        line,
                        message: format!("seed must be a u64, got {value:?}"),
                    })?;
                }
                "rounds" => {
                    plan.rounds = value.parse().map_err(|_| ExplabError::PlanParse {
                        line,
                        message: format!("rounds must be a usize, got {value:?}"),
                    })?;
                }
                "workloads" => {
                    let mut specs = Vec::new();
                    for name in value.split(',') {
                        let name = name.trim();
                        let spec = WorkloadSpec::from_name(name).ok_or_else(|| {
                            ExplabError::PlanParse {
                                line,
                                message: format!("unknown workload {name:?}"),
                            }
                        })?;
                        specs.push(spec);
                    }
                    plan.workloads = specs;
                }
                "optimize" => {
                    plan.optimize = match value {
                        "none" => None,
                        name => {
                            let objective = ObjectiveKind::from_name(name).ok_or_else(|| {
                                ExplabError::PlanParse {
                                    line,
                                    message: format!(
                                        "optimize must be none, congestion, dilation, \
                                         wirelength or makespan, got {name:?}"
                                    ),
                                }
                            })?;
                            Some(OptimSpec {
                                objective,
                                steps: DEFAULT_OPTIM_STEPS,
                                shards: DEFAULT_OPTIM_SHARDS,
                                portfolio: DEFAULT_OPTIM_PORTFOLIO,
                            })
                        }
                    };
                }
                "optim_steps" => {
                    let steps = value.parse().map_err(|_| ExplabError::PlanParse {
                        line,
                        message: format!("optim_steps must be a u64, got {value:?}"),
                    })?;
                    optim_steps = Some(steps);
                }
                "wirelength" => {
                    plan.wirelength = match value {
                        "none" => None,
                        steps => {
                            let steps: u64 = steps.parse().map_err(|_| ExplabError::PlanParse {
                                line,
                                message: format!(
                                    "wirelength must be none or an annealing step \
                                         count, got {value:?}"
                                ),
                            })?;
                            Some(WirelengthSpec {
                                steps,
                                shards: DEFAULT_WIRELENGTH_SHARDS,
                            })
                        }
                    };
                }
                "wirelength_shards" => {
                    let shards: u32 = value.parse().map_err(|_| ExplabError::PlanParse {
                        line,
                        message: format!("wirelength_shards must be a u32, got {value:?}"),
                    })?;
                    if shards == 0 {
                        return Err(ExplabError::PlanParse {
                            line,
                            message: "wirelength_shards must be at least 1".into(),
                        });
                    }
                    wirelength_shards = Some(shards);
                }
                "chaos" => {
                    plan.chaos = match value {
                        "none" => None,
                        list => {
                            let mut loss_percents = Vec::new();
                            for entry in list.split(',').map(str::trim) {
                                let percent: u32 =
                                    entry.parse().map_err(|_| ExplabError::PlanParse {
                                        line,
                                        message: format!(
                                            "chaos must be none or a list of loss \
                                             percentages, got {entry:?}"
                                        ),
                                    })?;
                                if percent == 0 || percent > 100 {
                                    return Err(ExplabError::PlanParse {
                                        line,
                                        message: format!(
                                            "chaos loss percentages must be in 1..=100, \
                                             got {percent}"
                                        ),
                                    });
                                }
                                loss_percents.push(percent);
                            }
                            Some(ChaosSpec {
                                loss_percents,
                                tenants: Vec::new(),
                            })
                        }
                    };
                }
                "chaos_tenants" => {
                    let mut tenants = Vec::new();
                    for entry in value.split(',').map(str::trim) {
                        let k: u32 = entry.parse().map_err(|_| ExplabError::PlanParse {
                            line,
                            message: format!(
                                "chaos_tenants must be a list of tenant counts, got {entry:?}"
                            ),
                        })?;
                        if k < 2 {
                            return Err(ExplabError::PlanParse {
                                line,
                                message: format!(
                                    "chaos_tenants entries must be at least 2, got {k}"
                                ),
                            });
                        }
                        tenants.push(k);
                    }
                    chaos_tenants = Some(tenants);
                }
                "optim_shards" => {
                    let shards: u32 = value.parse().map_err(|_| ExplabError::PlanParse {
                        line,
                        message: format!("optim_shards must be a u32, got {value:?}"),
                    })?;
                    if shards == 0 {
                        return Err(ExplabError::PlanParse {
                            line,
                            message: "optim_shards must be at least 1".into(),
                        });
                    }
                    optim_shards = Some(shards);
                }
                "optim_portfolio" => {
                    let portfolio = match value {
                        "true" => true,
                        "false" => false,
                        _ => {
                            return Err(ExplabError::PlanParse {
                                line,
                                message: format!(
                                    "optim_portfolio must be true or false, got {value:?}"
                                ),
                            });
                        }
                    };
                    optim_portfolio = Some(portfolio);
                }
                other => {
                    return Err(ExplabError::PlanParse {
                        line,
                        message: format!("unknown key {other:?}"),
                    });
                }
            }
        }
        match (&mut plan.optimize, optim_steps) {
            (Some(spec), Some(steps)) => spec.steps = steps,
            (None, Some(_)) => {
                return Err(ExplabError::InvalidPlan {
                    message: "optim_steps requires an `optimize = <objective>` line".into(),
                });
            }
            _ => {}
        }
        match (&mut plan.optimize, optim_shards) {
            (Some(spec), Some(shards)) => spec.shards = shards,
            (None, Some(_)) => {
                return Err(ExplabError::InvalidPlan {
                    message: "optim_shards requires an `optimize = <objective>` line".into(),
                });
            }
            _ => {}
        }
        match (&mut plan.optimize, optim_portfolio) {
            (Some(spec), Some(portfolio)) => spec.portfolio = portfolio,
            (None, Some(_)) => {
                return Err(ExplabError::InvalidPlan {
                    message: "optim_portfolio requires an `optimize = <objective>` line".into(),
                });
            }
            _ => {}
        }
        match (&mut plan.wirelength, wirelength_shards) {
            (Some(spec), Some(shards)) => spec.shards = shards,
            (None, Some(_)) => {
                return Err(ExplabError::InvalidPlan {
                    message: "wirelength_shards requires a `wirelength = <steps>` line".into(),
                });
            }
            _ => {}
        }
        match (&mut plan.chaos, chaos_tenants) {
            (Some(spec), Some(tenants)) => spec.tenants = tenants,
            (None, Some(_)) => {
                return Err(ExplabError::InvalidPlan {
                    message: "chaos_tenants requires a `chaos = <percent list>` line".into(),
                });
            }
            _ => {}
        }
        if plan.families.is_empty() {
            return Err(ExplabError::InvalidPlan {
                message: "a plan needs at least one `family` line".into(),
            });
        }
        Ok(plan)
    }
}

/// Parses one `family` line body: a family name followed by `key=value`
/// arguments.
fn parse_family(body: &str, line: usize) -> Result<Family> {
    let mut parts = body.split_whitespace();
    let name = parts.next().ok_or_else(|| ExplabError::PlanParse {
        line,
        message: "missing family name".into(),
    })?;
    let mut args: Vec<(&str, &str)> = Vec::new();
    for part in parts {
        let (key, value) = part.split_once('=').ok_or_else(|| ExplabError::PlanParse {
            line,
            message: format!("family argument {part:?} is not key=value"),
        })?;
        args.push((key, value));
    }
    let get = |key: &str, default: u64| -> Result<u64> {
        match args.iter().find(|(k, _)| *k == key) {
            None => Ok(default),
            Some((_, value)) => value.parse().map_err(|_| ExplabError::PlanParse {
                line,
                message: format!("family argument {key}={value:?} is not an integer"),
            }),
        }
    };
    let family = match name {
        "paper" => Family::Paper,
        "ring_into" => Family::RingInto {
            max_size: get("max_size", 16)?,
            max_dim: get("max_dim", 3)? as usize,
        },
        "torus_to_mesh" => Family::TorusToMesh {
            max_size: get("max_size", 12)?,
            max_dim: get("max_dim", 3)? as usize,
        },
        "same_shape" => Family::SameShape {
            max_size: get("max_size", 16)?,
            max_dim: get("max_dim", 3)? as usize,
        },
        "hypercube" => Family::Hypercube {
            max_dim: get("max_dim", 5)? as usize,
        },
        "hypercube_torus" => Family::HypercubeTorus {
            max_dim: get("max_dim", 5)? as usize,
        },
        "random" => Family::Random {
            count: get("count", 8)? as usize,
            max_size: get("max_size", 24)?,
            max_dim: get("max_dim", 3)? as usize,
        },
        other => {
            return Err(ExplabError::PlanParse {
                line,
                message: format!("unknown family {other:?}"),
            });
        }
    };
    // Reject arguments the family does not understand.
    let known: &[&str] = match family {
        Family::Paper => &[],
        Family::RingInto { .. } | Family::TorusToMesh { .. } | Family::SameShape { .. } => {
            &["max_size", "max_dim"]
        }
        Family::Hypercube { .. } | Family::HypercubeTorus { .. } => &["max_dim"],
        Family::Random { .. } => &["count", "max_size", "max_dim"],
    };
    if let Some((key, _)) = args.iter().find(|(k, _)| !known.contains(k)) {
        return Err(ExplabError::PlanParse {
            line,
            message: format!("family {name:?} does not take argument {key:?}"),
        });
    }
    Ok(family)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_plans_exist_and_expand() {
        for name in SweepPlan::BUILTIN_NAMES {
            let plan = SweepPlan::builtin(name).unwrap();
            assert_eq!(plan.name, name);
            assert!(!plan.families.is_empty());
            let pairs: usize = plan.families.iter().map(|f| f.pairs(plan.seed).len()).sum();
            assert!(pairs > 0, "{name} expands to no pairs");
        }
        assert!(SweepPlan::builtin("nope").is_err());
    }

    #[test]
    fn paper_family_pairs_have_equal_sizes() {
        for (guest, host) in Family::Paper.pairs(0) {
            assert_eq!(guest.size(), host.size(), "{guest} -> {host}");
        }
    }

    #[test]
    fn ring_into_family_covers_meshes_and_toruses() {
        let pairs = Family::RingInto {
            max_size: 8,
            max_dim: 3,
        }
        .pairs(0);
        assert!(pairs.iter().all(|(g, _)| g.is_ring()));
        assert!(pairs.iter().any(|(_, h)| h.is_mesh()));
        assert!(pairs.iter().any(|(_, h)| h.is_torus() && !h.is_ring()));
        assert!(pairs.iter().all(|(g, h)| g.size() == h.size()));
    }

    #[test]
    fn hypercube_torus_family_pairs_all_carry_the_tang_bound() {
        let pairs = Family::HypercubeTorus { max_dim: 5 }.pairs(0);
        // d=2: (4); d=3: (8),(4,2); d=4: (16),(8,2),(4,4),(4,2,2);
        // d=5: (32),(16,2),(8,4),(8,2,2),(4,4,2),(4,2,2,2).
        assert_eq!(pairs.len(), 1 + 2 + 4 + 6);
        for (guest, host) in &pairs {
            assert!(guest.is_hypercube(), "{guest}");
            assert!(host.is_torus() && !host.shape().is_binary(), "{host}");
            assert_eq!(guest.size(), host.size());
            // Every member is covered by the closed form.
            let bound = embeddings::lower_bound::wirelength_lower_bound(guest, host).unwrap();
            assert!(bound > 0, "{guest} -> {host}");
        }
    }

    #[test]
    fn wirelength_plan_keys_parse_and_validate() {
        let plan =
            SweepPlan::parse("family paper\nwirelength = 300\nwirelength_shards = 3").unwrap();
        assert_eq!(
            plan.wirelength,
            Some(WirelengthSpec {
                steps: 300,
                shards: 3,
            })
        );
        // The shard default applies without the explicit key; `none`
        // disables the stage.
        let defaulted = SweepPlan::parse("family paper\nwirelength = 500").unwrap();
        assert_eq!(
            defaulted.wirelength,
            Some(WirelengthSpec {
                steps: 500,
                shards: DEFAULT_WIRELENGTH_SHARDS,
            })
        );
        assert_eq!(
            SweepPlan::parse("family paper\nwirelength = none")
                .unwrap()
                .wirelength,
            None
        );
        // The wirelength stage is independent of `optimize = wirelength`,
        // which refines under the same objective but feeds Tables 7/8.
        let combined =
            SweepPlan::parse("family paper\noptimize = wirelength\nwirelength = 100").unwrap();
        assert_eq!(combined.optimize.unwrap().objective.name(), "wirelength");
        assert!(combined.wirelength.is_some());
        // Shards without the stage, zero shards, and junk are rejected.
        assert!(SweepPlan::parse("family paper\nwirelength_shards = 2").is_err());
        assert!(SweepPlan::parse("family paper\nwirelength = 100\nwirelength_shards = 0").is_err());
        assert!(SweepPlan::parse("family paper\nwirelength = lots").is_err());
    }

    #[test]
    fn random_family_without_producible_shapes_terminates_empty() {
        let family = Family::Random {
            count: 4,
            max_size: 10,
            max_dim: 0,
        };
        assert!(family.pairs(1).is_empty());
        // A size cap below the smallest possible pair likewise yields
        // nothing instead of pairs larger than the cap.
        let capped = Family::Random {
            count: 4,
            max_size: 3,
            max_dim: 3,
        };
        assert!(capped.pairs(1).is_empty());
    }

    #[test]
    fn random_family_is_seed_deterministic() {
        let family = Family::Random {
            count: 10,
            max_size: 24,
            max_dim: 3,
        };
        assert_eq!(family.pairs(5), family.pairs(5));
        assert_ne!(family.pairs(5), family.pairs(6));
        assert_eq!(family.pairs(5).len(), 10);
    }

    #[test]
    fn plan_files_round_trip_the_builtins_shape() {
        let text = "
            # a comment
            name = parsed
            seed = 99
            rounds = 2
            workloads = neighbor, bitrev
            family paper
            family ring_into max_size=12 max_dim=2
            family random count=3 max_size=16 max_dim=3
        ";
        let plan = SweepPlan::parse(text).unwrap();
        assert_eq!(plan.name, "parsed");
        assert_eq!(plan.seed, 99);
        assert_eq!(plan.rounds, 2);
        assert_eq!(
            plan.workloads,
            vec![WorkloadSpec::Neighbor, WorkloadSpec::BitReversal]
        );
        assert_eq!(plan.families.len(), 3);
        assert_eq!(
            plan.families[1],
            Family::RingInto {
                max_size: 12,
                max_dim: 2
            }
        );
    }

    #[test]
    fn plan_parse_errors_name_the_line() {
        let err = SweepPlan::parse("seed = x\nfamily paper").unwrap_err();
        assert!(matches!(err, ExplabError::PlanParse { line: 1, .. }));
        let err = SweepPlan::parse("family nope").unwrap_err();
        assert!(matches!(err, ExplabError::PlanParse { line: 1, .. }));
        let err = SweepPlan::parse("family paper max_size=4").unwrap_err();
        assert!(matches!(err, ExplabError::PlanParse { line: 1, .. }));
        let err = SweepPlan::parse("workloads = warp\nfamily paper").unwrap_err();
        assert!(matches!(err, ExplabError::PlanParse { line: 1, .. }));
        let err = SweepPlan::parse("# only comments").unwrap_err();
        assert!(matches!(err, ExplabError::InvalidPlan { .. }));
    }

    #[test]
    fn optimizer_plan_keys_parse_and_validate() {
        let plan = SweepPlan::parse(
            "family paper\noptimize = makespan\noptim_steps = 64\noptim_shards = 3\n\
             optim_portfolio = true",
        )
        .unwrap();
        assert_eq!(
            plan.optimize,
            Some(OptimSpec {
                objective: ObjectiveKind::Makespan,
                steps: 64,
                shards: 3,
                portfolio: true,
            })
        );
        // Defaults apply without the explicit keys.
        let defaulted = SweepPlan::parse("family paper\noptimize = congestion").unwrap();
        assert_eq!(
            defaulted.optimize,
            Some(OptimSpec {
                objective: ObjectiveKind::Congestion,
                steps: DEFAULT_OPTIM_STEPS,
                shards: DEFAULT_OPTIM_SHARDS,
                portfolio: DEFAULT_OPTIM_PORTFOLIO,
            })
        );
        // Shards without an objective, zero shards, and junk are rejected.
        assert!(SweepPlan::parse("family paper\noptim_shards = 2").is_err());
        assert!(SweepPlan::parse("family paper\noptimize = congestion\noptim_shards = 0").is_err());
        assert!(SweepPlan::parse("family paper\noptimize = congestion\noptim_shards = x").is_err());
        // Portfolio without an objective, and junk values, are rejected.
        assert!(SweepPlan::parse("family paper\noptim_portfolio = true").is_err());
        assert!(
            SweepPlan::parse("family paper\noptimize = congestion\noptim_portfolio = maybe")
                .is_err()
        );
    }

    #[test]
    fn chaos_plan_keys_parse_and_validate() {
        let plan =
            SweepPlan::parse("family paper\nchaos = 1, 5, 10\nchaos_tenants = 2, 4").unwrap();
        assert_eq!(
            plan.chaos,
            Some(ChaosSpec {
                loss_percents: vec![1, 5, 10],
                tenants: vec![2, 4],
            })
        );
        // Loss rates alone are fine; `none` disables the stage.
        let loss_only = SweepPlan::parse("family paper\nchaos = 5").unwrap();
        assert_eq!(
            loss_only.chaos,
            Some(ChaosSpec {
                loss_percents: vec![5],
                tenants: vec![],
            })
        );
        assert_eq!(
            SweepPlan::parse("family paper\nchaos = none")
                .unwrap()
                .chaos,
            None
        );
        // Tenants without chaos, out-of-range rates, and junk are rejected.
        assert!(SweepPlan::parse("family paper\nchaos_tenants = 2").is_err());
        assert!(SweepPlan::parse("family paper\nchaos = 0").is_err());
        assert!(SweepPlan::parse("family paper\nchaos = 101").is_err());
        assert!(SweepPlan::parse("family paper\nchaos = x").is_err());
        assert!(SweepPlan::parse("family paper\nchaos = 5\nchaos_tenants = 1").is_err());
    }

    #[test]
    fn workload_names_round_trip() {
        for spec in ALL_WORKLOADS {
            assert_eq!(WorkloadSpec::from_name(spec.name()), Some(spec));
        }
        assert_eq!(WorkloadSpec::from_name("warp"), None);
    }
}
