//! One trial: a guest/host pair measured end to end.
//!
//! [`run_trial`] drives the batched evaluation pipeline for a single pair —
//! planner prediction, construction, independent verification
//! ([`embeddings::verify`]), congestion under dimension-ordered routing, the
//! chain report, and one `netsim` run per applicable workload — and collects
//! everything into a flat [`TrialRecord`] that serializes to one JSON line.
//!
//! A pair the paper's constructions do not cover is a first-class outcome
//! ([`TrialOutcome::Unsupported`]), not an error: sweeps over whole families
//! must keep going and report coverage honestly.

use embeddings::auto::{embed, predicted_dilation};
use embeddings::chain::{ChainReport, ChainStep};
use embeddings::congestion::congestion_sequential;
use embeddings::lower_bound::wirelength_lower_bound;
use embeddings::optim::parallel::{optimize_sharded, ShardStrategy, ShardedConfig, ShardedOutcome};
use embeddings::optim::{
    CongestionObjective, DilationObjective, Objective, OptimizerConfig, WirelengthObjective,
};
use embeddings::verify::verify_sequential;
use embeddings::{Embedding, Plan};
use netsim::chaos::{simulate_chaos, ChaosRouting, FaultPlan};
use netsim::optimize::MakespanObjective;
use netsim::sim::{simulate, Placement};
use netsim::traffic::multi_tenant;
use netsim::{patterns, Network, Workload};
use topology::Grid;

use crate::json::{array, Object};
use crate::plan::{ChaosSpec, ObjectiveKind, OptimSpec, WirelengthSpec, WorkloadSpec};

/// The input of one trial, produced by expanding a plan.
#[derive(Clone, Debug)]
pub struct TrialSpec {
    /// Position of the trial in the expanded plan (stable across worker
    /// counts; the JSONL line order).
    pub id: usize,
    /// The name of the family that generated the pair.
    pub family: &'static str,
    /// The guest graph.
    pub guest: Grid,
    /// The host graph.
    pub host: Grid,
    /// The trial's private seed, derived from the plan seed and `id`.
    pub seed: u64,
    /// Simulated rounds per workload.
    pub rounds: usize,
    /// The workloads to simulate.
    pub workloads: Vec<WorkloadSpec>,
    /// When set, refine the placement with the local-search optimizer and
    /// record constructive-vs-optimized measurements.
    pub optimize: Option<OptimSpec>,
    /// When set, anneal hypercube-guest trials under the wirelength
    /// objective and record the constructive / annealed / Tang-bound
    /// comparison (Table 11). Silently skipped for non-hypercube guests.
    pub wirelength: Option<WirelengthSpec>,
    /// When set, re-simulate the placement under seeded link loss and
    /// multi-tenant contention and record degraded-operation rows.
    pub chaos: Option<ChaosSpec>,
}

/// One workload's simulation results.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadResult {
    /// The workload name (see [`WorkloadSpec::name`]).
    pub workload: &'static str,
    /// Messages delivered over all rounds.
    pub messages: u64,
    /// Sum of route lengths.
    pub total_hops: u64,
    /// Longest route.
    pub max_hops: u64,
    /// Mean hops per message.
    pub average_hops: f64,
    /// Makespan in cycles under one-message-per-link arbitration.
    pub cycles: u64,
}

/// One annealing shard's walk in a trial's provenance trail: which seed it
/// ran and what it found, so the JSONL records show not just the winning
/// table but the full sharded search that produced it.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSummary {
    /// The shard index (`0..shards`; shard 0 is the sequential walk).
    pub shard: u32,
    /// The seed the shard annealed with.
    pub seed: u64,
    /// The `shard_config` style the shard ran: `"base"` for the unmodified
    /// config, otherwise the portfolio palette entry (`"kcycle"`,
    /// `"block"`, `"hot"`, `"hot-compound"`).
    pub style: &'static str,
    /// The shard's best primary cost (e.g. max congestion).
    pub best_primary: u64,
    /// The shard's best secondary (tie-break) cost.
    pub best_secondary: u64,
    /// Accepted moves in the shard's walk.
    pub accepted: u64,
    /// Times the shard's best-so-far cost strictly improved.
    pub improvements: u64,
}

/// Independent measurements of the optimizer-refined placement, taken with
/// the same `verify`/`congestion` sweeps as the constructive embedding —
/// the comparison never trusts the optimizer's own bookkeeping.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimizedMetrics {
    /// The objective the optimizer refined under.
    pub objective: &'static str,
    /// Proposed annealing steps per shard.
    pub steps: u64,
    /// Accepted moves (of the winning shard's walk).
    pub accepted: u64,
    /// Times the best-so-far cost strictly improved (winning shard).
    pub improvements: u64,
    /// Independently-seeded annealing walks run for this trial.
    pub shards: u32,
    /// The shard whose table won the lexicographic reduce.
    pub winner_shard: u32,
    /// The winning shard's seed.
    pub winner_seed: u64,
    /// Every shard's walk, ordered by shard index.
    pub shard_reports: Vec<ShardSummary>,
    /// Max link congestion of the refined placement (independent re-sweep).
    pub max_congestion: u64,
    /// Mean load over used host links of the refined placement.
    pub average_congestion: f64,
    /// Measured dilation of the refined placement.
    pub measured_dilation: u64,
    /// Mean host distance over guest edges of the refined placement.
    pub average_dilation: f64,
    /// Whether the refined mapping verified as injective (every optimizer
    /// move is a permutation, so this must always hold).
    pub injective: bool,
}

/// The wirelength stage's measurements for a hypercube-guest trial: the
/// constructive placement's total routed wirelength, the best wirelength a
/// sharded annealing search under [`WirelengthObjective`] found, and Tang's
/// exact analytic minimum (arXiv:2302.13237), side by side. Both measured
/// wirelengths come from independent `congestion` re-sweeps, never from the
/// optimizer's own bookkeeping; both must stay at or above `bound`, and the
/// annealed value must not exceed the constructive one — violations fold
/// into [`TrialRecord::bound_ok`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WirelengthMetrics {
    /// Proposed annealing steps per shard.
    pub steps: u64,
    /// Independently-seeded annealing walks run for this trial.
    pub shards: u32,
    /// The shard whose table won the lexicographic reduce.
    pub winner_shard: u32,
    /// The winning shard's seed.
    pub winner_seed: u64,
    /// Total routed wirelength of the paper's constructive placement.
    pub constructive: u64,
    /// Total routed wirelength of the annealed placement (independent
    /// re-sweep of the winning table).
    pub optimized: u64,
    /// Tang's exact minimum wirelength for the pair.
    pub bound: u64,
    /// Whether the annealed mapping verified as injective (every optimizer
    /// move is a permutation, so this must always hold).
    pub injective: bool,
}

impl WirelengthMetrics {
    /// Whether the row is consistent: injective annealed table, both
    /// measurements at or above Tang's bound, and annealing never worse
    /// than the constructive start.
    pub fn is_consistent(&self) -> bool {
        self.injective
            && self.constructive >= self.bound
            && self.optimized >= self.bound
            && self.optimized <= self.constructive
    }
}

/// One faulted (or baseline) simulation's counters: the [`netsim::SimStats`]
/// fields a degraded-operation row needs, flattened for serialization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosRun {
    /// Messages injected over all rounds.
    pub messages: u64,
    /// Messages that reached their destination.
    pub delivered: u64,
    /// Messages dropped as [`netsim::chaos::RouteOutcome::Unreachable`].
    pub dropped: u64,
    /// Sum of delivered route lengths.
    pub total_hops: u64,
    /// Hops taken beyond the pristine shortest paths (detour overhead).
    pub detour_hops: u64,
    /// Makespan in cycles under one-message-per-link arbitration.
    pub cycles: u64,
}

impl ChaosRun {
    fn from_stats(stats: &netsim::SimStats) -> ChaosRun {
        ChaosRun {
            messages: stats.messages,
            delivered: stats.delivered,
            dropped: stats.dropped,
            total_hops: stats.total_hops,
            detour_hops: stats.detour_hops,
            cycles: stats.cycles,
        }
    }

    /// Delivered messages as a fraction of injected ones (`1.0` when the
    /// run injected nothing).
    pub fn delivered_fraction(&self) -> f64 {
        if self.messages == 0 {
            1.0
        } else {
            self.delivered as f64 / self.messages as f64
        }
    }
}

/// One link-loss level of a trial's fault-tolerance sweep: the guest's
/// neighbor-exchange traffic re-simulated with the detour router under a
/// seeded [`FaultPlan`] failing `loss_percent`% of the host's links.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRow {
    /// The share of host links the row's fault plan failed (0 = the
    /// pristine baseline, which must match the unfaulted simulator).
    pub loss_percent: u32,
    /// The run under the paper's constructive placement.
    pub constructive: ChaosRun,
    /// The run under the annealed placement, when the optimizer stage ran.
    pub optimized: Option<ChaosRun>,
}

/// One multi-tenant contention row: `tenants` rotated copies of the
/// constructive placement composed onto the shared host via
/// [`multi_tenant`], simulated together on a pristine network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantRow {
    /// How many guest copies shared the host.
    pub tenants: u32,
    /// Messages injected per round by the composed workload.
    pub messages: u64,
    /// Makespan of the composed traffic.
    pub cycles: u64,
    /// Makespan of tenant 0 running alone (the contention-free floor;
    /// `cycles >= solo_cycles` always, by FIFO link arbitration).
    pub solo_cycles: u64,
}

/// The degraded-operation measurements of one trial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosMetrics {
    /// One row per loss level, ascending, starting with the 0% baseline.
    pub fault_rows: Vec<FaultRow>,
    /// One row per tenant count, ascending.
    pub tenant_rows: Vec<TenantRow>,
}

/// The measurements of a supported pair.
#[derive(Clone, Debug, PartialEq)]
pub struct TrialMetrics {
    /// The construction name the planner chose.
    pub construction: String,
    /// The trial's placement as a serialized [`embeddings::Plan`] (the
    /// `plan v1 …` text format): every record carries enough to rebuild
    /// its exact mapping offline with [`embeddings::Plan::to_embedding`],
    /// or to seed the `embd` placement service.
    pub plan: String,
    /// The dilation the paper's theorem guarantees for the pair.
    pub predicted_dilation: u64,
    /// The dilation measured by independent verification.
    pub measured_dilation: u64,
    /// The mean host distance over guest edges.
    pub average_dilation: f64,
    /// Whether the mapping verified as injective (always expected).
    pub injective: bool,
    /// The number of guest edges measured.
    pub guest_edges: u64,
    /// Maximum routed paths sharing one host link.
    pub max_congestion: u64,
    /// Mean load over used host links.
    pub average_congestion: f64,
    /// Distinct host links carrying at least one path.
    pub used_host_links: u64,
    /// The per-step chain report (single-step for directly planned pairs).
    pub chain: ChainReport,
    /// One entry per applicable workload.
    pub workloads: Vec<WorkloadResult>,
    /// Constructive-vs-optimized comparison, when the plan enables the
    /// optimizer stage.
    pub optimized: Option<OptimizedMetrics>,
    /// Constructive / annealed / Tang-bound wirelength comparison, when the
    /// plan enables the wirelength stage and the guest is a hypercube.
    pub wirelength: Option<WirelengthMetrics>,
    /// Degraded-operation rows, when the plan enables the chaos stage.
    pub chaos: Option<ChaosMetrics>,
}

/// What happened to a trial.
#[derive(Clone, Debug, PartialEq)]
pub enum TrialOutcome {
    /// The pair was embedded and measured.
    Supported(Box<TrialMetrics>),
    /// The pair falls outside the paper's constructions (or failed to
    /// measure); the reason is the planner's error message.
    Unsupported {
        /// Why the pair could not be measured.
        reason: String,
    },
}

/// The full, JSONL-serializable result of one trial.
#[derive(Clone, Debug, PartialEq)]
pub struct TrialRecord {
    /// Trial id (the position in the expanded plan).
    pub id: usize,
    /// The generating family's name.
    pub family: &'static str,
    /// The guest graph, rendered (e.g. `"(4, 2, 3)-torus"`).
    pub guest: String,
    /// The host graph, rendered.
    pub host: String,
    /// The number of nodes on each side.
    pub nodes: u64,
    /// The trial's derived seed.
    pub seed: u64,
    /// Supported measurements or the unsupported reason.
    pub outcome: TrialOutcome,
}

impl TrialRecord {
    /// Whether the trial was measured (as opposed to unsupported).
    pub fn is_supported(&self) -> bool {
        matches!(self.outcome, TrialOutcome::Supported(_))
    }

    /// The metrics of a supported trial.
    pub fn metrics(&self) -> Option<&TrialMetrics> {
        match &self.outcome {
            TrialOutcome::Supported(metrics) => Some(metrics),
            TrialOutcome::Unsupported { .. } => None,
        }
    }

    /// Whether the trial honors the theorem's bound: unsupported trials
    /// vacuously do; supported trials must measure a dilation within the
    /// prediction *and* a chain within its multiplicative bound *and* verify
    /// injective. When the optimizer stage ran, the refined placement must
    /// additionally verify injective, and under the congestion objective its
    /// independently measured max congestion must not exceed the
    /// constructive embedding's (the optimizer's monotone guarantee,
    /// re-checked from the outside). When the wirelength stage ran, both the
    /// constructive and the annealed wirelength must respect Tang's exact
    /// lower bound and the annealed one must not exceed the constructive
    /// one (see [`WirelengthMetrics::is_consistent`]). When the chaos stage
    /// ran, every fault
    /// row must conserve messages (`delivered + dropped == messages`), the
    /// 0% baseline row must reproduce the unfaulted neighbor-exchange
    /// simulation bit for bit (no drops, no detours, the same makespan),
    /// and every contention row must cost at least its solo floor.
    pub fn bound_ok(&self) -> bool {
        match self.metrics() {
            None => true,
            Some(m) => {
                let constructive_ok = m.injective
                    && m.measured_dilation <= m.predicted_dilation
                    && m.chain.within_bound();
                let optimized_ok = match &m.optimized {
                    None => true,
                    Some(o) => {
                        o.injective
                            && (o.objective != "congestion" || o.max_congestion <= m.max_congestion)
                    }
                };
                let wirelength_ok = m
                    .wirelength
                    .as_ref()
                    .is_none_or(WirelengthMetrics::is_consistent);
                constructive_ok && optimized_ok && wirelength_ok && chaos_ok(m)
            }
        }
    }

    /// Serializes the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut object = Object::new()
            .u64("id", self.id as u64)
            .string("family", self.family)
            .string("guest", &self.guest)
            .string("host", &self.host)
            .u64("nodes", self.nodes)
            .u64("seed", self.seed)
            .bool("supported", self.is_supported())
            .bool("bound_ok", self.bound_ok());
        match &self.outcome {
            TrialOutcome::Unsupported { reason } => {
                object = object.string("reason", reason);
            }
            TrialOutcome::Supported(m) => {
                let steps = array(m.chain.steps.iter().map(|step| {
                    Object::new()
                        .string("name", &step.name)
                        .string("guest", &step.guest)
                        .string("host", &step.host)
                        .u64("dilation", step.dilation)
                        .finish()
                }));
                let chain = Object::new()
                    .raw("steps", steps)
                    .u64("product_bound", m.chain.product_bound)
                    .u64("composed_dilation", m.chain.composed_dilation)
                    .bool("within_bound", m.chain.within_bound())
                    .finish();
                let workloads = array(m.workloads.iter().map(|w| {
                    Object::new()
                        .string("workload", w.workload)
                        .u64("messages", w.messages)
                        .u64("total_hops", w.total_hops)
                        .u64("max_hops", w.max_hops)
                        .f64("average_hops", w.average_hops)
                        .u64("cycles", w.cycles)
                        .finish()
                }));
                object = object
                    .string("construction", &m.construction)
                    .string("plan", &m.plan)
                    .u64("predicted_dilation", m.predicted_dilation)
                    .u64("measured_dilation", m.measured_dilation)
                    .f64("average_dilation", m.average_dilation)
                    .bool("injective", m.injective)
                    .u64("guest_edges", m.guest_edges)
                    .u64("max_congestion", m.max_congestion)
                    .f64("average_congestion", m.average_congestion)
                    .u64("used_host_links", m.used_host_links)
                    .raw("chain", chain)
                    .raw("workloads", workloads);
                if let Some(o) = &m.optimized {
                    let shard_reports = array(o.shard_reports.iter().map(|s| {
                        Object::new()
                            .u64("shard", u64::from(s.shard))
                            .u64("seed", s.seed)
                            .string("style", s.style)
                            .u64("best_primary", s.best_primary)
                            .u64("best_secondary", s.best_secondary)
                            .u64("accepted", s.accepted)
                            .u64("improvements", s.improvements)
                            .finish()
                    }));
                    let optimized = Object::new()
                        .string("objective", o.objective)
                        .u64("steps", o.steps)
                        .u64("accepted", o.accepted)
                        .u64("improvements", o.improvements)
                        .u64("shards", u64::from(o.shards))
                        .u64("winner_shard", u64::from(o.winner_shard))
                        .u64("winner_seed", o.winner_seed)
                        .raw("shard_reports", shard_reports)
                        .u64("max_congestion", o.max_congestion)
                        .f64("average_congestion", o.average_congestion)
                        .u64("measured_dilation", o.measured_dilation)
                        .f64("average_dilation", o.average_dilation)
                        .bool("injective", o.injective)
                        .finish();
                    object = object.raw("optimized", optimized);
                }
                if let Some(w) = &m.wirelength {
                    let wirelength = Object::new()
                        .u64("steps", w.steps)
                        .u64("shards", u64::from(w.shards))
                        .u64("winner_shard", u64::from(w.winner_shard))
                        .u64("winner_seed", w.winner_seed)
                        .u64("constructive", w.constructive)
                        .u64("optimized", w.optimized)
                        .u64("bound", w.bound)
                        .bool("injective", w.injective)
                        .finish();
                    object = object.raw("wirelength", wirelength);
                }
                if let Some(c) = &m.chaos {
                    let run_json = |run: &ChaosRun| {
                        Object::new()
                            .u64("messages", run.messages)
                            .u64("delivered", run.delivered)
                            .u64("dropped", run.dropped)
                            .u64("total_hops", run.total_hops)
                            .u64("detour_hops", run.detour_hops)
                            .u64("cycles", run.cycles)
                            .f64("delivered_fraction", run.delivered_fraction())
                            .finish()
                    };
                    let faults = array(c.fault_rows.iter().map(|row| {
                        let mut fault = Object::new()
                            .u64("loss_percent", u64::from(row.loss_percent))
                            .raw("constructive", run_json(&row.constructive));
                        if let Some(optimized) = &row.optimized {
                            fault = fault.raw("optimized", run_json(optimized));
                        }
                        fault.finish()
                    }));
                    let tenants = array(c.tenant_rows.iter().map(|row| {
                        Object::new()
                            .u64("tenants", u64::from(row.tenants))
                            .u64("messages", row.messages)
                            .u64("cycles", row.cycles)
                            .u64("solo_cycles", row.solo_cycles)
                            .finish()
                    }));
                    let chaos = Object::new()
                        .raw("faults", faults)
                        .raw("tenants", tenants)
                        .finish();
                    object = object.raw("chaos", chaos);
                }
            }
        }
        object.finish()
    }
}

/// The chaos half of [`TrialRecord::bound_ok`]: message conservation on
/// every fault row, bit-identity of the 0% baseline with the unfaulted
/// neighbor-exchange run, and contention never cheaper than running solo.
fn chaos_ok(m: &TrialMetrics) -> bool {
    let Some(c) = &m.chaos else {
        return true;
    };
    let conserves = |run: &ChaosRun| run.delivered + run.dropped == run.messages;
    let rows_ok = c
        .fault_rows
        .iter()
        .all(|row| conserves(&row.constructive) && row.optimized.as_ref().is_none_or(conserves));
    let baseline_ok = c.fault_rows.first().is_none_or(|row| {
        let pristine = |run: &ChaosRun| run.dropped == 0 && run.detour_hops == 0;
        let matches_neighbor = match m.workloads.iter().find(|w| w.workload == "neighbor") {
            None => true,
            Some(w) => {
                row.constructive.messages == w.messages
                    && row.constructive.total_hops == w.total_hops
                    && row.constructive.cycles == w.cycles
            }
        };
        row.loss_percent == 0
            && pristine(&row.constructive)
            && row.optimized.as_ref().is_none_or(pristine)
            && matches_neighbor
    });
    let tenants_ok = c
        .tenant_rows
        .iter()
        .all(|row| row.cycles >= row.solo_cycles);
    rows_ok && baseline_ok && tenants_ok
}

/// Builds the workload a spec denotes for a guest of `guest.size()` tasks,
/// or `None` when the spec does not apply to that guest.
///
/// The neighbor-exchange workload is assembled through the fallible
/// [`Workload::try_new`] — pair lists here are generated, so explab treats
/// range errors as impossible-by-construction rather than panicking deep in
/// `netsim`.
pub fn build_workload(spec: WorkloadSpec, guest: &Grid, seed: u64) -> Option<Workload> {
    let n = guest.size();
    match spec {
        WorkloadSpec::Neighbor => {
            let mut pairs = Vec::with_capacity(2 * guest.num_edges() as usize);
            for (a, b) in guest.edges() {
                pairs.push((a, b));
                pairs.push((b, a));
            }
            Some(Workload::try_new(n, pairs).expect("guest edges are in range"))
        }
        WorkloadSpec::Tornado => (n >= 3).then(|| patterns::tornado(n)),
        WorkloadSpec::Transpose => {
            if guest.dim() < 2 {
                return None;
            }
            let rows = u64::from(guest.shape().radix(0));
            Some(patterns::transpose(rows, n / rows))
        }
        WorkloadSpec::BitReversal => {
            (n.is_power_of_two() && n >= 4).then(|| patterns::bit_reversal(n.trailing_zeros()))
        }
        WorkloadSpec::AllToAll => (n <= 64).then(|| patterns::all_to_all(n)),
        WorkloadSpec::Random => Some(Workload::uniform_random(n, 2 * n as usize, seed)),
    }
}

/// Runs one trial to completion. Never panics on unsupported pairs — they
/// come back as [`TrialOutcome::Unsupported`].
pub fn run_trial(spec: &TrialSpec) -> TrialRecord {
    let record = |outcome: TrialOutcome| TrialRecord {
        id: spec.id,
        family: spec.family,
        guest: spec.guest.to_string(),
        host: spec.host.to_string(),
        nodes: spec.guest.size(),
        seed: spec.seed,
        outcome,
    };

    let predicted = match predicted_dilation(&spec.guest, &spec.host) {
        Ok(predicted) => predicted,
        Err(error) => {
            return record(TrialOutcome::Unsupported {
                reason: error.to_string(),
            });
        }
    };
    let embedding = match embed(&spec.guest, &spec.host) {
        Ok(embedding) => embedding,
        Err(error) => {
            return record(TrialOutcome::Unsupported {
                reason: error.to_string(),
            });
        }
    };

    // Independent verification and congestion on the batched sequential
    // sweeps: bit-identical to the parallel paths by construction, and the
    // executor already parallelizes across trials.
    let verification = verify_sequential(&embedding);
    let congestion = match congestion_sequential(&embedding) {
        Ok(congestion) => congestion,
        Err(error) => {
            return record(TrialOutcome::Unsupported {
                reason: format!("congestion measurement failed: {error}"),
            });
        }
    };

    // The single-step chain report, assembled from the verification sweep:
    // `EmbeddingChain::through(guest, &[], host)` would invoke the same
    // planner and sweep the same edges two more times for identical numbers
    // (for a one-step chain, step dilation = composed dilation = measured
    // dilation). Multi-step chains with real waypoints go through
    // `EmbeddingChain::report` (see `report::chain_tables`).
    let chain = ChainReport {
        steps: vec![ChainStep {
            name: embedding.name().to_string(),
            guest: spec.guest.to_string(),
            host: spec.host.to_string(),
            dilation: verification.dilation,
        }],
        product_bound: verification.dilation,
        composed_dilation: verification.dilation,
    };

    let optimized = match spec.optimize {
        None => None,
        Some(optim_spec) => match optimize_trial(spec, &embedding, optim_spec) {
            Ok(result) => Some(result),
            Err(error) => {
                return record(TrialOutcome::Unsupported {
                    reason: format!("optimizer failed: {error}"),
                });
            }
        },
    };

    let wirelength = match spec.wirelength {
        // The Tang bound only covers hypercube guests; the stage silently
        // skips other pairs so mixed-family sweeps keep a single plan.
        Some(wl_spec) if spec.guest.is_hypercube() => {
            match wirelength_trial(spec, &embedding, congestion.total_path_length, wl_spec) {
                Ok(result) => Some(result),
                Err(error) => {
                    return record(TrialOutcome::Unsupported {
                        reason: format!("wirelength stage failed: {error}"),
                    });
                }
            }
        }
        _ => None,
    };

    let network = Network::new(spec.host.clone());
    let placement = Placement::from_embedding(&embedding);
    let mut workloads = Vec::with_capacity(spec.workloads.len());
    for &workload_spec in &spec.workloads {
        let Some(workload) = build_workload(workload_spec, &spec.guest, spec.seed) else {
            continue;
        };
        let stats = simulate(&network, &workload, &placement, spec.rounds);
        workloads.push(WorkloadResult {
            workload: workload_spec.name(),
            messages: stats.messages,
            total_hops: stats.total_hops,
            max_hops: stats.max_hops,
            average_hops: stats.average_hops(),
            cycles: stats.cycles,
        });
    }

    let (optimized, optimized_placement) = match optimized {
        None => (None, None),
        Some((metrics, refined)) => (Some(metrics), Some(refined)),
    };
    let chaos = spec.chaos.as_ref().map(|chaos_spec| {
        chaos_metrics(
            spec,
            chaos_spec,
            &network,
            &placement,
            optimized_placement.as_ref(),
        )
    });

    record(TrialOutcome::Supported(Box::new(TrialMetrics {
        construction: embedding.name().to_string(),
        // The plan is described from the already-built embedding (not
        // re-planned): same fields `Plan::closed_form` would record.
        plan: Plan::describing(&spec.guest, &spec.host, embedding.name(), predicted).to_text(),
        predicted_dilation: predicted,
        measured_dilation: verification.dilation,
        average_dilation: verification.average_dilation,
        injective: verification.injective,
        guest_edges: verification.edges,
        max_congestion: congestion.max_congestion,
        average_congestion: congestion.average_congestion,
        used_host_links: congestion.used_host_edges,
        chain,
        workloads,
        optimized,
        wirelength,
        chaos,
    })))
}

/// Runs the chaos stage of one trial: the guest's neighbor-exchange traffic
/// re-simulated with the detour router under a seeded [`FaultPlan`] per
/// loss level (the 0% baseline first — it must reproduce the unfaulted
/// simulator bit for bit), plus one multi-tenant contention row per tenant
/// count. Everything is a pure function of the spec: the fault seeds derive
/// from the trial seed and the loss level, so records stay bit-identical
/// for any worker count.
fn chaos_metrics(
    spec: &TrialSpec,
    chaos_spec: &ChaosSpec,
    network: &Network,
    constructive: &Placement,
    optimized: Option<&Placement>,
) -> ChaosMetrics {
    let neighbor = build_workload(WorkloadSpec::Neighbor, &spec.guest, spec.seed)
        .expect("the neighbor exchange applies to every guest");

    // The 0% baseline plus the plan's loss levels, ascending and deduplicated.
    let mut losses = vec![0u32];
    losses.extend(chaos_spec.loss_percents.iter().copied().filter(|&l| l > 0));
    losses.sort_unstable();
    losses.dedup();
    let fault_rows = losses
        .into_iter()
        .map(|loss| {
            let plan = if loss == 0 {
                FaultPlan::none()
            } else {
                // Decorrelate the fault draws from the trial's workload and
                // optimizer seeds, and from the other loss levels.
                let seed = crate::executor::splitmix64(
                    spec.seed ^ 0xfa17_ed11_4b5e_5eed ^ u64::from(loss),
                );
                FaultPlan::random_link_percent(network.grid(), loss, seed)
            };
            let run = |placement: &Placement| {
                ChaosRun::from_stats(&simulate_chaos(
                    network,
                    &neighbor,
                    placement,
                    spec.rounds,
                    &plan,
                    ChaosRouting::Detour,
                ))
            };
            FaultRow {
                loss_percent: loss,
                constructive: run(constructive),
                optimized: optimized.map(run),
            }
        })
        .collect();

    // K tenants = K copies of the constructive placement, each rotated by a
    // multiple of n/K host nodes (adding a constant offset modulo n keeps
    // every table injective), composed onto the shared pristine host.
    let host_nodes = network.size();
    let compose = |tenants: u32| {
        let placements: Vec<Placement> = (0..tenants)
            .map(|tenant| {
                let offset = u64::from(tenant) * (host_nodes / u64::from(tenants)).max(1);
                let table = (0..constructive.tasks())
                    .map(|task| (constructive.node_of(task) + offset) % host_nodes)
                    .collect();
                Placement::try_from_table(table).expect("a rotated injective table is injective")
            })
            .collect();
        let guests: Vec<(&Workload, &Placement)> =
            placements.iter().map(|p| (&neighbor, p)).collect();
        let composed = multi_tenant(host_nodes, &guests).expect("rotated tenants stay on the host");
        simulate(
            network,
            &composed,
            &Placement::identity(host_nodes),
            spec.rounds,
        )
    };
    let solo_cycles = compose(1).cycles;
    let mut tenant_counts = chaos_spec.tenants.clone();
    tenant_counts.sort_unstable();
    tenant_counts.dedup();
    let tenant_rows = tenant_counts
        .into_iter()
        .filter(|&k| k >= 2)
        .map(|tenants| {
            let stats = compose(tenants);
            TenantRow {
                tenants,
                messages: stats.messages,
                cycles: stats.cycles,
                solo_cycles,
            }
        })
        .collect();

    ChaosMetrics {
        fault_rows,
        tenant_rows,
    }
}

/// Runs the optimizer stage of one trial: refine the constructive placement
/// under the plan's objective with `optim_spec.shards` independently-seeded
/// annealing walks (seeded from the trial seed, so the stage is a pure
/// function of the spec and bit-identical for any worker count), then
/// re-measure the winning refined embedding with the same independent sweeps
/// used for the constructive one. Also returns the refined placement, so the
/// chaos stage can degrade it alongside the constructive one.
fn optimize_trial(
    spec: &TrialSpec,
    embedding: &Embedding,
    optim_spec: OptimSpec,
) -> embeddings::error::Result<(OptimizedMetrics, Placement)> {
    let config = ShardedConfig {
        base: OptimizerConfig {
            // Decorrelate the optimizer walks from the random-workload draws
            // that also consume the trial seed; per-shard seeds derive from
            // this base via `optim::parallel::shard_seed`.
            seed: crate::executor::splitmix64(spec.seed ^ 0x0971_a71e_5eed_c0de),
            steps: optim_spec.steps,
            ..OptimizerConfig::default()
        },
        shards: optim_spec.shards,
        strategy: if optim_spec.portfolio {
            ShardStrategy::Portfolio
        } else {
            ShardStrategy::Restarts
        },
        // Shards run sequentially inside each trial: the executor already
        // parallelizes across trials (spawning shard threads on top would
        // oversubscribe the cores and pay a scope spawn per trial), and the
        // result is worker-count invariant either way.
        workers: 1,
    };
    // One factory for all three objective kinds: each shard builds its own
    // boxed objective on its worker thread (objectives carry mutable
    // incremental state and must never be shared across walks).
    let factory = || -> embeddings::error::Result<Box<dyn Objective>> {
        Ok(match optim_spec.objective {
            ObjectiveKind::Congestion => {
                Box::new(CongestionObjective::new(&spec.guest, &spec.host)?)
            }
            ObjectiveKind::Dilation => Box::new(DilationObjective::new(&spec.guest, &spec.host)?),
            ObjectiveKind::Wirelength => {
                Box::new(WirelengthObjective::new(&spec.guest, &spec.host)?)
            }
            ObjectiveKind::Makespan => Box::new(
                MakespanObjective::new(
                    Network::new(spec.host.clone()),
                    Workload::from_task_graph(&spec.guest),
                    spec.rounds.max(1),
                )
                .map_err(|e| embeddings::EmbeddingError::Unsupported {
                    details: e.to_string(),
                })?,
            ),
        })
    };
    let sharded: ShardedOutcome = optimize_sharded(embedding, factory, &config)?;
    let outcome = &sharded.outcome;
    let verification = verify_sequential(&outcome.embedding);
    let congestion = congestion_sequential(&outcome.embedding)?;
    let winner = &sharded.shards[sharded.winner as usize];
    let placement = Placement::from_embedding(&outcome.embedding);
    let metrics = OptimizedMetrics {
        objective: outcome.report.objective,
        steps: outcome.report.steps,
        accepted: outcome.report.accepted,
        improvements: outcome.report.improvements,
        shards: optim_spec.shards.max(1),
        winner_shard: sharded.winner,
        winner_seed: winner.seed,
        shard_reports: sharded
            .shards
            .iter()
            .map(|s| ShardSummary {
                shard: s.shard,
                seed: s.seed,
                style: s.style,
                best_primary: s.report.best.primary,
                best_secondary: s.report.best.secondary,
                accepted: s.report.accepted,
                improvements: s.report.improvements,
            })
            .collect(),
        max_congestion: congestion.max_congestion,
        average_congestion: congestion.average_congestion,
        measured_dilation: verification.dilation,
        average_dilation: verification.average_dilation,
        injective: verification.injective,
    };
    Ok((metrics, placement))
}

/// Runs the wirelength stage of one trial: anneal the constructive placement
/// under the unit-weight [`WirelengthObjective`] with `wl_spec.shards`
/// independently-seeded walks, re-measure the winner with the same
/// `verify`/`congestion` sweeps used everywhere else, and put both
/// measurements next to Tang's exact analytic minimum. Like the optimizer
/// stage, everything is a pure function of the spec (its seed decorrelates
/// from the optimizer and workload draws via a distinct constant), so
/// records stay bit-identical for any worker count.
fn wirelength_trial(
    spec: &TrialSpec,
    embedding: &Embedding,
    constructive_wirelength: u64,
    wl_spec: WirelengthSpec,
) -> embeddings::error::Result<WirelengthMetrics> {
    let bound = wirelength_lower_bound(&spec.guest, &spec.host)?;
    let config = ShardedConfig {
        base: OptimizerConfig {
            seed: crate::executor::splitmix64(spec.seed ^ 0x7a96_2023_0d1e_57a1),
            steps: wl_spec.steps,
            ..OptimizerConfig::default()
        },
        shards: wl_spec.shards,
        // The wirelength stage stays a pure restart race (Table 11 compares
        // seeds, not styles); sequential shards for the same reason as
        // `optimize_trial`: the executor parallelizes across trials.
        strategy: ShardStrategy::Restarts,
        workers: 1,
    };
    let factory = || -> embeddings::error::Result<Box<dyn Objective>> {
        Ok(Box::new(WirelengthObjective::new(&spec.guest, &spec.host)?))
    };
    let sharded: ShardedOutcome = optimize_sharded(embedding, factory, &config)?;
    let refined = &sharded.outcome.embedding;
    let verification = verify_sequential(refined);
    let congestion = congestion_sequential(refined)?;
    let winner = &sharded.shards[sharded.winner as usize];
    Ok(WirelengthMetrics {
        steps: wl_spec.steps,
        shards: wl_spec.shards.max(1),
        winner_shard: sharded.winner,
        winner_seed: winner.seed,
        constructive: constructive_wirelength,
        // DOR routes are shortest paths, so the congestion sweep's total
        // path length *is* the refined table's wirelength.
        optimized: congestion.total_path_length,
        bound,
        injective: verification.injective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    fn spec(guest: Grid, host: Grid) -> TrialSpec {
        TrialSpec {
            id: 0,
            family: "test",
            guest,
            host,
            seed: 42,
            rounds: 1,
            workloads: vec![WorkloadSpec::Neighbor, WorkloadSpec::Tornado],
            optimize: None,
            wirelength: None,
            chaos: None,
        }
    }

    #[test]
    fn supported_trial_measures_everything() {
        let record = run_trial(&spec(
            Grid::ring(24).unwrap(),
            Grid::mesh(shape(&[4, 2, 3])),
        ));
        let metrics = record.metrics().expect("supported");
        assert_eq!(metrics.predicted_dilation, 1);
        assert_eq!(metrics.measured_dilation, 1);
        assert!(metrics.injective);
        assert_eq!(metrics.guest_edges, 24);
        assert!(metrics.max_congestion >= 1);
        assert_eq!(metrics.chain.steps.len(), 1);
        assert!(metrics.chain.within_bound());
        assert_eq!(metrics.workloads.len(), 2);
        assert!(record.bound_ok());
        // Unit dilation: neighbor exchange is all single hops.
        let neighbor = &metrics.workloads[0];
        assert_eq!(neighbor.workload, "neighbor");
        assert_eq!(neighbor.max_hops, 1);
        assert_eq!(neighbor.messages, 48);
    }

    #[test]
    fn unsupported_trial_records_the_reason() {
        let record = run_trial(&spec(
            Grid::mesh(shape(&[4, 9])),
            Grid::mesh(shape(&[6, 6])),
        ));
        assert!(!record.is_supported());
        assert!(record.bound_ok(), "unsupported is vacuously within bound");
        match &record.outcome {
            TrialOutcome::Unsupported { reason } => {
                assert!(!reason.is_empty());
            }
            other => panic!("expected unsupported, got {other:?}"),
        }
        let json = record.to_json_line();
        assert!(json.contains("\"supported\":false"));
        assert!(json.contains("\"reason\""));
    }

    #[test]
    fn json_lines_are_flat_and_complete() {
        let record = run_trial(&spec(
            Grid::torus(shape(&[4, 6])),
            Grid::mesh(shape(&[2, 2, 2, 3])),
        ));
        let json = record.to_json_line();
        for key in [
            "\"id\":0",
            "\"family\":\"test\"",
            "\"predicted_dilation\"",
            "\"measured_dilation\"",
            "\"max_congestion\"",
            "\"chain\"",
            "\"workloads\"",
            "\"bound_ok\":true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains('\n'));
    }

    #[test]
    fn dumped_plans_rebuild_the_trial_mapping() {
        // Every supported record's `plan` field must parse back into a Plan
        // whose rebuilt embedding is the trial's mapping, node for node.
        let guest = Grid::torus(shape(&[4, 2, 3]));
        let host = Grid::mesh(shape(&[4, 6]));
        let record = run_trial(&spec(guest.clone(), host.clone()));
        let TrialOutcome::Supported(metrics) = &record.outcome else {
            panic!("expected a supported trial");
        };
        let plan = Plan::parse(&metrics.plan).unwrap();
        assert_eq!(plan.guest(), &guest);
        assert_eq!(plan.construction(), metrics.construction);
        assert_eq!(plan.dilation(), metrics.predicted_dilation);
        let rebuilt = plan.to_embedding().unwrap();
        let direct = embed(&guest, &host).unwrap();
        for v in 0..guest.size() {
            assert_eq!(rebuilt.map_index(v), direct.map_index(v));
        }
        // And the JSONL line carries it.
        assert!(record.to_json_line().contains("\"plan\":\"plan v1 "));
    }

    #[test]
    fn chaos_rows_measure_degraded_operation() {
        let mut spec = spec(Grid::torus(shape(&[4, 4])), Grid::torus(shape(&[4, 4])));
        spec.chaos = Some(ChaosSpec {
            loss_percents: vec![50, 10], // unsorted on purpose
            tenants: vec![2],
        });
        spec.optimize = Some(OptimSpec {
            objective: ObjectiveKind::Congestion,
            steps: 50,
            shards: 1,
            portfolio: false,
        });
        let record = run_trial(&spec);
        let metrics = record.metrics().expect("supported");
        let chaos = metrics.chaos.as_ref().expect("chaos stage ran");

        // Rows come back ascending with the implicit 0% baseline first.
        let losses: Vec<u32> = chaos.fault_rows.iter().map(|r| r.loss_percent).collect();
        assert_eq!(losses, vec![0, 10, 50]);
        for row in &chaos.fault_rows {
            let c = &row.constructive;
            assert_eq!(c.delivered + c.dropped, c.messages);
            let o = row.optimized.as_ref().expect("optimizer stage ran");
            assert_eq!(o.delivered + o.dropped, o.messages);
        }
        // The baseline reproduces the unfaulted neighbor-exchange run.
        let baseline = &chaos.fault_rows[0].constructive;
        let neighbor = &metrics.workloads[0];
        assert_eq!(baseline.dropped, 0);
        assert_eq!(baseline.detour_hops, 0);
        assert_eq!(baseline.messages, neighbor.messages);
        assert_eq!(baseline.cycles, neighbor.cycles);
        // Half the links gone on a 16-node torus: traffic must degrade.
        let half = &chaos.fault_rows[2].constructive;
        assert!(half.dropped > 0 || half.detour_hops > 0);

        // Two tenants at least double the traffic and never beat the floor.
        assert_eq!(chaos.tenant_rows.len(), 1);
        let row = &chaos.tenant_rows[0];
        assert_eq!(row.tenants, 2);
        assert_eq!(row.messages, 2 * neighbor.messages);
        assert!(row.cycles >= row.solo_cycles);

        assert!(record.bound_ok());
        let json = record.to_json_line();
        assert!(json.contains("\"chaos\":{\"faults\":["));
        assert!(json.contains("\"tenants\":["));
        assert!(json.contains("\"delivered_fraction\""));
    }

    #[test]
    fn workload_applicability_gates() {
        let ring = Grid::ring(24).unwrap();
        let cube = Grid::hypercube(4).unwrap();
        assert!(build_workload(WorkloadSpec::Transpose, &ring, 0).is_none());
        assert!(build_workload(WorkloadSpec::Transpose, &cube, 0).is_some());
        assert!(build_workload(WorkloadSpec::BitReversal, &ring, 0).is_none());
        assert!(build_workload(WorkloadSpec::BitReversal, &cube, 0).is_some());
        assert!(build_workload(WorkloadSpec::AllToAll, &ring, 0).is_some());
        let big = Grid::torus(shape(&[10, 10]));
        assert!(build_workload(WorkloadSpec::AllToAll, &big, 0).is_none());
        let random = build_workload(WorkloadSpec::Random, &ring, 7).unwrap();
        assert_eq!(random.messages_per_round(), 48);
        assert_eq!(
            build_workload(WorkloadSpec::Random, &ring, 7),
            Some(Workload::uniform_random(24, 48, 7))
        );
    }
}
