//! `explab` — a declarative experiment-sweep engine for the embedding
//! pipeline.
//!
//! The paper's results are tables over *families* of shape pairs: the
//! dilation of the prescribed construction for every torus/mesh pair in a
//! range, not for one hand-coded example. This crate turns that idea into a
//! subsystem:
//!
//! * [`plan`] — declarative [`SweepPlan`]s: shape-pair generators
//!   ([`plan::Family`]) × workloads ([`plan::WorkloadSpec`]) × a seed,
//!   parsed from plan files or picked from built-ins;
//! * [`executor`] — [`executor::expand`] turns a plan into trials with
//!   per-trial derived seeds, and [`executor::run`] shards them over
//!   crossbeam workers with bit-identical results for any worker count;
//! * [`trial`] — one pair measured end to end on the batched pipeline:
//!   predicted vs measured dilation ([`embeddings::verify`]), congestion,
//!   the [`embeddings::chain::ChainReport`] bound check, and `netsim`
//!   makespans per workload;
//! * [`report`] — aggregate [`gridviz`] tables and the generated
//!   `EXPERIMENTS.md`;
//! * [`json`] — the offline JSONL serializer behind per-trial records.
//!
//! The `lab` binary wraps it all in a CLI (`lab run`, `lab report`,
//! `lab expand`, `lab plans`); see the repository README.
//!
//! # Example
//!
//! ```
//! use explab::executor::run;
//! use explab::plan::{Family, SweepPlan, WorkloadSpec};
//!
//! let plan = SweepPlan {
//!     name: "doc".into(),
//!     seed: 7,
//!     rounds: 1,
//!     families: vec![Family::RingInto { max_size: 8, max_dim: 2 }],
//!     workloads: vec![WorkloadSpec::Neighbor],
//!     optimize: None,
//!     wirelength: None,
//!     chaos: None,
//! };
//! let outcome = run(&plan, 2);
//! assert!(outcome.supported() > 0);
//! assert!(outcome.bound_violations().is_empty());
//! // Worker count never changes the records.
//! assert_eq!(outcome.records, run(&plan, 1).records);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod executor;
pub mod json;
pub mod plan;
pub mod report;
pub mod trial;

pub use error::{ExplabError, Result};
pub use executor::{run, SweepOutcome};
pub use plan::{
    ChaosSpec, Family, ObjectiveKind, OptimSpec, SweepPlan, WirelengthSpec, WorkloadSpec,
};
pub use trial::{TrialOutcome, TrialRecord, TrialSpec};

/// Commonly used items.
pub mod prelude {
    pub use crate::error::ExplabError;
    pub use crate::executor::{expand, run, SweepOutcome};
    pub use crate::plan::{
        ChaosSpec, Family, ObjectiveKind, OptimSpec, SweepPlan, WirelengthSpec, WorkloadSpec,
    };
    pub use crate::report::experiments_markdown;
    pub use crate::trial::{run_trial, TrialOutcome, TrialRecord, TrialSpec};
}
