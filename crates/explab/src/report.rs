//! Aggregate tables and the generated EXPERIMENTS.md.
//!
//! Everything here is a pure function of a [`SweepOutcome`], and every
//! number is formatted with a fixed precision, so the rendered document is
//! byte-identical across runs, machines and worker counts — which is what
//! lets CI diff the checked-in EXPERIMENTS.md against a fresh regeneration.

use embeddings::chain::EmbeddingChain;
use gridviz::{Alignment, Table};
use topology::{Grid, Shape};

use crate::executor::SweepOutcome;
use crate::trial::TrialRecord;

/// The three-way marker used in dilation tables: measured equals the bound,
/// beats it, or violates it (the repo-wide convention of the `repro`
/// harness).
pub fn check_mark(predicted: u64, measured: u64) -> &'static str {
    if measured == predicted {
        "ok"
    } else if measured < predicted {
        "ok (beats bound)"
    } else {
        "MISMATCH"
    }
}

fn right(n: usize) -> Vec<Alignment> {
    // First column left, the remaining n right-aligned.
    let mut alignments = vec![Alignment::Left];
    alignments.extend(std::iter::repeat_n(Alignment::Right, n));
    alignments
}

/// Table: one row per family — coverage, violations and extreme measurements.
pub fn family_overview(outcome: &SweepOutcome) -> Table {
    let mut families: Vec<&'static str> = Vec::new();
    for record in &outcome.records {
        if !families.contains(&record.family) {
            families.push(record.family);
        }
    }
    let mut table = Table::new(vec![
        "family",
        "pairs",
        "supported",
        "unsupported",
        "violations",
        "max dilation",
        "max congestion",
        "max congestion (opt)",
    ])
    .with_alignments(right(7));
    for family in families {
        let records: Vec<&TrialRecord> = outcome
            .records
            .iter()
            .filter(|r| r.family == family)
            .collect();
        let supported = records.iter().filter(|r| r.is_supported()).count();
        let violations = records.iter().filter(|r| !r.bound_ok()).count();
        let max_dilation = records
            .iter()
            .filter_map(|r| r.metrics().map(|m| m.measured_dilation))
            .max()
            .unwrap_or(0);
        let max_congestion = records
            .iter()
            .filter_map(|r| r.metrics().map(|m| m.max_congestion))
            .max()
            .unwrap_or(0);
        let max_optimized = records
            .iter()
            .filter_map(|r| r.metrics().and_then(|m| m.optimized.as_ref()))
            .map(|o| o.max_congestion)
            .max();
        table.push_row(vec![
            family.to_string(),
            records.len().to_string(),
            supported.to_string(),
            (records.len() - supported).to_string(),
            violations.to_string(),
            max_dilation.to_string(),
            max_congestion.to_string(),
            max_optimized.map_or_else(|| "-".to_string(), |c| c.to_string()),
        ]);
    }
    table
}

/// Table: the paper-family pairs in full detail — the EXPERIMENTS.md
/// analogue of the paper's summary table.
pub fn paper_dilation(outcome: &SweepOutcome) -> Table {
    let mut table = Table::new(vec![
        "guest",
        "host",
        "construction",
        "predicted",
        "measured",
        "avg dilation",
        "max congestion",
        "opt congestion",
        "check",
    ])
    .with_alignments(vec![
        Alignment::Left,
        Alignment::Left,
        Alignment::Left,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
        Alignment::Left,
    ]);
    for record in outcome.records.iter().filter(|r| r.family == "paper") {
        let Some(m) = record.metrics() else {
            table.push_row(vec![
                record.guest.clone(),
                record.host.clone(),
                "(unsupported)".to_string(),
            ]);
            continue;
        };
        table.push_row(vec![
            record.guest.clone(),
            record.host.clone(),
            m.construction.clone(),
            m.predicted_dilation.to_string(),
            m.measured_dilation.to_string(),
            format!("{:.3}", m.average_dilation),
            m.max_congestion.to_string(),
            m.optimized
                .as_ref()
                .map_or_else(|| "-".to_string(), |o| o.max_congestion.to_string()),
            check_mark(m.predicted_dilation, m.measured_dilation).to_string(),
        ]);
    }
    table
}

/// Table: one row per size of the named family — how coverage and dilation
/// evolve as the pairs grow.
pub fn dilation_by_size(outcome: &SweepOutcome, family: &str) -> Table {
    let mut sizes: Vec<u64> = Vec::new();
    for record in &outcome.records {
        if record.family == family && !sizes.contains(&record.nodes) {
            sizes.push(record.nodes);
        }
    }
    sizes.sort_unstable();
    let mut table = Table::new(vec![
        "nodes",
        "pairs",
        "supported",
        "max predicted",
        "max measured",
        "violations",
    ])
    .with_alignments(right(5));
    for nodes in sizes {
        let records: Vec<&TrialRecord> = outcome
            .records
            .iter()
            .filter(|r| r.family == family && r.nodes == nodes)
            .collect();
        let supported = records.iter().filter(|r| r.is_supported()).count();
        let violations = records.iter().filter(|r| !r.bound_ok()).count();
        let max_predicted = records
            .iter()
            .filter_map(|r| r.metrics().map(|m| m.predicted_dilation))
            .max()
            .unwrap_or(0);
        let max_measured = records
            .iter()
            .filter_map(|r| r.metrics().map(|m| m.measured_dilation))
            .max()
            .unwrap_or(0);
        table.push_row(vec![
            nodes.to_string(),
            records.len().to_string(),
            supported.to_string(),
            max_predicted.to_string(),
            max_measured.to_string(),
            violations.to_string(),
        ]);
    }
    table
}

/// Table: simulated latency of every applicable workload on the paper pairs.
pub fn paper_workloads(outcome: &SweepOutcome) -> Table {
    let mut table = Table::new(vec![
        "pair", "workload", "messages", "avg hops", "max hops", "cycles",
    ])
    .with_alignments(vec![
        Alignment::Left,
        Alignment::Left,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
    ]);
    for record in outcome.records.iter().filter(|r| r.family == "paper") {
        let Some(m) = record.metrics() else { continue };
        for w in &m.workloads {
            table.push_row(vec![
                format!("{} -> {}", record.guest, record.host),
                w.workload.to_string(),
                w.messages.to_string(),
                format!("{:.3}", w.average_hops),
                w.max_hops.to_string(),
                w.cycles.to_string(),
            ]);
        }
    }
    table
}

/// Table: constructive vs optimized max congestion, one row per family —
/// the measured-objective headline the optimizer subsystem adds on top of
/// the paper's analytic bounds. `Σ` columns sum each trial's max congestion
/// over the family, so "improved" trials move the totals even when the
/// family-wide maximum is unchanged.
pub fn optimizer_comparison(outcome: &SweepOutcome) -> Table {
    let mut families: Vec<&'static str> = Vec::new();
    for record in &outcome.records {
        if !families.contains(&record.family) {
            families.push(record.family);
        }
    }
    let mut table = Table::new(vec![
        "family",
        "optimized trials",
        "improved",
        "Σ max congestion (constructive)",
        "Σ max congestion (optimized)",
        "reduction",
    ])
    .with_alignments(right(5));
    for family in families {
        let pairs: Vec<(u64, u64)> = outcome
            .records
            .iter()
            .filter(|r| r.family == family)
            .filter_map(|r| r.metrics())
            .filter_map(|m| {
                m.optimized
                    .as_ref()
                    .map(|o| (m.max_congestion, o.max_congestion))
            })
            .collect();
        if pairs.is_empty() {
            continue;
        }
        let improved = pairs
            .iter()
            .filter(|(before, after)| after < before)
            .count();
        let before: u64 = pairs.iter().map(|(b, _)| b).sum();
        let after: u64 = pairs.iter().map(|(_, a)| a).sum();
        // Signed difference: the congestion objective is monotone in max
        // congestion, but the dilation/makespan objectives may trade it
        // away, and a negative reduction must render as such rather than
        // underflow `before - after` in u64.
        let reduction = if before == 0 {
            0.0
        } else {
            100.0 * (before as f64 - after as f64) / before as f64
        };
        table.push_row(vec![
            family.to_string(),
            pairs.len().to_string(),
            improved.to_string(),
            before.to_string(),
            after.to_string(),
            format!("{reduction:.1}%"),
        ]);
    }
    table
}

/// Table: sharded annealing vs the sequential walk, one row per family.
/// Shard 0 runs the base seed unchanged, so its per-shard report *is* the
/// sequential optimizer's result; the winner column is the best-of-N reduce.
/// `Σ best` columns sum each trial's best primary cost (max congestion under
/// the congestion objective) over the family. `portfolio wins` counts the
/// wins claimed by a non-`"base"` shard style — the compound move
/// repertoires and hotter schedules of `ShardStrategy::Portfolio` (always 0
/// under seed-only restarts, where every style is `"base"`).
pub fn sharded_comparison(outcome: &SweepOutcome) -> Table {
    let mut families: Vec<&'static str> = Vec::new();
    for record in &outcome.records {
        if !families.contains(&record.family) {
            families.push(record.family);
        }
    }
    let mut table = Table::new(vec![
        "family",
        "trials",
        "shards",
        "sharded wins",
        "portfolio wins",
        "Σ best (shard 0 = sequential)",
        "Σ best (best of N shards)",
        "reduction",
    ])
    .with_alignments(right(7));
    for family in families {
        let rows: Vec<(u64, u64, u32, &'static str)> = outcome
            .records
            .iter()
            .filter(|r| r.family == family)
            .filter_map(|r| r.metrics())
            .filter_map(|m| m.optimized.as_ref())
            // A single-shard run would compare the sequential walk against
            // itself — vacuous; the table only renders for real fan-outs.
            .filter(|o| o.shard_reports.len() > 1)
            .map(|o| {
                let sequential = o.shard_reports[0].best_primary;
                let best = o
                    .shard_reports
                    .iter()
                    .map(|s| s.best_primary)
                    .min()
                    .expect("non-empty");
                let winner_style = o.shard_reports[o.winner_shard as usize].style;
                (sequential, best, o.shards, winner_style)
            })
            .collect();
        if rows.is_empty() {
            continue;
        }
        let shards = rows[0].2;
        let wins = rows.iter().filter(|(seq, best, _, _)| best < seq).count();
        let portfolio_wins = rows
            .iter()
            .filter(|(seq, best, _, style)| best < seq && *style != "base")
            .count();
        let sequential: u64 = rows.iter().map(|(seq, _, _, _)| seq).sum();
        let best: u64 = rows.iter().map(|(_, best, _, _)| best).sum();
        let reduction = if sequential == 0 {
            0.0
        } else {
            100.0 * (sequential as f64 - best as f64) / sequential as f64
        };
        table.push_row(vec![
            family.to_string(),
            rows.len().to_string(),
            shards.to_string(),
            wins.to_string(),
            portfolio_wins.to_string(),
            sequential.to_string(),
            best.to_string(),
            format!("{reduction:.1}%"),
        ]);
    }
    table
}

/// Table: fault tolerance by family and link-loss level — delivered
/// fraction, makespan inflation and detour overhead of the neighbor-exchange
/// traffic re-routed by `netsim::chaos`'s detour router, for the
/// constructive and (when present) the annealed placement. The 0% row is
/// the pristine baseline: it must read `1.000`, `x1.00`, `0.0%` — any other
/// value is a bound violation the executor would already have flagged.
pub fn fault_tolerance(outcome: &SweepOutcome) -> Table {
    let mut families: Vec<&'static str> = Vec::new();
    for record in &outcome.records {
        if !families.contains(&record.family) {
            families.push(record.family);
        }
    }
    let mut table = Table::new(vec![
        "family",
        "link loss",
        "trials",
        "delivered",
        "delivered (opt)",
        "makespan",
        "makespan (opt)",
        "detour overhead",
    ])
    .with_alignments(right(7));
    for family in families {
        let chaotic: Vec<&crate::trial::ChaosMetrics> = outcome
            .records
            .iter()
            .filter(|r| r.family == family)
            .filter_map(|r| r.metrics())
            .filter_map(|m| m.chaos.as_ref())
            .collect();
        if chaotic.is_empty() {
            continue;
        }
        // Every trial of a family shares the plan's loss levels.
        let levels: Vec<u32> = chaotic[0]
            .fault_rows
            .iter()
            .map(|row| row.loss_percent)
            .collect();
        let baseline_cycles: u64 = sum_runs(&chaotic, 0, |run| run.cycles, false);
        let baseline_opt: u64 = sum_runs(&chaotic, 0, |run| run.cycles, true);
        let has_optimized = chaotic
            .iter()
            .any(|c| c.fault_rows.iter().any(|row| row.optimized.is_some()));
        for &loss in &levels {
            let delivered = sum_runs(&chaotic, loss, |run| run.delivered, false);
            let messages = sum_runs(&chaotic, loss, |run| run.messages, false);
            let cycles = sum_runs(&chaotic, loss, |run| run.cycles, false);
            let detour = sum_runs(&chaotic, loss, |run| run.detour_hops, false);
            let hops = sum_runs(&chaotic, loss, |run| run.total_hops, false);
            let (delivered_opt, makespan_opt) = if has_optimized {
                let d = sum_runs(&chaotic, loss, |run| run.delivered, true);
                let m = sum_runs(&chaotic, loss, |run| run.messages, true);
                let c = sum_runs(&chaotic, loss, |run| run.cycles, true);
                (
                    format!("{:.3}", fraction(d, m)),
                    format!("x{:.2}", ratio(c, baseline_opt)),
                )
            } else {
                ("-".to_string(), "-".to_string())
            };
            table.push_row(vec![
                family.to_string(),
                format!("{loss}%"),
                chaotic.len().to_string(),
                format!("{:.3}", fraction(delivered, messages)),
                delivered_opt,
                format!("x{:.2}", ratio(cycles, baseline_cycles)),
                makespan_opt,
                format!("{:.1}%", 100.0 * fraction(detour, hops.max(1))),
            ]);
        }
    }
    table
}

/// Sums `field` of the `loss`-level fault row over every trial's chaos
/// metrics — the constructive run, or the optimized one when `optimized`.
fn sum_runs(
    chaotic: &[&crate::trial::ChaosMetrics],
    loss: u32,
    field: impl Fn(&crate::trial::ChaosRun) -> u64,
    optimized: bool,
) -> u64 {
    chaotic
        .iter()
        .flat_map(|c| c.fault_rows.iter())
        .filter(|row| row.loss_percent == loss)
        .filter_map(|row| {
            if optimized {
                row.optimized.as_ref()
            } else {
                Some(&row.constructive)
            }
        })
        .map(field)
        .sum()
}

fn fraction(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        1.0
    } else {
        numerator as f64 / denominator as f64
    }
}

fn ratio(value: u64, baseline: u64) -> f64 {
    if baseline == 0 {
        1.0
    } else {
        value as f64 / baseline as f64
    }
}

/// Table: multi-tenant contention by family and tenant count — K rotated
/// copies of each trial's constructive placement composed onto the shared
/// host (`netsim::traffic::multi_tenant`), with the makespan inflation over
/// tenant 0 running alone. FIFO link arbitration makes `x >= 1.00` a hard
/// invariant, re-checked per record by `bound_ok`.
pub fn tenant_contention(outcome: &SweepOutcome) -> Table {
    let mut families: Vec<&'static str> = Vec::new();
    for record in &outcome.records {
        if !families.contains(&record.family) {
            families.push(record.family);
        }
    }
    let mut table = Table::new(vec![
        "family",
        "tenants",
        "trials",
        "Σ messages",
        "Σ cycles",
        "Σ solo cycles",
        "contention",
    ])
    .with_alignments(right(6));
    for family in families {
        let chaotic: Vec<&crate::trial::ChaosMetrics> = outcome
            .records
            .iter()
            .filter(|r| r.family == family)
            .filter_map(|r| r.metrics())
            .filter_map(|m| m.chaos.as_ref())
            .collect();
        let counts: Vec<u32> = chaotic
            .first()
            .map(|c| c.tenant_rows.iter().map(|row| row.tenants).collect())
            .unwrap_or_default();
        for &tenants in &counts {
            let rows: Vec<&crate::trial::TenantRow> = chaotic
                .iter()
                .flat_map(|c| c.tenant_rows.iter())
                .filter(|row| row.tenants == tenants)
                .collect();
            if rows.is_empty() {
                continue;
            }
            let messages: u64 = rows.iter().map(|row| row.messages).sum();
            let cycles: u64 = rows.iter().map(|row| row.cycles).sum();
            let solo: u64 = rows.iter().map(|row| row.solo_cycles).sum();
            table.push_row(vec![
                family.to_string(),
                tenants.to_string(),
                rows.len().to_string(),
                messages.to_string(),
                cycles.to_string(),
                solo.to_string(),
                format!("x{:.2}", ratio(cycles, solo)),
            ]);
        }
    }
    table
}

/// The fixed multi-step chains EXPERIMENTS.md reports: endpoints the planner
/// also covers directly, routed through explicit intermediate graphs so the
/// per-step dilations and the multiplicative bound are visible.
/// Table: the cross-paper wirelength comparison, one row per hypercube-guest
/// trial that ran the wirelength stage — the 1987 constructive embedding's
/// total routed wirelength, the best a sharded annealing search under the
/// wirelength objective found, and Tang's exact analytic minimum
/// (arXiv:2302.13237) side by side. `check` compares the annealed value with
/// the bound: `ok (tight)` means annealing reached the exact optimum, `ok`
/// means it stayed above, `MISMATCH` (never expected) would mean a measured
/// wirelength below a proven minimum.
pub fn wirelength_table(outcome: &SweepOutcome) -> Table {
    let mut table = Table::new(vec![
        "guest",
        "host",
        "constructive",
        "annealed",
        "Tang bound",
        "check",
    ])
    .with_alignments(right(4));
    for record in &outcome.records {
        let Some(w) = record.metrics().and_then(|m| m.wirelength.as_ref()) else {
            continue;
        };
        table.push_row(vec![
            record.guest.clone(),
            record.host.clone(),
            w.constructive.to_string(),
            w.optimized.to_string(),
            w.bound.to_string(),
            if w.optimized < w.bound {
                "MISMATCH".to_string()
            } else if w.optimized == w.bound {
                "ok (tight)".to_string()
            } else {
                "ok".to_string()
            },
        ]);
    }
    table
}

fn report_chains() -> Vec<(&'static str, Grid, Vec<Grid>, Grid)> {
    let shape = |radices: &[u32]| Shape::new(radices.to_vec()).expect("valid shape");
    vec![
        (
            "hypercube(64) -> line(64)",
            Grid::hypercube(6).expect("valid"),
            vec![Grid::mesh(shape(&[4, 4, 4])), Grid::mesh(shape(&[8, 8]))],
            Grid::line(64).expect("valid"),
        ),
        (
            "ring(24) -> (4, 2, 3)-mesh",
            Grid::ring(24).expect("valid"),
            vec![Grid::mesh(shape(&[4, 6]))],
            Grid::mesh(shape(&[4, 2, 3])),
        ),
        (
            "(4, 6)-torus -> (2, 2, 2, 3)-mesh",
            Grid::torus(shape(&[4, 6])),
            vec![Grid::mesh(shape(&[4, 6]))],
            Grid::mesh(shape(&[2, 2, 2, 3])),
        ),
    ]
}

/// Tables: per-step dilations of the fixed chains, and the multiplicative
/// bound check for each chain.
pub fn chain_tables() -> (Table, Table) {
    let mut steps_table = Table::new(vec![
        "chain",
        "step",
        "construction",
        "guest",
        "host",
        "dilation",
    ])
    .with_alignments(vec![
        Alignment::Left,
        Alignment::Right,
        Alignment::Left,
        Alignment::Left,
        Alignment::Left,
        Alignment::Right,
    ]);
    let mut bounds_table = Table::new(vec![
        "chain",
        "steps",
        "product bound",
        "composed dilation",
        "check",
    ])
    .with_alignments(vec![
        Alignment::Left,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
        Alignment::Left,
    ]);
    for (name, guest, waypoints, host) in report_chains() {
        let chain = EmbeddingChain::through(&guest, &waypoints, &host)
            .expect("report chains are planner-supported");
        let report = chain.report();
        for (index, step) in report.steps.iter().enumerate() {
            steps_table.push_row(vec![
                name.to_string(),
                (index + 1).to_string(),
                step.name.clone(),
                step.guest.clone(),
                step.host.clone(),
                step.dilation.to_string(),
            ]);
        }
        bounds_table.push_row(vec![
            name.to_string(),
            report.steps.len().to_string(),
            report.product_bound.to_string(),
            report.composed_dilation.to_string(),
            if report.within_bound() {
                "ok".to_string()
            } else {
                "MISMATCH".to_string()
            },
        ]);
    }
    (steps_table, bounds_table)
}

/// Renders the full EXPERIMENTS.md document from the report-plan outcome.
/// `shard_note` describes the executor cross-check the caller performed
/// (e.g. "identical records with 1 and 4 workers").
pub fn experiments_markdown(outcome: &SweepOutcome, shard_note: &str) -> String {
    let mut out = String::new();
    let violations = outcome.bound_violations().len();
    out.push_str("# EXPERIMENTS\n\n");
    out.push_str(
        "Generated by `cargo run --release -p explab --bin lab -- report`. Do not edit\n\
         by hand: CI regenerates this file with `lab report --check` and fails on any\n\
         drift. Trials run the batched `verify`/`congestion` pipeline plus one `netsim`\n\
         round per workload, then refine each placement with sharded seeded annealing\n\
         (N independent walks, lexicographically best kept) for constructive-vs-\n\
         optimized and sequential-vs-sharded comparisons, anneal hypercube guests\n\
         under the wirelength objective against Tang's exact analytic minimum\n\
         (Table 11), then re-simulate each placement under seeded link loss and\n\
         multi-tenant contention (`netsim::chaos`) for the degraded-operation\n\
         tables; a pair outside the paper's constructions is recorded as\n\
         unsupported, not an error.\n\n",
    );
    out.push_str(&format!(
        "- plan: `{}` (seed {}, {} trials: {} supported, {} outside the paper's cases)\n",
        outcome.plan_name,
        outcome.seed,
        outcome.records.len(),
        outcome.supported(),
        outcome.records.len() - outcome.supported(),
    ));
    out.push_str(&format!("- bound violations: **{violations}**\n"));
    out.push_str(&format!("- sharding check: {shard_note}\n\n"));

    out.push_str("## Table 1 — coverage and extremes by family\n\n");
    out.push_str(&family_overview(outcome).to_markdown());
    out.push_str(
        "\nEvery family honors its theorems: measured dilation never exceeds the\n\
         planner's prediction, and every constructed embedding verifies injective.\n\n",
    );

    out.push_str("## Table 2 — the paper's pairs: predicted vs measured dilation\n\n");
    out.push_str(&paper_dilation(outcome).to_markdown());
    out.push_str(
        "\n`check` uses the repo-wide three-way marker: `ok` (measured equals the\n\
         bound), `ok (beats bound)` (strictly below), `MISMATCH` (violation — never\n\
         expected).\n\n",
    );

    out.push_str("## Table 3 — torus -> mesh dilation by size\n\n");
    out.push_str(&dilation_by_size(outcome, "torus_to_mesh").to_markdown());
    out.push_str(
        "\nAll distinct torus shapes into all distinct mesh shapes of the same size\n\
         (dimension <= 3). Unsupported pairs are the shape combinations the paper\n\
         leaves open (neither expansion, reduction, equality nor squareness).\n\n",
    );

    out.push_str("## Table 4 — simulated workload latency on the paper pairs\n\n");
    out.push_str(&paper_workloads(outcome).to_markdown());
    out.push_str(
        "\nStore-and-forward simulation under dimension-ordered routing, one message\n\
         per pair per round, one-message-per-link arbitration. `avg hops` tracks the\n\
         embedding's average dilation on neighbor traffic; `cycles` additionally\n\
         reflects link contention.\n\n",
    );

    let (steps, bounds) = chain_tables();
    out.push_str("## Table 5 — multi-step chains: per-step dilation\n\n");
    out.push_str(&steps.to_markdown());
    out.push_str("\n## Table 6 — multi-step chains: the multiplicative bound\n\n");
    out.push_str(&bounds.to_markdown());
    out.push_str(
        "\nA chain `G -> I_1 -> … -> H` guarantees `dilation <= Π step dilation`\n\
         (each step stretches a unit edge into a path of at most its own dilation).\n\
         The composed embeddings stay within — often beat — the product bound.\n",
    );

    let comparison = optimizer_comparison(outcome);
    if !comparison.is_empty() {
        out.push_str("\n## Table 7 — optimizer: constructive vs optimized max congestion\n\n");
        out.push_str(&comparison.to_markdown());
        out.push_str(
            "\nEvery supported trial's placement is additionally refined by the seeded\n\
             local-search optimizer (`embeddings::optim`, simulated annealing over\n\
             swap/segment-reversal moves with incremental congestion deltas) and\n\
             re-measured with the same independent sweeps. The optimizer is monotone:\n\
             optimized max congestion never exceeds the constructive embedding's, and\n\
             `lab run`/`lab report` exit non-zero if it ever does.\n",
        );
    }

    let sharded = sharded_comparison(outcome);
    if !sharded.is_empty() {
        out.push_str("\n## Table 8 — sharded annealing: sequential walk vs best of N shards\n\n");
        out.push_str(&sharded.to_markdown());
        out.push_str(
            "\nEach trial runs N independently-seeded annealing walks on the fork–join\n\
             pool (`embeddings::optim::parallel`) and keeps the lexicographically best\n\
             `(cost, seed, shard)` table. Shard 0 anneals with the base seed unchanged,\n\
             so its column is exactly what the sequential optimizer would have found;\n\
             `sharded wins` counts the trials where another shard beat it, and\n\
             `portfolio wins` the subset claimed by a diversified shard style (k-cycle\n\
             or block-swap move mixes, hotter schedules) rather than a seed-only\n\
             restart. Results are bit-identical for any worker count; per-shard walks\n\
             and styles are recorded in the JSONL provenance\n\
             (`optimized.shard_reports`). The `same_shape` rows never improve from any\n\
             shard or style: the constructive embedding meets the cycle cut-crossing\n\
             lower bound exactly (see `embeddings::optim`), so zero wins there is the\n\
             expected — and pinned — outcome.\n",
        );
    }

    let faults = fault_tolerance(outcome);
    if !faults.is_empty() {
        out.push_str(
            "\n## Table 9 — fault tolerance: constructions vs annealed under link loss\n\n",
        );
        out.push_str(&faults.to_markdown());
        out.push_str(
            "\nEach trial's neighbor-exchange traffic is re-simulated by `netsim::chaos`\n\
             under a seeded `FaultPlan` failing the given share of host links, routed by\n\
             the DOR-with-detour router; unreachable pairs are dropped as typed outcomes,\n\
             never panics. `delivered` is the delivered fraction, `makespan` the cycle\n\
             inflation over the family's own 0% baseline, and `detour overhead` the share\n\
             of delivered hops taken beyond the pristine shortest paths. The 0% rows are\n\
             the regression gate: they must reproduce the unfaulted simulator bit for\n\
             bit (`1.000` / `x1.00` / `0.0%`), and `lab run`/`lab report` exit non-zero\n\
             if any does not. The `(opt)` columns degrade the annealed placement the\n\
             same way — annealing for pristine congestion does not buy fault tolerance,\n\
             so the columns move together.\n",
        );
    }

    let tenants = tenant_contention(outcome);
    if !tenants.is_empty() {
        out.push_str("\n## Table 10 — multi-tenant contention on a shared host\n\n");
        out.push_str(&tenants.to_markdown());
        out.push_str(
            "\nK rotated copies of each trial's constructive placement share the host\n\
             (`netsim::traffic::multi_tenant` composes the guests' neighbor exchanges\n\
             through their placements); `contention` is the composed makespan over\n\
             tenant 0 running alone. FIFO link arbitration guarantees `x >= 1.00`:\n\
             adding tenants can only delay, never accelerate, the solo traffic.\n",
        );
    }

    let wirelength = wirelength_table(outcome);
    if !wirelength.is_empty() {
        out.push_str(
            "\n## Table 11 — wirelength: 1987 constructions vs annealing vs Tang's exact bound\n\n",
        );
        out.push_str(&wirelength.to_markdown());
        out.push_str(
            "\nA cross-paper check: Tang (*Optimal Embedding of Hypercubes into Grids*,\n\
             arXiv:2302.13237) proves a closed form for the **minimum wirelength** —\n\
             the sum of host distances over all guest edges — of any embedding of the\n\
             hypercube `Q_n` into a torus or mesh of the same size. `constructive` is\n\
             the total routed path length of this repo's 1987-era construction,\n\
             `annealed` the best of N independently-seeded annealing walks under\n\
             `embeddings::optim`'s wirelength objective (independently re-measured by\n\
             the congestion sweep — dimension-ordered routes are shortest paths, so\n\
             total path length *is* wirelength), and `Tang bound` the analytic\n\
             minimum. `ok (tight)` marks rows where annealing reached the exact\n\
             optimum; a value below the bound would be a `MISMATCH` and makes\n\
             `lab run`/`lab report` exit non-zero.\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run;
    use crate::plan::SweepPlan;

    #[test]
    fn check_marks_match_repo_convention() {
        assert_eq!(check_mark(2, 2), "ok");
        assert_eq!(check_mark(2, 1), "ok (beats bound)");
        assert_eq!(check_mark(1, 2), "MISMATCH");
    }

    #[test]
    fn chain_tables_stay_within_bounds() {
        let (steps, bounds) = chain_tables();
        assert!(steps.len() >= 5, "three chains, multiple steps");
        assert_eq!(bounds.len(), 3);
        assert!(!bounds.to_markdown().contains("MISMATCH"));
    }

    #[test]
    fn smoke_outcome_renders_all_tables() {
        let outcome = run(&SweepPlan::builtin("smoke").unwrap(), 2);
        assert!(outcome.bound_violations().is_empty());
        assert!(outcome.records.iter().all(|r| r.nodes <= 64));
        let md = experiments_markdown(&outcome, "test note");
        assert!(md.contains("## Table 1"));
        assert!(md.contains("## Table 6"));
        // The smoke plan anneals with 2 shards, so the sharded-vs-sequential
        // comparison renders.
        assert!(md.contains("## Table 8"));
        assert!(md.contains("best of N shards"));
        // The smoke plan carries a chaos spec, so the degraded-operation
        // tables render: a 0% baseline row plus the plan's loss level, and
        // the 2-tenant contention rows.
        assert!(md.contains("## Table 9"));
        assert!(md.contains("## Table 10"));
        // The smoke plan sweeps the hypercube_torus family with a
        // wirelength spec, so the cross-paper Table 11 renders.
        assert!(md.contains("## Table 11"));
        assert!(md.contains("Tang bound"));
        assert!(md.contains("| 0% |"));
        assert!(md.contains("| 10% |"));
        assert!(md.contains("test note"));
        assert!(md.contains("| ring_into |"));
        // The word MISMATCH appears only in the legend, never as a table cell.
        assert!(!md.contains("| MISMATCH |"));
        // Deterministic rendering.
        assert_eq!(md, experiments_markdown(&outcome, "test note"));
    }
}
