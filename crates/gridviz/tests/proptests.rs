//! Property-based tests for the rendering layer: every table format keeps
//! every row, and every grid rendering shows every guest label exactly once.

use embeddings::auto::embed;
use gridviz::render::{render_embedding, render_grid_indices};
use gridviz::table::{Alignment, Table};
use proptest::prelude::*;
use topology::{Grid, Shape};

/// Strategy producing a small host grid of dimension 1–4.
fn small_host() -> impl Strategy<Value = Grid> {
    let shape = proptest::collection::vec(2u32..=5, 1..=4)
        .prop_filter("keep sizes manageable", |radices| {
            radices.iter().map(|&l| l as u64).product::<u64>() <= 200
        });
    (shape, proptest::bool::ANY).prop_map(|(radices, torus)| {
        let shape = Shape::new(radices).unwrap();
        if torus {
            Grid::torus(shape)
        } else {
            Grid::mesh(shape)
        }
    })
}

/// Cell strategy: printable text without newlines.
fn cell() -> impl Strategy<Value = String> {
    "[ -~]{0,12}".prop_map(|s| s.replace('\r', ""))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_embedding_renderings_label_every_node_exactly_once(host in small_host()) {
        let ring = Grid::ring(host.size()).unwrap();
        let embedding = embed(&ring, &host).unwrap();
        let picture = render_embedding(&embedding).unwrap();
        let mut labels: Vec<u64> = picture
            .split_whitespace()
            .filter_map(|token| token.parse().ok())
            .collect();
        labels.sort_unstable();
        prop_assert_eq!(labels, (0..host.size()).collect::<Vec<u64>>());
    }

    #[test]
    fn index_legends_show_every_node(host in small_host()) {
        let legend = render_grid_indices(&host);
        for x in 0..host.size() {
            let label = x.to_string();
            prop_assert!(
                legend.split_whitespace().any(|token| token == label),
                "missing node {x} in legend of {host}"
            );
        }
    }

    #[test]
    fn tables_keep_every_row_in_every_format(
        header in proptest::collection::vec("[a-z]{1,8}", 1..5),
        rows in proptest::collection::vec(proptest::collection::vec(cell(), 0..6), 0..10),
        right_align in proptest::bool::ANY,
    ) {
        let columns = header.len();
        let mut table = Table::new(header);
        if right_align {
            table = table.with_alignments(vec![Alignment::Right; columns]);
        }
        for row in &rows {
            table.push_row(row.clone());
        }
        prop_assert_eq!(table.len(), rows.len());
        prop_assert_eq!(table.columns(), columns);

        let text = table.to_text();
        let markdown = table.to_markdown();
        let csv = table.to_csv();
        // Text and Markdown add a header and a separator; CSV adds only a
        // header. Cells may contain no newlines, so line counts are exact.
        prop_assert_eq!(text.lines().count(), rows.len() + 2);
        prop_assert_eq!(markdown.lines().count(), rows.len() + 2);
        prop_assert_eq!(csv.lines().count(), rows.len() + 1);
        // Markdown keeps every cell verbatim.
        for row in &rows {
            for cell in row.iter().take(columns) {
                if !cell.is_empty() {
                    prop_assert!(markdown.contains(cell.as_str()));
                }
            }
        }
    }
}
