//! A small column-aligned text table builder.
//!
//! The `repro` harness, the examples and EXPERIMENTS.md all print tables of
//! "shape / construction / predicted / measured" rows. This builder keeps the
//! formatting in one place and offers three output styles: aligned plain
//! text (for terminals), GitHub-flavored Markdown (for the documentation),
//! and CSV (for further processing).

use core::fmt;

/// Horizontal alignment of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Alignment {
    /// Left-aligned (default; used for names and shapes).
    #[default]
    Left,
    /// Right-aligned (used for numeric columns).
    Right,
}

/// A table: a header, per-column alignments, and rows of cells.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    alignments: Vec<Alignment>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers, all left-aligned.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        let alignments = vec![Alignment::Left; header.len()];
        Table {
            header,
            alignments,
            rows: Vec::new(),
        }
    }

    /// Sets the per-column alignments. Missing entries stay left-aligned,
    /// extra entries are ignored.
    pub fn with_alignments(mut self, alignments: Vec<Alignment>) -> Table {
        for (i, alignment) in alignments.into_iter().enumerate() {
            if i < self.alignments.len() {
                self.alignments[i] = alignment;
            }
        }
        self
    }

    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.header.len()
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated to the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Builder-style [`Table::push_row`].
    pub fn with_row<S: Into<String>>(mut self, row: Vec<S>) -> Table {
        self.push_row(row);
        self
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }

    fn pad(cell: &str, width: usize, alignment: Alignment) -> String {
        let length = cell.chars().count();
        let padding = " ".repeat(width.saturating_sub(length));
        match alignment {
            Alignment::Left => format!("{cell}{padding}"),
            Alignment::Right => format!("{padding}{cell}"),
        }
    }

    /// Renders the table as aligned plain text with a separator under the
    /// header.
    pub fn to_text(&self) -> String {
        let widths = self.column_widths();
        let mut out = String::new();
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, cell)| Table::pad(cell, widths[i], self.alignments[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavored Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        let separators: Vec<&str> = self
            .alignments
            .iter()
            .map(|a| match a {
                Alignment::Left => "---",
                Alignment::Right => "---:",
            })
            .collect();
        out.push_str(&format!("| {} |\n", separators.join(" | ")));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders the table as CSV (quoting cells that contain commas, quotes or
    /// newlines).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(vec!["guest", "host", "dilation"])
            .with_alignments(vec![Alignment::Left, Alignment::Left, Alignment::Right])
            .with_row(vec!["ring(24)", "(4,2,3)-mesh", "1"])
            .with_row(vec!["(8,8)-mesh", "line(64)", "8"])
    }

    #[test]
    fn text_output_is_aligned() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("guest"));
        assert!(lines[1].chars().all(|c| c == '-' || c == ' '));
        // Right-aligned numeric column: the single digits line up with the
        // right edge of the "dilation" header.
        let header_end = lines[0].len();
        assert_eq!(lines[2].len(), header_end);
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with('8'));
    }

    #[test]
    fn markdown_output_has_separator_row() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| guest | host | dilation |");
        assert_eq!(lines[1], "| --- | --- | ---: |");
        assert!(lines[2].contains("ring(24)"));
    }

    #[test]
    fn csv_output_escapes_special_cells() {
        let csv = Table::new(vec!["name", "value"])
            .with_row(vec!["plain", "1"])
            .with_row(vec!["with, comma", "2"])
            .with_row(vec!["with \"quote\"", "3"])
            .to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with, comma\",2");
        assert_eq!(lines[3], "\"with \"\"quote\"\"\",3");
    }

    #[test]
    fn short_rows_are_padded_and_long_rows_truncated() {
        let mut table = Table::new(vec!["a", "b"]);
        table.push_row(vec!["only one"]);
        table.push_row(vec!["x", "y", "ignored"]);
        assert_eq!(table.len(), 2);
        let csv = table.to_csv();
        assert!(csv.contains("only one,"));
        assert!(!csv.contains("ignored"));
    }

    #[test]
    fn display_matches_to_text() {
        let table = sample();
        assert_eq!(format!("{table}"), table.to_text());
        assert!(!table.is_empty());
        assert_eq!(table.columns(), 3);
    }

    #[test]
    fn unicode_cells_align_by_character_count() {
        let table = Table::new(vec!["construction", "dilation"])
            .with_row(vec!["π ∘ H_V", "1"])
            .with_row(vec!["U_V ∘ T_L ∘ π", "4"]);
        let text = table.to_text();
        let lines: Vec<&str> = text.lines().collect();
        // Both data lines end with the numeric cell in the same column.
        assert_eq!(lines[2].chars().count(), lines[3].chars().count(),);
    }
}
