//! ASCII pictures of embeddings: the host grid with every cell labeled by
//! the guest node placed there.
//!
//! This is the textual equivalent of the paper's Figure 10 (a line and a
//! ring of size 24 drawn inside a `(4,2,3)`-mesh) and Figure 12 (supernodes
//! of a `(6,9)`-mesh). The first host dimension runs vertically (top row =
//! coordinate 0), the second horizontally; hosts of dimension three or more
//! are rendered as a series of 2-D slices, one per combination of the
//! remaining coordinates — exactly how the paper draws its 3-dimensional
//! examples.

use embeddings::error::Result;
use embeddings::Embedding;
use topology::Grid;

/// Renders a 2-D block of labels. `label(r, c)` supplies the text for the
/// cell at vertical coordinate `r` and horizontal coordinate `c`.
fn render_block(rows: u32, cols: u32, label: impl Fn(u32, u32) -> String) -> String {
    let mut cells: Vec<Vec<String>> = Vec::with_capacity(rows as usize);
    let mut width = 1;
    for r in 0..rows {
        let mut row = Vec::with_capacity(cols as usize);
        for c in 0..cols {
            let cell = label(r, c);
            width = width.max(cell.chars().count());
            row.push(cell);
        }
        cells.push(row);
    }
    let mut out = String::new();
    for row in &cells {
        let line: Vec<String> = row
            .iter()
            .map(|cell| format!("{cell:>width$}", width = width))
            .collect();
        out.push_str(&line.join(" "));
        out.push('\n');
    }
    out
}

/// Renders the host grid of `embedding` with every host node labeled by the
/// guest node mapped onto it (the inverse image), one 2-D slice per
/// combination of the third and higher host coordinates.
///
/// # Errors
///
/// Returns [`embeddings::error::EmbeddingError::TooLarge`] for hosts too
/// large to materialize, and `Unsupported` if the mapping is not injective
/// (some host cell would need two labels).
pub fn render_embedding(embedding: &Embedding) -> Result<String> {
    let host = embedding.host();
    let n = embedding.size();
    // Invert the guest → host table.
    let table = embedding.to_table()?;
    let mut inverse: Vec<Option<u64>> = vec![None; n as usize];
    for (guest, &host_index) in table.iter().enumerate() {
        let slot = &mut inverse[host_index as usize];
        if slot.is_some() {
            return Err(embeddings::error::EmbeddingError::Unsupported {
                details: format!(
                    "cannot render a non-injective mapping: host node {host_index} has two preimages"
                ),
            });
        }
        *slot = Some(guest as u64);
    }
    let label_of = |host_index: u64| -> String {
        match inverse[host_index as usize] {
            Some(guest) => guest.to_string(),
            None => ".".to_string(),
        }
    };

    let shape = host.shape();
    let mut out = String::new();
    out.push_str(&format!(
        "{} of {} under {}\n",
        host,
        embedding.guest(),
        embedding.name()
    ));
    match host.dim() {
        1 => {
            let l = shape.radix(0);
            out.push_str(&render_block(1, l, |_, c| label_of(c as u64)));
        }
        2 => {
            let (l1, l2) = (shape.radix(0), shape.radix(1));
            out.push_str(&render_block(l1, l2, |r, c| {
                label_of(r as u64 * l2 as u64 + c as u64)
            }));
        }
        _ => {
            let (l1, l2) = (shape.radix(0), shape.radix(1));
            // Iterate over the trailing coordinates (dimensions 3, …, d).
            let trailing: u64 = (2..host.dim()).map(|j| shape.radix(j) as u64).product();
            for slice in 0..trailing {
                // Reconstruct the trailing coordinate values for the header.
                let mut rest = slice;
                let mut suffix = Vec::with_capacity(host.dim() - 2);
                for j in (2..host.dim()).rev() {
                    let l = shape.radix(j) as u64;
                    suffix.push(rest % l);
                    rest /= l;
                }
                suffix.reverse();
                let labels: Vec<String> = suffix.iter().map(|v| v.to_string()).collect();
                out.push_str(&format!("slice (·,·,{}):\n", labels.join(",")));
                out.push_str(&render_block(l1, l2, |r, c| {
                    let within = r as u64 * l2 as u64 + c as u64;
                    // Host linear index: the first two coordinates are the
                    // most significant digits, the trailing coordinates the
                    // least significant ones (row-major radix-L order).
                    label_of(within * trailing + slice)
                }));
                out.push('\n');
            }
        }
    }
    Ok(out)
}

/// Renders a grid with every node labeled by its own linear index — a
/// legend for the coordinate system used by [`render_embedding`].
pub fn render_grid_indices(grid: &Grid) -> String {
    let shape = grid.shape();
    let mut out = String::new();
    out.push_str(&format!("{grid}\n"));
    match grid.dim() {
        1 => {
            let l = shape.radix(0);
            out.push_str(&render_block(1, l, |_, c| c.to_string()));
        }
        2 => {
            let (l1, l2) = (shape.radix(0), shape.radix(1));
            out.push_str(&render_block(l1, l2, |r, c| {
                (r as u64 * l2 as u64 + c as u64).to_string()
            }));
        }
        _ => {
            let (l1, l2) = (shape.radix(0), shape.radix(1));
            let trailing: u64 = (2..grid.dim()).map(|j| shape.radix(j) as u64).product();
            for slice in 0..trailing {
                out.push_str(&format!("slice {slice}:\n"));
                out.push_str(&render_block(l1, l2, |r, c| {
                    ((r as u64 * l2 as u64 + c as u64) * trailing + slice).to_string()
                }));
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use embeddings::basic::{embed_line_in, embed_ring_in};
    use embeddings::Embedding;
    use std::sync::Arc;
    use topology::{Coord, Shape};

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    fn labels_in(picture: &str) -> Vec<u64> {
        picture
            .split_whitespace()
            .filter_map(|token| token.parse::<u64>().ok())
            .collect()
    }

    #[test]
    fn two_dimensional_rendering_contains_every_guest_label_once() {
        let host = Grid::mesh(shape(&[4, 6]));
        let e = embed_ring_in(&host).unwrap();
        let picture = render_embedding(&e).unwrap();
        let mut labels = labels_in(&picture);
        labels.sort_unstable();
        assert_eq!(labels, (0..24).collect::<Vec<u64>>());
        // 4 rows of labels plus the title line.
        assert_eq!(picture.lines().count(), 5);
    }

    #[test]
    fn line_host_renders_on_a_single_row() {
        let host = Grid::line(8).unwrap();
        let e = embed_line_in(&host).unwrap();
        let picture = render_embedding(&e).unwrap();
        assert_eq!(picture.lines().count(), 2);
        assert_eq!(labels_in(&picture).len(), 8);
    }

    #[test]
    fn three_dimensional_hosts_render_one_slice_per_trailing_coordinate() {
        let host = Grid::mesh(shape(&[4, 2, 3]));
        let e = embed_ring_in(&host).unwrap();
        let picture = render_embedding(&e).unwrap();
        assert_eq!(picture.matches("slice").count(), 3);
        // Slice headers carry no bare numeric tokens, so the numeric labels
        // are exactly the 3 slices × 8 cells = 24 guest nodes.
        let mut labels = labels_in(&picture);
        labels.sort_unstable();
        assert_eq!(labels, (0..24).collect::<Vec<u64>>());
    }

    #[test]
    fn placement_of_the_figure_10_ring_matches_the_map() {
        // Spot-check that the label printed at host node f(x) is x.
        let host = Grid::mesh(shape(&[4, 6]));
        let e = embed_ring_in(&host).unwrap();
        let picture = render_embedding(&e).unwrap();
        let rows: Vec<Vec<u64>> = picture
            .lines()
            .skip(1)
            .map(|line| {
                line.split_whitespace()
                    .map(|token| token.parse::<u64>().unwrap())
                    .collect()
            })
            .collect();
        for x in 0..e.size() {
            let coord = e.map(x);
            assert_eq!(rows[coord.get(0) as usize][coord.get(1) as usize], x);
        }
    }

    #[test]
    fn non_injective_mappings_are_rejected() {
        let line = Grid::line(4).unwrap();
        let host = Grid::line(4).unwrap();
        let broken = Embedding::new(
            line,
            host,
            "constant",
            Arc::new(|_| Coord::from_slice(&[0]).unwrap()),
        )
        .unwrap();
        assert!(render_embedding(&broken).is_err());
    }

    #[test]
    fn grid_index_legend_counts_every_node() {
        for grid in [
            Grid::line(6).unwrap(),
            Grid::mesh(shape(&[3, 4])),
            Grid::torus(shape(&[3, 2, 2])),
        ] {
            let legend = render_grid_indices(&grid);
            let labels: Vec<u64> = labels_in(&legend);
            // Index labels dominate; every node index appears at least once.
            for x in 0..grid.size() {
                assert!(labels.contains(&x), "{grid}: missing {x}");
            }
        }
    }
}
