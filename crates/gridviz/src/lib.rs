//! Text rendering for torus/mesh embeddings: aligned tables and ASCII
//! pictures of where guest nodes land in the host.
//!
//! The paper communicates its constructions through figures — the
//! `f_L`/`g_L`/`h_L` tables of Figure 9, the line/ring-in-mesh pictures of
//! Figure 10, the supernode view of Figure 12. This crate regenerates those
//! artifacts as plain text so the examples and the `repro` harness can show
//! an embedding rather than just its dilation number:
//!
//! * [`table`] — a small column-aligned table builder with plain-text,
//!   Markdown and CSV output;
//! * [`render`] — ASCII pictures of a host grid with each cell labeled by the
//!   guest node mapped onto it (2-D hosts as one block, higher-dimensional
//!   hosts as a series of 2-D slices).
//!
//! # Example
//!
//! ```
//! use embeddings::basic::embed_ring_in;
//! use gridviz::render::render_embedding;
//! use topology::{Grid, Shape};
//!
//! let host = Grid::mesh(Shape::new(vec![4, 6]).unwrap());
//! let embedding = embed_ring_in(&host).unwrap();
//! let picture = render_embedding(&embedding).unwrap();
//! assert!(picture.contains("23"));  // every guest label appears
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod render;
pub mod table;

pub use render::{render_embedding, render_grid_indices};
pub use table::{Alignment, Table};

/// Commonly used items.
pub mod prelude {
    pub use crate::render::{render_embedding, render_grid_indices};
    pub use crate::table::{Alignment, Table};
}
