//! Text rendering for torus/mesh embeddings: aligned tables and ASCII
//! pictures of where guest nodes land in the host.
//!
//! The paper communicates its constructions through figures — the
//! `f_L`/`g_L`/`h_L` tables of Figure 9, the line/ring-in-mesh pictures of
//! Figure 10, the supernode view of Figure 12. This crate regenerates those
//! artifacts as plain text so the examples and the `repro` harness can show
//! an embedding rather than just its dilation number:
//!
//! * [`table`] — a small column-aligned table builder with plain-text,
//!   Markdown and CSV output;
//! * [`render`] — ASCII pictures of a host grid with each cell labeled by the
//!   guest node mapped onto it (2-D hosts as one block, higher-dimensional
//!   hosts as a series of 2-D slices).
//!
//! The crate deliberately depends only on `topology` and `embeddings` and
//! allocates nothing fancier than strings: it is the presentation layer for
//! every human-readable artifact in the workspace. The `repro` harness
//! prints its figure reproductions through [`render`]; the `lab` CLI, the
//! `benchgate` gate and the generated EXPERIMENTS.md render every summary
//! through [`Table`] — which is why [`Table`] output is byte-stable across
//! runs and machines (fixed column widths from content, fixed float
//! formatting at the call sites, no locale dependence). If a diffable
//! document drifts, the drift is in the numbers, never the renderer.
//!
//! # Examples
//!
//! An embedding picture (Figure 10's line-in-mesh view):
//!
//! ```
//! use embeddings::basic::embed_ring_in;
//! use gridviz::render::render_embedding;
//! use topology::{Grid, Shape};
//!
//! let host = Grid::mesh(Shape::new(vec![4, 6]).unwrap());
//! let embedding = embed_ring_in(&host).unwrap();
//! let picture = render_embedding(&embedding).unwrap();
//! assert!(picture.contains("23"));  // every guest label appears
//! ```
//!
//! A table in all three output formats:
//!
//! ```
//! use gridviz::{Alignment, Table};
//!
//! let mut table = Table::new(vec!["guest", "dilation"])
//!     .with_alignments(vec![Alignment::Left, Alignment::Right]);
//! table.push_row(vec!["ring(24)", "1"]);
//! assert!(table.to_markdown().starts_with("| guest | dilation |"));
//! assert!(table.to_csv().contains("ring(24),1"));
//! assert!(format!("{table}").contains("ring(24)"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod render;
pub mod table;

pub use render::{render_embedding, render_grid_indices};
pub use table::{Alignment, Table};

/// Commonly used items.
pub mod prelude {
    pub use crate::render::{render_embedding, render_grid_indices};
    pub use crate::table::{Alignment, Table};
}
