//! Benchmark: annealing move throughput per move repertoire.
//!
//! Same workload as `optim_throughput` — a (16,16)-torus embedded in a
//! (16,16)-mesh (256 nodes, 512 guest edges) under the congestion
//! objective — annealed once per [`MoveMix`] of interest. Compound moves
//! (k-cycle rotations, block swaps) decompose into disjoint-transposition
//! batches, so a "move" here is one *proposal*, not one transposition: the
//! numbers show what the richer repertoires cost per annealing step
//! relative to the pairwise baseline. Results are recorded in
//! `BENCH_optim.json` at the repo root; the `kcycle` rate is gated.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::{mesh, torus};
use embeddings::auto::embed;
use embeddings::optim::{CongestionObjective, MoveMix, Optimizer, OptimizerConfig};

const STEPS: u64 = 5_000;

/// The portfolio's k-cycle-heavy palette entry, also the gated mix.
fn kcycle_heavy() -> MoveMix {
    MoveMix {
        reverse_per_mille: 150,
        kcycle_per_mille: 300,
        block_per_mille: 50,
    }
}

/// The portfolio's block-heavy palette entry.
fn block_heavy() -> MoveMix {
    MoveMix {
        reverse_per_mille: 150,
        kcycle_per_mille: 50,
        block_per_mille: 300,
    }
}

fn bench_move_mix(c: &mut Criterion) {
    let guest = torus(&[16, 16]);
    let host = mesh(&[16, 16]);
    let embedding = embed(&guest, &host).unwrap();

    let mut group = c.benchmark_group("move_mix");
    group.throughput(Throughput::Elements(STEPS));
    for (name, mix) in [
        ("pairwise", MoveMix::pairwise()),
        ("kcycle", kcycle_heavy()),
        ("block", block_heavy()),
        ("compound", MoveMix::compound()),
    ] {
        let config = OptimizerConfig {
            seed: 1987,
            steps: STEPS,
            mix,
            ..OptimizerConfig::default()
        };
        group.bench_function(BenchmarkId::new("move_mix", name), |b| {
            b.iter(|| {
                let mut objective = CongestionObjective::new(&guest, &host).unwrap();
                Optimizer::new(config)
                    .optimize(&embedding, &mut objective)
                    .unwrap()
                    .report
                    .best
                    .primary
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(8))
        .sample_size(10);
    targets = bench_move_mix
}
criterion_main!(benches);
