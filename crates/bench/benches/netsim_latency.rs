//! Benchmark: routed neighbor-exchange traffic under the paper's placement
//! versus a naive row-major placement (the netsim extension experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::mesh;
use embeddings::auto::embed;
use netsim::{simulate, Network, Placement, Workload};
use topology::Grid;

fn bench_netsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_latency");
    let cases: Vec<(&str, Grid, Grid)> = vec![
        ("ring64_on_8x8", Grid::ring(64).unwrap(), mesh(&[8, 8])),
        (
            "ring1024_on_32x32",
            Grid::ring(1024).unwrap(),
            mesh(&[32, 32]),
        ),
        (
            "stencil16x16_on_4x4x4x4",
            mesh(&[16, 16]),
            mesh(&[4, 4, 4, 4]),
        ),
    ];
    for (label, guest, host) in cases {
        let network = Network::new(host.clone());
        let workload = Workload::from_task_graph(&guest);
        let paper = Placement::from_embedding(&embed(&guest, &host).unwrap());
        let naive = Placement::identity(guest.size());
        group.throughput(Throughput::Elements(workload.messages_per_round() as u64));
        group.bench_function(BenchmarkId::new("paper_placement", label), |b| {
            b.iter(|| simulate(&network, &workload, &paper, 1).total_hops)
        });
        group.bench_function(BenchmarkId::new("naive_placement", label), |b| {
            b.iter(|| simulate(&network, &workload, &naive, 1).total_hops)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10);
    targets = bench_netsim
}
criterion_main!(benches);
