//! Benchmark: hypercube cases — grids into hypercubes (Corollary 34) and
//! hypercubes into grids (Corollaries 40/49).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::{mesh, torus};
use embeddings::auto::embed;
use topology::Grid;

fn bench_hypercube(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypercube");
    let into: Vec<(&str, Grid)> = vec![
        ("(8,8)-mesh", mesh(&[8, 8])),
        ("(64,64)-torus", torus(&[64, 64])),
        ("(16,16,16)-mesh", mesh(&[16, 16, 16])),
    ];
    for (label, guest) in into {
        let bits = guest.size().trailing_zeros() as usize;
        let host = Grid::hypercube(bits).unwrap();
        group.throughput(Throughput::Elements(guest.size()));
        group.bench_function(BenchmarkId::new("into_hypercube", label), |b| {
            b.iter(|| embed(&guest, &host).unwrap().dilation())
        });
    }
    let outof: Vec<(&str, usize, Grid)> = vec![
        ("2^6 -> (8,8)", 6, mesh(&[8, 8])),
        ("2^12 -> (64,64)", 12, mesh(&[64, 64])),
        ("2^12 -> (16,16,16)", 12, torus(&[16, 16, 16])),
    ];
    for (label, bits, host) in outof {
        let guest = Grid::hypercube(bits).unwrap();
        group.throughput(Throughput::Elements(guest.size()));
        group.bench_function(BenchmarkId::new("out_of_hypercube", label), |b| {
            b.iter(|| embed(&guest, &host).unwrap().dilation())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_hypercube
}
criterion_main!(benches);
