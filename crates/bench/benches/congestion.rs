//! Benchmark: edge-congestion measurement under dimension-ordered routing
//! for embeddings of increasing size and for the lowering-dimension cases
//! where congestion grows with the reduction factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::mesh;
use embeddings::auto::embed;
use embeddings::basic::embed_ring_in;
use embeddings::congestion::congestion;
use topology::Grid;

fn bench_congestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("congestion");

    // Unit-dilation ring embeddings: congestion 1, cost dominated by the
    // per-edge route walk.
    for radices in [&[8, 8][..], &[16, 16], &[32, 32], &[16, 16, 16]] {
        let host = mesh(radices);
        let embedding = embed_ring_in(&host).unwrap();
        let label = format!("ring_in_{}", host);
        group.throughput(Throughput::Elements(host.size()));
        group.bench_function(BenchmarkId::new("unit_dilation", label), |b| {
            b.iter(|| congestion(&embedding).unwrap().max_congestion)
        });
    }

    // Lowering dimension: collapsing a square mesh onto a line concentrates
    // load, so the route walks get longer as the guest grows.
    for ell in [8u32, 16, 24] {
        let guest = mesh(&[ell, ell]);
        let host = Grid::line(guest.size()).unwrap();
        let embedding = embed(&guest, &host).unwrap();
        group.throughput(Throughput::Elements(guest.num_edges()));
        group.bench_function(
            BenchmarkId::new("mesh_to_line", format!("{ell}x{ell}")),
            |b| b.iter(|| congestion(&embedding).unwrap().max_congestion),
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10);
    targets = bench_congestion
}
criterion_main!(benches);
