//! Benchmark: sharded-annealing best-table throughput, and the delta-aware
//! makespan objective against full re-simulation.
//!
//! `shards/N` runs `embeddings::optim::parallel::optimize_sharded` with N
//! independently-seeded 5000-step walks (one worker thread per shard) over
//! the same (16,16)-torus -> (16,16)-mesh workload as `optim_throughput`,
//! and reports throughput as *total proposed moves per second* — N shards
//! propose N × 5000 moves toward one best-of-N table, so on a machine with
//! ≥ N cores the group should scale nearly linearly (the walks share nothing
//! but the read-only starting table). On a single-core machine the shards
//! serialize and every group measures roughly the sequential rate; results
//! are bit-identical either way.
//!
//! `makespan/delta` runs the annealing walk under the delta-aware
//! `netsim::MakespanObjective` (cached routes, flat-slot arbitration);
//! `makespan/full_resim` times the same number of from-scratch simulator
//! evaluations — the per-move cost the delta path replaces. Results are
//! recorded in `BENCH_shards.json` at the repo root and gated by
//! `benchgate` in CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::{mesh, torus};
use embeddings::auto::embed;
use embeddings::optim::parallel::{optimize_sharded, ShardedConfig};
use embeddings::optim::{CongestionObjective, Objective, OptimizerConfig};
use netsim::sim::{simulate, Placement};
use netsim::{MakespanObjective, Network, Workload};

const STEPS: u64 = 5_000;
const MAKESPAN_STEPS: u64 = 1_000;

fn bench_shards(c: &mut Criterion) {
    let guest = torus(&[16, 16]);
    let host = mesh(&[16, 16]);
    let embedding = embed(&guest, &host).unwrap();
    let base = OptimizerConfig {
        seed: 1987,
        steps: STEPS,
        ..OptimizerConfig::default()
    };

    let mut group = c.benchmark_group("shard_scaling");
    for shards in [1u32, 2, 4] {
        group.throughput(Throughput::Elements(u64::from(shards) * STEPS));
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            let config = ShardedConfig {
                base,
                shards,
                workers: shards as usize,
                ..ShardedConfig::default()
            };
            b.iter(|| {
                optimize_sharded(
                    &embedding,
                    || CongestionObjective::new(&guest, &host),
                    &config,
                )
                .unwrap()
                .outcome
                .report
                .best
                .primary
            })
        });
    }
    group.finish();
}

fn bench_makespan(c: &mut Criterion) {
    // A smaller pair than the shard groups: full re-simulation per move is
    // exactly the cost the delta path exists to avoid.
    let guest = torus(&[8, 8]);
    let host = mesh(&[8, 8]);
    let embedding = embed(&guest, &host).unwrap();
    let workload = Workload::from_task_graph(&guest);
    let table = embedding.to_table().unwrap();

    let mut group = c.benchmark_group("makespan");
    group.throughput(Throughput::Elements(MAKESPAN_STEPS));

    group.bench_function(BenchmarkId::new("makespan", "delta"), |b| {
        let config = embeddings::optim::OptimizerConfig {
            seed: 1987,
            steps: MAKESPAN_STEPS,
            ..OptimizerConfig::default()
        };
        b.iter(|| {
            let mut objective =
                MakespanObjective::new(Network::new(host.clone()), workload.clone(), 1)
                    .expect("schedule fits");
            embeddings::optim::Optimizer::new(config)
                .optimize(&embedding, &mut objective)
                .unwrap()
                .report
                .best
                .primary
        })
    });

    // The contrast: MAKESPAN_STEPS from-scratch evaluations (placement
    // validation + route expansion + hash-set arbitration), what the old
    // objective paid per proposed move.
    group.bench_function(BenchmarkId::new("makespan", "full_resim"), |b| {
        let network = Network::new(host.clone());
        b.iter(|| {
            let mut cycles = 0u64;
            for _ in 0..MAKESPAN_STEPS {
                let placement = Placement::try_from_table(table.clone()).unwrap();
                cycles += simulate(&network, &workload, &placement, 1).cycles;
            }
            cycles
        })
    });

    // One delta evaluation via the incremental path, for the per-move rate:
    // rebuild once outside, then time swap/undo pairs.
    group.bench_function(BenchmarkId::new("makespan", "delta_swap_pair"), |b| {
        let mut objective = MakespanObjective::new(Network::new(host.clone()), workload.clone(), 1)
            .expect("schedule fits");
        let mut swap_table = table.clone();
        objective.rebuild(&swap_table);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..MAKESPAN_STEPS / 2 {
                swap_table.swap(3, 40);
                acc += objective.apply_swap(&swap_table, 3, 40).primary;
                swap_table.swap(3, 40);
                acc += objective.apply_swap(&swap_table, 3, 40).primary;
            }
            acc
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(8))
        .sample_size(10);
    targets = bench_shards, bench_makespan
}
criterion_main!(benches);
