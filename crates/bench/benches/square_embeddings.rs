//! Benchmark: Section 5 square-graph embeddings (Theorems 48/51/52/53),
//! including the multi-step general-reduction chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use embeddings::square::embed_square;
use topology::{GraphKind, Grid, Shape};

fn square(kind: GraphKind, ell: u32, d: usize) -> Grid {
    Grid::new(kind, Shape::square(ell, d).unwrap())
}

fn bench_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("square_embeddings");
    let cases: Vec<(&str, Grid, Grid)> = vec![
        (
            "thm48 (16,16)->line",
            square(GraphKind::Mesh, 16, 2),
            Grid::line(256).unwrap(),
        ),
        (
            "thm48 torus(16,16)->ring",
            square(GraphKind::Torus, 16, 2),
            Grid::ring(256).unwrap(),
        ),
        (
            "thm51 (8,8,8,8,8)->(32,32,32)",
            square(GraphKind::Mesh, 8, 5),
            square(GraphKind::Mesh, 32, 3),
        ),
        (
            "thm51 (4,4,4)->(8,8)",
            square(GraphKind::Mesh, 4, 3),
            square(GraphKind::Mesh, 8, 2),
        ),
        (
            "thm52 (16,16)->(4,4,4,4)",
            square(GraphKind::Torus, 16, 2),
            square(GraphKind::Mesh, 4, 4),
        ),
        (
            "thm53 (16,16,16)->(8,8,8,8)",
            square(GraphKind::Mesh, 16, 3),
            square(GraphKind::Mesh, 8, 4),
        ),
    ];
    for (label, guest, host) in cases {
        group.throughput(Throughput::Elements(guest.size()));
        group.bench_function(BenchmarkId::new("embed+dilation", label), |b| {
            b.iter(|| embed_square(&guest, &host).unwrap().dilation())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10);
    targets = bench_square
}
criterion_main!(benches);
