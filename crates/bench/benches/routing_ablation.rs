//! Ablation benchmark: routing disciplines (dimension-ordered, reverse
//! dimension-ordered, Valiant two-phase) on adversarial permutation traffic,
//! and the simulator cost of the detailed statistics path versus the
//! aggregate path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::{mesh, torus};
use netsim::patterns;
use netsim::{simulate, simulate_detailed, Network, Placement, RoutingAlgorithm, Workload};

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_ablation");

    let cases: Vec<(&str, Network, Workload)> = vec![
        (
            "bit_complement_8x8_mesh",
            Network::new(mesh(&[8, 8])),
            patterns::bit_complement(6),
        ),
        (
            "transpose_16x16_mesh",
            Network::new(mesh(&[16, 16])),
            patterns::transpose(16, 16),
        ),
        (
            "tornado_16x16_torus",
            Network::new(torus(&[16, 16])),
            patterns::tornado(256),
        ),
    ];

    for (label, network, workload) in &cases {
        let placement = Placement::identity(network.size());
        group.throughput(Throughput::Elements(workload.messages_per_round() as u64));
        for algorithm in [
            RoutingAlgorithm::DimensionOrdered,
            RoutingAlgorithm::ReverseDimensionOrdered,
            RoutingAlgorithm::Valiant { seed: 11 },
        ] {
            group.bench_function(BenchmarkId::new(algorithm.name(), *label), |b| {
                b.iter(|| {
                    simulate_detailed(network, workload, &placement, algorithm, 1)
                        .link_loads
                        .max_load()
                })
            });
        }
        // Aggregate simulator as the baseline cost.
        group.bench_function(BenchmarkId::new("aggregate_simulate", *label), |b| {
            b.iter(|| simulate(network, workload, &placement, 1).cycles)
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10);
    targets = bench_routing
}
criterion_main!(benches);
