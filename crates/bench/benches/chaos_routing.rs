//! Benchmark: faulted routing throughput — the pristine simulator versus
//! `netsim::chaos`'s detour and BFS-table routers on a 5%-degraded torus.
//!
//! The gated figure (`BENCH_netsim.json`) is the detour router's routed
//! messages per second on the 16×16 case: it pays the overlay mask check on
//! every hop plus the occasional misroute, so a regression here means the
//! degraded path got structurally slower, not that the network got worse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::torus;
use netsim::chaos::{simulate_chaos, ChaosRouting, FaultPlan};
use netsim::{simulate, Network, Placement, Workload};

fn bench_chaos_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos_routing");
    for (label, radix, messages) in [("torus16x16", 16u32, 4096usize), ("torus32x32", 32, 8192)] {
        let network = Network::new(torus(&[radix, radix]));
        let n = network.size();
        let workload = Workload::uniform_random(n, messages, 7);
        let placement = Placement::identity(n);
        let plan = FaultPlan::random_link_percent(network.grid(), 5, 1987);
        group.throughput(Throughput::Elements(messages as u64));
        group.bench_function(BenchmarkId::new("pristine_dor", label), |b| {
            b.iter(|| simulate(&network, &workload, &placement, 1).total_hops)
        });
        group.bench_function(BenchmarkId::new("detour_5pct", label), |b| {
            b.iter(|| {
                simulate_chaos(
                    &network,
                    &workload,
                    &placement,
                    1,
                    &plan,
                    ChaosRouting::Detour,
                )
                .delivered
            })
        });
        group.bench_function(BenchmarkId::new("bfs_table_5pct", label), |b| {
            b.iter(|| {
                simulate_chaos(
                    &network,
                    &workload,
                    &placement,
                    1,
                    &plan,
                    ChaosRouting::BfsTable,
                )
                .delivered
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10);
    targets = bench_chaos_routing
}
criterion_main!(benches);
