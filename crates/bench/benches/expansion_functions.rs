//! Benchmark: the Figure 11 expansion maps F_V / G_V / H_V, from the paper's
//! 24-node example up to ~64k nodes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::{mesh, torus};
use embeddings::expansion::find_expansion_factor;
use embeddings::increase::{embed_increasing_with, IncreaseFunction};
use topology::Grid;

fn bench_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("expansion_functions");
    let cases: Vec<(&str, Grid, Grid)> = vec![
        ("fig11_24", torus(&[4, 6]), torus(&[2, 2, 2, 3])),
        ("4k", torus(&[64, 64]), torus(&[8, 8, 8, 8])),
        ("65k", torus(&[256, 256]), torus(&[16, 16, 16, 16])),
    ];
    for (label, guest, host) in cases {
        let factor = find_expansion_factor(guest.shape(), host.shape()).unwrap();
        group.throughput(Throughput::Elements(guest.size()));
        for (name, func) in [
            ("F_V", IncreaseFunction::F),
            ("G_V", IncreaseFunction::G),
            ("H_V", IncreaseFunction::H),
        ] {
            group.bench_with_input(BenchmarkId::new(name, label), &factor, |b, factor| {
                let guest_mesh = mesh(guest.shape().radices());
                let host_for = if func == IncreaseFunction::F {
                    &guest_mesh
                } else {
                    &guest
                };
                b.iter(|| {
                    let e = embed_increasing_with(host_for, &host, factor, func).unwrap();
                    // Evaluate the map over a strided sample of nodes.
                    let mut acc = 0u64;
                    let stride = (guest.size() / 1024).max(1);
                    let mut x = 0;
                    while x < guest.size() {
                        acc = acc.wrapping_add(e.map_index(x));
                        x += stride;
                    }
                    acc
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_expansion
}
criterion_main!(benches);
