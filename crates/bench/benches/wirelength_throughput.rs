//! Benchmark: wirelength-objective move throughput (proposed annealing
//! moves/second).
//!
//! The workload matches `optim_throughput` — a (16,16)-torus embedded in a
//! (16,16)-mesh (256 nodes, 512 guest edges) — so the wirelength numbers
//! read directly against the congestion and dilation objectives. The
//! wirelength delta only touches the affected edges' distances (no routed
//! path walks), so it is the cheapest incremental objective; `weighted` adds
//! the per-edge weight lookup, `rebuild` measures the full re-sweep the
//! incremental path replaces. Results are recorded in `BENCH_optim.json`
//! (group `optim/wirelength`, gated via `summary.wirelength_moves_per_second`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::{mesh, torus};
use embeddings::auto::embed;
use embeddings::optim::{Objective, Optimizer, OptimizerConfig, WirelengthObjective};
use embeddings::Embedding;

const STEPS: u64 = 5_000;

fn bench_embedding() -> Embedding {
    let guest = torus(&[16, 16]);
    let host = mesh(&[16, 16]);
    embed(&guest, &host).unwrap()
}

fn bench_wirelength(c: &mut Criterion) {
    let embedding = bench_embedding();
    let guest = embedding.guest().clone();
    let host = embedding.host().clone();
    let config = OptimizerConfig {
        seed: 1987,
        steps: STEPS,
        ..OptimizerConfig::default()
    };

    let mut group = c.benchmark_group("wirelength_throughput");
    group.throughput(Throughput::Elements(STEPS));

    group.bench_function(BenchmarkId::new("wirelength", "unit"), |b| {
        b.iter(|| {
            let mut objective = WirelengthObjective::new(&guest, &host).unwrap();
            Optimizer::new(config)
                .optimize(&embedding, &mut objective)
                .unwrap()
                .report
                .best
                .primary
        })
    });
    group.bench_function(BenchmarkId::new("wirelength", "weighted"), |b| {
        b.iter(|| {
            let mut objective =
                WirelengthObjective::with_weights(&guest, &host, |t, h| 1 + (t ^ h) % 4).unwrap();
            Optimizer::new(config)
                .optimize(&embedding, &mut objective)
                .unwrap()
                .report
                .best
                .primary
        })
    });

    // The contrast: one full wirelength re-sweep. Dividing by STEPS reads as
    // "moves/s if every move paid a full rebuild".
    let table = embedding.to_table().unwrap();
    let mut rebuild_objective = WirelengthObjective::new(&guest, &host).unwrap();
    group.bench_function(BenchmarkId::new("wirelength", "full_rebuild"), |b| {
        b.iter(|| rebuild_objective.rebuild(&table).primary)
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(8))
        .sample_size(10);
    targets = bench_wirelength
}
criterion_main!(benches);
