//! Ablation benchmark for the "linear-index-first API" design decision:
//! measuring dilation by evaluating the closed-form embedding function per
//! node (`O(dim H)` each, no memory) versus materializing the full
//! guest-to-host table once and looking images up.
//!
//! The closed-form path is what the library does by default; the table path
//! trades memory for lookup speed. This benchmark quantifies the trade on
//! unit-dilation ring embeddings and on a lowering-dimension case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::mesh;
use embeddings::auto::embed;
use embeddings::basic::embed_ring_in;
use embeddings::Embedding;
use topology::Grid;

/// Dilation computed through the materialized table.
fn dilation_via_table(embedding: &Embedding) -> u64 {
    let table = embedding.to_table().unwrap();
    let host = embedding.host();
    embedding
        .guest()
        .edges()
        .map(|(a, b)| {
            let fa = host.coord(table[a as usize]).unwrap();
            let fb = host.coord(table[b as usize]).unwrap();
            host.distance(&fa, &fb)
        })
        .max()
        .unwrap_or(0)
}

fn bench_closed_form_vs_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("closed_form_vs_table");

    let cases: Vec<(String, Embedding)> = vec![
        (
            "ring_in_32x32_mesh".to_string(),
            embed_ring_in(&mesh(&[32, 32])).unwrap(),
        ),
        (
            "ring_in_16x16x16_mesh".to_string(),
            embed_ring_in(&mesh(&[16, 16, 16])).unwrap(),
        ),
        (
            "mesh16x16_to_line".to_string(),
            embed(&mesh(&[16, 16]), &Grid::line(256).unwrap()).unwrap(),
        ),
        (
            "hypercube12_to_64x64_mesh".to_string(),
            embed(&Grid::hypercube(12).unwrap(), &mesh(&[64, 64])).unwrap(),
        ),
    ];

    for (label, embedding) in &cases {
        group.throughput(Throughput::Elements(embedding.guest().num_edges()));
        group.bench_function(BenchmarkId::new("closed_form", label), |b| {
            b.iter(|| embedding.dilation())
        });
        group.bench_function(BenchmarkId::new("closed_form_parallel", label), |b| {
            b.iter(|| embedding.dilation_parallel(0))
        });
        group.bench_function(BenchmarkId::new("materialized_table", label), |b| {
            b.iter(|| dilation_via_table(embedding))
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(10);
    targets = bench_closed_form_vs_table
}
criterion_main!(benches);
