//! Benchmark: the structure-of-arrays digit-plane codec against the scalar
//! decode it accelerates, on the pipeline's ~2²⁰-node host shape.
//!
//! `scalar` decodes one node per call with `RadixBase::to_digits_into`
//! (itself strength-reduced onto the shared multiply–shift reciprocal
//! constants); `decode_range` sweeps the same index range through
//! `DigitPlanes` in batches of `LANES` consecutive nodes (two divisions per
//! batch per dimension); `gather` decodes the same indices through the
//! arbitrary-index batch entry point. Throughput is reported in decoded
//! nodes. Results feed the `soa_codec` group of `BENCH_pipeline.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mixedradix::planes::{DigitPlanes, LANES};
use mixedradix::{Digits, RadixBase};

/// The pipeline bench's host shape: (32,32,32,32), 2²⁰ nodes.
fn host_shape() -> RadixBase {
    RadixBase::new(vec![32, 32, 32, 32]).unwrap()
}

fn bench_codec(c: &mut Criterion) {
    let shape = host_shape();
    let n = shape.size();

    let mut group = c.benchmark_group("soa_codec");
    group.throughput(Throughput::Elements(n));

    group.bench_function(BenchmarkId::new("decode", "scalar"), |b| {
        let mut digits = Digits::empty();
        b.iter(|| {
            let mut checksum = 0u32;
            for x in 0..n {
                shape.to_digits_into(x, &mut digits).unwrap();
                checksum ^= digits.get(0);
            }
            checksum
        })
    });

    group.bench_function(BenchmarkId::new("decode", "decode_range"), |b| {
        let mut planes = DigitPlanes::for_base(&shape);
        b.iter(|| {
            let mut checksum = 0u32;
            let mut start = 0u64;
            while start < n {
                let count = (n - start).min(LANES as u64) as usize;
                planes.decode_range(&shape, start, count).unwrap();
                checksum ^= planes.plane(0)[count - 1];
                start += count as u64;
            }
            checksum
        })
    });

    group.bench_function(BenchmarkId::new("decode", "gather"), |b| {
        let mut planes = DigitPlanes::for_base(&shape);
        let mut indices = [0u64; LANES];
        b.iter(|| {
            let mut checksum = 0u32;
            let mut start = 0u64;
            while start < n {
                let count = (n - start).min(LANES as u64) as usize;
                for (lane, slot) in indices.iter_mut().enumerate().take(count) {
                    *slot = start + lane as u64;
                }
                planes.decode(&shape, &indices[..count]).unwrap();
                checksum ^= planes.plane(0)[count - 1];
                start += count as u64;
            }
            checksum
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(10))
        .sample_size(10);
    targets = bench_codec
}
criterion_main!(benches);
