//! Benchmark: evaluating the basic sequences f_L, g_L, h_L over every node
//! (Figure 9 at paper scale and at larger scales).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::shape;
use embeddings::basic::{f_l, g_l, h_l};

fn bench_basic_sequences(c: &mut Criterion) {
    let mut group = c.benchmark_group("basic_sequences");
    let cases: Vec<(&str, Vec<u32>)> = vec![
        ("fig9_(4,2,3)", vec![4, 2, 3]),
        ("(16,16,16)", vec![16, 16, 16]),
        ("(64,64,8)", vec![64, 64, 8]),
    ];
    for (label, radices) in cases {
        let base = shape(&radices);
        let n = base.size();
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("f_L", label), &base, |b, base| {
            b.iter(|| {
                let mut acc = 0u64;
                for x in 0..n {
                    acc = acc.wrapping_add(f_l(base, x).get(0) as u64);
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("g_L", label), &base, |b, base| {
            b.iter(|| {
                let mut acc = 0u64;
                for x in 0..n {
                    acc = acc.wrapping_add(g_l(base, x).get(0) as u64);
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("h_L", label), &base, |b, base| {
            b.iter(|| {
                let mut acc = 0u64;
                for x in 0..n {
                    acc = acc.wrapping_add(h_l(base, x).get(0) as u64);
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_basic_sequences
}
criterion_main!(benches);
