//! Benchmark: optimizer move throughput (proposed annealing moves/second).
//!
//! The workload is a (16,16)-torus embedded in a (16,16)-mesh (256 nodes,
//! 512 guest edges) — large enough that a full congestion re-sweep per move
//! would dominate, so the number measures the *incremental* delta-evaluation
//! path (`O(degree × path length)` per swap). `congestion` and `dilation`
//! run the two incremental objectives; `rebuild` measures the full re-sweep
//! the incremental path replaces, for the contrast. Results are recorded in
//! `BENCH_optim.json` at the repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::{mesh, torus};
use embeddings::auto::embed;
use embeddings::optim::{
    CongestionObjective, DilationObjective, Objective, Optimizer, OptimizerConfig,
};
use embeddings::Embedding;

const STEPS: u64 = 5_000;

fn bench_embedding() -> Embedding {
    let guest = torus(&[16, 16]);
    let host = mesh(&[16, 16]);
    embed(&guest, &host).unwrap()
}

fn bench_optim(c: &mut Criterion) {
    let embedding = bench_embedding();
    let guest = embedding.guest().clone();
    let host = embedding.host().clone();
    let config = OptimizerConfig {
        seed: 1987,
        steps: STEPS,
        ..OptimizerConfig::default()
    };

    let mut group = c.benchmark_group("optim_throughput");
    group.throughput(Throughput::Elements(STEPS));

    group.bench_function(BenchmarkId::new("optim", "congestion"), |b| {
        b.iter(|| {
            let mut objective = CongestionObjective::new(&guest, &host).unwrap();
            Optimizer::new(config)
                .optimize(&embedding, &mut objective)
                .unwrap()
                .report
                .best
                .primary
        })
    });
    group.bench_function(BenchmarkId::new("optim", "dilation"), |b| {
        b.iter(|| {
            let mut objective = DilationObjective::new(&guest, &host).unwrap();
            Optimizer::new(config)
                .optimize(&embedding, &mut objective)
                .unwrap()
                .report
                .best
                .primary
        })
    });

    // The contrast: what one full congestion re-sweep costs. The element
    // count is still STEPS, so this group reads as "moves/s if every move
    // paid a full rebuild" when divided by STEPS.
    let table = embedding.to_table().unwrap();
    let mut rebuild_objective = CongestionObjective::new(&guest, &host).unwrap();
    group.bench_function(BenchmarkId::new("optim", "full_rebuild"), |b| {
        b.iter(|| rebuild_objective.rebuild(&table).primary)
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(8))
        .sample_size(10);
    targets = bench_optim
}
criterion_main!(benches);
