//! Benchmark: sequential vs. crossbeam-parallel dilation verification on
//! larger graphs — the fork/join sweep the library uses for big instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::{mesh, torus};
use embeddings::auto::embed;
use embeddings::verify::{verify, verify_sequential};
use embeddings::Embedding;
use topology::Grid;

fn big_embedding() -> Embedding {
    // (256,256)-torus into a (16,16,16,16)-torus: 65 536 nodes, 262 144 edges.
    let guest = torus(&[256, 256]);
    let host = torus(&[16, 16, 16, 16]);
    embed(&guest, &host).unwrap()
}

fn medium_embedding() -> Embedding {
    // Hypercube 2^14 into a (128,128)-mesh.
    let guest = Grid::hypercube(14).unwrap();
    let host = mesh(&[128, 128]);
    embed(&guest, &host).unwrap()
}

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verification");
    for (label, embedding) in [
        ("torus65k", big_embedding()),
        ("hypercube16k", medium_embedding()),
    ] {
        group.throughput(Throughput::Elements(embedding.guest().num_edges()));
        group.bench_function(BenchmarkId::new("sequential", label), |b| {
            b.iter(|| verify_sequential(&embedding).dilation)
        });
        for threads in [2usize, 4, 8] {
            group.bench_function(
                BenchmarkId::new(format!("parallel_{threads}"), label),
                |b| b.iter(|| verify(&embedding, threads).unwrap().dilation),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_verification
}
criterion_main!(benches);
