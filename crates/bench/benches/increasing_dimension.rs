//! Benchmark: Theorem 32 increasing-dimension embeddings (construction +
//! full dilation measurement) across guest/host type combinations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::{mesh, torus};
use embeddings::increase::embed_increasing;
use topology::Grid;

fn bench_increasing(c: &mut Criterion) {
    let mut group = c.benchmark_group("increasing_dimension");
    let cases: Vec<(&str, Grid, Grid)> = vec![
        ("mesh->mesh 24", mesh(&[4, 6]), mesh(&[2, 2, 2, 3])),
        ("torus->mesh 24", torus(&[4, 6]), mesh(&[2, 2, 2, 3])),
        ("mesh->mesh 4k", mesh(&[64, 64]), mesh(&[8, 8, 8, 8])),
        ("torus->torus 4k", torus(&[64, 64]), torus(&[8, 8, 8, 8])),
        ("torus->mesh 4k", torus(&[64, 64]), mesh(&[8, 8, 8, 8])),
        (
            "odd torus->mesh 11k",
            torus(&[105, 105]),
            mesh(&[15, 7, 15, 7]),
        ),
    ];
    for (label, guest, host) in cases {
        group.throughput(Throughput::Elements(guest.size()));
        group.bench_function(BenchmarkId::new("embed+dilation", label), |b| {
            b.iter(|| {
                let e = embed_increasing(&guest, &host).unwrap();
                e.dilation()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_increasing
}
criterion_main!(benches);
