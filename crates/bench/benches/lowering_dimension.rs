//! Benchmark: Theorem 39 simple reductions and Theorem 43 general reductions
//! (construction + full dilation measurement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::{mesh, torus};
use embeddings::general_reduction::embed_general_reduction;
use embeddings::reduction::embed_simple_reduction;
use topology::Grid;

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowering_dimension");
    let simple: Vec<(&str, Grid, Grid)> = vec![
        ("(4,2,3)->(4,6)", mesh(&[4, 2, 3]), mesh(&[4, 6])),
        ("(8,8,8)->(64,8)", mesh(&[8, 8, 8]), mesh(&[64, 8])),
        (
            "torus(8,8,8)->mesh(64,8)",
            torus(&[8, 8, 8]),
            mesh(&[64, 8]),
        ),
        (
            "(2^12 hypercube)->(64,64)",
            Grid::hypercube(12).unwrap(),
            mesh(&[64, 64]),
        ),
    ];
    for (label, guest, host) in simple {
        group.throughput(Throughput::Elements(guest.size()));
        group.bench_function(BenchmarkId::new("simple_reduction", label), |b| {
            b.iter(|| embed_simple_reduction(&guest, &host).unwrap().dilation())
        });
    }
    let general: Vec<(&str, Grid, Grid)> = vec![
        ("(3,3,6)->(6,9)", mesh(&[3, 3, 6]), mesh(&[6, 9])),
        ("(12,12,24)->(48,72)", mesh(&[12, 12, 24]), mesh(&[48, 72])),
        (
            "torus(12,12,24)->mesh(48,72)",
            torus(&[12, 12, 24]),
            mesh(&[48, 72]),
        ),
    ];
    for (label, guest, host) in general {
        group.throughput(Throughput::Elements(guest.size()));
        group.bench_function(BenchmarkId::new("general_reduction", label), |b| {
            b.iter(|| embed_general_reduction(&guest, &host).unwrap().dilation())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_lowering
}
criterion_main!(benches);
