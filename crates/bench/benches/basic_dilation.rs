//! Benchmark: constructing and measuring the basic line/ring embeddings
//! (Theorems 13/17/24/28) across host shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::{mesh, torus};
use embeddings::basic::{embed_line_in, embed_ring_in};
use topology::Grid;

fn bench_basic_dilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("basic_dilation");
    let hosts: Vec<(&str, Grid)> = vec![
        ("(4,2,3)-mesh", mesh(&[4, 2, 3])),
        ("(32,32)-mesh", mesh(&[32, 32])),
        ("(32,32)-torus", torus(&[32, 32])),
        ("(16,16,16)-torus", torus(&[16, 16, 16])),
    ];
    for (label, host) in hosts {
        group.throughput(Throughput::Elements(host.size()));
        group.bench_with_input(BenchmarkId::new("line", label), &host, |b, host| {
            b.iter(|| embed_line_in(host).unwrap().dilation())
        });
        group.bench_with_input(BenchmarkId::new("ring", label), &host, |b, host| {
            b.iter(|| embed_ring_in(host).unwrap().dilation())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_basic_dilation
}
criterion_main!(benches);
