//! Benchmark: the batched allocation-free evaluation pipeline against the
//! old per-call path it replaced, on a ~2²⁰-node grid.
//!
//! `per_call` is the preserved pre-batching implementation
//! (`emb_bench::compat`): one dynamic `map` call per edge endpoint, a
//! `BTreeMap`/`HashMap` update per edge or hop, and per-step coordinate
//! re-encoding. `batched` is the library path built on
//! `Embedding::for_each_edge_mapped` + flat load/histogram vectors;
//! `batched_parallel_N` fans the same sweep out over N crossbeam workers.
//! Results are recorded in `BENCH_pipeline.json` at the repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emb_bench::compat::{congestion_per_call, verify_per_call};
use emb_bench::torus;
use embeddings::auto::embed;
use embeddings::congestion::{congestion_parallel, congestion_sequential};
use embeddings::verify::{verify, verify_sequential};
use embeddings::Embedding;

/// (1024,1024)-torus into a (32,32,32,32)-torus: 2²⁰ nodes, 2²¹ guest edges.
fn million_node_embedding() -> Embedding {
    let guest = torus(&[1024, 1024]);
    let host = torus(&[32, 32, 32, 32]);
    embed(&guest, &host).unwrap()
}

fn bench_pipeline(c: &mut Criterion) {
    let embedding = million_node_embedding();
    let edges = embedding.guest().num_edges();

    let mut group = c.benchmark_group("pipeline_throughput");
    group.throughput(Throughput::Elements(edges));

    group.bench_function(BenchmarkId::new("verify", "per_call"), |b| {
        b.iter(|| verify_per_call(&embedding).dilation)
    });
    group.bench_function(BenchmarkId::new("verify", "batched"), |b| {
        b.iter(|| verify_sequential(&embedding).dilation)
    });
    group.bench_function(BenchmarkId::new("verify", "batched_parallel_8"), |b| {
        b.iter(|| verify(&embedding, 8).unwrap().dilation)
    });

    group.bench_function(BenchmarkId::new("congestion", "per_call"), |b| {
        b.iter(|| congestion_per_call(&embedding).max_congestion)
    });
    group.bench_function(BenchmarkId::new("congestion", "batched"), |b| {
        b.iter(|| congestion_sequential(&embedding).unwrap().max_congestion)
    });
    group.bench_function(BenchmarkId::new("congestion", "batched_parallel_8"), |b| {
        b.iter(|| congestion_parallel(&embedding, 8).unwrap().max_congestion)
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(12))
        .sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
