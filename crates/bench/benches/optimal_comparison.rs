//! Benchmark: the Section 5 comparison — our constructions vs. exhaustive
//! branch-and-bound optima on tiny instances, plus the closed-form optima.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emb_bench::mesh;
use embeddings::auto::embed;
use embeddings::exhaustive::optimal_dilation_exhaustive;
use embeddings::optimal::{optimal_hypercube_in_line, paper_hypercube_in_line};
use topology::Grid;

fn bench_optimal(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_comparison");

    // Construction cost on the instances compared in Section 5.
    let cases: Vec<(&str, Grid, Grid)> = vec![
        (
            "(16,16)-mesh->line",
            mesh(&[16, 16]),
            Grid::line(256).unwrap(),
        ),
        (
            "(8,8,8)-mesh->line",
            mesh(&[8, 8, 8]),
            Grid::line(512).unwrap(),
        ),
        (
            "hypercube 2^10->line",
            Grid::hypercube(10).unwrap(),
            Grid::line(1024).unwrap(),
        ),
    ];
    for (label, guest, host) in cases {
        group.bench_function(BenchmarkId::new("construction", label), |b| {
            b.iter(|| embed(&guest, &host).unwrap().dilation())
        });
    }

    // The exhaustive search our tests use to certify optimality on tiny cases.
    let tiny: Vec<(&str, Grid, Grid)> = vec![
        ("ring(9)->(3,3)-mesh", Grid::ring(9).unwrap(), mesh(&[3, 3])),
        (
            "ring(12)->(4,3)-mesh",
            Grid::ring(12).unwrap(),
            mesh(&[4, 3]),
        ),
    ];
    for (label, guest, host) in tiny {
        group.bench_function(BenchmarkId::new("exhaustive", label), |b| {
            b.iter(|| optimal_dilation_exhaustive(&guest, &host, Some(16)).unwrap())
        });
    }

    // Closed-form evaluation (Harper's sum vs. ours).
    group.bench_function("harper_formula_d_1..=20", |b| {
        b.iter(|| {
            (1..=20u32)
                .map(|d| (paper_hypercube_in_line(d), optimal_hypercube_in_line(d)))
                .fold(0u128, |acc, (a, b)| acc + a + b)
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_optimal
}
criterion_main!(benches);
