//! Benchmark: sweep-engine throughput (trials/second) on the built-in
//! `bench` plan — a fixed small family (`ring_into` + `same_shape` up to 24
//! nodes, 123 trials, neighbor workload).
//!
//! `expand` measures plan expansion alone (family enumeration); `run_1` and
//! `run_4` measure the full sweep — planner, batched verify + congestion,
//! chain report and one netsim round per trial — on 1 worker and on 4
//! crossbeam workers. Results are recorded in `BENCH_explab.json` at the
//! repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use explab::executor::{expand, run};
use explab::plan::SweepPlan;

fn bench_explab(c: &mut Criterion) {
    let plan = SweepPlan::builtin("bench").expect("built-in plan");
    let trials = expand(&plan).len() as u64;

    let mut group = c.benchmark_group("explab_throughput");
    group.throughput(Throughput::Elements(trials));

    group.bench_function(BenchmarkId::new("plan", "expand"), |b| {
        b.iter(|| expand(&plan).len())
    });
    group.bench_function(BenchmarkId::new("sweep", "run_1"), |b| {
        b.iter(|| run(&plan, 1).supported())
    });
    group.bench_function(BenchmarkId::new("sweep", "run_4"), |b| {
        b.iter(|| run(&plan, 4).supported())
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(8))
        .sample_size(10);
    targets = bench_explab
}
criterion_main!(benches);
