//! The bench-regression gate: parse checked-in `BENCH_*.json` baselines and
//! compare freshly measured throughput against them.
//!
//! The workspace is offline (no serde), so this module carries a minimal
//! recursive-descent JSON parser — just enough for the baseline files the
//! repo checks in — plus the baseline-extraction and ratio-check logic the
//! `benchgate` binary drives in CI. A measurement passes when it reaches at
//! least `min_ratio` of its baseline (the CI default, 0.7, fails a >30%
//! throughput regression).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`; baseline magnitudes fit easily).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. `BTreeMap` keeps lookups simple; baseline files never
    /// rely on duplicate keys.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Why a baseline file could not be used.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GateError {
    /// The file is not valid JSON.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The JSON parsed but a required field is missing or mistyped.
    Schema {
        /// A dotted path describing the missing field.
        field: String,
    },
    /// The `benchmark` field names a benchmark the gate cannot measure.
    UnknownBenchmark {
        /// The offending name.
        name: String,
    },
}

impl core::fmt::Display for GateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GateError::Parse { offset, message } => {
                write!(f, "invalid JSON at byte {offset}: {message}")
            }
            GateError::Schema { field } => {
                write!(f, "baseline is missing required field {field:?}")
            }
            GateError::UnknownBenchmark { name } => {
                write!(f, "no gate measurement is defined for benchmark {name:?}")
            }
        }
    }
}

impl std::error::Error for GateError {}

/// Parses a JSON document (the subset the baseline files use: objects,
/// arrays, strings with `\"`-style escapes, numbers, booleans, null).
pub fn parse_json(text: &str) -> Result<Json, GateError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_whitespace(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(GateError::Parse {
            offset: pos,
            message: "trailing characters after the document".into(),
        });
    }
    Ok(value)
}

fn skip_whitespace(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), GateError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(GateError::Parse {
            offset: *pos,
            message: format!("expected {:?}", byte as char),
        })
    }
}

/// Decodes the four hex digits of a `\uXXXX` escape whose `u` is at `*pos`,
/// leaving `*pos` on the last digit (the caller's loop advances past it).
fn hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, GateError> {
    let hex = bytes.get(*pos + 1..*pos + 5).ok_or(GateError::Parse {
        offset: *pos,
        message: "truncated \\u escape".into(),
    })?;
    if !hex.iter().all(u8::is_ascii_hexdigit) {
        return Err(GateError::Parse {
            offset: *pos,
            message: "invalid \\u escape".into(),
        });
    }
    let code = u32::from_str_radix(std::str::from_utf8(hex).expect("hex digits are ASCII"), 16)
        .expect("four hex digits fit in u32");
    *pos += 4;
    Ok(code)
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, GateError> {
    skip_whitespace(bytes, pos);
    match bytes.get(*pos) {
        None => Err(GateError::Parse {
            offset: *pos,
            message: "unexpected end of input".into(),
        }),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, GateError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(GateError::Parse {
            offset: *pos,
            message: format!("expected {literal:?}"),
        })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, GateError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number characters");
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| GateError::Parse {
            offset: start,
            message: format!("invalid number {text:?}"),
        })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, GateError> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| GateError::Parse {
                    offset: *pos,
                    message: "invalid UTF-8 in string".into(),
                });
            }
            b'\\' => {
                *pos += 1;
                let escaped = bytes.get(*pos).ok_or(GateError::Parse {
                    offset: *pos,
                    message: "unterminated escape".into(),
                })?;
                match escaped {
                    b'"' | b'\\' | b'/' => out.push(*escaped),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'u' => {
                        let first = hex4(bytes, pos)?;
                        let code = match first {
                            0xD800..=0xDBFF => {
                                // A high surrogate encodes an astral code
                                // point together with an immediately
                                // following escaped low surrogate.
                                if bytes.get(*pos + 1) != Some(&b'\\')
                                    || bytes.get(*pos + 2) != Some(&b'u')
                                {
                                    return Err(GateError::Parse {
                                        offset: *pos,
                                        message: "lone high surrogate in \\u escape".into(),
                                    });
                                }
                                *pos += 2;
                                let second = hex4(bytes, pos)?;
                                if !(0xDC00..=0xDFFF).contains(&second) {
                                    return Err(GateError::Parse {
                                        offset: *pos,
                                        message: format!(
                                            "high surrogate {first:04x} followed by \
                                             non-surrogate {second:04x}"
                                        ),
                                    });
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            }
                            0xDC00..=0xDFFF => {
                                return Err(GateError::Parse {
                                    offset: *pos,
                                    message: "lone low surrogate in \\u escape".into(),
                                });
                            }
                            code => code,
                        };
                        let ch = char::from_u32(code).ok_or(GateError::Parse {
                            offset: *pos,
                            message: "non-scalar \\u escape".into(),
                        })?;
                        let mut buffer = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buffer).as_bytes());
                    }
                    other => {
                        return Err(GateError::Parse {
                            offset: *pos,
                            message: format!("unsupported escape \\{}", *other as char),
                        });
                    }
                }
                *pos += 1;
            }
            _ => {
                out.push(bytes[*pos]);
                *pos += 1;
            }
        }
    }
    Err(GateError::Parse {
        offset: *pos,
        message: "unterminated string".into(),
    })
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, GateError> {
    expect(bytes, pos, b'{')?;
    let mut members = BTreeMap::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(members));
    }
    loop {
        skip_whitespace(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_whitespace(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.insert(key, value);
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            _ => {
                return Err(GateError::Parse {
                    offset: *pos,
                    message: "expected ',' or '}' in object".into(),
                });
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, GateError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => {
                return Err(GateError::Parse {
                    offset: *pos,
                    message: "expected ',' or ']' in array".into(),
                });
            }
        }
    }
}

/// One gated throughput figure extracted from a baseline file. Units vary by
/// benchmark (elements/s, trials/s, moves/s); the gate only ever compares a
/// measurement against its own baseline, so the unit never crosses metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineMetric {
    /// Which benchmark family the metric belongs to (the file's `benchmark`
    /// field).
    pub benchmark: String,
    /// The metric's name within the family (e.g. `"verify_melem_per_s"`).
    pub metric: String,
    /// The baseline throughput (higher is better).
    pub throughput: f64,
}

fn number_at(root: &Json, path: &[&str]) -> Result<f64, GateError> {
    let mut value = root;
    for key in path {
        value = value.get(key).ok_or_else(|| GateError::Schema {
            field: path.join("."),
        })?;
    }
    value.as_f64().ok_or_else(|| GateError::Schema {
        field: path.join("."),
    })
}

/// Finds the element of `results` whose `group` field equals `group`.
fn result_group<'a>(root: &'a Json, group: &str) -> Result<&'a Json, GateError> {
    let results = root
        .get("results")
        .and_then(Json::as_array)
        .ok_or_else(|| GateError::Schema {
            field: "results".into(),
        })?;
    results
        .iter()
        .find(|r| r.get("group").and_then(Json::as_str) == Some(group))
        .ok_or_else(|| GateError::Schema {
            field: format!("results[group={group}]"),
        })
}

/// Extracts the gated metrics of one parsed baseline file, dispatching on
/// its `benchmark` field.
///
/// # Errors
///
/// Returns [`GateError::Schema`] when a required field is absent and
/// [`GateError::UnknownBenchmark`] for files the gate cannot measure.
pub fn extract_metrics(root: &Json) -> Result<Vec<BaselineMetric>, GateError> {
    let benchmark = root
        .get("benchmark")
        .and_then(Json::as_str)
        .ok_or_else(|| GateError::Schema {
            field: "benchmark".into(),
        })?
        .to_string();
    let metric = |metric: &str, throughput: f64| BaselineMetric {
        benchmark: benchmark.clone(),
        metric: metric.to_string(),
        throughput,
    };
    match benchmark.as_str() {
        "pipeline_throughput" => Ok(vec![
            metric(
                "verify_melem_per_s",
                number_at(result_group(root, "verify")?, &["batched_melem_per_s"])?,
            ),
            metric(
                "congestion_melem_per_s",
                number_at(result_group(root, "congestion")?, &["batched_melem_per_s"])?,
            ),
            metric(
                "soa_codec_melem_per_s",
                number_at(
                    result_group(root, "soa_codec")?,
                    &["decode_range_melem_per_s"],
                )?,
            ),
        ]),
        "explab_throughput" => Ok(vec![metric(
            "trials_per_s",
            number_at(root, &["summary", "trials_per_second_single_worker"])?,
        )]),
        "optim_throughput" => Ok(vec![
            metric(
                "moves_per_s",
                number_at(root, &["summary", "moves_per_second"])?,
            ),
            metric(
                "wirelength_moves_per_s",
                number_at(root, &["summary", "wirelength_moves_per_second"])?,
            ),
            metric(
                "kcycle_moves_per_s",
                number_at(root, &["summary", "kcycle_moves_per_second"])?,
            ),
        ]),
        "shard_scaling" => Ok(vec![metric(
            "sharded_moves_per_s",
            number_at(root, &["summary", "sharded_moves_per_second"])?,
        )]),
        "embd_load" => Ok(vec![metric(
            "queries_per_s",
            number_at(root, &["summary", "queries_per_second"])?,
        )]),
        "chaos_routing" => Ok(vec![metric(
            "chaos_routed_msgs_per_s",
            number_at(root, &["summary", "routed_msgs_per_second"])?,
        )]),
        other => Err(GateError::UnknownBenchmark { name: other.into() }),
    }
}

/// The verdict on one gated metric.
#[derive(Clone, Debug, PartialEq)]
pub struct GateCheck {
    /// The metric that was checked.
    pub baseline: BaselineMetric,
    /// The freshly measured throughput, in the baseline's unit.
    pub measured: f64,
    /// `measured / baseline` (1.0 = exactly at baseline).
    pub ratio: f64,
    /// Whether the measurement clears `min_ratio × baseline`.
    pub pass: bool,
}

/// Compares a measurement against its baseline: pass when `measured` is at
/// least `min_ratio` of the baseline throughput.
pub fn check(baseline: BaselineMetric, measured: f64, min_ratio: f64) -> GateCheck {
    let ratio = if baseline.throughput > 0.0 {
        measured / baseline.throughput
    } else {
        f64::INFINITY
    };
    GateCheck {
        baseline,
        measured,
        ratio,
        pass: ratio >= min_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_nesting() {
        let doc = r#"{"a": 1.5, "b": [true, false, null, "x\n\"y\""], "c": {"d": -2e3}}"#;
        let json = parse_json(doc).unwrap();
        assert_eq!(json.get("a").unwrap().as_f64(), Some(1.5));
        let items = json.get("b").unwrap().as_array().unwrap();
        assert_eq!(items[0], Json::Bool(true));
        assert_eq!(items[2], Json::Null);
        assert_eq!(items[3].as_str(), Some("x\n\"y\""));
        assert_eq!(
            json.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(-2000.0)
        );
    }

    #[test]
    fn unicode_escapes_decode_to_utf8() {
        // BMP escapes: µ (two UTF-8 bytes) and ✓ (three).
        let doc = r#"{"unit": "\u00b5s", "mark": "\u2713"}"#;
        let json = parse_json(doc).unwrap();
        assert_eq!(json.get("unit").unwrap().as_str(), Some("µs"));
        assert_eq!(json.get("mark").unwrap().as_str(), Some("✓"));
        // Astral code points arrive as surrogate pairs (RFC 8259 §7).
        let doc = r#"{"emoji": "\ud83d\ude00"}"#;
        let json = parse_json(doc).unwrap();
        assert_eq!(json.get("emoji").unwrap().as_str(), Some("😀"));
        // Escaped and raw spellings agree.
        let json = parse_json(r#"{"raw": "µ✓😀", "esc": "\u00b5\u2713\ud83d\ude00"}"#).unwrap();
        assert_eq!(json.get("raw"), json.get("esc"));
    }

    #[test]
    fn lone_surrogates_are_parse_errors() {
        for bad in [
            r#"{"s": "\ud800"}"#,  // lone high surrogate
            r#"{"s": "\ud800x"}"#, // high surrogate, no second escape
            r#"{"s": "\ud800A"}"#, // high surrogate + non-surrogate
            r#"{"s": "\udc00"}"#,  // lone low surrogate
            r#"{"s": "\uzzzz"}"#,  // non-hex digits
            r#"{"s": "\ud8"}"#,    // truncated
        ] {
            assert!(
                matches!(parse_json(bad), Err(GateError::Parse { .. })),
                "{bad}"
            );
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "{\"a\":1} trailing",
            "\"open",
        ] {
            assert!(
                matches!(parse_json(bad), Err(GateError::Parse { .. })),
                "{bad}"
            );
        }
    }

    #[test]
    fn parses_the_checked_in_baselines() {
        for file in [
            "BENCH_pipeline.json",
            "BENCH_explab.json",
            "BENCH_optim.json",
            "BENCH_shards.json",
            "BENCH_embd.json",
            "BENCH_netsim.json",
        ] {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../").to_string() + file;
            let text = std::fs::read_to_string(&path).expect(file);
            let json = parse_json(&text).expect(file);
            let metrics = extract_metrics(&json).expect(file);
            assert!(!metrics.is_empty(), "{file}");
            assert!(metrics.iter().all(|m| m.throughput > 0.0), "{file}");
        }
    }

    #[test]
    fn extraction_dispatches_on_benchmark_name() {
        let doc = r#"{
            "benchmark": "explab_throughput",
            "summary": {"trials_per_second_single_worker": 24748}
        }"#;
        let metrics = extract_metrics(&parse_json(doc).unwrap()).unwrap();
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].metric, "trials_per_s");
        assert_eq!(metrics[0].throughput, 24748.0);

        let shards = r#"{
            "benchmark": "shard_scaling",
            "summary": {"sharded_moves_per_second": 96795}
        }"#;
        let metrics = extract_metrics(&parse_json(shards).unwrap()).unwrap();
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].metric, "sharded_moves_per_s");
        assert_eq!(metrics[0].throughput, 96795.0);

        let pipeline = r#"{
            "benchmark": "pipeline_throughput",
            "results": [
                {"group": "verify", "batched_melem_per_s": 7.0},
                {"group": "congestion", "batched_melem_per_s": 6.5},
                {"group": "soa_codec", "decode_range_melem_per_s": 400.0}
            ]
        }"#;
        let metrics = extract_metrics(&parse_json(pipeline).unwrap()).unwrap();
        assert_eq!(metrics.len(), 3);
        assert_eq!(metrics[2].metric, "soa_codec_melem_per_s");
        assert_eq!(metrics[2].throughput, 400.0);

        let chaos = r#"{
            "benchmark": "chaos_routing",
            "summary": {"routed_msgs_per_second": 120000}
        }"#;
        let metrics = extract_metrics(&parse_json(chaos).unwrap()).unwrap();
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].metric, "chaos_routed_msgs_per_s");
        assert_eq!(metrics[0].throughput, 120000.0);

        let optim = r#"{
            "benchmark": "optim_throughput",
            "summary": {
                "moves_per_second": 85630,
                "wirelength_moves_per_second": 105086,
                "kcycle_moves_per_second": 60000
            }
        }"#;
        let metrics = extract_metrics(&parse_json(optim).unwrap()).unwrap();
        assert_eq!(metrics.len(), 3);
        assert_eq!(metrics[0].metric, "moves_per_s");
        assert_eq!(metrics[1].metric, "wirelength_moves_per_s");
        assert_eq!(metrics[1].throughput, 105086.0);
        assert_eq!(metrics[2].metric, "kcycle_moves_per_s");
        assert_eq!(metrics[2].throughput, 60000.0);

        let unknown = r#"{"benchmark": "mystery"}"#;
        assert!(matches!(
            extract_metrics(&parse_json(unknown).unwrap()),
            Err(GateError::UnknownBenchmark { .. })
        ));
        let missing = r#"{"benchmark": "optim_throughput", "summary": {}}"#;
        assert!(matches!(
            extract_metrics(&parse_json(missing).unwrap()),
            Err(GateError::Schema { .. })
        ));
    }

    #[test]
    fn ratio_check_applies_the_threshold() {
        let metric = BaselineMetric {
            benchmark: "optim_throughput".into(),
            metric: "moves_per_s".into(),
            throughput: 1000.0,
        };
        assert!(check(metric.clone(), 900.0, 0.7).pass);
        assert!(check(metric.clone(), 700.0, 0.7).pass);
        let fail = check(metric, 699.0, 0.7);
        assert!(!fail.pass);
        assert!((fail.ratio - 0.699).abs() < 1e-9);
    }
}
