//! The experiment harness: regenerates every figure-level artifact and
//! dilation table of the paper.
//!
//! ```text
//! cargo run --release -p emb-bench --bin repro -- <experiment-id> [...]
//! cargo run --release -p emb-bench --bin repro -- all
//! cargo run --release -p emb-bench --bin repro -- list
//! ```
//!
//! Experiment ids match the per-experiment index in `DESIGN.md`; the output
//! is the data recorded in `EXPERIMENTS.md`.

use emb_bench::{check_mark, mesh, shape, torus};

use embeddings::auto::{embed, predicted_dilation};
use embeddings::basic::{embed_line_in, embed_ring_in, f_l, g_l, h_l};
use embeddings::exhaustive::optimal_dilation_exhaustive;
use embeddings::expansion::ExpansionFactor;
use embeddings::general_reduction::embed_general_reduction;
use embeddings::increase::{embed_increasing_with, IncreaseFunction};
use embeddings::lower_bound::{asymptotic_lower_bound, dilation_lower_bound};
use embeddings::optimal::{
    epsilon, optimal_cube_mesh_in_line, optimal_hypercube_in_line, optimal_square_mesh_in_line,
    optimal_square_torus_in_ring, paper_hypercube_in_line,
};
use embeddings::verify::verify;
use mixedradix::sequence::{ExplicitSequence, NaturalSequence, RadixSequence};
use mixedradix::{Digits, RadixBase};
use netsim::{simulate, Network, Placement, Workload};
use topology::hamiltonian::admits_hamiltonian_circuit;
use topology::{Coord, GraphKind, Grid, Shape};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <experiment-id>... | all | list");
        std::process::exit(2);
    }
    let all = experiments();
    if args.iter().any(|a| a == "list") {
        for (id, description, _) in &all {
            println!("{id:<22} {description}");
        }
        return;
    }
    let run_all = args.iter().any(|a| a == "all");
    let mut ran = 0;
    for (id, description, runner) in &all {
        if run_all || args.iter().any(|a| a == id) {
            println!("==============================================================");
            println!("experiment {id}: {description}");
            println!("==============================================================");
            runner();
            println!();
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched {:?}; try `repro list`", args);
        std::process::exit(2);
    }
}

type Runner = fn();

fn experiments() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        (
            "fig1-2",
            "the (4,2,3)-torus and (4,2,3)-mesh of Figures 1-2",
            fig1_2,
        ),
        (
            "fig3",
            "spreads of a function [9] -> Omega_(3,3) (Figure 3)",
            fig3,
        ),
        (
            "fig4",
            "sequences P and P' for L = (4,2,3) (Figure 4)",
            fig4,
        ),
        (
            "fig9",
            "f_L, g_L, h_L tables for n = 24, L = (4,2,3) (Figure 9)",
            fig9,
        ),
        (
            "fig10",
            "line/ring of size 24 in a (4,2,3)-mesh (Figure 10)",
            fig10,
        ),
        (
            "fig11",
            "F_V, G_V, H_V for L = (4,6), M = (2,2,2,3) (Figure 11)",
            fig11,
        ),
        (
            "fig12",
            "(3,3,6)-mesh in a (6,9)-mesh via supernodes (Figure 12)",
            fig12,
        ),
        (
            "basic-table",
            "basic embedding dilation sweep (Theorems 13/17/24/28)",
            basic_table,
        ),
        (
            "hamiltonian",
            "Hamiltonicity corollaries 18/25/29",
            hamiltonian,
        ),
        (
            "increasing-table",
            "increasing-dimension dilation sweep (Theorem 32)",
            increasing_table,
        ),
        (
            "hypercube-in",
            "grids into hypercubes (Corollary 34)",
            hypercube_in,
        ),
        (
            "simple-reduction",
            "simple reduction sweep (Theorem 39, Corollary 40)",
            simple_reduction,
        ),
        (
            "general-reduction",
            "general reduction sweep (Theorem 43)",
            general_reduction,
        ),
        (
            "lower-bound",
            "Theorem 47 lower bound vs. achieved dilation",
            lower_bound,
        ),
        (
            "square-lowering",
            "square lowering-dimension sweep (Theorems 48/51)",
            square_lowering,
        ),
        (
            "square-increasing",
            "square increasing-dimension sweep (Theorems 52/53)",
            square_increasing,
        ),
        (
            "optimal-comparison",
            "Section 5 comparison against known optima",
            optimal_comparison,
        ),
        (
            "appendix",
            "the epsilon_d analysis of Harper's bound (Appendix)",
            appendix,
        ),
        (
            "netsim",
            "routed-traffic effect of dilation (extension)",
            netsim_experiment,
        ),
        (
            "collective",
            "ring allreduce over Hamiltonian circuits (extension)",
            collective_experiment,
        ),
        (
            "grid-metrics",
            "network figures of merit for the example graphs (extension)",
            grid_metrics_experiment,
        ),
    ]
}

// ---------------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------------

fn fig1_2() {
    let torus = torus(&[4, 2, 3]);
    let mesh = mesh(&[4, 2, 3]);
    for grid in [&torus, &mesh] {
        println!(
            "{:<16} nodes = {:>3}  edges = {:>3}  diameter = {}",
            grid.to_string(),
            grid.size(),
            grid.num_edges(),
            grid.diameter()
        );
    }
    let a = Coord::from_slice(&[0, 0, 1]).unwrap();
    let b = Coord::from_slice(&[3, 0, 0]).unwrap();
    println!("paper: distance (0,0,1)-(3,0,0) = 2 in the torus, 4 in the mesh");
    println!(
        "measured: {} in the torus, {} in the mesh",
        torus.distance(&a, &b),
        mesh.distance(&a, &b)
    );
}

fn fig3() {
    // A bijection [9] -> Omega_(3,3) with the spreads quoted in the text.
    let base = RadixBase::new(vec![3, 3]).unwrap();
    let rows: Vec<Digits> = [
        [0, 0],
        [0, 1],
        [0, 2],
        [2, 2],
        [2, 1],
        [2, 0],
        [1, 0],
        [1, 1],
        [1, 2],
    ]
    .iter()
    .map(|r| Digits::from_slice(r).unwrap())
    .collect();
    let f = ExplicitSequence::new(base.clone(), rows.clone()).unwrap();
    println!(
        "{:>3} {:>8} {:>12} {:>12}",
        "i", "f(i)", "dm(i,i+1)", "dt(i,i+1)"
    );
    for i in 0..9usize {
        let a = &rows[i];
        let b = &rows[(i + 1) % 9];
        let dm = mixedradix::distance::delta_m(&base, a, b).unwrap();
        let dt = mixedradix::distance::delta_t(&base, a, b).unwrap();
        println!("{:>3} {:>8} {:>12} {:>12}", i, a.to_string(), dm, dt);
    }
    println!(
        "acyclic spreads: dm = {} (paper: 2), dt = {} (paper: 1)",
        f.acyclic_spread_mesh(),
        f.acyclic_spread_torus()
    );
    println!(
        "cyclic spreads : dm = {} (paper: 3), dt = {} (paper: 2)",
        f.cyclic_spread_mesh(),
        f.cyclic_spread_torus()
    );
}

fn fig4() {
    let base = RadixBase::new(vec![4, 2, 3]).unwrap();
    let natural = NaturalSequence::new(base.clone());
    println!("{:>3} {:>12} {:>14}", "x", "P(x)", "P'(x)=f_L(x)");
    for x in 0..24u64 {
        println!(
            "{:>3} {:>12} {:>14}",
            x,
            base.to_digits(x).unwrap().to_string(),
            f_l(&base, x).to_string()
        );
    }
    let inner = base.clone();
    let reflected =
        mixedradix::sequence::FnSequence::new(base.clone(), 24, move |x| f_l(&inner, x));
    println!(
        "dm-spread of P = {} (paper: > 1), dm-spread of P' = {} (paper: 1)",
        natural.acyclic_spread_mesh(),
        reflected.acyclic_spread_mesh()
    );
}

fn fig9() {
    let base = RadixBase::new(vec![4, 2, 3]).unwrap();
    println!(
        "{:>3} {:>12} {:>12} {:>12}",
        "x", "f_L(x)", "g_L(x)", "h_L(x)"
    );
    for x in 0..24u64 {
        println!(
            "{:>3} {:>12} {:>12} {:>12}",
            x,
            f_l(&base, x).to_string(),
            g_l(&base, x).to_string(),
            h_l(&base, x).to_string()
        );
    }
}

fn fig10() {
    let host = mesh(&[4, 2, 3]);
    let line = embed_line_in(&host).unwrap();
    let ring = embed_ring_in(&host).unwrap();
    // The explicit g-based ring embedding for comparison (Figure 10e).
    let base = RadixBase::new(vec![4, 2, 3]).unwrap();
    let mut g_worst = 0u64;
    for x in 0..24u64 {
        let a = g_l(&base, x);
        let b = g_l(&base, (x + 1) % 24);
        g_worst = g_worst.max(host.distance(&a, &b));
    }
    println!("{:<42} {:>9} {:>9}", "embedding", "paper", "measured");
    println!(
        "{:<42} {:>9} {:>9}  {}",
        "line in (4,2,3)-mesh via f_L (10d)",
        1,
        line.dilation(),
        check_mark(1, line.dilation())
    );
    println!(
        "{:<42} {:>9} {:>9}  {}",
        "ring in (4,2,3)-mesh via g_L (10e)",
        2,
        g_worst,
        check_mark(2, g_worst)
    );
    println!(
        "{:<42} {:>9} {:>9}  {}",
        "ring in (4,2,3)-mesh via h_L (10f)",
        1,
        ring.dilation(),
        check_mark(1, ring.dilation())
    );
}

fn fig11() {
    let factor = ExpansionFactor::new(vec![vec![2, 2], vec![2, 3]]).unwrap();
    let guest_mesh = mesh(&[4, 6]);
    let guest_torus = torus(&[4, 6]);
    let host_mesh = mesh(&[2, 2, 2, 3]);
    let host_torus = torus(&[2, 2, 2, 3]);
    let f = embed_increasing_with(&guest_mesh, &host_mesh, &factor, IncreaseFunction::F).unwrap();
    let g = embed_increasing_with(&guest_torus, &host_mesh, &factor, IncreaseFunction::G).unwrap();
    let h = embed_increasing_with(&guest_torus, &host_torus, &factor, IncreaseFunction::H).unwrap();
    println!("V = ((2,2),(2,3)), L = (4,6), M = (2,2,2,3)");
    println!(
        "{:>3} {:>8} {:>15} {:>15} {:>15}",
        "x", "(i1,i2)", "F_V", "G_V", "H_V"
    );
    let guest_shape = shape(&[4, 6]);
    for x in 0..24u64 {
        println!(
            "{:>3} {:>8} {:>15} {:>15} {:>15}",
            x,
            guest_shape.to_digits(x).unwrap().to_string(),
            f.map(x).to_string(),
            g.map(x).to_string(),
            h.map(x).to_string()
        );
    }
    println!(
        "dilation: F_V = {} (paper 1), G_V = {} (paper 2), H_V = {} (paper 1)",
        f.dilation(),
        g.dilation(),
        h.dilation()
    );
}

fn fig12() {
    let guest = mesh(&[3, 3, 6]);
    let host = mesh(&[6, 9]);
    let general = embed_general_reduction(&guest, &host).unwrap();
    println!("supernode view: (3,3,6)-mesh = (3,3)-mesh of lines of 6,");
    println!("                (6,9)-mesh   = (3,3)-mesh of (2,3)-meshes");
    println!(
        "general-reduction embedding `{}`: dilation {} (paper: 3)",
        general.name(),
        general.dilation()
    );
    let auto = embed(&guest, &host).unwrap();
    println!(
        "planner choice `{}`: dilation {} (paper: 3)",
        auto.name(),
        auto.dilation()
    );
    // Show where one supernode lands.
    println!("images of supernode (2,0) of G (its 6 line nodes):");
    for inner in 0..6u32 {
        let node = guest
            .index(&Coord::from_slice(&[2, 0, inner]).unwrap())
            .unwrap();
        println!("  (2,0,{inner}) -> {}", general.map(node));
    }
}

// ---------------------------------------------------------------------------
// Theorem sweeps
// ---------------------------------------------------------------------------

fn basic_table() {
    let hosts: Vec<Vec<u32>> = vec![
        vec![6],
        vec![7],
        vec![3, 3],
        vec![4, 3],
        vec![4, 2, 3],
        vec![3, 3, 3],
        vec![2, 2, 2, 2],
        vec![5, 4],
        vec![6, 6],
        vec![5, 5, 5],
    ];
    println!(
        "{:<8} {:<16} {:>11} {:>10} {:>10}",
        "guest", "host", "paper", "measured", "status"
    );
    for radices in hosts {
        for kind in [GraphKind::Torus, GraphKind::Mesh] {
            let host = Grid::new(kind, shape(&radices));
            let n = host.size();
            for (guest_name, guest) in [
                ("line", Grid::line(n).unwrap()),
                ("ring", Grid::ring(n).unwrap()),
            ] {
                let paper = predicted_dilation(&guest, &host).unwrap();
                let e = embed(&guest, &host).unwrap();
                let measured = e.dilation();
                println!(
                    "{:<8} {:<16} {:>11} {:>10} {:>10}",
                    guest_name,
                    host.to_string(),
                    paper,
                    measured,
                    check_mark(paper, measured)
                );
            }
        }
    }
}

fn hamiltonian() {
    let shapes: Vec<Vec<u32>> = vec![
        vec![3, 3],
        vec![4, 3],
        vec![2, 2, 3],
        vec![5, 5],
        vec![4, 2, 3],
        vec![3, 3, 3],
        vec![7],
        vec![8],
    ];
    println!(
        "{:<16} {:>6} {:>24} {:>24}",
        "graph", "size", "corollary predicts HC", "ring embedding dil 1"
    );
    for radices in shapes {
        for kind in [GraphKind::Torus, GraphKind::Mesh] {
            let grid = Grid::new(kind, shape(&radices));
            let predicted = admits_hamiltonian_circuit(&grid);
            let embedding = embed(&Grid::ring(grid.size()).unwrap(), &grid).unwrap();
            let unit = embedding.dilation() == 1;
            println!(
                "{:<16} {:>6} {:>24} {:>24}",
                grid.to_string(),
                grid.size(),
                predicted,
                unit
            );
        }
    }
}

fn increasing_table() {
    let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
        (vec![4, 6], vec![2, 2, 2, 3]),
        (vec![8, 9], vec![2, 4, 3, 3]),
        (vec![6, 12], vec![6, 3, 2, 2]),
        (vec![9, 15], vec![3, 3, 3, 5]),
        (vec![12, 2], vec![3, 4, 2]),
        (vec![6, 6], vec![2, 3, 2, 3]),
        (vec![16, 16], vec![4, 4, 4, 4]),
    ];
    println!(
        "{:<16} {:<16} {:<14} {:>7} {:>9} {:>8}",
        "guest", "host", "types", "paper", "measured", "status"
    );
    for (l, m) in cases {
        for guest_kind in [GraphKind::Mesh, GraphKind::Torus] {
            for host_kind in [GraphKind::Mesh, GraphKind::Torus] {
                let guest = Grid::new(guest_kind, shape(&l));
                let host = Grid::new(host_kind, shape(&m));
                let paper = predicted_dilation(&guest, &host).unwrap();
                let measured = embed(&guest, &host).unwrap().dilation();
                println!(
                    "{:<16} {:<16} {:<14} {:>7} {:>9} {:>8}",
                    guest.shape().to_string(),
                    host.shape().to_string(),
                    format!("{}->{}", guest.kind(), host.kind()),
                    paper,
                    measured,
                    check_mark(paper, measured)
                );
            }
        }
    }
}

fn hypercube_in() {
    let guests: Vec<Vec<u32>> = vec![
        vec![8, 8],
        vec![4, 4, 4],
        vec![16, 4],
        vec![32, 2],
        vec![4, 4, 2, 2],
        vec![64],
    ];
    println!(
        "{:<16} {:<10} {:>7} {:>9} {:>8}",
        "guest", "kind", "paper", "measured", "status"
    );
    for radices in guests {
        for kind in [GraphKind::Mesh, GraphKind::Torus] {
            let guest = Grid::new(kind, shape(&radices));
            let bits = guest.size().trailing_zeros() as usize;
            let host = Grid::hypercube(bits).unwrap();
            let paper = predicted_dilation(&guest, &host).unwrap();
            let measured = embed(&guest, &host).unwrap().dilation();
            println!(
                "{:<16} {:<10} {:>7} {:>9} {:>8}",
                guest.shape().to_string(),
                format!("{}", guest.kind()),
                paper,
                measured,
                check_mark(paper, measured)
            );
        }
    }
}

fn simple_reduction() {
    let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
        (vec![4, 2, 3], vec![4, 6]),
        (vec![2, 2, 2, 2], vec![4, 4]),
        (vec![3, 3, 3], vec![9, 3]),
        (vec![2, 3, 2, 3], vec![6, 6]),
        (vec![4, 4, 4], vec![16, 4]),
        (vec![2, 2, 2, 2, 2, 2], vec![8, 8]),
        (vec![2, 2, 2, 2], vec![16]),
        (vec![4, 4, 4], vec![64]),
    ];
    println!(
        "{:<18} {:<12} {:<14} {:>7} {:>9} {:>8}",
        "guest", "host", "types", "paper", "measured", "status"
    );
    for (l, m) in cases {
        for guest_kind in [GraphKind::Mesh, GraphKind::Torus] {
            for host_kind in [GraphKind::Mesh, GraphKind::Torus] {
                let guest = Grid::new(guest_kind, shape(&l));
                let host = Grid::new(host_kind, shape(&m));
                let paper = predicted_dilation(&guest, &host).unwrap();
                let measured = embed(&guest, &host).unwrap().dilation();
                println!(
                    "{:<18} {:<12} {:<14} {:>7} {:>9} {:>8}",
                    guest.shape().to_string(),
                    host.shape().to_string(),
                    format!("{}->{}", guest.kind(), host.kind()),
                    paper,
                    measured,
                    check_mark(paper, measured)
                );
            }
        }
    }
}

fn general_reduction() {
    let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
        (vec![3, 3, 6], vec![6, 9]),
        (vec![5, 5, 4], vec![10, 10]),
        (vec![3, 3, 3, 4], vec![6, 6, 3]),
        (vec![2, 3, 2, 10, 6, 21, 5, 4], vec![4, 3, 5, 28, 10, 18]),
    ];
    println!(
        "{:<28} {:<22} {:<14} {:>7} {:>9} {:>8}",
        "guest", "host", "types", "paper", "measured", "status"
    );
    for (l, m) in cases {
        for guest_kind in [GraphKind::Mesh, GraphKind::Torus] {
            for host_kind in [GraphKind::Mesh, GraphKind::Torus] {
                let guest = Grid::new(guest_kind, shape(&l));
                let host = Grid::new(host_kind, shape(&m));
                let reduction = embeddings::general_reduction::find_general_reduction(
                    guest.shape(),
                    host.shape(),
                );
                let Some(reduction) = reduction else {
                    println!(
                        "{:<28} {:<22} {:<14} not a general reduction",
                        guest.shape().to_string(),
                        host.shape().to_string(),
                        format!("{}->{}", guest.kind(), host.kind()),
                    );
                    continue;
                };
                let paper = embeddings::general_reduction::predicted_dilation_general_reduction(
                    &guest, &host, &reduction,
                );
                let measured =
                    embeddings::general_reduction::embed_general_reduction(&guest, &host)
                        .unwrap()
                        .dilation();
                println!(
                    "{:<28} {:<22} {:<14} {:>7} {:>9} {:>8}",
                    guest.shape().to_string(),
                    host.shape().to_string(),
                    format!("{}->{}", guest.kind(), host.kind()),
                    paper,
                    measured,
                    check_mark(paper, measured)
                );
            }
        }
    }
}

fn lower_bound() {
    let cases: Vec<(Grid, Grid)> = vec![
        (mesh(&[8, 8]), Grid::line(64).unwrap()),
        (mesh(&[16, 16]), Grid::line(256).unwrap()),
        (mesh(&[4, 4, 4]), mesh(&[8, 8])),
        (mesh(&[4, 4, 4]), Grid::line(64).unwrap()),
        (torus(&[8, 8]), Grid::ring(64).unwrap()),
        (Grid::hypercube(8).unwrap(), mesh(&[16, 16])),
    ];
    println!(
        "{:<16} {:<14} {:>12} {:>12} {:>10} {:>8}",
        "guest", "host", "lower bound", "asymptotic", "achieved", "ratio"
    );
    for (guest, host) in cases {
        let bound = dilation_lower_bound(&guest, &host).unwrap();
        let asymptotic =
            asymptotic_lower_bound(guest.dim(), host.dim(), guest.shape().min_radix() as u64);
        let achieved = embed(&guest, &host).unwrap().dilation();
        println!(
            "{:<16} {:<14} {:>12} {:>12.2} {:>10} {:>8.2}",
            guest.to_string(),
            host.to_string(),
            bound,
            asymptotic,
            achieved,
            achieved as f64 / asymptotic.max(1.0)
        );
    }
}

fn square_lowering() {
    let cases: Vec<(u32, usize, usize)> = vec![
        (4, 2, 1),
        (8, 2, 1),
        (2, 4, 2),
        (4, 3, 2),
        (2, 6, 3),
        (3, 4, 2),
        (4, 5, 2),
        (9, 2, 1),
    ];
    println!(
        "{:<8} {:<4} {:<4} {:<14} {:>7} {:>9} {:>8}",
        "side", "d", "c", "types", "paper", "measured", "status"
    );
    for (ell, d, c) in cases {
        let guest_shape = Shape::square(ell, d).unwrap();
        let side = (guest_shape.size() as f64).powf(1.0 / c as f64).round() as u32;
        let host_shape = Shape::square(side, c).unwrap();
        for guest_kind in [GraphKind::Mesh, GraphKind::Torus] {
            for host_kind in [GraphKind::Mesh, GraphKind::Torus] {
                let guest = Grid::new(guest_kind, guest_shape.clone());
                let host = Grid::new(host_kind, host_shape.clone());
                let paper = predicted_dilation(&guest, &host).unwrap();
                let measured = embed(&guest, &host).unwrap().dilation();
                println!(
                    "{:<8} {:<4} {:<4} {:<14} {:>7} {:>9} {:>8}",
                    ell,
                    d,
                    c,
                    format!("{}->{}", guest.kind(), host.kind()),
                    paper,
                    measured,
                    check_mark(paper, measured)
                );
            }
        }
    }
}

fn square_increasing() {
    let cases: Vec<(u32, usize, usize)> = vec![
        (4, 2, 4),
        (9, 2, 4),
        (16, 1, 2),
        (8, 2, 3),
        (27, 2, 3),
        (16, 3, 4),
        (64, 1, 3),
    ];
    println!(
        "{:<8} {:<4} {:<4} {:<14} {:>7} {:>9} {:>8}",
        "side", "d", "c", "types", "paper", "measured", "status"
    );
    for (ell, d, c) in cases {
        let guest_shape = Shape::square(ell, d).unwrap();
        let side = (guest_shape.size() as f64).powf(1.0 / c as f64).round() as u32;
        let host_shape = Shape::square(side, c).unwrap();
        for guest_kind in [GraphKind::Mesh, GraphKind::Torus] {
            for host_kind in [GraphKind::Mesh, GraphKind::Torus] {
                let guest = Grid::new(guest_kind, guest_shape.clone());
                let host = Grid::new(host_kind, host_shape.clone());
                let paper = predicted_dilation(&guest, &host).unwrap();
                let measured = embed(&guest, &host).unwrap().dilation();
                println!(
                    "{:<8} {:<4} {:<4} {:<14} {:>7} {:>9} {:>8}",
                    ell,
                    d,
                    c,
                    format!("{}->{}", guest.kind(), host.kind()),
                    paper,
                    measured,
                    check_mark(paper, measured)
                );
            }
        }
    }
}

fn optimal_comparison() {
    println!("-- (l,l)-mesh in a line (FitzGerald 1974) --");
    println!("{:>4} {:>8} {:>8} {:>7}", "l", "ours", "optimal", "ratio");
    for ell in [2u32, 3, 4, 6, 8, 12, 16] {
        let guest = Grid::mesh(Shape::square(ell, 2).unwrap());
        let host = Grid::line(guest.size()).unwrap();
        let ours = embed(&guest, &host).unwrap().dilation();
        let optimal = optimal_square_mesh_in_line(ell as u64);
        println!(
            "{:>4} {:>8} {:>8} {:>7.3}",
            ell,
            ours,
            optimal,
            ours as f64 / optimal as f64
        );
    }
    println!();
    println!("-- (l,l)-torus in a ring (Ma & Narahari 1986) --");
    println!("{:>4} {:>8} {:>8} {:>7}", "l", "ours", "optimal", "ratio");
    for ell in [2u32, 3, 4, 6, 8, 12, 16] {
        let guest = Grid::torus(Shape::square(ell, 2).unwrap());
        let host = Grid::ring(guest.size()).unwrap();
        let ours = embed(&guest, &host).unwrap().dilation();
        let optimal = optimal_square_torus_in_ring(ell as u64);
        println!(
            "{:>4} {:>8} {:>8} {:>7.3}",
            ell,
            ours,
            optimal,
            ours as f64 / optimal as f64
        );
    }
    println!();
    println!("-- (l,l,l)-mesh in a line (FitzGerald 1974) --");
    println!("{:>4} {:>8} {:>8} {:>7}", "l", "ours", "optimal", "ratio");
    for ell in [2u32, 3, 4, 5, 6] {
        let guest = Grid::mesh(Shape::square(ell, 3).unwrap());
        let host = Grid::line(guest.size()).unwrap();
        let ours = embed(&guest, &host).unwrap().dilation();
        let optimal = optimal_cube_mesh_in_line(ell as u64);
        println!(
            "{:>4} {:>8} {:>8} {:>7.3}",
            ell,
            ours,
            optimal,
            ours as f64 / optimal as f64
        );
    }
    println!();
    println!("-- hypercube 2^d in a line (Harper 1966) --");
    println!("{:>4} {:>10} {:>10} {:>7}", "d", "ours", "optimal", "ratio");
    for d in 1..=12u32 {
        let ours = paper_hypercube_in_line(d);
        let optimal = optimal_hypercube_in_line(d);
        println!(
            "{:>4} {:>10} {:>10} {:>7.3}",
            d,
            ours,
            optimal,
            ours as f64 / optimal as f64
        );
    }
    println!();
    println!("-- exhaustive optima on tiny instances --");
    println!(
        "{:<12} {:<14} {:>8} {:>10}",
        "guest", "host", "ours", "exhaustive"
    );
    let tiny: Vec<(Grid, Grid)> = vec![
        (Grid::ring(9).unwrap(), mesh(&[3, 3])),
        (Grid::ring(12).unwrap(), mesh(&[4, 3])),
        (torus(&[3, 3]), mesh(&[3, 3])),
        (mesh(&[3, 3]), Grid::line(9).unwrap()),
    ];
    for (guest, host) in tiny {
        let ours = embed(&guest, &host).unwrap().dilation();
        let best = optimal_dilation_exhaustive(&guest, &host, Some(16)).unwrap();
        println!(
            "{:<12} {:<14} {:>8} {:>10}",
            guest.to_string(),
            host.to_string(),
            ours,
            best
        );
    }
}

fn appendix() {
    println!(
        "{:>4} {:>12} {:>14} {:>12}",
        "d", "epsilon_d", "harper(d+1)", "2^d*eps"
    );
    for d in 0..=20u32 {
        let eps = epsilon(d);
        let harper = optimal_hypercube_in_line(d + 1);
        println!(
            "{:>4} {:>12.6} {:>14} {:>12.1}",
            d,
            eps,
            harper,
            eps * (1u128 << d) as f64
        );
    }
    println!(
        "epsilon_0 = epsilon_1 = epsilon_2 = 1 and epsilon is strictly decreasing from d = 3."
    );
}

fn netsim_experiment() {
    let ring = Grid::ring(64).unwrap();
    let host = mesh(&[8, 8]);
    let network = Network::new(host.clone());
    let workload = Workload::from_task_graph(&ring);

    let paper = Placement::from_embedding(&embed(&ring, &host).unwrap());
    let naive = Placement::identity(64);
    let paper_stats = simulate(&network, &workload, &paper, 4);
    let naive_stats = simulate(&network, &workload, &naive, 4);

    println!("ring(64) neighbor exchange on an (8,8)-mesh, 4 rounds");
    println!(
        "{:<22} {:>12} {:>10} {:>8}",
        "placement", "total hops", "max hops", "cycles"
    );
    println!(
        "{:<22} {:>12} {:>10} {:>8}",
        "paper embedding", paper_stats.total_hops, paper_stats.max_hops, paper_stats.cycles
    );
    println!(
        "{:<22} {:>12} {:>10} {:>8}",
        "row-major placement", naive_stats.total_hops, naive_stats.max_hops, naive_stats.cycles
    );

    let verification = verify(&embed(&ring, &host).unwrap(), 0).unwrap();
    println!(
        "paper placement dilation {} == simulator max hops {}",
        verification.dilation, paper_stats.max_hops
    );
}

fn collective_experiment() {
    use netsim::{simulate_ring_allreduce, RingOrder};

    println!("ring allreduce scheduled over the paper's h_L Hamiltonian circuits");
    println!(
        "{:<22} {:>6} {:<18} {:>9} {:>7} {:>8} {:>9}",
        "machine", "nodes", "ring order", "dilation", "phases", "cycles", "slowdown"
    );
    let machines: Vec<Grid> = vec![
        torus(&[8, 8]),
        mesh(&[8, 8]),
        torus(&[4, 4, 4]),
        mesh(&[4, 4, 4]),
        Grid::hypercube(6).unwrap(),
        torus(&[5, 5, 5]),
    ];
    for machine in &machines {
        let network = Network::new(machine.clone());
        let paper = RingOrder::from_paper_embedding(machine).unwrap();
        let naive = RingOrder::natural(machine.size());
        for (label, order) in [("paper h_L circuit", &paper), ("natural order", &naive)] {
            let stats = simulate_ring_allreduce(&network, order);
            println!(
                "{:<22} {:>6} {:<18} {:>9} {:>7} {:>8} {:>8.2}x",
                machine.to_string(),
                machine.size(),
                label,
                stats.ring_dilation,
                stats.phases,
                stats.total_cycles,
                stats.slowdown()
            );
        }
    }
    println!("the paper circuit always meets the textbook 2(n-1)-cycle bound (slowdown 1.00x).");
}

fn grid_metrics_experiment() {
    use topology::metrics::GridMetrics;

    println!(
        "closed-form network figures of merit (validated against exhaustive oracles in tests)"
    );
    println!(
        "{:<22} {:>6} {:>7} {:>9} {:>9} {:>10} {:>10}",
        "graph", "nodes", "edges", "diameter", "mean dist", "bisection", "degrees"
    );
    let graphs: Vec<Grid> = vec![
        torus(&[4, 2, 3]),
        mesh(&[4, 2, 3]),
        torus(&[8, 8]),
        mesh(&[8, 8]),
        Grid::hypercube(6).unwrap(),
        Grid::ring(64).unwrap(),
        Grid::line(64).unwrap(),
    ];
    for graph in &graphs {
        let m = GridMetrics::measure(graph);
        println!(
            "{:<22} {:>6} {:>7} {:>9} {:>9.3} {:>10} {:>7}-{}",
            graph.to_string(),
            m.nodes,
            m.edges,
            m.diameter,
            m.mean_distance,
            m.bisection_width,
            m.min_degree,
            m.max_degree
        );
    }
}
