//! `benchgate` — the CI bench-regression gate.
//!
//! ```text
//! benchgate [--min-ratio R] BENCH_pipeline.json BENCH_explab.json BENCH_optim.json
//! ```
//!
//! For every baseline file, re-measures the gated throughput figures with
//! plain wall-clock timing (best of N repetitions, so one scheduler hiccup
//! cannot fail the gate) and compares them against the checked-in numbers.
//! Exits non-zero when any measurement drops below `min_ratio` × baseline
//! (default 0.7, i.e. a >30% regression) or a baseline file is unreadable.
//!
//! The measurements mirror the criterion benches (`pipeline_throughput`,
//! `explab_throughput`, `optim_throughput`) but use much shorter runs: the
//! gate exists to catch collapses, not single-digit drift — nightly bench
//! runs against `BENCH_*.json` remain the precision instrument.

use std::process::ExitCode;
use std::time::Instant;

use emb_bench::gate::{check, extract_metrics, parse_json, BaselineMetric, GateCheck};
use emb_bench::{mesh, torus};
use embd::{Client, PlanRegistry};
use embeddings::auto::embed;
use embeddings::congestion::congestion_sequential;
use embeddings::optim::parallel::{optimize_sharded, ShardedConfig};
use embeddings::optim::{
    CongestionObjective, MoveMix, Optimizer, OptimizerConfig, WirelengthObjective,
};
use embeddings::verify::verify_sequential;
use explab::executor::run;
use explab::plan::SweepPlan;
use gridviz::Table;
use mixedradix::planes::{DigitPlanes, LANES};
use netsim::chaos::{simulate_chaos, ChaosRouting, FaultPlan};
use netsim::{Network, Placement, Workload};

/// Times `work` `repetitions` times and returns the fastest wall-clock
/// seconds (the least-noise estimator for throughput comparisons).
fn best_seconds(repetitions: usize, mut work: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repetitions {
        let start = Instant::now();
        work();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Measures the metric a baseline names, in the baseline's unit.
fn measure(metric: &BaselineMetric) -> Result<f64, String> {
    match (metric.benchmark.as_str(), metric.metric.as_str()) {
        ("pipeline_throughput", which) => {
            // The same ~2²⁰-node workload as the criterion bench.
            let embedding = embed(&torus(&[1024, 1024]), &torus(&[32, 32, 32, 32]))
                .map_err(|e| e.to_string())?;
            let edges = embedding.guest().num_edges() as f64;
            let nodes = embedding.size() as f64;
            let (elements, seconds) = match which {
                "verify_melem_per_s" => (
                    edges,
                    best_seconds(3, || {
                        std::hint::black_box(verify_sequential(&embedding).dilation);
                    }),
                ),
                "congestion_melem_per_s" => (
                    edges,
                    best_seconds(3, || {
                        std::hint::black_box(
                            congestion_sequential(&embedding)
                                .expect("valid")
                                .max_congestion,
                        );
                    }),
                ),
                "soa_codec_melem_per_s" => {
                    // Raw digit-plane decode over every host node: the codec
                    // underneath the sweeps above, measured in nodes.
                    let shape = embedding.host().shape().clone();
                    let mut planes = DigitPlanes::for_base(&shape);
                    let seconds = best_seconds(3, || {
                        // Same loop shape as the criterion bench: fold each
                        // batch into a checksum, sink it once at the end.
                        let mut checksum = 0u32;
                        let mut start = 0u64;
                        while start < shape.size() {
                            let count = (shape.size() - start).min(LANES as u64) as usize;
                            planes.decode_range(&shape, start, count).expect("in range");
                            checksum ^= planes.plane(0)[count - 1];
                            start += count as u64;
                        }
                        std::hint::black_box(checksum);
                    });
                    (nodes, seconds)
                }
                other => return Err(format!("unknown pipeline metric {other:?}")),
            };
            Ok(elements / seconds / 1e6)
        }
        ("explab_throughput", "trials_per_s") => {
            let plan = SweepPlan::builtin("bench").map_err(|e| e.to_string())?;
            let trials = explab::executor::expand(&plan).len() as f64;
            let seconds = best_seconds(5, || {
                std::hint::black_box(run(&plan, 1).supported());
            });
            Ok(trials / seconds)
        }
        ("optim_throughput", "wirelength_moves_per_s") => {
            // Same workload and config as the congestion-objective gate
            // below, annealing under the wirelength objective instead.
            let guest = torus(&[16, 16]);
            let host = mesh(&[16, 16]);
            let embedding = embed(&guest, &host).map_err(|e| e.to_string())?;
            let steps = 5_000u64;
            let config = OptimizerConfig {
                seed: 1987,
                steps,
                ..OptimizerConfig::default()
            };
            let seconds = best_seconds(3, || {
                let mut objective = WirelengthObjective::new(&guest, &host).expect("equal sizes");
                std::hint::black_box(
                    Optimizer::new(config)
                        .optimize(&embedding, &mut objective)
                        .expect("optimize")
                        .report
                        .best,
                );
            });
            Ok(steps as f64 / seconds)
        }
        ("optim_throughput", "kcycle_moves_per_s") => {
            // The `move_mix` bench's gated row: the k-cycle-heavy portfolio
            // mix on the same workload. A "move" is one proposal; rotations
            // and block swaps cost several transpositions each, so this
            // rate is expected to sit below the pairwise one.
            let guest = torus(&[16, 16]);
            let host = mesh(&[16, 16]);
            let embedding = embed(&guest, &host).map_err(|e| e.to_string())?;
            let steps = 5_000u64;
            let config = OptimizerConfig {
                seed: 1987,
                steps,
                mix: MoveMix {
                    reverse_per_mille: 150,
                    kcycle_per_mille: 300,
                    block_per_mille: 50,
                },
                ..OptimizerConfig::default()
            };
            let seconds = best_seconds(3, || {
                let mut objective = CongestionObjective::new(&guest, &host).expect("equal sizes");
                std::hint::black_box(
                    Optimizer::new(config)
                        .optimize(&embedding, &mut objective)
                        .expect("optimize")
                        .report
                        .best,
                );
            });
            Ok(steps as f64 / seconds)
        }
        ("optim_throughput", "moves_per_s") => {
            // The same workload and config as the criterion bench.
            let guest = torus(&[16, 16]);
            let host = mesh(&[16, 16]);
            let embedding = embed(&guest, &host).map_err(|e| e.to_string())?;
            let steps = 5_000u64;
            let config = OptimizerConfig {
                seed: 1987,
                steps,
                ..OptimizerConfig::default()
            };
            let seconds = best_seconds(3, || {
                let mut objective = CongestionObjective::new(&guest, &host).expect("equal sizes");
                std::hint::black_box(
                    Optimizer::new(config)
                        .optimize(&embedding, &mut objective)
                        .expect("optimize")
                        .report
                        .best,
                );
            });
            Ok(steps as f64 / seconds)
        }
        ("shard_scaling", "sharded_moves_per_s") => {
            // The same workload as the criterion bench: 4 independently
            // seeded 5000-step walks, one worker thread per shard, reduced
            // to the lexicographically best table. Throughput counts every
            // proposed move across shards.
            let guest = torus(&[16, 16]);
            let host = mesh(&[16, 16]);
            let embedding = embed(&guest, &host).map_err(|e| e.to_string())?;
            let steps = 5_000u64;
            let shards = 4u32;
            let config = ShardedConfig {
                base: OptimizerConfig {
                    seed: 1987,
                    steps,
                    ..OptimizerConfig::default()
                },
                shards,
                workers: shards as usize,
                ..ShardedConfig::default()
            };
            let seconds = best_seconds(3, || {
                std::hint::black_box(
                    optimize_sharded(
                        &embedding,
                        || CongestionObjective::new(&guest, &host),
                        &config,
                    )
                    .expect("optimize")
                    .outcome
                    .report
                    .best,
                );
            });
            Ok(u64::from(shards) as f64 * steps as f64 / seconds)
        }
        ("embd_load", "queries_per_s") => {
            // A scaled-down embd-bench: loopback server, 2 clients, MAP
            // queries over one paper pair. Short on purpose — the gate
            // catches collapses; BENCH_embd.json records the full run.
            let guest = torus(&[4, 2, 3]);
            let host = mesh(&[4, 6]);
            let clients = 2usize;
            let queries_per_client = 500u64;
            let server = embd::spawn("127.0.0.1:0", std::sync::Arc::new(PlanRegistry::new()))
                .map_err(|e| e.to_string())?;
            let seconds = best_seconds(3, || {
                std::thread::scope(|scope| {
                    for c in 0..clients {
                        let (guest, host, addr) = (&guest, &host, server.addr());
                        scope.spawn(move || {
                            let mut client = Client::connect(addr).expect("connect loopback");
                            for i in 0..queries_per_client {
                                let v = (c as u64 * 17 + i * 13) % guest.size();
                                std::hint::black_box(
                                    client.map(guest, host, v).expect("MAP query"),
                                );
                            }
                        });
                    }
                });
            });
            server.shutdown();
            Ok(clients as f64 * queries_per_client as f64 / seconds)
        }
        ("chaos_routing", "chaos_routed_msgs_per_s") => {
            // The 16×16 case of the criterion bench: the detour router on a
            // 5%-degraded torus, counting every routed (delivered or
            // dropped) message.
            let network = Network::new(torus(&[16, 16]));
            let n = network.size();
            let messages = 4096usize;
            let workload = Workload::uniform_random(n, messages, 7);
            let placement = Placement::identity(n);
            let plan = FaultPlan::random_link_percent(network.grid(), 5, 1987);
            let seconds = best_seconds(3, || {
                std::hint::black_box(
                    simulate_chaos(
                        &network,
                        &workload,
                        &placement,
                        1,
                        &plan,
                        ChaosRouting::Detour,
                    )
                    .delivered,
                );
            });
            Ok(messages as f64 / seconds)
        }
        (benchmark, metric) => Err(format!("unknown metric {benchmark}/{metric}")),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut min_ratio = 0.7f64;
    if let Some(index) = args.iter().position(|a| a == "--min-ratio") {
        if index + 1 >= args.len() {
            eprintln!("benchgate: --min-ratio needs a value");
            return ExitCode::from(1);
        }
        let value = args.remove(index + 1);
        args.remove(index);
        min_ratio = match value.parse() {
            Ok(ratio) => ratio,
            Err(_) => {
                eprintln!("benchgate: --min-ratio must be a number, got {value:?}");
                return ExitCode::from(1);
            }
        };
    }
    if args.is_empty() {
        eprintln!("usage: benchgate [--min-ratio R] <BENCH_*.json>...");
        return ExitCode::from(1);
    }

    let mut checks: Vec<GateCheck> = Vec::new();
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("benchgate: cannot read {path}: {error}");
                return ExitCode::from(1);
            }
        };
        let metrics = match parse_json(&text).and_then(|json| extract_metrics(&json)) {
            Ok(metrics) => metrics,
            Err(error) => {
                eprintln!("benchgate: {path}: {error}");
                return ExitCode::from(1);
            }
        };
        for metric in metrics {
            let measured = match measure(&metric) {
                Ok(measured) => measured,
                Err(error) => {
                    eprintln!("benchgate: {path}: {error}");
                    return ExitCode::from(1);
                }
            };
            checks.push(check(metric, measured, min_ratio));
        }
    }

    let mut table = Table::new(vec![
        "benchmark",
        "metric",
        "baseline",
        "measured",
        "ratio",
        "verdict",
    ]);
    let mut failures = 0usize;
    for c in &checks {
        if !c.pass {
            failures += 1;
        }
        table.push_row(vec![
            c.baseline.benchmark.clone(),
            c.baseline.metric.clone(),
            format!("{:.0}", c.baseline.throughput),
            format!("{:.0}", c.measured),
            format!("{:.2}", c.ratio),
            if c.pass {
                "ok".into()
            } else {
                "REGRESSION".to_string()
            },
        ]);
    }
    print!("{table}");
    if failures > 0 {
        eprintln!(
            "benchgate: {failures} metric(s) fell below {:.0}% of baseline",
            min_ratio * 100.0
        );
        return ExitCode::from(2);
    }
    eprintln!(
        "benchgate: all {} metric(s) within {:.0}% of baseline",
        checks.len(),
        min_ratio * 100.0
    );
    ExitCode::SUCCESS
}
