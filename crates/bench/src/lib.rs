//! Shared helpers for the benchmark suite, the `repro` experiment harness
//! and the `benchgate` bench-regression gate.

pub mod compat;
pub mod gate;

use topology::{GraphKind, Grid, Shape};

/// Builds a shape from a slice, panicking on invalid input (benchmarks and
/// the repro harness only use known-good shapes).
pub fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).expect("valid shape")
}

/// Builds a grid of the given kind and shape.
pub fn grid(kind: GraphKind, radices: &[u32]) -> Grid {
    Grid::new(kind, shape(radices))
}

/// A torus of the given shape.
pub fn torus(radices: &[u32]) -> Grid {
    grid(GraphKind::Torus, radices)
}

/// A mesh of the given shape.
pub fn mesh(radices: &[u32]) -> Grid {
    grid(GraphKind::Mesh, radices)
}

/// Formats a `(paper, measured)` pair with a pass/fail marker.
///
/// The three outcomes are reported with three distinct markers so sweep
/// tables show at a glance whether a measurement *matches* the paper's
/// bound exactly, *beats* it, or violates it:
///
/// * `"ok"` — measured equals the paper value exactly,
/// * `"ok (beats bound)"` — measured is strictly below the paper bound,
/// * `"MISMATCH"` — measured exceeds the bound (a real failure).
pub fn check_mark(paper: u64, measured: u64) -> &'static str {
    if measured == paper {
        "ok"
    } else if measured < paper {
        "ok (beats bound)"
    } else {
        "MISMATCH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_expected_graphs() {
        assert_eq!(torus(&[4, 2, 3]).size(), 24);
        assert!(mesh(&[4, 2, 3]).is_mesh());
        assert_eq!(check_mark(2, 2), "ok");
        assert_eq!(check_mark(2, 1), "ok (beats bound)");
        assert_eq!(check_mark(1, 2), "MISMATCH");
    }

    #[test]
    fn check_mark_outcomes_are_pairwise_distinct() {
        // Exact match, strictly-better and violation must never collapse
        // into the same marker, or sweep tables lose information.
        let exact = check_mark(3, 3);
        let beats = check_mark(3, 2);
        let violates = check_mark(3, 4);
        assert_ne!(exact, beats);
        assert_ne!(exact, violates);
        assert_ne!(beats, violates);
    }
}
