//! Shared helpers for the benchmark suite and the `repro` experiment harness.

use topology::{GraphKind, Grid, Shape};

/// Builds a shape from a slice, panicking on invalid input (benchmarks and
/// the repro harness only use known-good shapes).
pub fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).expect("valid shape")
}

/// Builds a grid of the given kind and shape.
pub fn grid(kind: GraphKind, radices: &[u32]) -> Grid {
    Grid::new(kind, shape(radices))
}

/// A torus of the given shape.
pub fn torus(radices: &[u32]) -> Grid {
    grid(GraphKind::Torus, radices)
}

/// A mesh of the given shape.
pub fn mesh(radices: &[u32]) -> Grid {
    grid(GraphKind::Mesh, radices)
}

/// Formats a `(paper, measured)` pair with a pass/fail marker.
pub fn check_mark(paper: u64, measured: u64) -> &'static str {
    if paper == measured {
        "ok"
    } else if measured <= paper {
        "ok (<=)"
    } else {
        "MISMATCH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_expected_graphs() {
        assert_eq!(torus(&[4, 2, 3]).size(), 24);
        assert!(mesh(&[4, 2, 3]).is_mesh());
        assert_eq!(check_mark(2, 2), "ok");
        assert_eq!(check_mark(2, 1), "ok (<=)");
        assert_eq!(check_mark(1, 2), "MISMATCH");
    }
}
