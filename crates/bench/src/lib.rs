//! Measurement infrastructure: the criterion benchmark suite, the `repro`
//! paper-reproduction harness, and the `benchgate` bench-regression gate.
//!
//! This crate (`emb-bench`) is where the repository's performance claims
//! live and are *enforced*:
//!
//! * **benches/** — seventeen criterion benchmarks covering every layer:
//!   mixed-radix sequence generation, basic/increasing/lowering-dimension
//!   embeddings, the batched `verify`/`congestion` pipeline
//!   (`pipeline_throughput`), the sweep engine (`explab_throughput`), the
//!   annealing optimizer (`optim_throughput`), sharded annealing and the
//!   delta-aware makespan objective (`shard_scaling`), routing ablations and
//!   `netsim` latency;
//! * **`repro` bin** — regenerates the paper's figures and summary tables as
//!   text (Figures 1–2 and 9, the Section 3 basic-embedding table) with the
//!   repo-wide three-way [`check_mark`] markers;
//! * **`benchgate` bin** — the CI regression gate: re-measures the
//!   throughput figures recorded in the checked-in `BENCH_pipeline.json`,
//!   `BENCH_explab.json`, `BENCH_optim.json` and `BENCH_shards.json`
//!   baselines (best-of-N wall-clock, so one scheduler hiccup cannot fail
//!   the gate) and exits non-zero when any metric drops below
//!   `--min-ratio` × baseline (CI: 0.7). Its measured-throughput table is
//!   uploaded as a per-run CI artifact, giving a cheap longitudinal perf
//!   history without a dashboard service.
//!
//! Library-side, the crate carries two modules the binaries and benches
//! share:
//!
//! * [`compat`] — the pre-batching per-call evaluation paths, kept so the
//!   pipeline benches can report batched-vs-per-call speedups honestly;
//! * [`gate`] — a minimal offline JSON parser (the workspace vendors no
//!   serde) plus the baseline-extraction and ratio-check logic `benchgate`
//!   drives.
//!
//! Everything here measures; nothing here is measured. The crate is not
//! published and exports no stability guarantees — benches and gates may
//! reshape freely as the hot paths move.

pub mod compat;
pub mod gate;

use topology::{GraphKind, Grid, Shape};

/// Builds a shape from a slice, panicking on invalid input (benchmarks and
/// the repro harness only use known-good shapes).
pub fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).expect("valid shape")
}

/// Builds a grid of the given kind and shape.
pub fn grid(kind: GraphKind, radices: &[u32]) -> Grid {
    Grid::new(kind, shape(radices))
}

/// A torus of the given shape.
pub fn torus(radices: &[u32]) -> Grid {
    grid(GraphKind::Torus, radices)
}

/// A mesh of the given shape.
pub fn mesh(radices: &[u32]) -> Grid {
    grid(GraphKind::Mesh, radices)
}

/// Formats a `(paper, measured)` pair with a pass/fail marker.
///
/// The three outcomes are reported with three distinct markers so sweep
/// tables show at a glance whether a measurement *matches* the paper's
/// bound exactly, *beats* it, or violates it:
///
/// * `"ok"` — measured equals the paper value exactly,
/// * `"ok (beats bound)"` — measured is strictly below the paper bound,
/// * `"MISMATCH"` — measured exceeds the bound (a real failure).
pub fn check_mark(paper: u64, measured: u64) -> &'static str {
    if measured == paper {
        "ok"
    } else if measured < paper {
        "ok (beats bound)"
    } else {
        "MISMATCH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_expected_graphs() {
        assert_eq!(torus(&[4, 2, 3]).size(), 24);
        assert!(mesh(&[4, 2, 3]).is_mesh());
        assert_eq!(check_mark(2, 2), "ok");
        assert_eq!(check_mark(2, 1), "ok (beats bound)");
        assert_eq!(check_mark(1, 2), "MISMATCH");
    }

    #[test]
    fn check_mark_outcomes_are_pairwise_distinct() {
        // Exact match, strictly-better and violation must never collapse
        // into the same marker, or sweep tables lose information.
        let exact = check_mark(3, 3);
        let beats = check_mark(3, 2);
        let violates = check_mark(3, 4);
        assert_ne!(exact, beats);
        assert_ne!(exact, violates);
        assert_ne!(beats, violates);
    }
}
