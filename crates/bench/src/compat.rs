//! The pre-batching, per-call evaluation paths, preserved verbatim for the
//! `pipeline_throughput` benchmark only.
//!
//! These functions reproduce how `verify` and `congestion` were computed
//! before the batched pipeline existed: one [`Embedding::map`] call per edge
//! endpoint, neighbor enumeration through freshly-allocated `Vec`s, a
//! `BTreeMap` update per measured edge, and congestion loads in a
//! `HashMap` keyed on node pairs. They are **not** part of the library API —
//! they exist so the benchmark can quantify what the batched path buys.

use std::collections::{BTreeMap, HashMap};

use embeddings::congestion::CongestionReport;
use embeddings::verify::VerificationReport;
use embeddings::Embedding;
use topology::{Coord, Grid};

/// The old sequential verification sweep: per-call `map` on both endpoints
/// of every guest edge, histogram in a `BTreeMap`.
pub fn verify_per_call(embedding: &Embedding) -> VerificationReport {
    let mut histogram = BTreeMap::new();
    let mut total = 0u64;
    let mut edges = 0u64;
    let mut dilation = 0u64;
    for (a, b) in embedding.guest().edges() {
        let d = embedding
            .host()
            .distance(&embedding.map(a), &embedding.map(b));
        *histogram.entry(d).or_insert(0) += 1;
        total += d;
        edges += 1;
        dilation = dilation.max(d);
    }
    VerificationReport {
        injective: embedding.is_injective(),
        dilation,
        average_dilation: if edges == 0 {
            0.0
        } else {
            total as f64 / edges as f64
        },
        edges,
        histogram,
        invalid_images: 0,
    }
}

/// The old per-call dimension-ordered next hop, rebuilding a coordinate per
/// step.
fn next_hop(host: &Grid, from: &Coord, to: &Coord) -> Option<Coord> {
    for j in 0..host.dim() {
        let (x, y) = (from.get(j), to.get(j));
        if x == y {
            continue;
        }
        let l = host.shape().radix(j);
        let step: i64 = if host.is_torus() {
            let forward = (y as i64 - x as i64).rem_euclid(l as i64);
            let backward = (x as i64 - y as i64).rem_euclid(l as i64);
            if forward <= backward {
                1
            } else {
                -1
            }
        } else if y > x {
            1
        } else {
            -1
        };
        let mut next = *from;
        next.set(j, (x as i64 + step).rem_euclid(l as i64) as u32);
        return Some(next);
    }
    None
}

/// The old congestion measurement: per-call `map`, per-hop `Grid::index`
/// re-encoding, loads in a `HashMap` keyed on (min, max) node pairs.
pub fn congestion_per_call(embedding: &Embedding) -> CongestionReport {
    let host = embedding.host();
    let mut loads: HashMap<(u64, u64), u64> = HashMap::new();
    let mut guest_edges = 0u64;
    let mut total_path_length = 0u64;
    for (a, b) in embedding.guest().edges() {
        guest_edges += 1;
        let mut current = embedding.map(a);
        let target = embedding.map(b);
        let mut current_index = host.index(&current).expect("valid host node");
        while let Some(next) = next_hop(host, &current, &target) {
            let next_index = host.index(&next).expect("valid host node");
            let key = (current_index.min(next_index), current_index.max(next_index));
            *loads.entry(key).or_insert(0) += 1;
            total_path_length += 1;
            current = next;
            current_index = next_index;
        }
    }
    let used_host_edges = loads.len() as u64;
    let max_congestion = loads.values().copied().max().unwrap_or(0);
    let average_congestion = if used_host_edges == 0 {
        0.0
    } else {
        total_path_length as f64 / used_host_edges as f64
    };
    CongestionReport {
        guest_edges,
        max_congestion,
        average_congestion,
        used_host_edges,
        total_path_length,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mesh, torus};
    use embeddings::auto::embed;
    use embeddings::congestion::congestion_sequential;
    use embeddings::verify::verify_sequential;

    #[test]
    fn compat_paths_agree_with_the_batched_pipeline() {
        for (guest, host) in [
            (torus(&[4, 2, 3]), mesh(&[4, 2, 3])),
            (mesh(&[5, 3]), torus(&[5, 3])),
        ] {
            let e = embed(&guest, &host).unwrap();
            assert_eq!(verify_per_call(&e), verify_sequential(&e));
            assert_eq!(congestion_per_call(&e), congestion_sequential(&e).unwrap());
        }
    }
}
