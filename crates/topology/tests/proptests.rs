//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use topology::bfs::bfs;
use topology::hamiltonian::admits_hamiltonian_circuit;
use topology::prelude::*;

/// Strategy producing a small torus or mesh (size capped for exhaustive
/// checks).
fn small_grid() -> impl Strategy<Value = Grid> {
    let shape = proptest::collection::vec(2u32..=6, 1..=4)
        .prop_filter("keep sizes manageable", |radices| {
            radices.iter().map(|&l| l as u64).product::<u64>() <= 300
        });
    (shape, proptest::bool::ANY).prop_map(|(radices, torus)| {
        let shape = Shape::new(radices).unwrap();
        if torus {
            Grid::torus(shape)
        } else {
            Grid::mesh(shape)
        }
    })
}

proptest! {
    #[test]
    fn degree_equals_neighbor_count(grid in small_grid(), x in 0u64..300) {
        let x = x % grid.size();
        let neighbors = grid.neighbors(x).unwrap();
        prop_assert_eq!(neighbors.len(), grid.degree(x).unwrap());
        prop_assert!(neighbors.len() <= 2 * grid.dim());
    }

    #[test]
    fn adjacency_is_symmetric(grid in small_grid(), x in 0u64..300) {
        let x = x % grid.size();
        for y in grid.neighbors(x).unwrap() {
            prop_assert!(grid.neighbors(y).unwrap().contains(&x));
        }
    }

    #[test]
    fn closed_form_distance_matches_bfs(grid in small_grid(), source in 0u64..300) {
        let source = source % grid.size();
        let oracle = bfs(&grid, source).unwrap();
        for target in grid.nodes() {
            prop_assert_eq!(
                grid.distance_index(source, target).unwrap(),
                oracle.distance(target).unwrap(),
                "distance mismatch in {} from {} to {}", grid, source, target
            );
        }
    }

    #[test]
    fn handshake_lemma(grid in small_grid()) {
        let degree_sum: u64 = grid.nodes().map(|x| grid.degree(x).unwrap() as u64).sum();
        prop_assert_eq!(degree_sum, 2 * grid.num_edges());
        prop_assert_eq!(grid.edges().count() as u64, grid.num_edges());
    }

    #[test]
    fn edges_join_nodes_at_distance_one(grid in small_grid()) {
        for (a, b) in grid.edges() {
            prop_assert!(a != b);
            prop_assert_eq!(grid.distance_index(a, b).unwrap(), 1);
        }
    }

    #[test]
    fn torus_distance_never_exceeds_mesh_distance_of_same_shape(
        grid in small_grid(), x in 0u64..300, y in 0u64..300
    ) {
        let x = x % grid.size();
        let y = y % grid.size();
        let torus = Grid::torus(grid.shape().clone());
        let mesh = Grid::mesh(grid.shape().clone());
        prop_assert!(torus.distance_index(x, y).unwrap() <= mesh.distance_index(x, y).unwrap());
    }

    #[test]
    fn diameter_bounds_all_distances(grid in small_grid(), x in 0u64..300, y in 0u64..300) {
        let x = x % grid.size();
        let y = y % grid.size();
        prop_assert!(grid.distance_index(x, y).unwrap() <= grid.diameter());
    }

    #[test]
    fn hamiltonicity_predicate_matches_corollaries(grid in small_grid()) {
        let expected = if grid.size() < 3 {
            false
        } else if grid.is_torus() {
            true
        } else if grid.dim() == 1 {
            false
        } else {
            grid.size() % 2 == 0
        };
        prop_assert_eq!(admits_hamiltonian_circuit(&grid), expected);
    }

    #[test]
    fn csr_adjacency_matches_implicit(grid in small_grid()) {
        let csr = CsrAdjacency::build(&grid).unwrap();
        prop_assert_eq!(csr.num_nodes() as u64, grid.size());
        for x in grid.nodes() {
            let mut a = grid.neighbors(x).unwrap();
            let mut b: Vec<u64> = csr.neighbors(x as usize).iter().map(|&v| v as u64).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
