//! Property-based tests for the closed-form network metrics: every closed
//! form must agree with a brute-force sweep on randomly generated small
//! toruses and meshes.

use proptest::prelude::*;
use topology::metrics::{
    axis_cut_exhaustive, bisection_width, degree_histogram, edges_per_dimension, mean_distance,
    mean_distance_exhaustive, min_degree, GridMetrics,
};
use topology::prelude::*;

/// Strategy producing a small torus or mesh.
fn small_grid() -> impl Strategy<Value = Grid> {
    let shape = proptest::collection::vec(2u32..=6, 1..=4)
        .prop_filter("keep sizes manageable", |radices| {
            radices.iter().map(|&l| l as u64).product::<u64>() <= 400
        });
    (shape, proptest::bool::ANY).prop_map(|(radices, torus)| {
        let shape = Shape::new(radices).unwrap();
        if torus {
            Grid::torus(shape)
        } else {
            Grid::mesh(shape)
        }
    })
}

proptest! {
    #[test]
    fn edges_per_dimension_sum_to_the_edge_count(grid in small_grid()) {
        let per_dim = edges_per_dimension(&grid);
        prop_assert_eq!(per_dim.len(), grid.dim());
        prop_assert_eq!(per_dim.iter().sum::<u64>(), grid.num_edges());
        // Each dimension contributes at least a perfect matching of the nodes
        // along it.
        for (j, &edges) in per_dim.iter().enumerate() {
            let l = grid.shape().radix(j) as u64;
            prop_assert!(edges >= grid.size() / l);
        }
    }

    #[test]
    fn degree_histogram_matches_a_node_sweep(grid in small_grid()) {
        let closed = degree_histogram(&grid);
        let mut swept = std::collections::BTreeMap::new();
        for x in grid.nodes() {
            *swept.entry(grid.degree(x).unwrap()).or_insert(0u64) += 1;
        }
        prop_assert_eq!(closed, swept);
    }

    #[test]
    fn min_and_max_degree_bound_every_node(grid in small_grid()) {
        let lo = min_degree(&grid);
        let hi = grid.max_degree();
        for x in grid.nodes() {
            let degree = grid.degree(x).unwrap();
            prop_assert!(degree >= lo && degree <= hi);
        }
        // Handshake: the degree histogram mass weighted by degree equals 2|E|.
        let total: u64 = degree_histogram(&grid)
            .iter()
            .map(|(&degree, &count)| degree as u64 * count)
            .sum();
        prop_assert_eq!(total, 2 * grid.num_edges());
    }

    #[test]
    fn mean_distance_closed_form_matches_the_exhaustive_oracle(grid in small_grid()) {
        let closed = mean_distance(&grid);
        let exact = mean_distance_exhaustive(&grid).unwrap();
        prop_assert!((closed - exact).abs() < 1e-9, "closed {closed} vs exact {exact}");
        prop_assert!(closed <= grid.diameter() as f64);
    }

    #[test]
    fn bisection_width_is_a_realizable_axis_cut(grid in small_grid()) {
        let width = bisection_width(&grid);
        // The closed form equals the minimum over dimensions of the measured
        // axis cut at the midpoint.
        let best_cut = (0..grid.dim())
            .map(|j| axis_cut_exhaustive(&grid, j).unwrap())
            .min()
            .unwrap();
        prop_assert_eq!(width, best_cut);
        prop_assert!(width >= 1);
        prop_assert!(width <= grid.num_edges());
    }

    #[test]
    fn metrics_bundle_is_internally_consistent(grid in small_grid()) {
        let m = GridMetrics::measure(&grid);
        prop_assert_eq!(m.nodes, grid.size());
        prop_assert_eq!(m.edges, grid.num_edges());
        prop_assert!(m.min_degree <= m.max_degree);
        prop_assert!(m.mean_distance > 0.0);
        prop_assert!(m.mean_distance <= m.diameter as f64);
        // A connected graph on n nodes has at least n − 1 edges.
        prop_assert!(m.edges >= m.nodes - 1);
    }
}
