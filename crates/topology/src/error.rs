//! Error types for the `topology` crate.

use core::fmt;

use mixedradix::MixedRadixError;

/// Errors produced when constructing or querying interconnection-network
/// graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// An underlying mixed-radix error (invalid shape, index out of range, …).
    Radix(MixedRadixError),
    /// A node index was outside `[0, size)`.
    NodeOutOfRange {
        /// The offending node index.
        node: u64,
        /// The number of nodes in the graph.
        size: u64,
    },
    /// A coordinate list did not belong to the graph.
    InvalidCoordinate {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The requested operation needs graphs of equal size.
    SizeMismatch {
        /// Size of the first graph.
        left: u64,
        /// Size of the second graph.
        right: u64,
    },
    /// A hypercube was requested with an invalid dimension.
    InvalidHypercube {
        /// The requested dimension.
        dimension: usize,
    },
    /// A ring or line was requested with fewer than 2 nodes.
    GraphTooSmall {
        /// The requested size.
        size: u64,
    },
    /// The dense directed-edge index space `2 · d · n` of a shape does not
    /// fit in `u64`, so [`crate::Grid::edge_index`]-style arithmetic would
    /// silently wrap. Returned by the checked constructor/count paths
    /// instead of wrapping.
    EdgeSpaceTooLarge {
        /// The number of nodes `n`.
        nodes: u64,
        /// The dimension `d`.
        dim: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Radix(e) => write!(f, "shape error: {e}"),
            TopologyError::NodeOutOfRange { node, size } => {
                write!(f, "node index {node} is outside [0, {size})")
            }
            TopologyError::InvalidCoordinate { reason } => {
                write!(f, "invalid coordinate: {reason}")
            }
            TopologyError::SizeMismatch { left, right } => {
                write!(f, "graphs must have equal size, got {left} and {right}")
            }
            TopologyError::InvalidHypercube { dimension } => {
                write!(f, "invalid hypercube dimension {dimension}")
            }
            TopologyError::GraphTooSmall { size } => {
                write!(f, "a ring or line needs at least 2 nodes, got {size}")
            }
            TopologyError::EdgeSpaceTooLarge { nodes, dim } => {
                write!(
                    f,
                    "directed-edge index space 2 * {dim} * {nodes} overflows u64"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TopologyError::Radix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MixedRadixError> for TopologyError {
    fn from(value: MixedRadixError) -> Self {
        TopologyError::Radix(value)
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TopologyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = TopologyError::NodeOutOfRange { node: 9, size: 6 };
        assert!(e.to_string().contains("node index 9"));
        let e = TopologyError::SizeMismatch { left: 4, right: 8 };
        assert!(e.to_string().contains("equal size"));
        let e: TopologyError = MixedRadixError::EmptyBase.into();
        assert!(e.to_string().contains("shape error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
