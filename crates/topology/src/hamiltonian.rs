//! Hamiltonian circuits in toruses and meshes.
//!
//! The paper establishes (as corollaries of its ring embeddings):
//!
//! * **Corollary 18** — no mesh of odd size has a Hamiltonian circuit;
//! * **Corollary 25** — every mesh of even size and dimension > 1 has one;
//! * **Corollary 29** — every torus has one.
//!
//! This module provides the resulting *predicate* (does a Hamiltonian circuit
//! exist?), a *checker* for candidate circuits, and a small exhaustive search
//! used by tests to validate the predicate on tiny instances. The actual
//! *construction* of Hamiltonian circuits of toruses and even meshes is the
//! ring embedding `h_L` of the `embeddings` crate.

use crate::grid::Grid;

/// Whether `grid` has a Hamiltonian circuit, per Corollaries 18, 25 and 29.
///
/// Lines (1-dimensional meshes) and the 2-node ring are treated as having no
/// Hamiltonian circuit, since a circuit in a simple graph requires at least 3
/// distinct nodes.
pub fn admits_hamiltonian_circuit(grid: &Grid) -> bool {
    if grid.size() < 3 {
        return false;
    }
    if grid.is_torus() {
        // Corollary 29.
        return true;
    }
    // Meshes (including hypercubes labelled as meshes).
    if grid.dim() == 1 {
        // A line: boundary nodes have degree 1.
        return false;
    }
    // Corollaries 18 and 25.
    grid.size().is_multiple_of(2)
}

/// Checks whether `order` is a Hamiltonian circuit of `grid`: a permutation of
/// all nodes in which successive nodes — including the last and the first —
/// are adjacent.
pub fn is_hamiltonian_circuit(grid: &Grid, order: &[u64]) -> bool {
    let n = grid.size();
    if order.len() as u64 != n || n < 3 {
        return false;
    }
    let mut seen = vec![false; n as usize];
    for &x in order {
        if x >= n || seen[x as usize] {
            return false;
        }
        seen[x as usize] = true;
    }
    for i in 0..order.len() {
        let a = order[i];
        let b = order[(i + 1) % order.len()];
        match grid.adjacent(a, b) {
            Ok(true) => {}
            _ => return false,
        }
    }
    true
}

/// Checks whether `order` is a Hamiltonian *path* of `grid` (no wrap-around
/// adjacency required).
pub fn is_hamiltonian_path(grid: &Grid, order: &[u64]) -> bool {
    let n = grid.size();
    if order.len() as u64 != n || n < 2 {
        return false;
    }
    let mut seen = vec![false; n as usize];
    for &x in order {
        if x >= n || seen[x as usize] {
            return false;
        }
        seen[x as usize] = true;
    }
    for pair in order.windows(2) {
        match grid.adjacent(pair[0], pair[1]) {
            Ok(true) => {}
            _ => return false,
        }
    }
    true
}

/// Exhaustively searches for a Hamiltonian circuit by backtracking.
///
/// Intended for cross-checking [`admits_hamiltonian_circuit`] on tiny graphs
/// (≲ 20 nodes); the search is exponential in general.
pub fn find_hamiltonian_circuit_exhaustive(grid: &Grid) -> Option<Vec<u64>> {
    let n = grid.size();
    if n < 3 {
        return None;
    }
    let n = n as usize;
    let adjacency: Vec<Vec<u64>> = (0..n as u64)
        .map(|x| grid.neighbors(x).expect("node in range"))
        .collect();
    let mut visited = vec![false; n];
    let mut path = Vec::with_capacity(n);
    visited[0] = true;
    path.push(0u64);
    if backtrack(&adjacency, &mut visited, &mut path, n) {
        Some(path)
    } else {
        None
    }
}

fn backtrack(adjacency: &[Vec<u64>], visited: &mut [bool], path: &mut Vec<u64>, n: usize) -> bool {
    if path.len() == n {
        // Circuit closes iff the last node is adjacent to the first (node 0).
        let last = *path.last().expect("path non-empty");
        return adjacency[last as usize].contains(&0);
    }
    let current = *path.last().expect("path non-empty");
    for &next in &adjacency[current as usize] {
        if !visited[next as usize] {
            visited[next as usize] = true;
            path.push(next);
            if backtrack(adjacency, visited, path, n) {
                return true;
            }
            path.pop();
            visited[next as usize] = false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn predicate_matches_exhaustive_search_on_small_graphs() {
        let cases = vec![
            Grid::torus(shape(&[3, 3])),   // odd torus: has circuit (Cor. 29)
            Grid::torus(shape(&[2, 3])),   // torus: has circuit
            Grid::mesh(shape(&[3, 3])),    // odd mesh: none (Cor. 18)
            Grid::mesh(shape(&[3, 5])),    // odd mesh: none
            Grid::mesh(shape(&[2, 3])),    // even mesh, dim 2: has circuit (Cor. 25)
            Grid::mesh(shape(&[4, 3])),    // even mesh: has circuit
            Grid::mesh(shape(&[2, 2, 3])), // even mesh, dim 3: has circuit
            Grid::line(6).unwrap(),        // line: none
            Grid::ring(6).unwrap(),        // ring: trivially a circuit
            Grid::hypercube(3).unwrap(),   // hypercube: has circuit
        ];
        for grid in cases {
            let expected = admits_hamiltonian_circuit(&grid);
            let found = find_hamiltonian_circuit_exhaustive(&grid);
            assert_eq!(
                found.is_some(),
                expected,
                "predicate disagrees with search on {grid}"
            );
            if let Some(circuit) = found {
                assert!(
                    is_hamiltonian_circuit(&grid, &circuit),
                    "bad circuit for {grid}"
                );
            }
        }
    }

    #[test]
    fn tiny_graphs_have_no_circuit() {
        assert!(!admits_hamiltonian_circuit(&Grid::ring(2).unwrap()));
        assert!(!admits_hamiltonian_circuit(&Grid::line(2).unwrap()));
    }

    #[test]
    fn checker_rejects_malformed_circuits() {
        let ring = Grid::ring(5).unwrap();
        assert!(is_hamiltonian_circuit(&ring, &[0, 1, 2, 3, 4]));
        // Wrong length.
        assert!(!is_hamiltonian_circuit(&ring, &[0, 1, 2, 3]));
        // Repeated node.
        assert!(!is_hamiltonian_circuit(&ring, &[0, 1, 2, 3, 3]));
        // Out-of-range node.
        assert!(!is_hamiltonian_circuit(&ring, &[0, 1, 2, 3, 9]));
        // Non-adjacent consecutive nodes.
        assert!(!is_hamiltonian_circuit(&ring, &[0, 2, 1, 3, 4]));
    }

    #[test]
    fn checker_for_paths() {
        let line = Grid::line(4).unwrap();
        assert!(is_hamiltonian_path(&line, &[0, 1, 2, 3]));
        assert!(is_hamiltonian_path(&line, &[3, 2, 1, 0]));
        assert!(!is_hamiltonian_path(&line, &[0, 2, 1, 3]));
        assert!(!is_hamiltonian_path(&line, &[0, 1, 2]));
        assert!(!is_hamiltonian_path(&line, &[0, 1, 2, 2]));
    }

    #[test]
    fn odd_meshes_have_no_circuit_but_even_toruses_of_same_shape_do() {
        // The same shape read as a torus has a circuit, read as a mesh does not.
        let odd_shape = shape(&[3, 3]);
        assert!(admits_hamiltonian_circuit(&Grid::torus(odd_shape.clone())));
        assert!(!admits_hamiltonian_circuit(&Grid::mesh(odd_shape)));
    }

    #[test]
    fn hypercubes_of_dimension_at_least_two_have_circuits() {
        for d in 2..=5 {
            assert!(admits_hamiltonian_circuit(&Grid::hypercube(d).unwrap()));
        }
        assert!(!admits_hamiltonian_circuit(&Grid::hypercube(1).unwrap()));
    }
}
