//! Interconnection-network graphs: toruses, meshes, hypercubes, rings, lines.
//!
//! This crate provides the graph substrate of
//! *Ma & Tao, "Embeddings Among Toruses and Meshes"* (ICPP 1987):
//!
//! * [`Grid`] — an `(l_1, …, l_d)`-torus or `(l_1, …, l_d)`-mesh
//!   (Definitions 2 and 3), with rings, lines and hypercubes as special cases;
//! * [`Shape`] / [`Coord`] — shapes and node coordinates (re-exported from the
//!   `mixedradix` crate: a shape *is* a radix base, a coordinate *is* a
//!   radix-`L` number);
//! * [`bfs`] — an independent shortest-path oracle for validating the
//!   closed-form distance formulas;
//! * [`hamiltonian`] — the Hamiltonian-circuit predicates of Corollaries 18,
//!   25 and 29, plus a checker and an exhaustive search for tiny instances;
//! * [`csr`] — materialized adjacency for cache-friendly traversals;
//! * [`families`] — shape/graph family iterators (every torus or mesh of a
//!   given size), the substrate of `explab`'s sweep generators;
//! * [`metrics`] — closed-form network figures of merit (links per dimension,
//!   degree distribution, mean distance, bisection width);
//! * [`parallel`] — crossbeam-based fork–join helpers used for edge sweeps;
//! * [`routing`] — the dimension-ordered next-hop rule shared by the
//!   congestion model and the network simulator, with in-place batched
//!   stepping and dense link indexing for flat-array load accounting.
//!
//! # Example
//!
//! ```
//! use topology::{Grid, Shape};
//!
//! let torus = Grid::torus(Shape::new(vec![4, 2, 3]).unwrap());
//! assert_eq!(torus.size(), 24);
//! assert_eq!(torus.num_edges(), 24 + 12 + 24);
//! assert_eq!(torus.diameter(), 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bfs;
pub mod csr;
pub mod edges;
pub mod error;
pub mod families;
pub mod grid;
pub mod hamiltonian;
pub mod metrics;
pub mod parallel;
pub mod routing;

/// The shape `(l_1, …, l_d)` of a torus or mesh — identical to a mixed-radix
/// base (Definition 7 of the paper equips shapes with weights, which is all a
/// shape needs).
pub type Shape = mixedradix::RadixBase;

/// A node coordinate `(i_1, …, i_d)` — identical to a radix-`L` number.
pub type Coord = mixedradix::Digits;

pub use error::{Result, TopologyError};
pub use grid::{GraphKind, Grid};

/// The structure-of-arrays digit-plane codec, re-exported so downstream
/// crates can batch-decode node indices of a [`Shape`] without depending on
/// `mixedradix` directly.
pub use mixedradix::planes;

/// Commonly used items.
pub mod prelude {
    pub use crate::bfs::{bfs, BfsDistances};
    pub use crate::csr::CsrAdjacency;
    pub use crate::error::TopologyError;
    pub use crate::grid::{GraphKind, Grid};
    pub use crate::hamiltonian::{admits_hamiltonian_circuit, is_hamiltonian_circuit};
    pub use crate::metrics::GridMetrics;
    pub use crate::routing::{advance_toward, for_each_hop, next_hop_toward};
    pub use crate::{Coord, Shape};
    pub use mixedradix::planes::{DigitPlanes, LANES};
}
