//! Shape and graph families: every torus/mesh of a given size.
//!
//! The experiment-sweep engine (`explab`) evaluates the paper's constructions
//! over *families* of shape pairs rather than single hand-picked instances.
//! This module turns the factorization enumeration of
//! [`mixedradix::enumerate`] into graph-level iterators: all shapes of a
//! size, all grids of a size and kind, and all sizes in a range that admit a
//! multi-dimensional shape at all.

use crate::{GraphKind, Grid, Shape};

/// All shapes of size `n` with dimension at most `max_dim`, one per *ordered*
/// factorization of `n` into radices `≥ 2` (so `(2, 12)` and `(12, 2)` are
/// both listed), in lexicographic order.
pub fn shapes_of_size(n: u64, max_dim: usize) -> Vec<Shape> {
    mixedradix::enumerate::bases_of_size(n, max_dim)
}

/// All shapes of size `n` up to dimension reordering: one canonical
/// representative (radices non-increasing) per multiset of radices. Shapes
/// that differ only by a dimension permutation denote isomorphic graphs, so
/// sweeping this family avoids re-measuring isomorphic pairs.
pub fn distinct_shapes_of_size(n: u64, max_dim: usize) -> Vec<Shape> {
    mixedradix::enumerate::distinct_factorizations(n, max_dim.min(mixedradix::MAX_DIM))
        .into_iter()
        .map(|radices| Shape::new(radices).expect("factors >= 2 form a valid shape"))
        .collect()
}

/// All grids of the given kind and size `n` with dimension at most `max_dim`,
/// one per canonical shape of [`distinct_shapes_of_size`].
pub fn grids_of_size(kind: GraphKind, n: u64, max_dim: usize) -> Vec<Grid> {
    distinct_shapes_of_size(n, max_dim)
        .into_iter()
        .map(|shape| Grid::new(kind, shape))
        .collect()
}

/// The sizes in `[lo, hi]` that have at least one shape of dimension `≥ 2`
/// (i.e. the composite sizes): the sizes worth sweeping when the family under
/// study needs a genuinely multi-dimensional guest or host.
pub fn composite_sizes(lo: u64, hi: u64) -> Vec<u64> {
    (lo.max(4)..=hi)
        .filter(|&n| (2..n).take_while(|d| d * d <= n).any(|d| n % d == 0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_of_size_cover_all_factorizations() {
        let shapes = shapes_of_size(12, 3);
        assert_eq!(shapes.len(), 8);
        assert!(shapes.iter().all(|s| s.size() == 12 && s.dim() <= 3));
    }

    #[test]
    fn distinct_shapes_deduplicate_permutations() {
        let shapes = distinct_shapes_of_size(12, 3);
        // {12}, {6,2}, {4,3}, {3,2,2}.
        assert_eq!(shapes.len(), 4);
        for shape in &shapes {
            let mut radices = shape.radices().to_vec();
            radices.sort_unstable_by(|a, b| b.cmp(a));
            assert_eq!(radices.as_slice(), shape.radices(), "canonical order");
        }
    }

    #[test]
    fn grids_of_size_carry_the_kind() {
        let toruses = grids_of_size(GraphKind::Torus, 8, 3);
        let meshes = grids_of_size(GraphKind::Mesh, 8, 3);
        assert_eq!(toruses.len(), meshes.len());
        assert!(toruses.iter().all(|g| g.is_torus() && g.size() == 8));
        assert!(meshes.iter().all(|g| g.is_mesh() && g.size() == 8));
        // {8}, {4,2}, {2,2,2}.
        assert_eq!(toruses.len(), 3);
    }

    #[test]
    fn composite_sizes_skip_primes() {
        assert_eq!(composite_sizes(4, 16), vec![4, 6, 8, 9, 10, 12, 14, 15, 16]);
        assert!(composite_sizes(13, 13).is_empty());
    }
}
