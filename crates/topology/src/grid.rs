//! Toruses and meshes as graphs (Definitions 2 and 3 of the paper).
//!
//! A single type, [`Grid`], represents both families: an
//! `(l_1, …, l_d)`-torus or an `(l_1, …, l_d)`-mesh, depending on its
//! [`GraphKind`]. Rings, lines and hypercubes are the usual special cases
//! (dimension-1 torus, dimension-1 mesh, and all-lengths-2 graphs
//! respectively).
//!
//! Nodes are addressed interchangeably by their coordinate list
//! ([`Coord`], the paper's `(i_1, …, i_d)`) or by their linear index in
//! `[0, n)` (the mixed-radix value of the coordinate list). All per-node
//! operations cost `O(d)`.

use core::fmt;

use mixedradix::distance::{delta_m_unchecked, delta_t_unchecked, mesh_diameter, torus_diameter};

use crate::error::{Result, TopologyError};
use crate::{Coord, Shape};

/// Whether a [`Grid`] has wrap-around edges (torus) or boundaries (mesh).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Every node has two neighbors in every dimension (Definition 2).
    Torus,
    /// Boundary nodes have a single neighbor in the boundary dimension
    /// (Definition 3).
    Mesh,
}

impl GraphKind {
    /// `true` for [`GraphKind::Torus`].
    pub fn is_torus(self) -> bool {
        matches!(self, GraphKind::Torus)
    }

    /// `true` for [`GraphKind::Mesh`].
    pub fn is_mesh(self) -> bool {
        matches!(self, GraphKind::Mesh)
    }
}

impl fmt::Display for GraphKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphKind::Torus => write!(f, "torus"),
            GraphKind::Mesh => write!(f, "mesh"),
        }
    }
}

/// An `(l_1, …, l_d)`-torus or `(l_1, …, l_d)`-mesh.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Grid {
    kind: GraphKind,
    shape: Shape,
}

impl Grid {
    /// Creates a torus of the given shape.
    pub fn torus(shape: Shape) -> Grid {
        Grid {
            kind: GraphKind::Torus,
            shape,
        }
    }

    /// Creates a mesh of the given shape.
    pub fn mesh(shape: Shape) -> Grid {
        Grid {
            kind: GraphKind::Mesh,
            shape,
        }
    }

    /// Creates a graph of the given kind and shape.
    pub fn new(kind: GraphKind, shape: Shape) -> Grid {
        Grid { kind, shape }
    }

    /// Creates a graph of the given kind and shape, additionally validating
    /// that the dense directed-edge index space `2 · d · n` fits in `u64` —
    /// the checked constructor for code that will use [`Grid::edge_index`] /
    /// [`Grid::link_index`] arithmetic (load vectors, claim tables).
    ///
    /// [`Grid::new`] itself stays infallible: a `Grid` is just a labeled
    /// shape, and only the dense edge-indexing consumers can overflow. Those
    /// consumers should either construct through here or call
    /// [`Grid::try_link_count`] / [`Grid::try_directed_edge_count`] before
    /// sizing buffers.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EdgeSpaceTooLarge`] when `2 · d · n`
    /// overflows (e.g. a 32-dimension shape with more than 2⁵⁸ nodes).
    pub fn new_checked(kind: GraphKind, shape: Shape) -> Result<Grid> {
        let grid = Grid { kind, shape };
        grid.try_directed_edge_count()?;
        Ok(grid)
    }

    /// Creates a ring of `n` nodes (a 1-dimensional torus).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::GraphTooSmall`] if `n < 2`.
    pub fn ring(n: u64) -> Result<Grid> {
        if n < 2 {
            return Err(TopologyError::GraphTooSmall { size: n });
        }
        let n32 = u32::try_from(n).map_err(|_| TopologyError::GraphTooSmall { size: n })?;
        Ok(Grid::torus(Shape::new(vec![n32])?))
    }

    /// Creates a line of `n` nodes (a 1-dimensional mesh).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::GraphTooSmall`] if `n < 2`.
    pub fn line(n: u64) -> Result<Grid> {
        if n < 2 {
            return Err(TopologyError::GraphTooSmall { size: n });
        }
        let n32 = u32::try_from(n).map_err(|_| TopologyError::GraphTooSmall { size: n })?;
        Ok(Grid::mesh(Shape::new(vec![n32])?))
    }

    /// Creates a hypercube of size `2^d` (Definition 4).
    ///
    /// A hypercube is simultaneously a `d`-dimensional torus and a
    /// `d`-dimensional mesh in which every dimension has length 2; the two
    /// readings produce the same graph, so the kind returned here
    /// ([`GraphKind::Mesh`]) is only a label. Use [`Grid::is_hypercube`] to
    /// test for hypercube-ness independently of the label.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidHypercube`] if `d` is 0 or too large.
    pub fn hypercube(d: usize) -> Result<Grid> {
        if d == 0 || d > mixedradix::MAX_DIM {
            return Err(TopologyError::InvalidHypercube { dimension: d });
        }
        Ok(Grid::mesh(Shape::binary(d)?))
    }

    /// The graph kind (torus or mesh).
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// The shape `(l_1, …, l_d)`.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension `d`.
    pub fn dim(&self) -> usize {
        self.shape.dim()
    }

    /// The number of nodes `n = Π l_j`.
    pub fn size(&self) -> u64 {
        self.shape.size()
    }

    /// Whether the graph is a torus.
    pub fn is_torus(&self) -> bool {
        self.kind.is_torus()
    }

    /// Whether the graph is a mesh.
    pub fn is_mesh(&self) -> bool {
        self.kind.is_mesh()
    }

    /// Whether the graph is a hypercube (every dimension has length 2).
    ///
    /// Such a graph is both a torus and a mesh regardless of its
    /// [`GraphKind`] label.
    pub fn is_hypercube(&self) -> bool {
        self.shape.is_binary()
    }

    /// Whether all dimensions have equal length (the paper's *square*).
    pub fn is_square(&self) -> bool {
        self.shape.is_square()
    }

    /// Whether the graph is a ring (1-dimensional torus).
    pub fn is_ring(&self) -> bool {
        self.dim() == 1 && self.is_torus()
    }

    /// Whether the graph is a line (1-dimensional mesh).
    pub fn is_line(&self) -> bool {
        self.dim() == 1 && self.is_mesh()
    }

    /// Whether two graphs are of the same type (both toruses or both meshes),
    /// treating hypercubes as compatible with either type.
    pub fn same_type(&self, other: &Grid) -> bool {
        self.kind == other.kind || self.is_hypercube() || other.is_hypercube()
    }

    /// The coordinate list of the node with linear index `x`.
    ///
    /// # Errors
    ///
    /// Returns an error if `x >= self.size()`.
    pub fn coord(&self, x: u64) -> Result<Coord> {
        Ok(self.shape.to_digits(x)?)
    }

    /// The linear index of a coordinate list.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinate does not belong to the graph.
    pub fn index(&self, coord: &Coord) -> Result<u64> {
        Ok(self.shape.to_index(coord)?)
    }

    /// Whether a coordinate list denotes a node of this graph.
    pub fn contains(&self, coord: &Coord) -> bool {
        self.shape.contains(coord)
    }

    /// An iterator over all node indices `0, 1, …, n−1`.
    pub fn nodes(&self) -> impl Iterator<Item = u64> {
        0..self.size()
    }

    /// An iterator over all node coordinates in index order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        self.shape.iter()
    }

    /// The degree of the node with index `x`.
    ///
    /// # Errors
    ///
    /// Returns an error if `x >= self.size()`.
    pub fn degree(&self, x: u64) -> Result<usize> {
        let coord = self.coord(x)?;
        Ok(self.degree_coord(&coord))
    }

    /// The degree of a node given by its coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate has the wrong dimension.
    pub fn degree_coord(&self, coord: &Coord) -> usize {
        assert_eq!(coord.dim(), self.dim(), "coordinate dimension mismatch");
        let mut deg = 0usize;
        for j in 0..self.dim() {
            let l = self.shape.radix(j);
            match self.kind {
                GraphKind::Torus => deg += if l > 2 { 2 } else { 1 },
                GraphKind::Mesh => {
                    let i = coord.get(j);
                    if i > 0 {
                        deg += 1;
                    }
                    if i < l - 1 {
                        deg += 1;
                    }
                }
            }
        }
        deg
    }

    /// The maximum node degree of the graph.
    pub fn max_degree(&self) -> usize {
        (0..self.dim())
            .map(|j| {
                let l = self.shape.radix(j);
                match self.kind {
                    GraphKind::Torus => {
                        if l > 2 {
                            2
                        } else {
                            1
                        }
                    }
                    GraphKind::Mesh => {
                        if l > 2 {
                            2
                        } else {
                            1
                        }
                    }
                }
            })
            .sum()
    }

    /// The neighbors of the node with index `x`, as linear indices.
    ///
    /// Every neighbor appears exactly once even when the left and the right
    /// neighbor in a length-2 torus dimension coincide.
    ///
    /// # Errors
    ///
    /// Returns an error if `x >= self.size()`.
    pub fn neighbors(&self, x: u64) -> Result<Vec<u64>> {
        let coord = self.coord(x)?;
        Ok(self
            .neighbors_coord(&coord)
            .iter()
            .map(|c| self.shape.to_index(c).expect("neighbor is a valid node"))
            .collect())
    }

    /// The neighbors of a node given by its coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate has the wrong dimension.
    pub fn neighbors_coord(&self, coord: &Coord) -> Vec<Coord> {
        assert_eq!(coord.dim(), self.dim(), "coordinate dimension mismatch");
        let mut out = Vec::with_capacity(2 * self.dim());
        for j in 0..self.dim() {
            let l = self.shape.radix(j);
            let i = coord.get(j);
            match self.kind {
                GraphKind::Torus => {
                    let left = (i + l - 1) % l;
                    let right = (i + 1) % l;
                    let mut a = *coord;
                    a.set(j, left);
                    out.push(a);
                    if right != left {
                        let mut b = *coord;
                        b.set(j, right);
                        out.push(b);
                    }
                }
                GraphKind::Mesh => {
                    if i > 0 {
                        let mut a = *coord;
                        a.set(j, i - 1);
                        out.push(a);
                    }
                    if i < l - 1 {
                        let mut b = *coord;
                        b.set(j, i + 1);
                        out.push(b);
                    }
                }
            }
        }
        out
    }

    /// Whether two nodes (given by index) are adjacent.
    ///
    /// # Errors
    ///
    /// Returns an error if either index is out of range.
    pub fn adjacent(&self, x: u64, y: u64) -> Result<bool> {
        // Adjacent iff distance 1 (toruses and meshes are simple graphs).
        Ok(x != y && self.distance_index(x, y)? == 1)
    }

    /// The shortest-path distance between two nodes given by coordinates
    /// (Lemma 5 for toruses, Lemma 6 for meshes).
    ///
    /// # Panics
    ///
    /// Panics if either coordinate has the wrong dimension.
    pub fn distance(&self, a: &Coord, b: &Coord) -> u64 {
        match self.kind {
            GraphKind::Torus => delta_t_unchecked(&self.shape, a, b),
            GraphKind::Mesh => delta_m_unchecked(a, b),
        }
    }

    /// The shortest-path distance between two nodes given by linear index.
    ///
    /// # Errors
    ///
    /// Returns an error if either index is out of range.
    pub fn distance_index(&self, x: u64, y: u64) -> Result<u64> {
        let a = self.coord(x)?;
        let b = self.coord(y)?;
        Ok(self.distance(&a, &b))
    }

    /// The diameter of the graph (maximum distance between any two nodes).
    pub fn diameter(&self) -> u64 {
        match self.kind {
            GraphKind::Torus => torus_diameter(&self.shape),
            GraphKind::Mesh => mesh_diameter(&self.shape),
        }
    }

    /// The number of (undirected) edges.
    pub fn num_edges(&self) -> u64 {
        let n = self.size();
        let mut edges = 0u64;
        for j in 0..self.dim() {
            let l = self.shape.radix(j) as u64;
            edges += match self.kind {
                GraphKind::Torus => {
                    if l > 2 {
                        n
                    } else {
                        n / 2
                    }
                }
                GraphKind::Mesh => n / l * (l - 1),
            };
        }
        edges
    }

    /// An iterator over all undirected edges, each yielded exactly once as a
    /// pair of linear indices.
    pub fn edges(&self) -> crate::edges::EdgeIter<'_> {
        crate::edges::EdgeIter::new(self)
    }

    /// The number of slots in the dense *directed*-edge indexing scheme:
    /// `2 · d · n`, one slot per (node, dimension, direction) triple.
    ///
    /// The scheme is dense over triples, not over existing edges: mesh
    /// boundary slots and the duplicate backward slots of length-2 torus
    /// dimensions are simply never produced by a valid route. This lets load
    /// accounting use a flat `Vec` indexed by [`Grid::edge_index`] instead of
    /// a hash map keyed on coordinate pairs.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the count fits in `u64`; use
    /// [`Grid::try_directed_edge_count`] (or construct through
    /// [`Grid::new_checked`]) when the shape is not already known to be
    /// small enough.
    pub fn directed_edge_count(&self) -> u64 {
        debug_assert!(
            self.try_directed_edge_count().is_ok(),
            "directed-edge space overflows u64; use try_directed_edge_count"
        );
        2 * self.dim() as u64 * self.size()
    }

    /// [`Grid::directed_edge_count`] without silent wrapping: `2 · d · n`,
    /// or [`TopologyError::EdgeSpaceTooLarge`] when that overflows `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EdgeSpaceTooLarge`] on overflow.
    pub fn try_directed_edge_count(&self) -> Result<u64> {
        self.try_link_count()?
            .checked_mul(2)
            .ok_or(TopologyError::EdgeSpaceTooLarge {
                nodes: self.size(),
                dim: self.dim(),
            })
    }

    /// The dense index of the directed edge leaving node `from` along
    /// dimension `dim` in the forward (`+1`, wrapping on toruses) or backward
    /// (`−1`) direction: `(from · d + dim) · 2 + (forward ? 0 : 1)`, in
    /// `[0, directed_edge_count())`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range (node indices are not checked; the
    /// scheme is a pure arithmetic encoding).
    #[inline]
    pub fn edge_index(&self, from: u64, dim: usize, forward: bool) -> u64 {
        assert!(dim < self.dim(), "dimension {dim} out of range");
        (from * self.dim() as u64 + dim as u64) * 2 + if forward { 0 } else { 1 }
    }

    /// The number of slots in the dense *undirected*-link indexing scheme:
    /// `d · n`, one slot per (tail node, dimension) pair — the forward half
    /// of [`Grid::directed_edge_count`].
    ///
    /// # Panics
    ///
    /// Debug-asserts that the count fits in `u64`; use
    /// [`Grid::try_link_count`] when the shape is not already known to be
    /// small enough.
    pub fn link_count(&self) -> u64 {
        debug_assert!(
            self.try_link_count().is_ok(),
            "link index space overflows u64; use try_link_count"
        );
        self.dim() as u64 * self.size()
    }

    /// [`Grid::link_count`] without silent wrapping: `d · n`, or
    /// [`TopologyError::EdgeSpaceTooLarge`] when that overflows `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EdgeSpaceTooLarge`] on overflow.
    pub fn try_link_count(&self) -> Result<u64> {
        (self.dim() as u64)
            .checked_mul(self.size())
            .ok_or(TopologyError::EdgeSpaceTooLarge {
                nodes: self.size(),
                dim: self.dim(),
            })
    }

    /// The dense index of the undirected link whose canonical *tail* is
    /// `tail` along dimension `dim`: `tail · d + dim`, in
    /// `[0, link_count())`. The canonical tail of a link is the endpoint
    /// whose forward step reaches the other endpoint (see
    /// [`crate::routing::link_slot_of_hop`]).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    #[inline]
    pub fn link_index(&self, tail: u64, dim: usize) -> u64 {
        assert!(dim < self.dim(), "dimension {dim} out of range");
        tail * self.dim() as u64 + dim as u64
    }
}

impl fmt::Debug for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.shape, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    fn coord(digits: &[u32]) -> Coord {
        Coord::from_slice(digits).unwrap()
    }

    #[test]
    fn huge_shapes_are_rejected_by_the_checked_edge_paths() {
        // (2³²−1)² ≈ 2⁶⁴ nodes fits in u64, but d·n and 2·d·n do not: the
        // unchecked counts would silently wrap.
        let huge = shape(&[u32::MAX, u32::MAX]);
        let grid = Grid::torus(huge.clone());
        assert_eq!(
            grid.try_link_count(),
            Err(TopologyError::EdgeSpaceTooLarge {
                nodes: huge.size(),
                dim: 2,
            })
        );
        assert!(grid.try_directed_edge_count().is_err());
        assert!(Grid::new_checked(GraphKind::Torus, huge).is_err());

        // A 2·d·n overflow where d·n still fits: a single-dimension ring of
        // 2⁶³ + something is impossible (radices are u32), so drive it with
        // dim 2 where n · 2 fits but · 2 again does not. n = 2⁶²·…; simplest:
        // (2³¹, 2³¹) has n = 2⁶², d·n = 2⁶³, 2·d·n = 2⁶⁴ → overflow.
        let edge_only = shape(&[1 << 31, 1 << 31]);
        let grid = Grid::mesh(edge_only.clone());
        assert_eq!(grid.try_link_count(), Ok(1u64 << 63));
        assert_eq!(
            grid.try_directed_edge_count(),
            Err(TopologyError::EdgeSpaceTooLarge {
                nodes: edge_only.size(),
                dim: 2,
            })
        );

        // Ordinary shapes pass through the checked constructor unchanged.
        let ok = Grid::new_checked(GraphKind::Torus, shape(&[4, 2, 3])).unwrap();
        assert_eq!(ok.try_directed_edge_count(), Ok(ok.directed_edge_count()));
        assert_eq!(ok.try_link_count(), Ok(ok.link_count()));
    }

    #[test]
    fn figure_1_and_2_distances() {
        // Figure 1: (4,2,3)-torus; Figure 2: (4,2,3)-mesh. Distance between
        // (0,0,1) and (3,0,0) is 2 in the torus and 4 in the mesh.
        let torus = Grid::torus(shape(&[4, 2, 3]));
        let mesh = Grid::mesh(shape(&[4, 2, 3]));
        let a = coord(&[0, 0, 1]);
        let b = coord(&[3, 0, 0]);
        assert_eq!(torus.distance(&a, &b), 2);
        assert_eq!(mesh.distance(&a, &b), 4);
    }

    #[test]
    fn sizes_and_dimensions() {
        let torus = Grid::torus(shape(&[4, 2, 3]));
        assert_eq!(torus.size(), 24);
        assert_eq!(torus.dim(), 3);
        assert!(torus.is_torus());
        assert!(!torus.is_mesh());
        assert!(!torus.is_hypercube());
        assert!(!torus.is_square());
        assert_eq!(torus.to_string(), "(4, 2, 3)-torus");
    }

    #[test]
    fn ring_line_hypercube_constructors() {
        let ring = Grid::ring(6).unwrap();
        assert!(ring.is_ring());
        assert!(ring.is_torus());
        assert_eq!(ring.size(), 6);

        let line = Grid::line(6).unwrap();
        assert!(line.is_line());
        assert!(line.is_mesh());

        let hc = Grid::hypercube(4).unwrap();
        assert!(hc.is_hypercube());
        assert!(hc.is_square());
        assert_eq!(hc.size(), 16);
        assert_eq!(hc.dim(), 4);

        assert!(Grid::ring(1).is_err());
        assert!(Grid::line(0).is_err());
        assert!(Grid::hypercube(0).is_err());
        assert!(Grid::hypercube(1000).is_err());
    }

    #[test]
    fn torus_degrees_are_uniform() {
        let torus = Grid::torus(shape(&[4, 2, 3]));
        // Dimensions of length > 2 contribute 2 neighbors, length-2 dimensions 1.
        for x in torus.nodes() {
            assert_eq!(torus.degree(x).unwrap(), 2 + 1 + 2);
        }
        assert_eq!(torus.max_degree(), 5);
    }

    #[test]
    fn mesh_degrees_depend_on_boundaries() {
        let mesh = Grid::mesh(shape(&[3, 3]));
        // Corner nodes have degree 2, edge nodes 3, the center 4.
        assert_eq!(mesh.degree_coord(&coord(&[0, 0])), 2);
        assert_eq!(mesh.degree_coord(&coord(&[0, 1])), 3);
        assert_eq!(mesh.degree_coord(&coord(&[1, 1])), 4);
    }

    #[test]
    fn neighbors_are_symmetric_and_at_distance_one() {
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::hypercube(4).unwrap(),
            Grid::ring(7).unwrap(),
            Grid::line(5).unwrap(),
        ] {
            for x in grid.nodes() {
                let neighbors = grid.neighbors(x).unwrap();
                assert_eq!(neighbors.len(), grid.degree(x).unwrap());
                for &y in &neighbors {
                    assert_ne!(x, y, "no self loops");
                    assert_eq!(grid.distance_index(x, y).unwrap(), 1);
                    assert!(grid.neighbors(y).unwrap().contains(&x), "symmetry");
                    assert!(grid.adjacent(x, y).unwrap());
                }
                // Neighbor lists contain no duplicates.
                let mut sorted = neighbors.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), neighbors.len());
            }
        }
    }

    #[test]
    fn length_two_torus_dimension_has_single_neighbor() {
        let torus = Grid::torus(shape(&[2, 3]));
        let n: Vec<u64> = torus.neighbors(0).unwrap();
        // Dimension 1 (length 2) contributes one neighbor, dimension 2 two.
        assert_eq!(n.len(), 3);
    }

    #[test]
    fn edge_counts_match_formula_and_handshake() {
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[2, 2, 2])),
            Grid::mesh(shape(&[5, 5])),
            Grid::ring(9).unwrap(),
            Grid::line(9).unwrap(),
        ] {
            let degree_sum: usize = grid.nodes().map(|x| grid.degree(x).unwrap()).sum();
            assert_eq!(
                degree_sum as u64,
                2 * grid.num_edges(),
                "handshake for {grid}"
            );
        }
    }

    #[test]
    fn hypercube_matches_definition_4() {
        let hc = Grid::hypercube(3).unwrap();
        // Neighbors differ in exactly one position.
        for x in hc.nodes() {
            for y in hc.neighbors(x).unwrap() {
                let a = hc.coord(x).unwrap();
                let b = hc.coord(y).unwrap();
                let diff = (0..3).filter(|&j| a.get(j) != b.get(j)).count();
                assert_eq!(diff, 1);
            }
            assert_eq!(hc.degree(x).unwrap(), 3);
        }
        assert_eq!(hc.num_edges(), 3 * 8 / 2);
    }

    #[test]
    fn diameters() {
        assert_eq!(Grid::torus(shape(&[4, 2, 3])).diameter(), 2 + 1 + 1);
        assert_eq!(Grid::mesh(shape(&[4, 2, 3])).diameter(), 3 + 1 + 2);
        assert_eq!(Grid::ring(10).unwrap().diameter(), 5);
        assert_eq!(Grid::line(10).unwrap().diameter(), 9);
    }

    #[test]
    fn index_coord_round_trip() {
        let grid = Grid::mesh(shape(&[3, 4, 5]));
        for x in grid.nodes() {
            let c = grid.coord(x).unwrap();
            assert!(grid.contains(&c));
            assert_eq!(grid.index(&c).unwrap(), x);
        }
        assert!(grid.coord(grid.size()).is_err());
    }

    #[test]
    fn same_type_treats_hypercubes_as_both() {
        let t = Grid::torus(shape(&[4, 4]));
        let m = Grid::mesh(shape(&[4, 4]));
        let h = Grid::hypercube(4).unwrap();
        assert!(!t.same_type(&m));
        assert!(t.same_type(&h));
        assert!(m.same_type(&h));
        assert!(t.same_type(&t));
    }

    #[test]
    fn edge_indexing_is_dense_and_consistent_with_link_indexing() {
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[5, 3])),
            Grid::hypercube(4).unwrap(),
        ] {
            let d = grid.dim();
            assert_eq!(grid.directed_edge_count(), 2 * grid.link_count());
            assert_eq!(grid.link_count(), d as u64 * grid.size());
            let mut seen = std::collections::HashSet::new();
            for from in grid.nodes() {
                for dim in 0..d {
                    for forward in [true, false] {
                        let slot = grid.edge_index(from, dim, forward);
                        assert!(slot < grid.directed_edge_count());
                        assert!(seen.insert(slot), "duplicate slot {slot}");
                        // The forward half of the directed scheme *is* the
                        // undirected link scheme.
                        if forward {
                            assert_eq!(slot, 2 * grid.link_index(from, dim));
                        }
                    }
                }
            }
            assert_eq!(seen.len() as u64, grid.directed_edge_count());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_index_rejects_bad_dimension() {
        let grid = Grid::torus(shape(&[3, 3]));
        let _ = grid.edge_index(0, 2, true);
    }

    #[test]
    fn coords_iterator_matches_indices() {
        let grid = Grid::torus(shape(&[3, 2]));
        let coords: Vec<Coord> = grid.coords().collect();
        assert_eq!(coords.len(), 6);
        for (x, c) in coords.iter().enumerate() {
            assert_eq!(grid.coord(x as u64).unwrap(), *c);
        }
    }
}
