//! Compressed sparse row (CSR) adjacency.
//!
//! Toruses and meshes are implicit graphs — neighbors are computed, not
//! stored — which is what the embedding machinery uses. Downstream consumers
//! such as the `netsim` routing simulator, however, iterate adjacencies in
//! tight per-cycle loops where a flat, cache-friendly CSR layout pays off
//! (see the repository's hpc guidance on allocation-free hot loops).

use crate::error::{Result, TopologyError};
use crate::grid::Grid;

/// A compressed-sparse-row adjacency structure for a [`Grid`].
#[derive(Clone, Debug)]
pub struct CsrAdjacency {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl CsrAdjacency {
    /// Builds the CSR adjacency of `grid`.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph has more than `u32::MAX` nodes or edges
    /// (CSR is intended for graphs small enough to materialize).
    pub fn build(grid: &Grid) -> Result<Self> {
        let n = grid.size();
        if n > u32::MAX as u64 {
            return Err(TopologyError::InvalidCoordinate {
                reason: format!("graph with {n} nodes is too large to materialize as CSR"),
            });
        }
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for x in grid.nodes() {
            for y in grid.neighbors(x)? {
                targets.push(y as u32);
            }
            let len =
                u32::try_from(targets.len()).map_err(|_| TopologyError::InvalidCoordinate {
                    reason: "edge count exceeds u32::MAX".to_string(),
                })?;
            offsets.push(len);
        }
        Ok(CsrAdjacency { offsets, targets })
    }

    /// The number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The number of directed adjacency entries (twice the edge count).
    pub fn num_entries(&self) -> usize {
        self.targets.len()
    }

    /// The neighbors of `node` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn neighbors(&self, node: usize) -> &[u32] {
        let start = self.offsets[node] as usize;
        let end = self.offsets[node + 1] as usize;
        &self.targets[start..end]
    }

    /// The degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn degree(&self, node: usize) -> usize {
        (self.offsets[node + 1] - self.offsets[node]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn csr_matches_implicit_adjacency() {
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[4, 5])),
            Grid::hypercube(5).unwrap(),
            Grid::ring(11).unwrap(),
        ] {
            let csr = CsrAdjacency::build(&grid).unwrap();
            assert_eq!(csr.num_nodes() as u64, grid.size());
            assert_eq!(csr.num_entries() as u64, 2 * grid.num_edges());
            for x in grid.nodes() {
                let mut expected = grid.neighbors(x).unwrap();
                let mut actual: Vec<u64> = csr
                    .neighbors(x as usize)
                    .iter()
                    .map(|&y| y as u64)
                    .collect();
                expected.sort_unstable();
                actual.sort_unstable();
                assert_eq!(expected, actual, "adjacency of node {x} in {grid}");
                assert_eq!(csr.degree(x as usize), expected.len());
            }
        }
    }

    #[test]
    fn degrees_sum_to_entries() {
        let grid = Grid::mesh(shape(&[6, 7]));
        let csr = CsrAdjacency::build(&grid).unwrap();
        let total: usize = (0..csr.num_nodes()).map(|x| csr.degree(x)).sum();
        assert_eq!(total, csr.num_entries());
    }
}
