//! Closed-form network metrics for toruses and meshes.
//!
//! The embedding theorems of the paper reason about dilation only, but when a
//! torus or mesh is used as the topology of an interconnection network the
//! usual architectural figures of merit also matter: number of links, node
//! degrees, diameter, mean internode distance, and bisection width. All of
//! them have closed forms for toruses and meshes; this module provides those
//! closed forms plus small exhaustive oracles used to validate them in tests.

use std::collections::BTreeMap;

use crate::error::{Result, TopologyError};
use crate::grid::{GraphKind, Grid};

/// A bundle of the standard interconnection-network figures of merit for a
/// torus or mesh, all computed from closed forms in `O(dimension)` time.
#[derive(Clone, Debug, PartialEq)]
pub struct GridMetrics {
    /// Number of nodes.
    pub nodes: u64,
    /// Number of undirected links.
    pub edges: u64,
    /// Minimum node degree.
    pub min_degree: usize,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Diameter (maximum internode distance).
    pub diameter: u64,
    /// Mean internode distance over all ordered node pairs (self pairs
    /// included, which keeps the per-dimension expectations independent).
    pub mean_distance: f64,
    /// Link count of the best axis-aligned (near-)bisection cut.
    pub bisection_width: u64,
}

impl GridMetrics {
    /// Measures every metric of `grid`.
    pub fn measure(grid: &Grid) -> GridMetrics {
        GridMetrics {
            nodes: grid.size(),
            edges: grid.num_edges(),
            min_degree: min_degree(grid),
            max_degree: grid.max_degree(),
            diameter: grid.diameter(),
            mean_distance: mean_distance(grid),
            bisection_width: bisection_width(grid),
        }
    }
}

/// The number of undirected links contributed by each dimension.
///
/// For dimension `j` of length `l`, a mesh contributes `n/l · (l − 1)` links
/// and a torus contributes `n` links (`n/2` when `l = 2`, because the "ring"
/// of length 2 degenerates to a single edge).
pub fn edges_per_dimension(grid: &Grid) -> Vec<u64> {
    let n = grid.size();
    (0..grid.dim())
        .map(|j| {
            let l = grid.shape().radix(j) as u64;
            match grid.kind() {
                GraphKind::Torus => {
                    if l > 2 {
                        n
                    } else {
                        n / 2
                    }
                }
                GraphKind::Mesh => n / l * (l - 1),
            }
        })
        .collect()
}

/// The minimum node degree.
///
/// Every torus is regular. In a mesh the minimum is attained at a corner
/// node, which has one neighbor per dimension.
pub fn min_degree(grid: &Grid) -> usize {
    match grid.kind() {
        GraphKind::Torus => grid.max_degree(),
        GraphKind::Mesh => grid.dim(),
    }
}

/// The distribution of node degrees: degree → number of nodes of that degree.
///
/// Computed by convolving the per-dimension contributions (a node gains 1 or
/// 2 neighbors per dimension depending on whether its coordinate sits on a
/// boundary), so the cost is `O(dimension² · max degree)` — no node sweep.
pub fn degree_histogram(grid: &Grid) -> BTreeMap<usize, u64> {
    let mut histogram: BTreeMap<usize, u64> = BTreeMap::new();
    histogram.insert(0, 1);
    for j in 0..grid.dim() {
        let l = grid.shape().radix(j) as u64;
        // contribution → number of coordinate values with that contribution
        let contributions: Vec<(usize, u64)> = match grid.kind() {
            GraphKind::Torus => {
                if l > 2 {
                    vec![(2, l)]
                } else {
                    vec![(1, l)]
                }
            }
            GraphKind::Mesh => {
                if l > 2 {
                    vec![(1, 2), (2, l - 2)]
                } else {
                    vec![(1, l)]
                }
            }
        };
        let mut next: BTreeMap<usize, u64> = BTreeMap::new();
        for (&degree, &count) in &histogram {
            for &(extra, values) in &contributions {
                *next.entry(degree + extra).or_insert(0) += count * values;
            }
        }
        histogram = next;
    }
    histogram
}

/// The mean distance contributed by a single mesh dimension of length `l`,
/// over ordered pairs of coordinate values: `(l² − 1) / 3l`.
pub fn mean_distance_mesh_dimension(l: u64) -> f64 {
    ((l * l - 1) as f64) / (3.0 * l as f64)
}

/// The mean distance contributed by a single torus dimension of length `l`,
/// over ordered pairs of coordinate values: `l/4` for even `l`,
/// `(l² − 1) / 4l` for odd `l`.
pub fn mean_distance_torus_dimension(l: u64) -> f64 {
    if l.is_multiple_of(2) {
        l as f64 / 4.0
    } else {
        ((l * l - 1) as f64) / (4.0 * l as f64)
    }
}

/// The mean internode distance over all ordered node pairs (self pairs
/// included), in closed form.
///
/// Distances in a torus or mesh decompose into independent per-dimension
/// terms (Lemmas 5 and 6), so the mean is the sum of the per-dimension means.
pub fn mean_distance(grid: &Grid) -> f64 {
    (0..grid.dim())
        .map(|j| {
            let l = grid.shape().radix(j) as u64;
            match grid.kind() {
                GraphKind::Torus => mean_distance_torus_dimension(l),
                GraphKind::Mesh => mean_distance_mesh_dimension(l),
            }
        })
        .sum()
}

/// The mean internode distance measured exhaustively over all ordered pairs —
/// an `O(n²·d)` oracle used to validate [`mean_distance`].
///
/// # Errors
///
/// Returns [`TopologyError::NodeOutOfRange`] never, and an error for graphs
/// with more than 2¹² nodes (the quadratic sweep would be too slow to be a
/// useful oracle).
pub fn mean_distance_exhaustive(grid: &Grid) -> Result<f64> {
    const LIMIT: u64 = 1 << 12;
    let n = grid.size();
    if n > LIMIT {
        return Err(TopologyError::InvalidCoordinate {
            reason: format!("exhaustive mean distance is limited to {LIMIT} nodes, got {n}"),
        });
    }
    let coords: Vec<_> = grid.coords().collect();
    let mut total = 0u64;
    for a in &coords {
        for b in &coords {
            total += grid.distance(a, b);
        }
    }
    Ok(total as f64 / (n as f64 * n as f64))
}

/// The number of links cut by the best axis-aligned bisection.
///
/// Cutting dimension `j` in half severs one link per line of that dimension
/// in a mesh (`n / l_j` links) and two per ring in a torus (`2n / l_j` links,
/// or `n / l_j` when `l_j = 2` and the ring degenerates to one edge). The
/// reported width is the minimum over dimensions; it is the exact bisection
/// width when the chosen dimension has even length (always the case for
/// hypercubes and even-sized square grids) and the standard near-bisection
/// figure otherwise.
pub fn bisection_width(grid: &Grid) -> u64 {
    let n = grid.size();
    (0..grid.dim())
        .map(|j| {
            let l = grid.shape().radix(j) as u64;
            match grid.kind() {
                GraphKind::Torus => {
                    if l > 2 {
                        2 * n / l
                    } else {
                        n / l
                    }
                }
                GraphKind::Mesh => n / l,
            }
        })
        .min()
        .unwrap_or(0)
}

/// The exhaustively measured cut size of splitting the grid across dimension
/// `j` at the midpoint — an oracle for [`bisection_width`] on small graphs.
///
/// # Errors
///
/// Returns an error if `j` is not a dimension of the grid.
pub fn axis_cut_exhaustive(grid: &Grid, j: usize) -> Result<u64> {
    if j >= grid.dim() {
        return Err(TopologyError::InvalidCoordinate {
            reason: format!("dimension {j} out of range for {grid}"),
        });
    }
    let l = grid.shape().radix(j);
    let half = l / 2;
    let mut cut = 0u64;
    for (a, b) in grid.edges() {
        let ca = grid.coord(a)?;
        let cb = grid.coord(b)?;
        let (da, db) = (ca.get(j), cb.get(j));
        // A link is cut when its endpoints land on different sides of the
        // split {0, …, half−1} | {half, …, l−1}.
        if (da < half) != (db < half) {
            cut += 1;
        }
    }
    Ok(cut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    fn all_grids() -> Vec<Grid> {
        vec![
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[5, 5])),
            Grid::torus(shape(&[5, 5])),
            Grid::mesh(shape(&[8, 8])),
            Grid::torus(shape(&[8, 8])),
            Grid::hypercube(4).unwrap(),
            Grid::line(9).unwrap(),
            Grid::ring(9).unwrap(),
            Grid::mesh(shape(&[2, 3, 2, 3])),
            Grid::torus(shape(&[2, 3, 2, 3])),
        ]
    }

    #[test]
    fn edges_per_dimension_sums_to_num_edges() {
        for grid in all_grids() {
            let per_dim = edges_per_dimension(&grid);
            assert_eq!(per_dim.len(), grid.dim());
            assert_eq!(per_dim.iter().sum::<u64>(), grid.num_edges(), "{grid}");
        }
    }

    #[test]
    fn degree_histogram_matches_node_sweep() {
        for grid in all_grids() {
            let histogram = degree_histogram(&grid);
            let total: u64 = histogram.values().sum();
            assert_eq!(total, grid.size(), "{grid}");
            let mut swept: BTreeMap<usize, u64> = BTreeMap::new();
            for x in grid.nodes() {
                *swept.entry(grid.degree(x).unwrap()).or_insert(0) += 1;
            }
            assert_eq!(histogram, swept, "{grid}");
        }
    }

    #[test]
    fn min_degree_matches_node_sweep() {
        for grid in all_grids() {
            let swept = grid.nodes().map(|x| grid.degree(x).unwrap()).min().unwrap();
            assert_eq!(min_degree(&grid), swept, "{grid}");
        }
    }

    #[test]
    fn mean_distance_matches_exhaustive_oracle() {
        for grid in all_grids() {
            let closed = mean_distance(&grid);
            let exact = mean_distance_exhaustive(&grid).unwrap();
            assert!(
                (closed - exact).abs() < 1e-9,
                "{grid}: closed {closed}, exhaustive {exact}"
            );
        }
    }

    #[test]
    fn mean_distance_exhaustive_rejects_large_graphs() {
        let grid = Grid::mesh(shape(&[70, 70]));
        assert!(mean_distance_exhaustive(&grid).is_err());
    }

    #[test]
    fn per_dimension_means_match_direct_sums() {
        for l in 2..20u64 {
            let mesh: u64 = (0..l)
                .flat_map(|i| (0..l).map(move |j| i.abs_diff(j)))
                .sum();
            assert!((mean_distance_mesh_dimension(l) - mesh as f64 / (l * l) as f64).abs() < 1e-12);
            let torus: u64 = (0..l)
                .flat_map(|i| (0..l).map(move |j| i.abs_diff(j).min(l - i.abs_diff(j))))
                .sum();
            assert!(
                (mean_distance_torus_dimension(l) - torus as f64 / (l * l) as f64).abs() < 1e-12
            );
        }
    }

    #[test]
    fn bisection_width_of_classic_topologies() {
        // 8×8 mesh: 8 links; 8×8 torus: 16 links; hypercube of 2^d nodes: 2^{d−1}.
        assert_eq!(bisection_width(&Grid::mesh(shape(&[8, 8]))), 8);
        assert_eq!(bisection_width(&Grid::torus(shape(&[8, 8]))), 16);
        for d in 2..8 {
            assert_eq!(bisection_width(&Grid::hypercube(d).unwrap()), 1 << (d - 1));
        }
        // A line is bisected by one link, a ring (length > 2) by two.
        assert_eq!(bisection_width(&Grid::line(10).unwrap()), 1);
        assert_eq!(bisection_width(&Grid::ring(10).unwrap()), 2);
    }

    #[test]
    fn bisection_width_matches_axis_cut_on_even_dimensions() {
        for grid in [
            Grid::mesh(shape(&[8, 8])),
            Grid::torus(shape(&[8, 8])),
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[4, 2, 3])),
            Grid::hypercube(4).unwrap(),
        ] {
            let best_even = (0..grid.dim())
                .filter(|&j| grid.shape().radix(j) % 2 == 0)
                .map(|j| axis_cut_exhaustive(&grid, j).unwrap())
                .min();
            if let Some(cut) = best_even {
                // The closed form picks the global minimum over all axes, so it
                // can only be ≤ the best even-axis cut; for these shapes the
                // longest dimension is even, so they agree exactly.
                assert_eq!(bisection_width(&grid), cut, "{grid}");
            }
        }
    }

    #[test]
    fn axis_cut_rejects_bad_dimension() {
        let grid = Grid::mesh(shape(&[3, 3]));
        assert!(axis_cut_exhaustive(&grid, 2).is_err());
    }

    #[test]
    fn grid_metrics_bundle_is_consistent() {
        for grid in all_grids() {
            let m = GridMetrics::measure(&grid);
            assert_eq!(m.nodes, grid.size());
            assert_eq!(m.edges, grid.num_edges());
            assert_eq!(m.diameter, grid.diameter());
            assert!(m.min_degree <= m.max_degree);
            assert!(m.mean_distance <= m.diameter as f64);
            assert!(m.bisection_width >= 1);
            assert!(m.bisection_width <= m.edges);
        }
    }

    #[test]
    fn torus_metrics_dominate_mesh_metrics_of_the_same_shape() {
        // Adding wrap-around links can only add edges and bisection width, and
        // can only shrink diameter and mean distance.
        for radices in [&[4, 2, 3][..], &[5, 5], &[8, 8], &[3, 3, 3]] {
            let mesh = GridMetrics::measure(&Grid::mesh(shape(radices)));
            let torus = GridMetrics::measure(&Grid::torus(shape(radices)));
            assert!(torus.edges >= mesh.edges);
            assert!(torus.bisection_width >= mesh.bisection_width);
            assert!(torus.diameter <= mesh.diameter);
            assert!(torus.mean_distance <= mesh.mean_distance + 1e-12);
        }
    }
}
