//! Small fork–join helpers built on crossbeam scoped threads.
//!
//! The embeddings crate measures dilation by folding over every edge of `G`;
//! for graphs with millions of edges that sweep is embarrassingly parallel.
//! Rather than pulling in a full work-stealing runtime, these helpers split an
//! index range into contiguous chunks, run one worker per chunk on a scoped
//! thread, and combine the partial results — the fan-out/fan-in shape is all
//! the library needs.

use std::num::NonZeroUsize;
use std::ops::Range;

/// SplitMix64: a full-avalanche bit mixer for deriving independent seeds
/// from a base seed and an index (per explab trial, per annealing shard).
/// One shared copy lives here — the crate every seeded fan-out already
/// depends on — so the constants can never drift apart between consumers.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A reasonable default worker count: the machine's available parallelism,
/// capped at 16 (the sweeps here saturate memory bandwidth well before that).
pub fn recommended_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(16)
}

/// Splits `0..total` into at most `parts` contiguous, nearly equal chunks.
/// Empty chunks are omitted.
pub fn split_range(total: u64, parts: usize) -> Vec<Range<u64>> {
    if total == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts
        .min(usize::try_from(total).unwrap_or(usize::MAX))
        .max(1);
    let chunk = total / parts as u64;
    let remainder = total % parts as u64;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0u64;
    for i in 0..parts as u64 {
        let len = chunk + if i < remainder { 1 } else { 0 };
        if len == 0 {
            continue;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Applies `map` to each chunk of `0..total` in parallel and folds the chunk
/// results with `reduce`, starting from `identity`.
///
/// With `threads <= 1` (or a trivially small range) the computation runs on
/// the calling thread, which keeps the function cheap to use unconditionally.
pub fn parallel_map_reduce<R, M, Rd>(
    total: u64,
    threads: usize,
    identity: R,
    map: M,
    reduce: Rd,
) -> R
where
    R: Send,
    M: Fn(Range<u64>) -> R + Sync,
    Rd: Fn(R, R) -> R,
{
    let ranges = split_range(total, threads.max(1));
    if ranges.is_empty() {
        return identity;
    }
    if ranges.len() == 1 {
        return reduce(identity, map(ranges.into_iter().next().expect("one range")));
    }
    let partials: Vec<R> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(|_| map(range)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("crossbeam scope");
    partials.into_iter().fold(identity, reduce)
}

/// Computes the maximum of `f(x)` over `x ∈ 0..total` in parallel.
pub fn parallel_max<F>(total: u64, threads: usize, f: F) -> u64
where
    F: Fn(u64) -> u64 + Sync,
{
    parallel_map_reduce(
        total,
        threads,
        0u64,
        |range| range.map(&f).max().unwrap_or(0),
        u64::max,
    )
}

/// Computes the sum of `f(x)` over `x ∈ 0..total` in parallel.
pub fn parallel_sum<F>(total: u64, threads: usize, f: F) -> u64
where
    F: Fn(u64) -> u64 + Sync,
{
    parallel_map_reduce(
        total,
        threads,
        0u64,
        |range| range.map(&f).sum::<u64>(),
        |a, b| a + b,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_range_covers_everything_once() {
        for total in [0u64, 1, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = split_range(total, parts);
                let mut covered = 0u64;
                let mut prev_end = 0u64;
                for r in &ranges {
                    assert_eq!(r.start, prev_end, "ranges must be contiguous");
                    assert!(r.end > r.start);
                    covered += r.end - r.start;
                    prev_end = r.end;
                }
                assert_eq!(covered, total);
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        let f = |x: u64| x * x % 97;
        let sequential: u64 = (0..10_000).map(f).sum();
        for threads in [1, 2, 4, 8] {
            assert_eq!(parallel_sum(10_000, threads, f), sequential);
        }
    }

    #[test]
    fn parallel_max_matches_sequential() {
        let f = |x: u64| (x * 2654435761) % 100_000;
        let sequential = (0..50_000).map(f).max().unwrap();
        for threads in [1, 3, 7] {
            assert_eq!(parallel_max(50_000, threads, f), sequential);
        }
    }

    #[test]
    fn empty_ranges_return_identity() {
        assert_eq!(parallel_sum(0, 4, |_| 1), 0);
        assert_eq!(parallel_max(0, 4, |_| 1), 0);
        let r = parallel_map_reduce(0, 0, 42u64, |_| 0, |a, b| a + b);
        assert_eq!(r, 42);
    }

    #[test]
    fn map_reduce_with_vectors() {
        // Collect squares in order by reducing vectors of (index, value).
        let result = parallel_map_reduce(
            100,
            4,
            Vec::new(),
            |range| range.map(|x| (x, x * x)).collect::<Vec<_>>(),
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        let mut sorted = result.clone();
        sorted.sort_by_key(|&(i, _)| i);
        assert_eq!(sorted.len(), 100);
        for (i, (idx, sq)) in sorted.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*sq, (i * i) as u64);
        }
    }
}
