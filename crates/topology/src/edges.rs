//! Edge iteration for toruses and meshes.

use crate::grid::{GraphKind, Grid};

/// Iterates over every undirected edge of a [`Grid`] exactly once, yielding
/// pairs of linear node indices `(x, y)`.
///
/// For each node and each dimension the iterator emits the edge obtained by
/// *increasing* the coordinate in that dimension (modulo the length for
/// toruses). This enumerates every mesh edge once; for torus dimensions of
/// length 2 the wrap-around edge coincides with the increasing edge, and is
/// emitted only from the node whose coordinate is 0.
pub struct EdgeIter<'a> {
    grid: &'a Grid,
    node: u64,
    coord: Option<mixedradix::Digits>,
    dim: usize,
}

impl<'a> EdgeIter<'a> {
    /// Creates an iterator over all edges of `grid`.
    pub fn new(grid: &'a Grid) -> Self {
        let coord = if grid.size() > 0 {
            Some(grid.coord(0).expect("node 0 exists"))
        } else {
            None
        };
        EdgeIter {
            grid,
            node: 0,
            coord,
            dim: 0,
        }
    }

    fn advance_node(&mut self) {
        self.node += 1;
        self.dim = 0;
        self.coord = if self.node < self.grid.size() {
            Some(self.grid.coord(self.node).expect("node in range"))
        } else {
            None
        };
    }
}

impl<'a> Iterator for EdgeIter<'a> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        loop {
            let coord = self.coord?;
            if self.dim >= self.grid.dim() {
                self.advance_node();
                continue;
            }
            let j = self.dim;
            self.dim += 1;

            let l = self.grid.shape().radix(j);
            let i = coord.get(j);
            // Weight of digit j: increasing digit j by one adds weight(j+1).
            let w = self.grid.shape().weight(j + 1);
            match self.grid.kind() {
                GraphKind::Mesh => {
                    if i < l - 1 {
                        return Some((self.node, self.node + w));
                    }
                }
                GraphKind::Torus => {
                    if l == 2 {
                        if i == 0 {
                            return Some((self.node, self.node + w));
                        }
                    } else if i < l - 1 {
                        return Some((self.node, self.node + w));
                    } else {
                        // Wrap-around edge from the last coordinate back to 0.
                        return Some((self.node, self.node - (l as u64 - 1) * w));
                    }
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // A cheap upper bound; exact counting would require scanning.
        let upper = (self.grid.num_edges()) as usize;
        (0, Some(upper))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;
    use std::collections::HashSet;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    fn edge_set(grid: &Grid) -> HashSet<(u64, u64)> {
        grid.edges().map(|(a, b)| (a.min(b), a.max(b))).collect()
    }

    #[test]
    fn edge_count_matches_num_edges() {
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[2, 2, 2])),
            Grid::mesh(shape(&[2, 2, 2])),
            Grid::ring(8).unwrap(),
            Grid::line(8).unwrap(),
            Grid::torus(shape(&[3, 5])),
        ] {
            let edges: Vec<(u64, u64)> = grid.edges().collect();
            assert_eq!(edges.len() as u64, grid.num_edges(), "count for {grid}");
            // No duplicates (as unordered pairs) and no self-loops.
            let set = edge_set(&grid);
            assert_eq!(set.len(), edges.len(), "duplicates for {grid}");
            assert!(edges.iter().all(|&(a, b)| a != b));
        }
    }

    #[test]
    fn every_edge_joins_adjacent_nodes() {
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[3, 3, 3])),
            Grid::hypercube(4).unwrap(),
        ] {
            for (a, b) in grid.edges() {
                assert_eq!(
                    grid.distance_index(a, b).unwrap(),
                    1,
                    "edge ({a},{b}) in {grid}"
                );
            }
        }
    }

    #[test]
    fn edges_cover_all_adjacencies() {
        for grid in [
            Grid::torus(shape(&[4, 3])),
            Grid::mesh(shape(&[4, 3])),
            Grid::torus(shape(&[2, 4])),
        ] {
            let set = edge_set(&grid);
            for x in grid.nodes() {
                for y in grid.neighbors(x).unwrap() {
                    assert!(
                        set.contains(&(x.min(y), x.max(y))),
                        "missing edge ({x},{y}) in {grid}"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_and_line_edges() {
        let ring = Grid::ring(5).unwrap();
        let edges = edge_set(&ring);
        assert_eq!(edges.len(), 5);
        assert!(edges.contains(&(0, 4)), "ring wrap-around edge");

        let line = Grid::line(5).unwrap();
        let edges = edge_set(&line);
        assert_eq!(edges.len(), 4);
        assert!(!edges.contains(&(0, 4)));
    }

    #[test]
    fn ring_of_size_two_has_one_edge() {
        let ring = Grid::ring(2).unwrap();
        let edges: Vec<_> = ring.edges().collect();
        assert_eq!(edges, vec![(0, 1)]);
    }
}
