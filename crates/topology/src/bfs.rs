//! Breadth-first search — an independent shortest-path oracle.
//!
//! The closed-form distance formulas of Lemmas 5 and 6 are the workhorse of
//! the embeddings crate; BFS provides an implementation-independent way of
//! validating them (and of measuring distances in graphs that are *not*
//! toruses or meshes, such as the image of an embedding restricted to a
//! subgraph).

use std::collections::VecDeque;

use crate::error::{Result, TopologyError};
use crate::grid::Grid;

/// Single-source shortest-path distances computed by BFS.
///
/// `u64::MAX` marks unreachable nodes (never the case in a connected torus or
/// mesh, but kept for generality).
#[derive(Clone, Debug)]
pub struct BfsDistances {
    source: u64,
    distances: Vec<u64>,
}

impl BfsDistances {
    /// The source node.
    pub fn source(&self) -> u64 {
        self.source
    }

    /// The distance from the source to `node`.
    ///
    /// # Errors
    ///
    /// Returns an error if `node` is out of range.
    pub fn distance(&self, node: u64) -> Result<u64> {
        self.distances
            .get(node as usize)
            .copied()
            .ok_or(TopologyError::NodeOutOfRange {
                node,
                size: self.distances.len() as u64,
            })
    }

    /// All distances, indexed by node.
    pub fn as_slice(&self) -> &[u64] {
        &self.distances
    }

    /// The eccentricity of the source (maximum distance to any node).
    pub fn eccentricity(&self) -> u64 {
        self.distances.iter().copied().max().unwrap_or(0)
    }
}

/// Runs BFS from `source` over `grid`.
///
/// # Errors
///
/// Returns an error if `source` is out of range.
pub fn bfs(grid: &Grid, source: u64) -> Result<BfsDistances> {
    if source >= grid.size() {
        return Err(TopologyError::NodeOutOfRange {
            node: source,
            size: grid.size(),
        });
    }
    let n = usize::try_from(grid.size()).expect("graph fits in memory for BFS");
    let mut distances = vec![u64::MAX; n];
    let mut queue = VecDeque::new();
    distances[source as usize] = 0;
    queue.push_back(source);
    while let Some(x) = queue.pop_front() {
        let dx = distances[x as usize];
        for y in grid.neighbors(x)? {
            let dy = &mut distances[y as usize];
            if *dy == u64::MAX {
                *dy = dx + 1;
                queue.push_back(y);
            }
        }
    }
    Ok(BfsDistances { source, distances })
}

/// Verifies that the closed-form distance of the grid matches BFS from
/// `source` for every target node. Returns the first mismatch, if any.
///
/// # Errors
///
/// Returns an error if `source` is out of range.
pub fn check_distances_from(grid: &Grid, source: u64) -> Result<Option<(u64, u64, u64)>> {
    let bfs = bfs(grid, source)?;
    for target in grid.nodes() {
        let formula = grid.distance_index(source, target)?;
        let walked = bfs.distance(target)?;
        if formula != walked {
            return Ok(Some((target, formula, walked)));
        }
    }
    Ok(None)
}

/// The diameter of `grid` measured purely by BFS (O(n·m); for tests only).
///
/// # Errors
///
/// Propagates node-range errors (none occur for a well-formed grid).
pub fn bfs_diameter(grid: &Grid) -> Result<u64> {
    let mut diameter = 0;
    for source in grid.nodes() {
        diameter = diameter.max(bfs(grid, source)?.eccentricity());
    }
    Ok(diameter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn bfs_agrees_with_closed_form_distances() {
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[5, 3])),
            Grid::mesh(shape(&[5, 3])),
            Grid::hypercube(4).unwrap(),
            Grid::ring(9).unwrap(),
            Grid::line(9).unwrap(),
            Grid::torus(shape(&[2, 2, 3])),
        ] {
            for source in grid.nodes() {
                assert_eq!(
                    check_distances_from(&grid, source).unwrap(),
                    None,
                    "distance mismatch in {grid} from {source}"
                );
            }
        }
    }

    #[test]
    fn bfs_diameter_matches_formula() {
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[3, 3])),
            Grid::mesh(shape(&[2, 5])),
            Grid::hypercube(3).unwrap(),
        ] {
            assert_eq!(
                bfs_diameter(&grid).unwrap(),
                grid.diameter(),
                "diameter of {grid}"
            );
        }
    }

    #[test]
    fn toruses_and_meshes_are_connected() {
        for grid in [
            Grid::torus(shape(&[3, 4])),
            Grid::mesh(shape(&[3, 4])),
            Grid::hypercube(5).unwrap(),
        ] {
            let d = bfs(&grid, 0).unwrap();
            assert!(d.as_slice().iter().all(|&x| x != u64::MAX));
        }
    }

    #[test]
    fn source_out_of_range_is_an_error() {
        let grid = Grid::ring(4).unwrap();
        assert!(bfs(&grid, 4).is_err());
        let d = bfs(&grid, 0).unwrap();
        assert!(d.distance(10).is_err());
        assert_eq!(d.source(), 0);
        assert_eq!(d.eccentricity(), 2);
    }
}
