//! The shared dimension-ordered next-hop rule.
//!
//! Both the congestion model in the `embeddings` crate and the simulator in
//! the `netsim` crate route along dimension-ordered shortest paths: correct
//! the first differing dimension (in a caller-chosen order), moving along the
//! shorter arc on toruses and breaking equidistant-arc ties in the *forward*
//! (+1) direction. Keeping the rule in one place guarantees the two crates
//! can never silently disagree about which arc a tied route takes.
//!
//! Two entry points are provided:
//!
//! * [`next_hop_toward`] — the simple form: build and return the next
//!   coordinate (`Coord` is `Copy`, so this never allocates);
//! * [`advance_toward`] — the batched form: mutate a coordinate *and* its
//!   linear index in place and report which dimension/direction was taken,
//!   so sweeps over millions of hops never re-encode a coordinate.

use crate::grid::Grid;
use crate::Coord;

/// One dimension-ordered hop, as reported by [`advance_toward`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopTaken {
    /// The dimension that was corrected.
    pub dim: usize,
    /// Whether the step went in the forward (+1) direction. Equidistant
    /// torus arcs always step forward (the tie-break rule).
    pub forward: bool,
    /// Whether the step used a torus wrap-around edge.
    pub wrapped: bool,
}

/// The dimension to correct and the direction to step, under the shared
/// rule: the first dimension in `dims` whose coordinates differ, stepping
/// `+1` on meshes when the target is larger (else `-1`), and along the
/// shorter arc on toruses with ties broken toward `+1`.
///
/// Returns `None` when `from == to` on every dimension in `dims`.
#[inline]
fn dor_step(grid: &Grid, from: &Coord, to: &Coord, dims: &[usize]) -> Option<(usize, bool)> {
    for &j in dims {
        let (x, y) = (from.get(j), to.get(j));
        if x == y {
            continue;
        }
        let forward = if grid.is_torus() {
            let l = grid.shape().radix(j) as i64;
            let ahead = (y as i64 - x as i64).rem_euclid(l);
            let behind = (x as i64 - y as i64).rem_euclid(l);
            // Shorter arc; equidistant arcs take the forward direction.
            ahead <= behind
        } else {
            y > x
        };
        return Some((j, forward));
    }
    None
}

/// The next hop from `from` toward `to`, correcting dimensions in the order
/// given by `dims` and taking the shorter arc on toruses (ties forward).
///
/// Returns `None` when the coordinates already agree on every dimension in
/// `dims`. This is the one dimension-ordered routing rule shared by
/// `embeddings::congestion` and `netsim`.
///
/// # Panics
///
/// Panics if a coordinate has the wrong dimension or a dimension index in
/// `dims` is out of range.
pub fn next_hop_toward(grid: &Grid, from: &Coord, to: &Coord, dims: &[usize]) -> Option<Coord> {
    let (j, forward) = dor_step(grid, from, to, dims)?;
    let l = grid.shape().radix(j);
    let x = from.get(j);
    let step: i64 = if forward { 1 } else { -1 };
    let mut next = *from;
    next.set(j, (x as i64 + step).rem_euclid(l as i64) as u32);
    Some(next)
}

/// Takes one dimension-ordered hop in place: advances `current` (and its
/// linear index `current_index`) one step toward `target` and reports the
/// dimension, direction and wrap-around status of the step.
///
/// The index is updated incrementally from the shape's weights, so a routed
/// sweep costs `O(d)` per hop with no re-encoding and no allocation.
/// Returns `None` (leaving both values untouched) once `current == target`.
///
/// # Panics
///
/// Panics if a coordinate has the wrong dimension, a dimension index in
/// `dims` is out of range, or `current_index` is not the index of `current`.
pub fn advance_toward(
    grid: &Grid,
    current: &mut Coord,
    current_index: &mut u64,
    target: &Coord,
    dims: &[usize],
) -> Option<HopTaken> {
    let (j, forward) = dor_step(grid, current, target, dims)?;
    let l = grid.shape().radix(j);
    let w = grid.shape().weight(j + 1);
    let x = current.get(j);
    let (next_digit, wrapped) = if forward {
        if x + 1 == l {
            (0, true)
        } else {
            (x + 1, false)
        }
    } else if x == 0 {
        (l - 1, true)
    } else {
        (x - 1, false)
    };
    debug_assert!(!wrapped || grid.is_torus(), "meshes never wrap");
    current.set(j, next_digit);
    *current_index = match (forward, wrapped) {
        (true, false) => *current_index + w,
        (true, true) => *current_index - (l as u64 - 1) * w,
        (false, false) => *current_index - w,
        (false, true) => *current_index + (l as u64 - 1) * w,
    };
    Some(HopTaken {
        dim: j,
        forward,
        wrapped,
    })
}

/// The canonical undirected-link slot of the hop that [`advance_toward`]
/// just took, for use with a flat `Vec` of [`Grid::link_count`] load
/// counters.
///
/// Every physical link is identified with its forward traversal, i.e. the
/// [`Grid::link_index`] of the endpoint whose step along `hop.dim` in the
/// `+1` direction (wrapping on toruses) reaches the other endpoint. For the
/// doubly-covered links of length-2 torus dimensions the endpoint with
/// coordinate 0 is the canonical tail. `before` and `after` are the node
/// indices on either side of the hop.
#[inline]
pub fn link_slot_of_hop(grid: &Grid, hop: HopTaken, before: u64, after: u64) -> u64 {
    let l = grid.shape().radix(hop.dim);
    let tail = if hop.forward && !(hop.wrapped && l == 2) {
        before
    } else {
        after
    };
    grid.link_index(tail, hop.dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    fn coord(digits: &[u32]) -> Coord {
        Coord::from_slice(digits).unwrap()
    }

    fn forward_dims(grid: &Grid) -> Vec<usize> {
        (0..grid.dim()).collect()
    }

    #[test]
    fn equidistant_torus_arcs_break_ties_forward() {
        // Even radices put the antipode at exactly l/2 in both directions;
        // the rule must pick the forward (+1) arc, never the backward one.
        let ring = Grid::ring(4).unwrap();
        let next = next_hop_toward(&ring, &coord(&[0]), &coord(&[2]), &[0]).unwrap();
        assert_eq!(next, coord(&[1]));

        let torus = Grid::torus(shape(&[6, 6]));
        let next = next_hop_toward(&torus, &coord(&[0, 0]), &coord(&[3, 0]), &[0, 1]).unwrap();
        assert_eq!(next, coord(&[1, 0]));
        // … including from a nonzero starting coordinate.
        let next = next_hop_toward(&torus, &coord(&[5, 2]), &coord(&[2, 2]), &[0, 1]).unwrap();
        assert_eq!(next, coord(&[0, 2]));
    }

    #[test]
    fn hops_walk_shortest_paths() {
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[5, 3])),
            Grid::hypercube(4).unwrap(),
        ] {
            let dims = forward_dims(&grid);
            for a in grid.nodes() {
                for b in grid.nodes() {
                    let target = grid.coord(b).unwrap();
                    let mut current = grid.coord(a).unwrap();
                    let mut hops = 0u64;
                    while let Some(next) = next_hop_toward(&grid, &current, &target, &dims) {
                        assert_eq!(grid.distance(&current, &next), 1);
                        current = next;
                        hops += 1;
                        assert!(hops <= grid.diameter(), "non-terminating route");
                    }
                    assert_eq!(current, target);
                    assert_eq!(hops, grid.distance_index(a, b).unwrap(), "{grid} {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn advance_toward_agrees_with_next_hop_toward() {
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[3, 5])),
            Grid::ring(8).unwrap(),
        ] {
            let dims = forward_dims(&grid);
            for a in grid.nodes() {
                for b in grid.nodes() {
                    let target = grid.coord(b).unwrap();
                    let mut current = grid.coord(a).unwrap();
                    let mut index = a;
                    loop {
                        let expected = next_hop_toward(&grid, &current, &target, &dims);
                        let before = index;
                        match advance_toward(&grid, &mut current, &mut index, &target, &dims) {
                            None => {
                                assert!(expected.is_none());
                                break;
                            }
                            Some(hop) => {
                                assert_eq!(Some(current), expected);
                                assert_eq!(grid.index(&current).unwrap(), index);
                                // The canonical link slot is shared by both
                                // traversal directions of the same link.
                                let slot = link_slot_of_hop(&grid, hop, before, index);
                                assert!(slot < grid.link_count());
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn link_slots_are_direction_independent() {
        // Route every adjacent pair in both directions: the two traversals
        // of one physical link must land in the same canonical slot.
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[3, 4])),
            Grid::ring(2).unwrap(),
            Grid::torus(shape(&[2, 2])),
        ] {
            let dims = forward_dims(&grid);
            for a in grid.nodes() {
                for b in grid.neighbors(a).unwrap() {
                    let slot_ab = {
                        let mut c = grid.coord(a).unwrap();
                        let mut i = a;
                        let hop =
                            advance_toward(&grid, &mut c, &mut i, &grid.coord(b).unwrap(), &dims)
                                .unwrap();
                        link_slot_of_hop(&grid, hop, a, i)
                    };
                    let slot_ba = {
                        let mut c = grid.coord(b).unwrap();
                        let mut i = b;
                        let hop =
                            advance_toward(&grid, &mut c, &mut i, &grid.coord(a).unwrap(), &dims)
                                .unwrap();
                        link_slot_of_hop(&grid, hop, b, i)
                    };
                    assert_eq!(slot_ab, slot_ba, "{grid} link {a}-{b}");
                }
            }
        }
    }

    #[test]
    fn respects_dimension_order() {
        let mesh = Grid::mesh(shape(&[3, 3]));
        let from = coord(&[0, 0]);
        let to = coord(&[2, 2]);
        // Forward order corrects dimension 0 first, reverse order dimension 1.
        assert_eq!(
            next_hop_toward(&mesh, &from, &to, &[0, 1]).unwrap(),
            coord(&[1, 0])
        );
        assert_eq!(
            next_hop_toward(&mesh, &from, &to, &[1, 0]).unwrap(),
            coord(&[0, 1])
        );
    }
}
