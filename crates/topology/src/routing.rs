//! The shared dimension-ordered next-hop rule.
//!
//! Both the congestion model in the `embeddings` crate and the simulator in
//! the `netsim` crate route along dimension-ordered shortest paths: correct
//! the first differing dimension (in a caller-chosen order), moving along the
//! shorter arc on toruses and breaking equidistant-arc ties in the *forward*
//! (+1) direction. Keeping the rule in one place guarantees the two crates
//! can never silently disagree about which arc a tied route takes.
//!
//! Three entry points are provided:
//!
//! * [`next_hop_toward`] — the simple form: build and return the next
//!   coordinate (`Coord` is `Copy`, so this never allocates);
//! * [`advance_toward`] — the stepwise form: mutate a coordinate *and* its
//!   linear index in place and report which dimension/direction was taken,
//!   so sweeps over millions of hops never re-encode a coordinate;
//! * [`for_each_hop`] — the batched form: emit the *entire* route as
//!   per-dimension sweeps (direction and step count computed once per
//!   dimension, then pure index arithmetic per hop), producing exactly the
//!   hop sequence repeated [`advance_toward`] calls would. The scalar
//!   entry points are thin wrappers over the same per-step kernel
//!   (`step_digit`/`step_index`), so the three can never disagree.
//!
//! The batching is sound because dimension-ordered routing fully corrects
//! one dimension before touching the next, and the shorter-arc choice is
//! invariant along a correction (each step shortens the chosen arc and
//! lengthens the other), so the per-hop "first differing dimension" rescan
//! of the stepwise form is redundant work the batched form skips.

use crate::grid::Grid;
use crate::Coord;

/// One dimension-ordered hop, as reported by [`advance_toward`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopTaken {
    /// The dimension that was corrected.
    pub dim: usize,
    /// Whether the step went in the forward (+1) direction. Equidistant
    /// torus arcs always step forward (the tie-break rule).
    pub forward: bool,
    /// Whether the step used a torus wrap-around edge.
    pub wrapped: bool,
}

/// The dimension to correct and the direction to step, under the shared
/// rule: the first dimension in `dims` whose coordinates differ, stepping
/// `+1` on meshes when the target is larger (else `-1`), and along the
/// shorter arc on toruses with ties broken toward `+1`.
///
/// Returns `None` when `from == to` on every dimension in `dims`.
#[inline]
fn dor_step(grid: &Grid, from: &Coord, to: &Coord, dims: &[usize]) -> Option<(usize, bool)> {
    for &j in dims {
        let (x, y) = (from.get(j), to.get(j));
        if x == y {
            continue;
        }
        let forward = if grid.is_torus() {
            let l = grid.shape().radix(j) as i64;
            let ahead = (y as i64 - x as i64).rem_euclid(l);
            let behind = (x as i64 - y as i64).rem_euclid(l);
            // Shorter arc; equidistant arcs take the forward direction.
            ahead <= behind
        } else {
            y > x
        };
        return Some((j, forward));
    }
    None
}

/// One digit step in the given direction: the next digit value and whether
/// the step wrapped around the dimension (torus wrap edges only).
#[inline]
pub(crate) fn step_digit(l: u32, digit: u32, forward: bool) -> (u32, bool) {
    if forward {
        if digit + 1 == l {
            (0, true)
        } else {
            (digit + 1, false)
        }
    } else if digit == 0 {
        (l - 1, true)
    } else {
        (digit - 1, false)
    }
}

/// The linear-index delta of one digit step, from the dimension's radix and
/// weight: `±w` for interior steps, `∓(l−1)·w` across the wrap edge.
#[inline]
pub(crate) fn step_index(index: u64, l: u32, w: u64, forward: bool, wrapped: bool) -> u64 {
    match (forward, wrapped) {
        (true, false) => index + w,
        (true, true) => index - (l as u64 - 1) * w,
        (false, false) => index - w,
        (false, true) => index + (l as u64 - 1) * w,
    }
}

/// The next hop from `from` toward `to`, correcting dimensions in the order
/// given by `dims` and taking the shorter arc on toruses (ties forward).
///
/// Returns `None` when the coordinates already agree on every dimension in
/// `dims`. This is the one dimension-ordered routing rule shared by
/// `embeddings::congestion` and `netsim`.
///
/// # Panics
///
/// Panics if a coordinate has the wrong dimension or a dimension index in
/// `dims` is out of range.
pub fn next_hop_toward(grid: &Grid, from: &Coord, to: &Coord, dims: &[usize]) -> Option<Coord> {
    let (j, forward) = dor_step(grid, from, to, dims)?;
    let l = grid.shape().radix(j);
    let x = from.get(j);
    let step: i64 = if forward { 1 } else { -1 };
    let mut next = *from;
    next.set(j, (x as i64 + step).rem_euclid(l as i64) as u32);
    Some(next)
}

/// Takes one dimension-ordered hop in place: advances `current` (and its
/// linear index `current_index`) one step toward `target` and reports the
/// dimension, direction and wrap-around status of the step.
///
/// The index is updated incrementally from the shape's weights, so a routed
/// sweep costs `O(d)` per hop with no re-encoding and no allocation.
/// Returns `None` (leaving both values untouched) once `current == target`.
///
/// # Panics
///
/// Panics if a coordinate has the wrong dimension, a dimension index in
/// `dims` is out of range, or `current_index` is not the index of `current`.
pub fn advance_toward(
    grid: &Grid,
    current: &mut Coord,
    current_index: &mut u64,
    target: &Coord,
    dims: &[usize],
) -> Option<HopTaken> {
    let (j, forward) = dor_step(grid, current, target, dims)?;
    let l = grid.shape().radix(j);
    let w = grid.shape().weight(j + 1);
    let (next_digit, wrapped) = step_digit(l, current.get(j), forward);
    debug_assert!(!wrapped || grid.is_torus(), "meshes never wrap");
    current.set(j, next_digit);
    *current_index = step_index(*current_index, l, w, forward, wrapped);
    Some(HopTaken {
        dim: j,
        forward,
        wrapped,
    })
}

/// Emits every hop of the dimension-ordered route from `from` (whose linear
/// index is `from_index`) to `to`, correcting dimensions in the order given
/// by `dims` — the batched form of calling [`advance_toward`] until it
/// returns `None`.
///
/// `emit(hop, before, after)` receives exactly the `HopTaken` sequence and
/// before/after node indices repeated `advance_toward` calls would produce,
/// but the direction and step count are computed **once per dimension**
/// (digit-plane style: one sweep per dimension instead of one dimension
/// rescan per hop), so each hop costs one wrap test and one index add. This
/// is the route-expansion kernel behind `embeddings::congestion`, the
/// congestion objective's incremental ±1 updates, and netsim's hop buffers.
///
/// # Panics
///
/// Panics if a coordinate has the wrong dimension, a dimension index in
/// `dims` is out of range, or `from_index` is not the index of `from`.
pub fn for_each_hop<F>(
    grid: &Grid,
    from: &Coord,
    from_index: u64,
    to: &Coord,
    dims: &[usize],
    mut emit: F,
) where
    F: FnMut(HopTaken, u64, u64),
{
    let shape = grid.shape();
    let torus = grid.is_torus();
    let mut index = from_index;
    for &j in dims {
        let (x, y) = (from.get(j), to.get(j));
        if x == y {
            continue;
        }
        let l = shape.radix(j);
        let w = shape.weight(j + 1);
        // Direction and hop count for the whole dimension. On toruses the
        // shorter arc wins with ties forward — the same rule as `dor_step`,
        // and invariant along the correction (each step shortens the chosen
        // arc), so no per-hop re-evaluation is needed.
        let (forward, steps) = if torus {
            let ahead = if y >= x {
                (y - x) as u64
            } else {
                // Cast before adding: y + l would overflow u32 for radices
                // near u32::MAX.
                y as u64 + l as u64 - x as u64
            };
            let behind = l as u64 - ahead;
            if ahead <= behind {
                (true, ahead)
            } else {
                (false, behind)
            }
        } else if y > x {
            (true, (y - x) as u64)
        } else {
            (false, (x - y) as u64)
        };
        let mut digit = x;
        for _ in 0..steps {
            let before = index;
            let (next, wrapped) = step_digit(l, digit, forward);
            index = step_index(index, l, w, forward, wrapped);
            digit = next;
            emit(
                HopTaken {
                    dim: j,
                    forward,
                    wrapped,
                },
                before,
                index,
            );
        }
        debug_assert_eq!(digit, y, "dimension fully corrected");
    }
}

/// The canonical undirected-link slot of the hop that [`advance_toward`]
/// just took, for use with a flat `Vec` of [`Grid::link_count`] load
/// counters.
///
/// Every physical link is identified with its forward traversal, i.e. the
/// [`Grid::link_index`] of the endpoint whose step along `hop.dim` in the
/// `+1` direction (wrapping on toruses) reaches the other endpoint. For the
/// doubly-covered links of length-2 torus dimensions the endpoint with
/// coordinate 0 is the canonical tail. `before` and `after` are the node
/// indices on either side of the hop.
#[inline]
pub fn link_slot_of_hop(grid: &Grid, hop: HopTaken, before: u64, after: u64) -> u64 {
    let l = grid.shape().radix(hop.dim);
    let tail = if hop.forward && !(hop.wrapped && l == 2) {
        before
    } else {
        after
    };
    grid.link_index(tail, hop.dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    fn coord(digits: &[u32]) -> Coord {
        Coord::from_slice(digits).unwrap()
    }

    fn forward_dims(grid: &Grid) -> Vec<usize> {
        (0..grid.dim()).collect()
    }

    #[test]
    fn equidistant_torus_arcs_break_ties_forward() {
        // Even radices put the antipode at exactly l/2 in both directions;
        // the rule must pick the forward (+1) arc, never the backward one.
        let ring = Grid::ring(4).unwrap();
        let next = next_hop_toward(&ring, &coord(&[0]), &coord(&[2]), &[0]).unwrap();
        assert_eq!(next, coord(&[1]));

        let torus = Grid::torus(shape(&[6, 6]));
        let next = next_hop_toward(&torus, &coord(&[0, 0]), &coord(&[3, 0]), &[0, 1]).unwrap();
        assert_eq!(next, coord(&[1, 0]));
        // … including from a nonzero starting coordinate.
        let next = next_hop_toward(&torus, &coord(&[5, 2]), &coord(&[2, 2]), &[0, 1]).unwrap();
        assert_eq!(next, coord(&[0, 2]));
    }

    #[test]
    fn hops_walk_shortest_paths() {
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[5, 3])),
            Grid::hypercube(4).unwrap(),
        ] {
            let dims = forward_dims(&grid);
            for a in grid.nodes() {
                for b in grid.nodes() {
                    let target = grid.coord(b).unwrap();
                    let mut current = grid.coord(a).unwrap();
                    let mut hops = 0u64;
                    while let Some(next) = next_hop_toward(&grid, &current, &target, &dims) {
                        assert_eq!(grid.distance(&current, &next), 1);
                        current = next;
                        hops += 1;
                        assert!(hops <= grid.diameter(), "non-terminating route");
                    }
                    assert_eq!(current, target);
                    assert_eq!(hops, grid.distance_index(a, b).unwrap(), "{grid} {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn advance_toward_agrees_with_next_hop_toward() {
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[3, 5])),
            Grid::ring(8).unwrap(),
        ] {
            let dims = forward_dims(&grid);
            for a in grid.nodes() {
                for b in grid.nodes() {
                    let target = grid.coord(b).unwrap();
                    let mut current = grid.coord(a).unwrap();
                    let mut index = a;
                    loop {
                        let expected = next_hop_toward(&grid, &current, &target, &dims);
                        let before = index;
                        match advance_toward(&grid, &mut current, &mut index, &target, &dims) {
                            None => {
                                assert!(expected.is_none());
                                break;
                            }
                            Some(hop) => {
                                assert_eq!(Some(current), expected);
                                assert_eq!(grid.index(&current).unwrap(), index);
                                // The canonical link slot is shared by both
                                // traversal directions of the same link.
                                let slot = link_slot_of_hop(&grid, hop, before, index);
                                assert!(slot < grid.link_count());
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn link_slots_are_direction_independent() {
        // Route every adjacent pair in both directions: the two traversals
        // of one physical link must land in the same canonical slot.
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[3, 4])),
            Grid::ring(2).unwrap(),
            Grid::torus(shape(&[2, 2])),
        ] {
            let dims = forward_dims(&grid);
            for a in grid.nodes() {
                for b in grid.neighbors(a).unwrap() {
                    let slot_ab = {
                        let mut c = grid.coord(a).unwrap();
                        let mut i = a;
                        let hop =
                            advance_toward(&grid, &mut c, &mut i, &grid.coord(b).unwrap(), &dims)
                                .unwrap();
                        link_slot_of_hop(&grid, hop, a, i)
                    };
                    let slot_ba = {
                        let mut c = grid.coord(b).unwrap();
                        let mut i = b;
                        let hop =
                            advance_toward(&grid, &mut c, &mut i, &grid.coord(a).unwrap(), &dims)
                                .unwrap();
                        link_slot_of_hop(&grid, hop, b, i)
                    };
                    assert_eq!(slot_ab, slot_ba, "{grid} link {a}-{b}");
                }
            }
        }
    }

    #[test]
    fn for_each_hop_matches_stepwise_advance_exhaustively() {
        // The batched per-dimension emitter must reproduce the stepwise
        // sequence bit for bit — hops, directions, wraps, and both node
        // indices — for every ordered pair, in forward and reversed
        // dimension order.
        for grid in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[5, 3])),
            Grid::mesh(shape(&[3, 5])),
            Grid::hypercube(4).unwrap(),
            Grid::ring(8).unwrap(),
            Grid::ring(2).unwrap(),
        ] {
            let forward: Vec<usize> = (0..grid.dim()).collect();
            let reverse: Vec<usize> = (0..grid.dim()).rev().collect();
            for dims in [&forward, &reverse] {
                for a in grid.nodes() {
                    for b in grid.nodes() {
                        let from = grid.coord(a).unwrap();
                        let target = grid.coord(b).unwrap();
                        let mut expected = Vec::new();
                        let mut current = from;
                        let mut index = a;
                        loop {
                            let before = index;
                            match advance_toward(&grid, &mut current, &mut index, &target, dims) {
                                None => break,
                                Some(hop) => expected.push((hop, before, index)),
                            }
                        }
                        let mut batched = Vec::new();
                        for_each_hop(&grid, &from, a, &target, dims, |hop, before, after| {
                            batched.push((hop, before, after));
                        });
                        assert_eq!(batched, expected, "{grid} {a}->{b} dims={dims:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn respects_dimension_order() {
        let mesh = Grid::mesh(shape(&[3, 3]));
        let from = coord(&[0, 0]);
        let to = coord(&[2, 2]);
        // Forward order corrects dimension 0 first, reverse order dimension 1.
        assert_eq!(
            next_hop_toward(&mesh, &from, &to, &[0, 1]).unwrap(),
            coord(&[1, 0])
        );
        assert_eq!(
            next_hop_toward(&mesh, &from, &to, &[1, 0]).unwrap(),
            coord(&[0, 1])
        );
    }
}
