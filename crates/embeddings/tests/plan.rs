//! Plan serialization properties and plan/planner differential tests.
//!
//! Two guarantees back the `embd` placement service:
//!
//! * **round-trip** — `Plan::parse(&plan.to_text())` restores the plan
//!   bit-identically, for closed-form and table-backed plans alike, for any
//!   construction name (including quotes, controls, and astral characters);
//! * **differential** — `Plan::to_embedding()` agrees with the planner's
//!   live closure on **every node** across the paper's shape families, so a
//!   plan served over the wire answers exactly what a local `auto::embed`
//!   would.

use embeddings::auto::embed;
use embeddings::plan::{format_grid_spec, parse_grid_spec, Plan};
use embeddings::Embedding;
use proptest::prelude::*;
use topology::{Grid, Shape};

/// A small random shape (dimension 1–4, radices 2–6, size ≤ 400).
fn small_shape() -> impl Strategy<Value = Shape> {
    proptest::collection::vec(2u32..=6, 1..=4)
        .prop_filter("bounded size", |radices| {
            radices.iter().map(|&l| l as u64).product::<u64>() <= 400
        })
        .prop_map(|radices| Shape::new(radices).unwrap())
}

/// A small random grid.
fn small_grid() -> impl Strategy<Value = Grid> {
    (small_shape(), proptest::bool::ANY).prop_map(|(shape, torus)| {
        if torus {
            Grid::torus(shape)
        } else {
            Grid::mesh(shape)
        }
    })
}

/// An arbitrary construction name: each drawn `u32` picks either a point
/// from a hostile palette (quotes, escapes, controls, non-ASCII, astral) or
/// an arbitrary Unicode scalar value.
fn construction_name() -> impl Strategy<Value = String> {
    const PALETTE: &[char] = &[
        '"',
        '\\',
        '\n',
        '\t',
        '\r',
        '\u{1}',
        '\u{7f}',
        ' ',
        '=',
        ',',
        'µ',
        '✓',
        'π',
        '😀',
        '\u{10FFFF}',
        'a',
    ];
    proptest::collection::vec(0u32..=u32::MAX, 0..=12).prop_map(|points| {
        points
            .into_iter()
            .map(|p| {
                if p % 2 == 0 {
                    PALETTE[(p / 2) as usize % PALETTE.len()]
                } else {
                    char::from_u32(p % 0x11_0000).unwrap_or('\u{FFFD}')
                }
            })
            .collect()
    })
}

/// A deterministic pseudo-random permutation of `0..n` (Fisher–Yates over
/// splitmix64), used to build table-backed plans.
fn permutation(n: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut table: Vec<u64> = (0..n).collect();
    for i in (1..n as usize).rev() {
        table.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    table
}

/// Asserts that two embeddings of the same pair map every node identically.
fn assert_same_mapping(a: &Embedding, b: &Embedding) {
    assert_eq!(a.guest(), b.guest());
    assert_eq!(a.host(), b.host());
    for x in 0..a.guest().size() {
        assert_eq!(
            a.map_index(x),
            b.map_index(x),
            "node {x} diverges: {} vs {}",
            a.name(),
            b.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grid_specs_round_trip(grid in small_grid()) {
        let spec = format_grid_spec(&grid);
        prop_assert_eq!(parse_grid_spec(&spec).unwrap(), grid);
    }

    #[test]
    fn closed_form_plans_round_trip(guest in small_grid(), flatten in proptest::bool::ANY, torus_host in proptest::bool::ANY) {
        // Pair the guest with either its own shape or its 1-D collapse, in
        // both host kinds — the same family the planner proptests use.
        let host_shape = if flatten && guest.dim() > 1 {
            Shape::new(vec![guest.size() as u32]).unwrap()
        } else {
            guest.shape().clone()
        };
        let host = if torus_host {
            Grid::torus(host_shape)
        } else {
            Grid::mesh(host_shape)
        };
        if let Ok(plan) = Plan::closed_form(&guest, &host) {
            let text = plan.to_text();
            prop_assert_eq!(Plan::parse(&text).unwrap(), plan.clone());
            // Canonical: re-serializing the parsed plan is bit-identical.
            prop_assert_eq!(Plan::parse(&text).unwrap().to_text(), text);
            // And the rebuilt embedding is the planner's embedding, node by
            // node.
            assert_same_mapping(&plan.to_embedding().unwrap(), &embed(&guest, &host).unwrap());
        }
    }

    #[test]
    fn construction_names_round_trip(name in construction_name()) {
        let guest = Grid::mesh(Shape::new(vec![2, 2]).unwrap());
        let plan = Plan::describing(&guest, &guest, &name, 1);
        let text = plan.to_text();
        let parsed = Plan::parse(&text).unwrap();
        prop_assert_eq!(parsed.construction(), name.as_str());
        prop_assert_eq!(parsed.clone(), plan);
        prop_assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn table_plans_round_trip(host in small_grid(), seed in 0u32..=u32::MAX) {
        let guest = Grid::mesh(host.shape().clone());
        let table = permutation(host.size(), seed as u64);
        let plan = Plan::with_table(guest, host, "refined", 2, table.clone()).unwrap();
        let text = plan.to_text();
        let parsed = Plan::parse(&text).unwrap();
        prop_assert_eq!(parsed.clone(), plan);
        prop_assert_eq!(parsed.to_text(), text);
        let embedding = parsed.to_embedding().unwrap();
        for (x, &y) in table.iter().enumerate() {
            prop_assert_eq!(embedding.map_index(x as u64), y);
        }
    }
}

/// The paper's shape families: for each, the closed-form plan must rebuild
/// into exactly the planner's embedding (every node compared), and the text
/// form must round-trip.
#[test]
fn paper_families_differential() {
    let shape = |radices: &[u32]| Shape::new(radices.to_vec()).unwrap();
    let pairs = [
        // Same shape (T_L).
        (
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[4, 2, 3])),
        ),
        (Grid::mesh(shape(&[5, 5])), Grid::torus(shape(&[5, 5]))),
        // Line / ring into grids (Section 3).
        (Grid::line(24).unwrap(), Grid::mesh(shape(&[4, 6]))),
        (Grid::ring(24).unwrap(), Grid::mesh(shape(&[4, 6]))),
        (Grid::ring(24).unwrap(), Grid::torus(shape(&[4, 6]))),
        // Dimension increase (Section 4.1) and hypercube targets.
        (Grid::torus(shape(&[4, 6])), Grid::mesh(shape(&[4, 3, 2]))),
        (Grid::mesh(shape(&[8, 2])), Grid::hypercube(4).unwrap()),
        (Grid::torus(shape(&[4, 4])), Grid::hypercube(4).unwrap()),
        // Simple and general reduction (Section 4.2).
        (Grid::mesh(shape(&[4, 3, 2])), Grid::mesh(shape(&[12, 2]))),
        (Grid::torus(shape(&[6, 4])), Grid::torus(shape(&[24]))),
        (Grid::mesh(shape(&[5, 3])), Grid::mesh(shape(&[15]))),
        // Square graphs (Section 5).
        (Grid::torus(shape(&[3, 3])), Grid::mesh(shape(&[9]))),
        (Grid::mesh(shape(&[4, 4, 4])), Grid::mesh(shape(&[64]))),
    ];
    for (guest, host) in pairs {
        let plan = Plan::closed_form(&guest, &host)
            .unwrap_or_else(|e| panic!("no plan for {guest} -> {host}: {e}"));
        let text = plan.to_text();
        let parsed = Plan::parse(&text).unwrap();
        assert_eq!(parsed, plan, "{guest} -> {host}");
        assert_eq!(parsed.to_text(), text, "{guest} -> {host}");
        assert_same_mapping(
            &parsed.to_embedding().unwrap(),
            &embed(&guest, &host).unwrap(),
        );
    }
}

/// A refined (table-backed) plan round-trips through text and rebuilds the
/// exact refined placement — the service path for annealed placements.
#[test]
fn refined_plan_differential() {
    use embeddings::optim::{CongestionObjective, Optimizer, OptimizerConfig};

    let guest = Grid::torus(Shape::new(vec![4, 6]).unwrap());
    let host = Grid::mesh(Shape::new(vec![4, 6]).unwrap());
    let base = embed(&guest, &host).unwrap();
    let mut objective = CongestionObjective::new(&guest, &host).unwrap();
    let config = OptimizerConfig {
        seed: 7,
        steps: 400,
        ..OptimizerConfig::default()
    };
    let outcome = Optimizer::new(config)
        .optimize(&base, &mut objective)
        .unwrap();
    let plan = Plan::with_table(
        guest,
        host,
        outcome.embedding.name(),
        outcome.embedding.dilation(),
        outcome.table.clone(),
    )
    .unwrap();
    let parsed = Plan::parse(&plan.to_text()).unwrap();
    assert_eq!(parsed, plan);
    assert_same_mapping(&parsed.to_embedding().unwrap(), &outcome.embedding);
}
