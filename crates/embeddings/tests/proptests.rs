//! Property-based tests for the embedding constructions.
//!
//! Every property here is a theorem of the paper, checked on randomly drawn
//! shapes rather than hand-picked examples.

use embeddings::auto::{embed, predicted_dilation};
use embeddings::basic::{embed_line_in, embed_ring_in, f_l, f_l_inverse, g_l, h_l, t_n};
use embeddings::verify::{verify, verify_sequential};
use mixedradix::sequence::{FnSequence, RadixSequence};
use proptest::prelude::*;
use topology::{Grid, Shape};

/// A small random shape (dimension 1–4, radices 2–6, size ≤ 400).
fn small_shape() -> impl Strategy<Value = Shape> {
    proptest::collection::vec(2u32..=6, 1..=4)
        .prop_filter("bounded size", |radices| {
            radices.iter().map(|&l| l as u64).product::<u64>() <= 400
        })
        .prop_map(|radices| Shape::new(radices).unwrap())
}

/// A small random grid.
fn small_grid() -> impl Strategy<Value = Grid> {
    (small_shape(), proptest::bool::ANY).prop_map(|(shape, torus)| {
        if torus {
            Grid::torus(shape)
        } else {
            Grid::mesh(shape)
        }
    })
}

/// Drives `objective` through `moves` random moves drawn from the
/// optimizer's full repertoire — pairwise swaps, segment reversals, k-cycle
/// rotations and dimension-aligned block swaps — decomposed into exactly the
/// disjoint-transposition batches `Optimizer` issues. Roughly a third of the
/// moves are undone again (the optimizer's rejection path), and every undo
/// must restore the cost bit-exactly. Returns the final incremental cost for
/// the caller to compare against a fresh rebuild.
fn compound_move_walk(
    objective: &mut dyn embeddings::optim::Objective,
    guest: &Shape,
    table: &mut [u64],
    seed: u64,
    moves: usize,
) -> Result<embeddings::optim::Cost, TestCaseError> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Fills `swaps` with the disjoint transpositions of `reverse(start..=end)`.
    fn reversal_batch(start: u64, end: u64, swaps: &mut Vec<(u64, u64)>) {
        swaps.clear();
        let (mut i, mut j) = (start, end);
        while i < j {
            swaps.push((i, j));
            i += 1;
            j -= 1;
        }
    }

    let n = table.len() as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cost = objective.rebuild(table);
    let mut swaps: Vec<(u64, u64)> = Vec::new();
    let block_dims: Vec<usize> = (0..guest.dim()).filter(|&d| guest.radix(d) >= 2).collect();
    for _ in 0..moves {
        if n < 2 {
            break;
        }
        let before = cost;
        // (kind, payload): 0 = swap(a, b), 1 = reverse(start, end),
        // 2 = rotate(start, end), 3 = block swap with its batch in `swaps`.
        let mut kind = rng.gen_range(0u32..4);
        if kind == 2 && n < 3 {
            kind = 0;
        }
        if kind == 3 && block_dims.is_empty() {
            kind = 0;
        }
        let payload = match kind {
            0 => {
                let a = rng.gen_range(0u64..n);
                let mut b = rng.gen_range(0u64..n - 1);
                if b >= a {
                    b += 1;
                }
                table.swap(a as usize, b as usize);
                cost = objective.apply_swap(table, a, b);
                (a, b)
            }
            1 => {
                let len = rng.gen_range(2u64..=n.min(8));
                let start = rng.gen_range(0u64..=n - len);
                let end = start + len - 1;
                reversal_batch(start, end, &mut swaps);
                cost = objective.apply_disjoint_swaps(table, &swaps);
                (start, end)
            }
            2 => {
                // Rotate left by one: reverse the whole run, then all but
                // its last element — the optimizer's two-batch decomposition.
                let len = rng.gen_range(3u64..=n.min(8));
                let start = rng.gen_range(0u64..=n - len);
                let end = start + len - 1;
                reversal_batch(start, end, &mut swaps);
                objective.apply_disjoint_swaps(table, &swaps);
                reversal_batch(start, end - 1, &mut swaps);
                cost = objective.apply_disjoint_swaps(table, &swaps);
                (start, end)
            }
            _ => {
                let dim = block_dims[rng.gen_range(0..block_dims.len())];
                let radix = u64::from(guest.radix(dim));
                let first = rng.gen_range(0u64..radix);
                let mut second = rng.gen_range(0u64..radix - 1);
                if second >= first {
                    second += 1;
                }
                let (low, high) = (first.min(second), first.max(second));
                let stride = guest.weight(dim + 1);
                let plane = stride * radix;
                let shift = (high - low) * stride;
                swaps.clear();
                let mut base = low * stride;
                while base < n {
                    for x in base..base + stride {
                        swaps.push((x, x + shift));
                    }
                    base += plane;
                }
                cost = objective.apply_disjoint_swaps(table, &swaps);
                (0, 0)
            }
        };
        if rng.gen_bool(0.35) {
            // The optimizer's rejection path: undo by the involution (swap,
            // reversal, block swap) or the inverse rotation.
            match kind {
                0 => {
                    let (a, b) = payload;
                    table.swap(a as usize, b as usize);
                    cost = objective.apply_swap(table, a, b);
                }
                1 => {
                    let (start, end) = payload;
                    reversal_batch(start, end, &mut swaps);
                    cost = objective.apply_disjoint_swaps(table, &swaps);
                }
                2 => {
                    let (start, end) = payload;
                    reversal_batch(start, end - 1, &mut swaps);
                    objective.apply_disjoint_swaps(table, &swaps);
                    reversal_batch(start, end, &mut swaps);
                    cost = objective.apply_disjoint_swaps(table, &swaps);
                }
                _ => {
                    // `swaps` still holds the block batch.
                    cost = objective.apply_disjoint_swaps(table, &swaps);
                }
            }
            prop_assert_eq!(cost, before, "undone move must restore the cost");
        }
    }
    Ok(cost)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn f_l_is_a_unit_spread_bijection(shape in small_shape()) {
        let inner = shape.clone();
        let seq = FnSequence::new(shape.clone(), shape.size(), move |x| f_l(&inner, x));
        prop_assert!(seq.is_bijection());
        prop_assert_eq!(seq.acyclic_spread_mesh(), 1);
        prop_assert_eq!(seq.acyclic_spread_torus(), 1);
    }

    #[test]
    fn f_l_inverse_round_trips(shape in small_shape(), x in 0u64..400) {
        let x = x % shape.size();
        prop_assert_eq!(f_l_inverse(&shape, &f_l(&shape, x)), x);
    }

    #[test]
    fn g_l_cyclic_mesh_spread_at_most_two(shape in small_shape()) {
        let inner = shape.clone();
        let seq = FnSequence::new(shape.clone(), shape.size(), move |x| g_l(&inner, x));
        prop_assert!(seq.is_bijection());
        prop_assert!(seq.cyclic_spread_mesh() <= 2);
    }

    #[test]
    fn h_l_cyclic_torus_spread_is_one(shape in small_shape()) {
        let inner = shape.clone();
        let seq = FnSequence::new(shape.clone(), shape.size(), move |x| h_l(&inner, x));
        prop_assert!(seq.is_bijection());
        prop_assert_eq!(seq.cyclic_spread_torus(), 1);
    }

    #[test]
    fn h_l_cyclic_mesh_spread_is_one_when_l1_even(shape in small_shape()) {
        if shape.radix(0) % 2 == 0 && shape.dim() >= 2 {
            let inner = shape.clone();
            let seq = FnSequence::new(shape.clone(), shape.size(), move |x| h_l(&inner, x));
            prop_assert_eq!(seq.cyclic_spread_mesh(), 1);
        }
    }

    #[test]
    fn t_n_is_an_involution_free_bijection_with_small_steps(n in 2u64..500) {
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = t_n(n, x);
            prop_assert!(y < n);
            prop_assert!(!seen[y as usize]);
            seen[y as usize] = true;
            let next = t_n(n, (x + 1) % n);
            let diff = (y as i64 - next as i64).unsigned_abs();
            prop_assert!(diff <= 2);
        }
    }

    #[test]
    fn line_embeddings_always_have_unit_dilation(host in small_grid()) {
        let e = embed_line_in(&host).unwrap();
        prop_assert!(e.is_injective());
        prop_assert_eq!(e.dilation(), 1);
    }

    #[test]
    fn ring_embeddings_match_the_paper_dilation(host in small_grid()) {
        let e = embed_ring_in(&host).unwrap();
        prop_assert!(e.is_injective());
        let unit = host.is_torus()
            || (host.dim() >= 2 && host.size() % 2 == 0)
            || host.size() == 2;
        let expected = if unit { 1 } else { 2 };
        prop_assert_eq!(e.dilation(), expected, "host {}", host);
    }

    #[test]
    fn planner_respects_its_own_prediction(guest in small_grid(), host_kind in proptest::bool::ANY) {
        // Build a host by regrouping the guest's prime factorization into a
        // host of different dimension but equal size: here simply collapse
        // the guest to one dimension (d > 1) or split nothing (d = 1).
        let host_shape = if guest.dim() > 1 && guest.size() <= u32::MAX as u64 {
            Shape::new(vec![guest.size() as u32]).unwrap()
        } else {
            guest.shape().clone()
        };
        let host = if host_kind {
            Grid::torus(host_shape)
        } else {
            Grid::mesh(host_shape)
        };
        match (embed(&guest, &host), predicted_dilation(&guest, &host)) {
            (Ok(e), Ok(bound)) => {
                prop_assert!(e.is_injective());
                prop_assert!(e.dilation() <= bound,
                    "dilation {} > bound {} for {} -> {}", e.dilation(), bound, guest, host);
            }
            (Err(_), Err(_)) => {}
            (Ok(_), Err(err)) => {
                return Err(TestCaseError::fail(format!(
                    "embed succeeded but prediction failed for {guest} -> {host}: {err}"
                )));
            }
            (Err(err), Ok(_)) => {
                return Err(TestCaseError::fail(format!(
                    "prediction succeeded but embed failed for {guest} -> {host}: {err}"
                )));
            }
        }
    }

    #[test]
    fn increasing_dimension_into_hypercubes(exponents in proptest::collection::vec(1u32..=3, 1..=3), torus in proptest::bool::ANY) {
        // Any power-of-two-size torus or mesh embeds in the hypercube of the
        // same size with dilation at most 2, and exactly 1 for meshes
        // (Corollary 34).
        let radices: Vec<u32> = exponents.iter().map(|&e| 1u32 << e).collect();
        let shape = Shape::new(radices).unwrap();
        let bits = shape.size().trailing_zeros() as usize;
        if bits >= 1 && shape.size() <= 256 {
            let guest = if torus { Grid::torus(shape) } else { Grid::mesh(shape) };
            let host = Grid::hypercube(bits).unwrap();
            let e = embed(&guest, &host).unwrap();
            prop_assert!(e.is_injective());
            if guest.is_mesh() {
                prop_assert_eq!(e.dilation(), 1);
            } else {
                prop_assert!(e.dilation() <= 2);
            }
        }
    }

    #[test]
    fn incremental_wirelength_matches_rebuild_after_random_moves(
        host in small_grid(),
        seed in 0u64..(1 << 16),
        weighted in proptest::bool::ANY,
    ) {
        // Differential pin for the wirelength objective: a random sequence
        // of swap and segment-reversal moves — reversals batched through
        // `apply_disjoint_swaps`, exactly as the optimizer issues them —
        // must leave the incremental state bit-exact against a full
        // recompute, with and without per-edge weights.
        use embeddings::optim::{Objective, WirelengthObjective};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let e = embed_ring_in(&host).unwrap();
        let guest = e.guest().clone();
        let build = || {
            if weighted {
                WirelengthObjective::with_weights(&guest, &host, |t, h| (t ^ h) % 4)
            } else {
                WirelengthObjective::new(&guest, &host)
            }
        };
        let mut table = e.to_table().unwrap();
        let mut objective = build().unwrap();
        let mut cost = objective.rebuild(&table);
        let n = table.len() as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut swaps: Vec<(u64, u64)> = Vec::new();
        for _ in 0..40 {
            if n >= 2 && rng.gen_bool(0.3) {
                let len = rng.gen_range(2u64..=n.min(8));
                let start = rng.gen_range(0u64..=n - len);
                swaps.clear();
                let (mut i, mut j) = (start, start + len - 1);
                while i < j {
                    swaps.push((i, j));
                    i += 1;
                    j -= 1;
                }
                cost = objective.apply_disjoint_swaps(&mut table, &swaps);
            } else {
                let a = rng.gen_range(0u64..n);
                let mut b = rng.gen_range(0u64..n - 1);
                if b >= a {
                    b += 1;
                }
                table.swap(a as usize, b as usize);
                cost = objective.apply_swap(&table, a, b);
            }
        }
        prop_assert_eq!(cost, build().unwrap().rebuild(&table));
    }

    #[test]
    fn incremental_congestion_matches_rebuild_after_compound_moves(
        shape in small_shape(),
        seed in 0u64..(1 << 16),
    ) {
        // Differential pin for the congestion objective under the full move
        // repertoire: random swaps, reversals, k-cycle rotations and block
        // swaps (some undone again) must leave the incremental state
        // bit-exact against a full recompute.
        use embeddings::optim::{CongestionObjective, Objective};
        let guest = Grid::torus(shape.clone());
        let host = Grid::mesh(shape);
        let e = embed(&guest, &host).unwrap();
        let mut table = e.to_table().unwrap();
        let mut objective = CongestionObjective::new(&guest, &host).unwrap();
        let cost = compound_move_walk(&mut objective, guest.shape(), &mut table, seed, 40)?;
        let mut fresh = CongestionObjective::new(&guest, &host).unwrap();
        prop_assert_eq!(cost, fresh.rebuild(&table));
    }

    #[test]
    fn incremental_wirelength_matches_rebuild_after_compound_moves(
        shape in small_shape(),
        seed in 0u64..(1 << 16),
        weighted in proptest::bool::ANY,
    ) {
        // Same differential wall for the wirelength objective, with and
        // without per-edge weights.
        use embeddings::optim::{Objective, WirelengthObjective};
        let guest = Grid::torus(shape.clone());
        let host = Grid::mesh(shape);
        let e = embed(&guest, &host).unwrap();
        let build = || {
            if weighted {
                WirelengthObjective::with_weights(&guest, &host, |t, h| (t ^ h) % 4)
            } else {
                WirelengthObjective::new(&guest, &host)
            }
        };
        let mut table = e.to_table().unwrap();
        let mut objective = build().unwrap();
        let cost = compound_move_walk(&mut objective, guest.shape(), &mut table, seed, 40)?;
        prop_assert_eq!(cost, build().unwrap().rebuild(&table));
    }

    #[test]
    fn parallel_verification_agrees_with_sequential(host in small_grid(), threads in 1usize..6) {
        let e = embed_ring_in(&host).unwrap();
        let sequential = verify_sequential(&e);
        let parallel = verify(&e, threads).unwrap();
        prop_assert_eq!(sequential, parallel);
    }

    #[test]
    fn parallel_congestion_agrees_with_sequential(host in small_grid(), threads in 1usize..6) {
        use embeddings::congestion::{congestion_parallel, congestion_sequential};
        for e in [embed_ring_in(&host).unwrap(), embed_line_in(&host).unwrap()] {
            let sequential = congestion_sequential(&e).unwrap();
            let parallel = congestion_parallel(&e, threads).unwrap();
            prop_assert_eq!(sequential, parallel);
        }
    }

    #[test]
    fn batched_edge_sweep_agrees_with_per_call_dilation(host in small_grid()) {
        // The chunk-materializing sweep must measure exactly what naive
        // per-call arithmetic measures.
        let e = embed_ring_in(&host).unwrap();
        let report = verify_sequential(&e);
        let per_call: u64 = e
            .guest()
            .edges()
            .map(|(a, b)| e.host().distance(&e.map(a), &e.map(b)))
            .max()
            .unwrap_or(0);
        prop_assert_eq!(report.dilation, per_call);
        prop_assert_eq!(report.edges, e.guest().num_edges());
        prop_assert!(report.injective);
    }

    #[test]
    fn incremental_makespan_matches_rebuild_after_compound_moves(
        shape in proptest::collection::vec(2u32..=5, 1..=3)
            .prop_filter("bounded size", |radices| {
                let size: u64 = radices.iter().map(|&l| l as u64).product();
                (4..=100).contains(&size)
            })
            .prop_map(|radices| Shape::new(radices).unwrap()),
        seed in 0u64..(1 << 16),
        rounds in 1usize..=2,
    ) {
        // The simulation-backed objective joins the differential wall: the
        // contention-component replay of `netsim::optimize` must stay
        // bit-exact against a fresh full-arbitration rebuild through the
        // same compound-move walks (its `Cost` is the makespan itself, so
        // any skipped-but-affected component shows up here immediately).
        use embeddings::optim::Objective;
        use netsim::optimize::MakespanObjective;
        use netsim::{Network, Workload};
        let guest = Grid::torus(shape.clone());
        let host = Grid::mesh(shape);
        let e = embed(&guest, &host).unwrap();
        let workload = Workload::from_task_graph(&guest);
        let mut table = e.to_table().unwrap();
        let mut objective =
            MakespanObjective::new(Network::new(host.clone()), workload.clone(), rounds).unwrap();
        let cost = compound_move_walk(&mut objective, guest.shape(), &mut table, seed, 25)?;
        let mut fresh =
            MakespanObjective::new(Network::new(host), workload, rounds).unwrap();
        prop_assert_eq!(cost, fresh.rebuild(&table));
    }

    #[test]
    fn square_lowering_respects_the_formula(ell in 2u32..=4, d in 2usize..=3, torus in proptest::bool::ANY) {
        // Square guest of dimension d and side ℓ into a line/ring of the same
        // size: dilation ℓ^{d-1} (×2 for torus into line).
        let size = (ell as u64).pow(d as u32);
        if size <= 128 {
            let guest = if torus {
                Grid::torus(Shape::square(ell, d).unwrap())
            } else {
                Grid::mesh(Shape::square(ell, d).unwrap())
            };
            for host in [Grid::line(size).unwrap(), Grid::ring(size).unwrap()] {
                let bound = predicted_dilation(&guest, &host).unwrap();
                let e = embed(&guest, &host).unwrap();
                prop_assert!(e.is_injective());
                prop_assert!(e.dilation() <= bound);
                let base = (ell as u64).pow((d - 1) as u32);
                if guest.is_torus() && host.is_mesh() && !guest.is_hypercube() {
                    prop_assert_eq!(bound, 2 * base);
                } else {
                    prop_assert_eq!(bound, base);
                }
            }
        }
    }
}
