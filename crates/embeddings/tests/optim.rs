//! Integration tests of the `optim` subsystem, from outside the crate:
//! seeded determinism, monotone non-worsening, the incremental-vs-full
//! differential, and bijectivity of every move the optimizer applies.

use std::sync::Arc;

use embeddings::auto::embed;
use embeddings::congestion::congestion_sequential;
use embeddings::optim::parallel::{optimize_sharded, ShardStrategy, ShardedConfig};
use embeddings::optim::{
    CongestionObjective, Cost, DilationObjective, MoveMix, Objective, Optimizer, OptimizerConfig,
};
use embeddings::verify::verify_sequential;
use embeddings::Embedding;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use topology::{Grid, Shape};

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).unwrap()
}

fn pairs() -> Vec<(Grid, Grid)> {
    vec![
        (
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[4, 2, 3])),
        ),
        (Grid::hypercube(4).unwrap(), Grid::mesh(shape(&[4, 4]))),
        (Grid::ring(24).unwrap(), Grid::torus(shape(&[4, 6]))),
        (
            Grid::torus(shape(&[4, 6])),
            Grid::mesh(shape(&[2, 2, 2, 3])),
        ),
    ]
}

/// Wraps an objective and asserts, at every single `apply_swap` and
/// `apply_disjoint_swaps` call, that the table the optimizer hands over is
/// still a permutation of `0..n` — i.e. that *every* move (accepted,
/// rejected-then-undone, pairwise, segment reversal, k-cycle rotation batch,
/// or block swap) preserves bijectivity — and that every batched move keeps
/// its disjointness contract: no index appears twice in one batch.
struct BijectivityAuditor<'a> {
    inner: &'a mut dyn Objective,
    seen: Vec<bool>,
    calls: u64,
    batches: u64,
}

impl<'a> BijectivityAuditor<'a> {
    fn new(inner: &'a mut dyn Objective) -> Self {
        BijectivityAuditor {
            inner,
            seen: Vec::new(),
            calls: 0,
            batches: 0,
        }
    }

    fn assert_permutation(&mut self, table: &[u64]) {
        self.seen.clear();
        self.seen.resize(table.len(), false);
        for &image in table {
            let slot = image as usize;
            assert!(slot < table.len(), "image {image} out of range");
            assert!(!self.seen[slot], "image {image} assigned twice");
            self.seen[slot] = true;
        }
    }
}

impl Objective for BijectivityAuditor<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn rebuild(&mut self, table: &[u64]) -> Cost {
        self.assert_permutation(table);
        self.inner.rebuild(table)
    }

    fn apply_swap(&mut self, table: &[u64], a: u64, b: u64) -> Cost {
        self.calls += 1;
        self.assert_permutation(table);
        self.inner.apply_swap(table, a, b)
    }

    fn apply_disjoint_swaps(&mut self, table: &mut [u64], swaps: &[(u64, u64)]) -> Cost {
        self.batches += 1;
        let mut touched = std::collections::HashSet::new();
        for &(a, b) in swaps {
            assert_ne!(a, b, "degenerate transposition ({a}, {b})");
            assert!(touched.insert(a), "index {a} appears twice in one batch");
            assert!(touched.insert(b), "index {b} appears twice in one batch");
        }
        let cost = self.inner.apply_disjoint_swaps(table, swaps);
        self.assert_permutation(table);
        cost
    }
}

#[test]
fn every_applied_move_preserves_bijectivity() {
    for (guest, host) in pairs() {
        let e = embed(&guest, &host).unwrap();
        let mut congestion = CongestionObjective::new(&guest, &host).unwrap();
        let mut auditor = BijectivityAuditor::new(&mut congestion);
        let outcome = Optimizer::new(OptimizerConfig {
            seed: 23,
            steps: 600,
            ..OptimizerConfig::default()
        })
        .optimize(&e, &mut auditor)
        .unwrap();
        assert!(
            auditor.calls + auditor.batches >= 600,
            "every step must reach the audited objective"
        );
        assert!(outcome.embedding.is_injective(), "{guest} -> {host}");
        assert!(verify_sequential(&outcome.embedding).injective);
    }
}

#[test]
fn every_compound_move_preserves_bijectivity_and_disjointness() {
    // Same audit, but with the full repertoire in the mix: k-cycle
    // rotations and block swaps reach the objective as disjoint batches,
    // and the auditor checks both the permutation and the disjointness
    // contract on every one — including the undo batches of rejected moves.
    for (guest, host) in pairs() {
        let e = embed(&guest, &host).unwrap();
        let mut congestion = CongestionObjective::new(&guest, &host).unwrap();
        let mut auditor = BijectivityAuditor::new(&mut congestion);
        let outcome = Optimizer::new(OptimizerConfig {
            seed: 23,
            steps: 600,
            mix: MoveMix::compound(),
            ..OptimizerConfig::default()
        })
        .optimize(&e, &mut auditor)
        .unwrap();
        assert!(
            auditor.batches >= 100,
            "compound mix must issue batched moves ({} batches)",
            auditor.batches
        );
        assert!(auditor.calls >= 100, "pairwise swaps stay in the mix");
        assert!(outcome.embedding.is_injective(), "{guest} -> {host}");
        assert!(verify_sequential(&outcome.embedding).injective);
    }
}

/// A deliberately bad starting point: the images of a constructive
/// embedding, shuffled by a seeded Fisher–Yates — still a bijection, but
/// with plenty of congestion headroom for the optimizer to recover.
fn shuffled_embedding(guest: &Grid, host: &Grid, seed: u64) -> Embedding {
    let e = embed(guest, host).unwrap();
    let mut table = e.to_table().unwrap();
    table.shuffle(&mut StdRng::seed_from_u64(seed));
    let host_clone = host.clone();
    Embedding::new(
        guest.clone(),
        host.clone(),
        "shuffled",
        Arc::new(move |x| host_clone.coord(table[x as usize]).unwrap()),
    )
    .unwrap()
}

#[test]
fn same_seed_produces_identical_tables_different_seeds_diverge() {
    let (guest, host) = (Grid::torus(shape(&[4, 6])), Grid::mesh(shape(&[4, 6])));
    // Start from a shuffled table so the walk has real improvements to find
    // (a near-optimal start can leave every seed sitting on its starting
    // table, which would make the divergence check vacuous).
    let e = shuffled_embedding(&guest, &host, 99);
    let config = OptimizerConfig {
        seed: 77,
        steps: 800,
        ..OptimizerConfig::default()
    };
    let run = |config: OptimizerConfig| {
        let mut objective = CongestionObjective::new(&guest, &host).unwrap();
        Optimizer::new(config).optimize(&e, &mut objective).unwrap()
    };
    let first = run(config);
    let second = run(config);
    assert_eq!(first.table, second.table);
    assert_eq!(first.report, second.report);

    // Different seeds explore different move sequences.
    let other = run(OptimizerConfig { seed: 78, ..config });
    assert!(
        other.report != first.report || other.table != first.table,
        "seeds 77 and 78 produced identical walks"
    );
}

#[test]
fn optimization_never_worsens_any_objective() {
    for (guest, host) in pairs() {
        let e = embed(&guest, &host).unwrap();
        let initial_congestion = congestion_sequential(&e).unwrap();

        let mut congestion = CongestionObjective::new(&guest, &host).unwrap();
        let outcome = Optimizer::new(OptimizerConfig {
            seed: 5,
            steps: 400,
            ..OptimizerConfig::default()
        })
        .optimize(&e, &mut congestion)
        .unwrap();
        assert!(outcome.report.best <= outcome.report.initial);
        // Re-measured from the outside, not trusting optimizer bookkeeping.
        let refined = congestion_sequential(&outcome.embedding).unwrap();
        assert!(
            refined.max_congestion <= initial_congestion.max_congestion,
            "{guest} -> {host}: {} > {}",
            refined.max_congestion,
            initial_congestion.max_congestion
        );

        let mut dilation = DilationObjective::new(&guest, &host).unwrap();
        let outcome = Optimizer::new(OptimizerConfig {
            seed: 5,
            steps: 400,
            ..OptimizerConfig::default()
        })
        .optimize(&e, &mut dilation)
        .unwrap();
        assert!(outcome.report.best <= outcome.report.initial);
        let (initial_avg, _) = e.average_dilation();
        let (refined_avg, _) = outcome.embedding.average_dilation();
        assert!(refined_avg <= initial_avg + 1e-12, "{guest} -> {host}");
    }
}

#[test]
fn incremental_cost_matches_full_resweep_after_optimization() {
    for (guest, host) in pairs() {
        let e = embed(&guest, &host).unwrap();
        let mut objective = CongestionObjective::new(&guest, &host).unwrap();
        let outcome = Optimizer::new(OptimizerConfig {
            seed: 11,
            steps: 500,
            ..OptimizerConfig::default()
        })
        .optimize(&e, &mut objective)
        .unwrap();
        // The best cost the incremental path reported must equal a full
        // congestion re-sweep of the returned embedding.
        let report = congestion_sequential(&outcome.embedding).unwrap();
        assert_eq!(report.max_congestion, outcome.report.best.primary);
        assert_eq!(report.total_path_length, outcome.report.best.secondary);
        // And a freshly rebuilt objective agrees on the returned table.
        let mut fresh = CongestionObjective::new(&guest, &host).unwrap();
        assert_eq!(fresh.rebuild(&outcome.table), outcome.report.best);
    }
}

#[test]
fn portfolio_shards_are_deterministic_and_keep_shard_zero_sequential() {
    // The portfolio strategy must preserve both parallel invariants from
    // the outside: bit-identical results for any worker count, and shard 0
    // reporting exactly what a sequential run of the base config reports —
    // diversified mixes and temperatures live strictly on shards >= 1.
    let (guest, host) = (Grid::torus(shape(&[4, 6])), Grid::mesh(shape(&[4, 6])));
    let e = shuffled_embedding(&guest, &host, 17);
    let base = OptimizerConfig {
        seed: 31,
        steps: 400,
        ..OptimizerConfig::default()
    };
    let run = |workers: usize| {
        optimize_sharded(
            &e,
            || CongestionObjective::new(&guest, &host),
            &ShardedConfig {
                base,
                shards: 6,
                strategy: ShardStrategy::Portfolio,
                workers,
            },
        )
        .unwrap()
    };
    let one = run(1);
    let many = run(4);
    assert_eq!(one.winner, many.winner);
    assert_eq!(one.outcome.table, many.outcome.table);
    assert_eq!(one.shards, many.shards);

    // Shard 0 ≡ sequential, untouched by the portfolio palette.
    let mut objective = CongestionObjective::new(&guest, &host).unwrap();
    let sequential = Optimizer::new(base).optimize(&e, &mut objective).unwrap();
    assert_eq!(one.shards[0].style, "base");
    assert_eq!(one.shards[0].report, sequential.report);

    // The non-zero shards actually diversify: more than one style ran, and
    // a single-shard portfolio degenerates to exactly the sequential run.
    let styles: std::collections::HashSet<&str> = one.shards.iter().map(|s| s.style).collect();
    assert!(styles.len() > 1, "portfolio ran only {styles:?}");
    let single = optimize_sharded(
        &e,
        || CongestionObjective::new(&guest, &host),
        &ShardedConfig {
            base,
            shards: 1,
            strategy: ShardStrategy::Portfolio,
            workers: 3,
        },
    )
    .unwrap();
    assert_eq!(single.outcome.table, sequential.table);
    assert_eq!(single.outcome.report, sequential.report);
}

#[test]
fn random_starting_tables_are_refined_toward_the_constructive_range() {
    // Start from a shuffled placement of a torus in a mesh and check the
    // optimizer recovers a meaningful fraction of the congestion gap —
    // local search must actually search, not just hold the line.
    let guest = Grid::torus(shape(&[4, 6]));
    let host = Grid::mesh(shape(&[2, 2, 2, 3]));
    let naive = shuffled_embedding(&guest, &host, 4);
    let before = congestion_sequential(&naive).unwrap();
    let mut objective = CongestionObjective::new(&guest, &host).unwrap();
    let outcome = Optimizer::new(OptimizerConfig {
        seed: 2,
        steps: 4_000,
        ..OptimizerConfig::default()
    })
    .optimize(&naive, &mut objective)
    .unwrap();
    let after = congestion_sequential(&outcome.embedding).unwrap();
    assert!(
        after.max_congestion < before.max_congestion,
        "no improvement: {} -> {}",
        before.max_congestion,
        after.max_congestion
    );
}
