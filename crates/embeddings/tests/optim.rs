//! Integration tests of the `optim` subsystem, from outside the crate:
//! seeded determinism, monotone non-worsening, the incremental-vs-full
//! differential, and bijectivity of every move the optimizer applies.

use std::sync::Arc;

use embeddings::auto::embed;
use embeddings::congestion::congestion_sequential;
use embeddings::optim::{
    CongestionObjective, Cost, DilationObjective, Objective, Optimizer, OptimizerConfig,
};
use embeddings::verify::verify_sequential;
use embeddings::Embedding;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use topology::{Grid, Shape};

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).unwrap()
}

fn pairs() -> Vec<(Grid, Grid)> {
    vec![
        (
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[4, 2, 3])),
        ),
        (Grid::hypercube(4).unwrap(), Grid::mesh(shape(&[4, 4]))),
        (Grid::ring(24).unwrap(), Grid::torus(shape(&[4, 6]))),
        (
            Grid::torus(shape(&[4, 6])),
            Grid::mesh(shape(&[2, 2, 2, 3])),
        ),
    ]
}

/// Wraps an objective and asserts, at every single `apply_swap` call, that
/// the table the optimizer hands over is still a permutation of `0..n` —
/// i.e. that *every* move (accepted, rejected-then-undone, or part of a
/// segment reversal) preserves bijectivity.
struct BijectivityAuditor<'a> {
    inner: &'a mut dyn Objective,
    seen: Vec<bool>,
    calls: u64,
}

impl<'a> BijectivityAuditor<'a> {
    fn new(inner: &'a mut dyn Objective) -> Self {
        BijectivityAuditor {
            inner,
            seen: Vec::new(),
            calls: 0,
        }
    }

    fn assert_permutation(&mut self, table: &[u64]) {
        self.seen.clear();
        self.seen.resize(table.len(), false);
        for &image in table {
            let slot = image as usize;
            assert!(slot < table.len(), "image {image} out of range");
            assert!(!self.seen[slot], "image {image} assigned twice");
            self.seen[slot] = true;
        }
    }
}

impl Objective for BijectivityAuditor<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn rebuild(&mut self, table: &[u64]) -> Cost {
        self.assert_permutation(table);
        self.inner.rebuild(table)
    }

    fn apply_swap(&mut self, table: &[u64], a: u64, b: u64) -> Cost {
        self.calls += 1;
        self.assert_permutation(table);
        self.inner.apply_swap(table, a, b)
    }
}

#[test]
fn every_applied_move_preserves_bijectivity() {
    for (guest, host) in pairs() {
        let e = embed(&guest, &host).unwrap();
        let mut congestion = CongestionObjective::new(&guest, &host).unwrap();
        let mut auditor = BijectivityAuditor::new(&mut congestion);
        let outcome = Optimizer::new(OptimizerConfig {
            seed: 23,
            steps: 600,
            ..OptimizerConfig::default()
        })
        .optimize(&e, &mut auditor)
        .unwrap();
        assert!(auditor.calls >= 600, "swap path exercised per step");
        assert!(outcome.embedding.is_injective(), "{guest} -> {host}");
        assert!(verify_sequential(&outcome.embedding).injective);
    }
}

/// A deliberately bad starting point: the images of a constructive
/// embedding, shuffled by a seeded Fisher–Yates — still a bijection, but
/// with plenty of congestion headroom for the optimizer to recover.
fn shuffled_embedding(guest: &Grid, host: &Grid, seed: u64) -> Embedding {
    let e = embed(guest, host).unwrap();
    let mut table = e.to_table().unwrap();
    table.shuffle(&mut StdRng::seed_from_u64(seed));
    let host_clone = host.clone();
    Embedding::new(
        guest.clone(),
        host.clone(),
        "shuffled",
        Arc::new(move |x| host_clone.coord(table[x as usize]).unwrap()),
    )
    .unwrap()
}

#[test]
fn same_seed_produces_identical_tables_different_seeds_diverge() {
    let (guest, host) = (Grid::torus(shape(&[4, 6])), Grid::mesh(shape(&[4, 6])));
    // Start from a shuffled table so the walk has real improvements to find
    // (a near-optimal start can leave every seed sitting on its starting
    // table, which would make the divergence check vacuous).
    let e = shuffled_embedding(&guest, &host, 99);
    let config = OptimizerConfig {
        seed: 77,
        steps: 800,
        ..OptimizerConfig::default()
    };
    let run = |config: OptimizerConfig| {
        let mut objective = CongestionObjective::new(&guest, &host).unwrap();
        Optimizer::new(config).optimize(&e, &mut objective).unwrap()
    };
    let first = run(config);
    let second = run(config);
    assert_eq!(first.table, second.table);
    assert_eq!(first.report, second.report);

    // Different seeds explore different move sequences.
    let other = run(OptimizerConfig { seed: 78, ..config });
    assert!(
        other.report != first.report || other.table != first.table,
        "seeds 77 and 78 produced identical walks"
    );
}

#[test]
fn optimization_never_worsens_any_objective() {
    for (guest, host) in pairs() {
        let e = embed(&guest, &host).unwrap();
        let initial_congestion = congestion_sequential(&e).unwrap();

        let mut congestion = CongestionObjective::new(&guest, &host).unwrap();
        let outcome = Optimizer::new(OptimizerConfig {
            seed: 5,
            steps: 400,
            ..OptimizerConfig::default()
        })
        .optimize(&e, &mut congestion)
        .unwrap();
        assert!(outcome.report.best <= outcome.report.initial);
        // Re-measured from the outside, not trusting optimizer bookkeeping.
        let refined = congestion_sequential(&outcome.embedding).unwrap();
        assert!(
            refined.max_congestion <= initial_congestion.max_congestion,
            "{guest} -> {host}: {} > {}",
            refined.max_congestion,
            initial_congestion.max_congestion
        );

        let mut dilation = DilationObjective::new(&guest, &host).unwrap();
        let outcome = Optimizer::new(OptimizerConfig {
            seed: 5,
            steps: 400,
            ..OptimizerConfig::default()
        })
        .optimize(&e, &mut dilation)
        .unwrap();
        assert!(outcome.report.best <= outcome.report.initial);
        let (initial_avg, _) = e.average_dilation();
        let (refined_avg, _) = outcome.embedding.average_dilation();
        assert!(refined_avg <= initial_avg + 1e-12, "{guest} -> {host}");
    }
}

#[test]
fn incremental_cost_matches_full_resweep_after_optimization() {
    for (guest, host) in pairs() {
        let e = embed(&guest, &host).unwrap();
        let mut objective = CongestionObjective::new(&guest, &host).unwrap();
        let outcome = Optimizer::new(OptimizerConfig {
            seed: 11,
            steps: 500,
            ..OptimizerConfig::default()
        })
        .optimize(&e, &mut objective)
        .unwrap();
        // The best cost the incremental path reported must equal a full
        // congestion re-sweep of the returned embedding.
        let report = congestion_sequential(&outcome.embedding).unwrap();
        assert_eq!(report.max_congestion, outcome.report.best.primary);
        assert_eq!(report.total_path_length, outcome.report.best.secondary);
        // And a freshly rebuilt objective agrees on the returned table.
        let mut fresh = CongestionObjective::new(&guest, &host).unwrap();
        assert_eq!(fresh.rebuild(&outcome.table), outcome.report.best);
    }
}

#[test]
fn random_starting_tables_are_refined_toward_the_constructive_range() {
    // Start from a shuffled placement of a torus in a mesh and check the
    // optimizer recovers a meaningful fraction of the congestion gap —
    // local search must actually search, not just hold the line.
    let guest = Grid::torus(shape(&[4, 6]));
    let host = Grid::mesh(shape(&[2, 2, 2, 3]));
    let naive = shuffled_embedding(&guest, &host, 4);
    let before = congestion_sequential(&naive).unwrap();
    let mut objective = CongestionObjective::new(&guest, &host).unwrap();
    let outcome = Optimizer::new(OptimizerConfig {
        seed: 2,
        steps: 4_000,
        ..OptimizerConfig::default()
    })
    .optimize(&naive, &mut objective)
    .unwrap();
    let after = congestion_sequential(&outcome.embedding).unwrap();
    assert!(
        after.max_congestion < before.max_congestion,
        "no improvement: {} -> {}",
        before.max_congestion,
        after.max_congestion
    );
}
