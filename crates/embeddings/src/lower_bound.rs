//! Lower bounds on dilation cost for lowering-dimension embeddings
//! (Section 5, Lemmas 44–46, Theorem 47).
//!
//! The argument follows Rosenberg: a ball of radius `k` in a `d`-dimensional
//! mesh contains at least `C(k + d, d)` nodes (take the corner node as the
//! center), while the image of that ball under an embedding of dilation `ρ`
//! must fit in a `c`-dimensional interval of side `2kρ + 1` (Lemma 45).
//! Hence `(2kρ + 1)^c ≥ C(k + d, d)` for every `k < p`, where `p` is the
//! shortest dimension of the guest, which rearranges into a lower bound on
//! `ρ` of order `p^{(d−c)/c}`. Lemma 46 transfers the bound (up to a factor
//! of 2) to the remaining torus/mesh type combinations.

use topology::Grid;

use crate::error::{EmbeddingError, Result};

/// Binomial coefficient `C(n, k)` as `f64` (used only for bound evaluation,
/// where modest rounding is irrelevant).
fn binomial_f64(n: u64, k: u64) -> f64 {
    let k = k.min(n - k.min(n));
    let mut result = 1f64;
    for i in 0..k {
        result *= (n - i) as f64 / (i + 1) as f64;
    }
    result
}

/// A lower bound on the number of nodes within distance `k` of some node of a
/// `d`-dimensional mesh whose shortest dimension has length `p > k`
/// (Lemma 44): the ball around a corner contains every offset vector with
/// non-negative entries summing to at most `k`, i.e. `C(k + d, d)` nodes.
pub fn ball_size_lower_bound(d: usize, k: u64) -> f64 {
    binomial_f64(k + d as u64, d as u64)
}

/// The largest number of nodes an embedding of dilation `rho` can place
/// within distance `k·rho` of a fixed host node in a `c`-dimensional mesh
/// (Lemma 45): `(2·k·rho + 1)^c`.
pub fn interval_capacity(c: usize, k: u64, rho: u64) -> f64 {
    ((2 * k * rho + 1) as f64).powi(c as i32)
}

/// A lower bound on the dilation cost of **any** embedding of a
/// `d`-dimensional mesh guest in a `c`-dimensional mesh host of the same size
/// (`c < d`), derived from Lemmas 44 and 45: the smallest `ρ` such that
/// `(2kρ + 1)^c ≥ C(k + d, d)` for every radius `k < p`.
pub fn mesh_to_mesh_lower_bound(d: usize, c: usize, p: u64) -> u64 {
    if c >= d || p < 2 {
        return 1;
    }
    let mut best = 1u64;
    for k in 1..p {
        // Smallest rho satisfying (2 k rho + 1)^c >= C(k + d, d).
        let target = ball_size_lower_bound(d, k);
        let needed = (target.powf(1.0 / c as f64) - 1.0) / (2.0 * k as f64);
        let rho = needed.ceil().max(1.0) as u64;
        best = best.max(rho);
    }
    best
}

/// The Theorem 47 lower bound for an arbitrary guest/host pair with
/// `dim G > dim H` and equal sizes, including the constant-factor adjustments
/// of Lemma 46 for torus guests or hosts:
///
/// * mesh → mesh: the bound itself;
/// * torus → mesh: the same bound (a mesh embeds in the torus of its shape
///   with unit dilation);
/// * anything → torus: half the bound (the host torus embeds in the mesh of
///   its shape with dilation 2).
///
/// # Errors
///
/// Returns an error if the sizes differ or the guest's dimension does not
/// exceed the host's.
pub fn dilation_lower_bound(guest: &Grid, host: &Grid) -> Result<u64> {
    if guest.size() != host.size() {
        return Err(EmbeddingError::SizeMismatch {
            guest: guest.size(),
            host: host.size(),
        });
    }
    if guest.dim() <= host.dim() {
        return Err(EmbeddingError::Unsupported {
            details: "the Theorem 47 bound applies to lowering-dimension embeddings".into(),
        });
    }
    let base = mesh_to_mesh_lower_bound(guest.dim(), host.dim(), guest.shape().min_radix() as u64);
    Ok(if host.is_torus() {
        (base / 2).max(1)
    } else {
        base
    })
}

/// The asymptotic form of the Theorem 47 bound, `p^{(d−c)/c}`, as a floating
/// point number — used for reporting the ratio achieved by the paper's
/// constructions.
pub fn asymptotic_lower_bound(d: usize, c: usize, p: u64) -> f64 {
    (p as f64).powf((d as f64 - c as f64) / c as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{GraphKind, Shape};

    fn square_grid(kind: GraphKind, ell: u32, dim: usize) -> Grid {
        Grid::new(kind, Shape::square(ell, dim).unwrap())
    }

    #[test]
    fn binomials_are_exact_for_small_inputs() {
        assert_eq!(binomial_f64(5, 2), 10.0);
        assert_eq!(binomial_f64(6, 3), 20.0);
        assert_eq!(binomial_f64(4, 0), 1.0);
        assert_eq!(ball_size_lower_bound(2, 3), 10.0);
    }

    #[test]
    fn lemma_45_capacity_grows_with_every_parameter() {
        assert!(interval_capacity(2, 1, 1) < interval_capacity(2, 1, 2));
        assert!(interval_capacity(2, 1, 2) < interval_capacity(2, 2, 2));
        assert!(interval_capacity(2, 2, 2) < interval_capacity(3, 2, 2));
        assert_eq!(interval_capacity(1, 1, 1), 3.0);
    }

    #[test]
    fn ball_bound_is_actually_a_lower_bound_on_real_meshes() {
        // Count the ball around the corner of a (5,5)-mesh and a (4,4,4)-mesh
        // and compare with C(k + d, d).
        for (shape, d) in [
            (Shape::square(5, 2).unwrap(), 2),
            (Shape::square(4, 3).unwrap(), 3),
        ] {
            let mesh = Grid::mesh(shape);
            for k in 1..4u64 {
                let count = mesh
                    .nodes()
                    .filter(|&x| mesh.distance_index(0, x).unwrap() <= k)
                    .count() as f64;
                assert!(
                    count >= ball_size_lower_bound(d, k),
                    "ball of radius {k} in {mesh}: {count} nodes"
                );
            }
        }
    }

    #[test]
    fn theorem_47_bound_never_exceeds_achieved_dilation() {
        use crate::square::{embed_square, predicted_dilation_square};
        // For square lowering cases our embeddings must respect the bound.
        let cases = vec![
            (square_grid(GraphKind::Mesh, 4, 2), Grid::line(16).unwrap()),
            (square_grid(GraphKind::Mesh, 3, 3), Grid::line(27).unwrap()),
            (
                square_grid(GraphKind::Mesh, 4, 3),
                square_grid(GraphKind::Mesh, 8, 2),
            ),
            (square_grid(GraphKind::Torus, 4, 2), Grid::ring(16).unwrap()),
        ];
        for (guest, host) in cases {
            let bound = dilation_lower_bound(&guest, &host).unwrap();
            let achieved = embed_square(&guest, &host).unwrap().dilation();
            assert!(
                bound <= achieved,
                "bound {bound} exceeds achieved dilation {achieved} for {guest} -> {host}"
            );
            let predicted = predicted_dilation_square(&guest, &host).unwrap();
            assert!(bound <= predicted);
        }
    }

    #[test]
    fn bound_grows_with_the_guest_side() {
        let b4 = mesh_to_mesh_lower_bound(2, 1, 4);
        let b16 = mesh_to_mesh_lower_bound(2, 1, 16);
        let b64 = mesh_to_mesh_lower_bound(2, 1, 64);
        assert!(b4 <= b16 && b16 <= b64);
        assert!(b64 > 1);
        // The asymptotic form grows like p for d = 2, c = 1.
        assert!(asymptotic_lower_bound(2, 1, 64) == 64.0);
        assert!((asymptotic_lower_bound(3, 2, 64) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn torus_hosts_halve_the_bound() {
        let mesh_host = Grid::line(256).unwrap();
        let ring_host = Grid::ring(256).unwrap();
        let guest = square_grid(GraphKind::Mesh, 16, 2);
        let to_mesh = dilation_lower_bound(&guest, &mesh_host).unwrap();
        let to_ring = dilation_lower_bound(&guest, &ring_host).unwrap();
        assert!(to_ring <= to_mesh);
        assert!(to_ring >= to_mesh / 2);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let guest = square_grid(GraphKind::Mesh, 4, 2);
        let host = Grid::line(15).unwrap();
        assert!(dilation_lower_bound(&guest, &host).is_err());
        let increasing = Grid::hypercube(4).unwrap();
        assert!(dilation_lower_bound(&guest, &increasing).is_err());
    }
}
