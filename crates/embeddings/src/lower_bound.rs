//! Analytic lower bounds the sweeps check measured embeddings against: the
//! paper's dilation bound for lowering-dimension embeddings (Section 5,
//! Lemmas 44–46, Theorem 47) and Tang's exact minimum-wirelength bound for
//! hypercubes in toruses and meshes (arXiv:2302.13237).
//!
//! # Dilation (Theorem 47)
//!
//! The argument follows Rosenberg: a ball of radius `k` in a `d`-dimensional
//! mesh contains at least `C(k + d, d)` nodes (take the corner node as the
//! center), while the image of that ball under an embedding of dilation `ρ`
//! must fit in a `c`-dimensional interval of side `2kρ + 1` (Lemma 45).
//! Hence `(2kρ + 1)^c ≥ C(k + d, d)` for every `k < p`, where `p` is the
//! shortest dimension of the guest, which rearranges into a lower bound on
//! `ρ` of order `p^{(d−c)/c}`. Lemma 46 transfers the bound (up to a factor
//! of 2) to the remaining torus/mesh type combinations.
//!
//! # Wirelength (Tang 2023)
//!
//! The wirelength of a bijection `f : Q_n → H` is the sum over hypercube
//! edges of the host distance of the endpoint images — exactly the
//! unit-weight cost of
//! [`WirelengthObjective`](crate::optim::WirelengthObjective). When `H` is a
//! product of paths and/or cycles whose lengths are powers of two (every
//! torus or mesh of `2^n` nodes qualifies — each radix divides `2^n`), the
//! host distance splits into per-dimension terms, and Tang (arXiv:2302.13237)
//! proves via the congestion lemma over Harper's optimal sets that each
//! dimension's term is minimized *simultaneously* by a Gray-code-style
//! labeling. The exact minimum is the closed form
//!
//! ```text
//! WL(Q_n, H) = Σ_j 2^(n − a_j) · F(kind_j, a_j),    l_j = 2^(a_j)
//! ```
//!
//! where `F(path, a)` = [`hypercube_path_wirelength`]`(a)` (Harper 1964) and
//! `F(cycle, a)` = [`hypercube_cycle_wirelength`]`(a)`: dimension `j` of the
//! product sees the `2^(n−a_j)`-fold blow-up of the optimal `Q_(a_j)` →
//! path/cycle labeling. [`wirelength_lower_bound`] evaluates the closed form
//! as a checkable bound; the `hypercube_torus` explab family anneals against
//! it and EXPERIMENTS.md Table 11 reports both sides (violations fold into
//! `bound_ok`, like every other bound here). The brute-force tests below pin
//! exactness on every shape of `Q_2` and `Q_3` by minimizing over all
//! bijections.

use topology::Grid;

use crate::error::{EmbeddingError, Result};

/// Binomial coefficient `C(n, k)` as `f64` (used only for bound evaluation,
/// where modest rounding is irrelevant).
fn binomial_f64(n: u64, k: u64) -> f64 {
    let k = k.min(n - k.min(n));
    let mut result = 1f64;
    for i in 0..k {
        result *= (n - i) as f64 / (i + 1) as f64;
    }
    result
}

/// A lower bound on the number of nodes within distance `k` of some node of a
/// `d`-dimensional mesh whose shortest dimension has length `p > k`
/// (Lemma 44): the ball around a corner contains every offset vector with
/// non-negative entries summing to at most `k`, i.e. `C(k + d, d)` nodes.
pub fn ball_size_lower_bound(d: usize, k: u64) -> f64 {
    binomial_f64(k + d as u64, d as u64)
}

/// The largest number of nodes an embedding of dilation `rho` can place
/// within distance `k·rho` of a fixed host node in a `c`-dimensional mesh
/// (Lemma 45): `(2·k·rho + 1)^c`.
pub fn interval_capacity(c: usize, k: u64, rho: u64) -> f64 {
    ((2 * k * rho + 1) as f64).powi(c as i32)
}

/// A lower bound on the dilation cost of **any** embedding of a
/// `d`-dimensional mesh guest in a `c`-dimensional mesh host of the same size
/// (`c < d`), derived from Lemmas 44 and 45: the smallest `ρ` such that
/// `(2kρ + 1)^c ≥ C(k + d, d)` for every radius `k < p`.
pub fn mesh_to_mesh_lower_bound(d: usize, c: usize, p: u64) -> u64 {
    if c >= d || p < 2 {
        return 1;
    }
    let mut best = 1u64;
    for k in 1..p {
        // Smallest rho satisfying (2 k rho + 1)^c >= C(k + d, d).
        let target = ball_size_lower_bound(d, k);
        let needed = (target.powf(1.0 / c as f64) - 1.0) / (2.0 * k as f64);
        let rho = needed.ceil().max(1.0) as u64;
        best = best.max(rho);
    }
    best
}

/// The Theorem 47 lower bound for an arbitrary guest/host pair with
/// `dim G > dim H` and equal sizes, including the constant-factor adjustments
/// of Lemma 46 for torus guests or hosts:
///
/// * mesh → mesh: the bound itself;
/// * torus → mesh: the same bound (a mesh embeds in the torus of its shape
///   with unit dilation);
/// * anything → torus: half the bound (the host torus embeds in the mesh of
///   its shape with dilation 2).
///
/// # Errors
///
/// Returns an error if the sizes differ or the guest's dimension does not
/// exceed the host's.
pub fn dilation_lower_bound(guest: &Grid, host: &Grid) -> Result<u64> {
    if guest.size() != host.size() {
        return Err(EmbeddingError::SizeMismatch {
            guest: guest.size(),
            host: host.size(),
        });
    }
    if guest.dim() <= host.dim() {
        return Err(EmbeddingError::Unsupported {
            details: "the Theorem 47 bound applies to lowering-dimension embeddings".into(),
        });
    }
    let base = mesh_to_mesh_lower_bound(guest.dim(), host.dim(), guest.shape().min_radix() as u64);
    Ok(if host.is_torus() {
        (base / 2).max(1)
    } else {
        base
    })
}

/// The asymptotic form of the Theorem 47 bound, `p^{(d−c)/c}`, as a floating
/// point number — used for reporting the ratio achieved by the paper's
/// constructions.
pub fn asymptotic_lower_bound(d: usize, c: usize, p: u64) -> f64 {
    (p as f64).powf((d as f64 - c as f64) / c as f64)
}

/// Harper's exact minimum wirelength of the hypercube `Q_a` in the path
/// `P_(2^a)`: `2^(a−1) · (2^a − 1)`, achieved by the lexicographic (binary
/// counting) order. `a = 0` is the single node (wirelength 0).
pub fn hypercube_path_wirelength(a: u32) -> u64 {
    if a == 0 {
        return 0;
    }
    (1u64 << (a - 1)) * ((1u64 << a) - 1)
}

/// The exact minimum wirelength of the hypercube `Q_a` in the cycle
/// `C_(2^a)`: `3·2^(2a−3) − 2^(a−1)` for `a ≥ 2` (Tang, arXiv:2302.13237),
/// achieved by Gray-code labelings. `C_2` degenerates to the single edge of
/// `P_2` (wirelength 1), and `a = 0` is the single node.
pub fn hypercube_cycle_wirelength(a: u32) -> u64 {
    match a {
        0 => 0,
        1 => 1,
        _ => 3 * (1u64 << (2 * a - 3)) - (1u64 << (a - 1)),
    }
}

/// Tang's exact minimum wirelength of **any** bijection of the hypercube
/// `Q_n` onto a same-size torus or mesh host (arXiv:2302.13237): the
/// closed form `Σ_j 2^(n − a_j) · F(kind_j, a_j)` over host dimensions of
/// length `2^(a_j)`, with `F` the per-dimension path/cycle optimum
/// ([`hypercube_path_wirelength`] / [`hypercube_cycle_wirelength`]). See the
/// [module docs](self) for the decomposition argument.
///
/// Every host radix of a `2^n`-node grid is automatically a power of two, so
/// the bound covers the whole `hypercube_torus` explab family; measured
/// wirelengths below it indicate a broken theorem (or measurement) and fold
/// into `bound_ok`. For the host `Q_n` itself the formula collapses to
/// `n · 2^(n−1)` — the edge count, achieved by the identity.
///
/// # Errors
///
/// Returns [`EmbeddingError::SizeMismatch`] if the sizes differ,
/// [`EmbeddingError::Unsupported`] if the guest is not a hypercube, and
/// [`EmbeddingError::TooLarge`] beyond `2^31` nodes (where the closed form
/// could overflow `u64`).
pub fn wirelength_lower_bound(guest: &Grid, host: &Grid) -> Result<u64> {
    if guest.size() != host.size() {
        return Err(EmbeddingError::SizeMismatch {
            guest: guest.size(),
            host: host.size(),
        });
    }
    if !guest.is_hypercube() {
        return Err(EmbeddingError::Unsupported {
            details: "the Tang wirelength bound applies to hypercube guests".into(),
        });
    }
    const NODE_LIMIT: u64 = 1 << 31;
    if guest.size() > NODE_LIMIT {
        return Err(EmbeddingError::TooLarge {
            size: guest.size(),
            limit: NODE_LIMIT,
        });
    }
    let n = guest.size().trailing_zeros();
    let mut total = 0u64;
    for j in 0..host.dim() {
        let l = u64::from(host.shape().radix(j));
        if !l.is_power_of_two() {
            // Unreachable for equal sizes (every divisor of 2^n is a power
            // of two), but the formula is meaningless without it.
            return Err(EmbeddingError::Unsupported {
                details: "the Tang wirelength bound needs power-of-two host radices".into(),
            });
        }
        let a = l.trailing_zeros();
        let factor = if host.is_torus() {
            hypercube_cycle_wirelength(a)
        } else {
            hypercube_path_wirelength(a)
        };
        total += (1u64 << (n - a)) * factor;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{GraphKind, Shape};

    fn square_grid(kind: GraphKind, ell: u32, dim: usize) -> Grid {
        Grid::new(kind, Shape::square(ell, dim).unwrap())
    }

    #[test]
    fn binomials_are_exact_for_small_inputs() {
        assert_eq!(binomial_f64(5, 2), 10.0);
        assert_eq!(binomial_f64(6, 3), 20.0);
        assert_eq!(binomial_f64(4, 0), 1.0);
        assert_eq!(ball_size_lower_bound(2, 3), 10.0);
    }

    #[test]
    fn lemma_45_capacity_grows_with_every_parameter() {
        assert!(interval_capacity(2, 1, 1) < interval_capacity(2, 1, 2));
        assert!(interval_capacity(2, 1, 2) < interval_capacity(2, 2, 2));
        assert!(interval_capacity(2, 2, 2) < interval_capacity(3, 2, 2));
        assert_eq!(interval_capacity(1, 1, 1), 3.0);
    }

    #[test]
    fn ball_bound_is_actually_a_lower_bound_on_real_meshes() {
        // Count the ball around the corner of a (5,5)-mesh and a (4,4,4)-mesh
        // and compare with C(k + d, d).
        for (shape, d) in [
            (Shape::square(5, 2).unwrap(), 2),
            (Shape::square(4, 3).unwrap(), 3),
        ] {
            let mesh = Grid::mesh(shape);
            for k in 1..4u64 {
                let count = mesh
                    .nodes()
                    .filter(|&x| mesh.distance_index(0, x).unwrap() <= k)
                    .count() as f64;
                assert!(
                    count >= ball_size_lower_bound(d, k),
                    "ball of radius {k} in {mesh}: {count} nodes"
                );
            }
        }
    }

    #[test]
    fn theorem_47_bound_never_exceeds_achieved_dilation() {
        use crate::square::{embed_square, predicted_dilation_square};
        // For square lowering cases our embeddings must respect the bound.
        let cases = vec![
            (square_grid(GraphKind::Mesh, 4, 2), Grid::line(16).unwrap()),
            (square_grid(GraphKind::Mesh, 3, 3), Grid::line(27).unwrap()),
            (
                square_grid(GraphKind::Mesh, 4, 3),
                square_grid(GraphKind::Mesh, 8, 2),
            ),
            (square_grid(GraphKind::Torus, 4, 2), Grid::ring(16).unwrap()),
        ];
        for (guest, host) in cases {
            let bound = dilation_lower_bound(&guest, &host).unwrap();
            let achieved = embed_square(&guest, &host).unwrap().dilation();
            assert!(
                bound <= achieved,
                "bound {bound} exceeds achieved dilation {achieved} for {guest} -> {host}"
            );
            let predicted = predicted_dilation_square(&guest, &host).unwrap();
            assert!(bound <= predicted);
        }
    }

    #[test]
    fn bound_grows_with_the_guest_side() {
        let b4 = mesh_to_mesh_lower_bound(2, 1, 4);
        let b16 = mesh_to_mesh_lower_bound(2, 1, 16);
        let b64 = mesh_to_mesh_lower_bound(2, 1, 64);
        assert!(b4 <= b16 && b16 <= b64);
        assert!(b64 > 1);
        // The asymptotic form grows like p for d = 2, c = 1.
        assert!(asymptotic_lower_bound(2, 1, 64) == 64.0);
        assert!((asymptotic_lower_bound(3, 2, 64) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn torus_hosts_halve_the_bound() {
        let mesh_host = Grid::line(256).unwrap();
        let ring_host = Grid::ring(256).unwrap();
        let guest = square_grid(GraphKind::Mesh, 16, 2);
        let to_mesh = dilation_lower_bound(&guest, &mesh_host).unwrap();
        let to_ring = dilation_lower_bound(&guest, &ring_host).unwrap();
        assert!(to_ring <= to_mesh);
        assert!(to_ring >= to_mesh / 2);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let guest = square_grid(GraphKind::Mesh, 4, 2);
        let host = Grid::line(15).unwrap();
        assert!(dilation_lower_bound(&guest, &host).is_err());
        let increasing = Grid::hypercube(4).unwrap();
        assert!(dilation_lower_bound(&guest, &increasing).is_err());
    }

    /// The wirelength of one explicit bijection `table[guest] = host`.
    fn table_wirelength(guest: &Grid, host: &Grid, table: &[u64]) -> u64 {
        guest
            .edges()
            .map(|(x, y)| {
                host.distance_index(table[x as usize], table[y as usize])
                    .unwrap()
            })
            .sum()
    }

    /// The true minimum wirelength over *all* `n!` bijections, by Heap's
    /// permutation enumeration — only feasible for `n ≤ 8`.
    fn brute_force_min_wirelength(guest: &Grid, host: &Grid) -> u64 {
        let n = guest.size() as usize;
        assert!(n <= 8, "brute force is only for tiny graphs");
        let mut table: Vec<u64> = (0..n as u64).collect();
        let mut best = table_wirelength(guest, host, &table);
        let mut c = vec![0usize; n];
        let mut i = 0;
        while i < n {
            if c[i] < i {
                if i % 2 == 0 {
                    table.swap(0, i);
                } else {
                    table.swap(c[i], i);
                }
                best = best.min(table_wirelength(guest, host, &table));
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        best
    }

    #[test]
    fn tang_closed_form_values_are_pinned() {
        // Harper's path optima: Q_1 -> P_2 = 1, Q_2 -> P_4 = 6, Q_3 -> P_8 = 28.
        assert_eq!(hypercube_path_wirelength(0), 0);
        assert_eq!(hypercube_path_wirelength(1), 1);
        assert_eq!(hypercube_path_wirelength(2), 6);
        assert_eq!(hypercube_path_wirelength(3), 28);
        // Tang's cycle optima: Q_2 -> C_4 = 4, Q_3 -> C_8 = 20, Q_4 -> C_16 = 88.
        assert_eq!(hypercube_cycle_wirelength(0), 0);
        assert_eq!(hypercube_cycle_wirelength(1), 1);
        assert_eq!(hypercube_cycle_wirelength(2), 4);
        assert_eq!(hypercube_cycle_wirelength(3), 20);
        assert_eq!(hypercube_cycle_wirelength(4), 88);
    }

    #[test]
    fn tang_bound_is_exact_on_every_shape_of_q2_and_q3() {
        // Minimize over all bijections (24 for Q_2, 40320 for Q_3) and
        // compare with the closed form — exactness, not just soundness.
        let q2 = Grid::hypercube(2).unwrap();
        let q3 = Grid::hypercube(3).unwrap();
        let hosts_q2 = [
            Grid::ring(4).unwrap(),
            Grid::line(4).unwrap(),
            Grid::torus(Shape::new(vec![2, 2]).unwrap()),
            Grid::mesh(Shape::new(vec![2, 2]).unwrap()),
        ];
        let hosts_q3 = [
            Grid::ring(8).unwrap(),
            Grid::line(8).unwrap(),
            Grid::torus(Shape::new(vec![4, 2]).unwrap()),
            Grid::mesh(Shape::new(vec![4, 2]).unwrap()),
            Grid::torus(Shape::new(vec![2, 2, 2]).unwrap()),
            Grid::mesh(Shape::new(vec![2, 2, 2]).unwrap()),
        ];
        for (guest, hosts) in [(&q2, &hosts_q2[..]), (&q3, &hosts_q3[..])] {
            for host in hosts {
                let bound = wirelength_lower_bound(guest, host).unwrap();
                let brute = brute_force_min_wirelength(guest, host);
                assert_eq!(
                    bound, brute,
                    "closed form vs exhaustive minimum for {guest} -> {host}"
                );
            }
        }
    }

    #[test]
    fn tang_bound_collapses_to_the_edge_count_on_hypercube_hosts() {
        for n in 1..=10u32 {
            let q = Grid::hypercube(n as usize).unwrap();
            let bound = wirelength_lower_bound(&q, &q).unwrap();
            assert_eq!(bound, q.num_edges(), "Q_{n} into itself");
        }
    }

    #[test]
    fn tang_bound_rejects_invalid_pairs() {
        let q3 = Grid::hypercube(3).unwrap();
        assert!(matches!(
            wirelength_lower_bound(&q3, &Grid::ring(16).unwrap()),
            Err(EmbeddingError::SizeMismatch { .. })
        ));
        let torus = Grid::torus(Shape::new(vec![4, 2]).unwrap());
        assert!(matches!(
            wirelength_lower_bound(&torus, &Grid::ring(8).unwrap()),
            Err(EmbeddingError::Unsupported { .. })
        ));
    }
}
