//! Embeddings between a torus and a mesh of the same shape
//! (Definition 35, Lemma 36).
//!
//! With identical shapes the identity map has unit dilation except in one
//! case: a (non-hypercube) torus cannot be embedded in a mesh of the same
//! shape with unit dilation, because boundary mesh nodes have smaller degree
//! than any torus node. The function `T_L` — applying `t_{l_i}` independently
//! in every dimension — achieves the optimal dilation cost 2 in that case.

use std::sync::Arc;

use mixedradix::{Digits, RadixBase};
use topology::Grid;

use crate::basic::t_n;
use crate::embedding::Embedding;
use crate::error::{EmbeddingError, Result};

/// Evaluates `T_L((x_1, …, x_d)) = (t_{l_1}(x_1), …, t_{l_d}(x_d))`
/// (Definition 35).
///
/// # Panics
///
/// Panics if `digits` is not a valid radix-`L` number.
pub fn t_l(base: &RadixBase, digits: &Digits) -> Digits {
    assert!(
        base.contains(digits),
        "T_L argument {digits} is not a radix-{base} number"
    );
    let mut out = Digits::zero(base.dim()).expect("dimension within bounds");
    for j in 0..base.dim() {
        out.set(j, t_n(base.radix(j) as u64, digits.get(j) as u64) as u32);
    }
    out
}

/// The dilation cost guaranteed by Lemma 36 for a same-shape embedding.
pub fn predicted_dilation_same_shape(guest: &Grid, host: &Grid) -> u64 {
    if guest.is_torus() && host.is_mesh() && !guest.is_hypercube() {
        2
    } else {
        1
    }
}

/// Embeds `guest` in a `host` of the same shape (Lemma 36): the identity map
/// unless the guest is a (non-hypercube) torus and the host a mesh, in which
/// case `T_L` is used with dilation 2.
///
/// # Errors
///
/// Returns an error if the shapes differ.
pub fn embed_same_shape(guest: &Grid, host: &Grid) -> Result<Embedding> {
    if guest.shape() != host.shape() {
        return Err(EmbeddingError::Unsupported {
            details: format!(
                "same-shape embedding requires equal shapes, got {} and {}",
                guest.shape(),
                host.shape()
            ),
        });
    }
    if guest.is_torus() && host.is_mesh() && !guest.is_hypercube() {
        let shape = host.shape().clone();
        Embedding::new(
            guest.clone(),
            host.clone(),
            "T_L",
            Arc::new(move |x| {
                let digits = shape.to_digits(x).expect("index in range");
                t_l(&shape, &digits)
            }),
        )
    } else {
        Embedding::identity(guest.clone(), host.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn t_l_applies_t_n_per_dimension() {
        let base = shape(&[6, 5]);
        let digits = Digits::from_slice(&[3, 4]).unwrap();
        // t_6(3) = 5, t_5(4) = 1.
        assert_eq!(t_l(&base, &digits).as_slice(), &[5, 1]);
    }

    #[test]
    fn torus_in_mesh_same_shape_dilation_two() {
        for radices in [vec![3u32, 3], vec![4, 2, 3], vec![5, 5], vec![3, 4, 2]] {
            let guest = Grid::torus(shape(&radices));
            let host = Grid::mesh(shape(&radices));
            let e = embed_same_shape(&guest, &host).unwrap();
            assert_eq!(e.name(), "T_L");
            assert!(e.is_injective());
            assert_eq!(e.dilation(), 2);
            assert_eq!(e.dilation(), predicted_dilation_same_shape(&guest, &host));
        }
    }

    #[test]
    fn mesh_in_torus_same_shape_is_identity_with_unit_dilation() {
        let guest = Grid::mesh(shape(&[4, 3]));
        let host = Grid::torus(shape(&[4, 3]));
        let e = embed_same_shape(&guest, &host).unwrap();
        assert_eq!(e.name(), "identity");
        assert_eq!(e.dilation(), 1);
        assert_eq!(predicted_dilation_same_shape(&guest, &host), 1);
    }

    #[test]
    fn torus_in_torus_and_mesh_in_mesh_are_identity() {
        for (guest, host) in [
            (Grid::torus(shape(&[3, 5])), Grid::torus(shape(&[3, 5]))),
            (Grid::mesh(shape(&[3, 5])), Grid::mesh(shape(&[3, 5]))),
        ] {
            let e = embed_same_shape(&guest, &host).unwrap();
            assert_eq!(e.dilation(), 1);
        }
    }

    #[test]
    fn hypercube_torus_to_mesh_is_identity() {
        // A hypercube is both a torus and a mesh; the identity suffices.
        let guest = Grid::torus(shape(&[2, 2, 2]));
        let host = Grid::mesh(shape(&[2, 2, 2]));
        let e = embed_same_shape(&guest, &host).unwrap();
        assert_eq!(e.name(), "identity");
        assert_eq!(e.dilation(), 1);
        assert_eq!(predicted_dilation_same_shape(&guest, &host), 1);
    }

    #[test]
    fn different_shapes_are_rejected() {
        let guest = Grid::torus(shape(&[3, 4]));
        let host = Grid::mesh(shape(&[4, 3]));
        assert!(embed_same_shape(&guest, &host).is_err());
    }
}
