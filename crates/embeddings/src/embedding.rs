//! The [`Embedding`] type: an injection of the nodes of a guest graph `G`
//! into the nodes of a host graph `H`, together with its dilation cost
//! (Definition 1 of the paper).
//!
//! # Batched evaluation
//!
//! Every construction in the paper evaluates in `O(dimension of H)` time per
//! node, so consumers should sweep embeddings rather than materialize them.
//! Two API tiers support this:
//!
//! * **Per-call**: [`Embedding::map`] / [`Embedding::map_index`] evaluate one
//!   node. Convenient for spot checks, but a sweep built on them pays one
//!   dynamic call per lookup plus (for neighbor enumeration through
//!   [`Grid::neighbors`]) a `Vec` allocation per node.
//! * **Batched**: [`Embedding::map_into`] writes into a caller-owned scratch
//!   [`Coord`], and [`Embedding::for_each_edge_mapped`] walks a contiguous
//!   chunk of guest nodes, visiting every incident guest edge exactly once
//!   with both endpoint images already evaluated — no allocation anywhere in
//!   the loop. `verify`, `congestion`, [`Embedding::dilation`] and
//!   [`Embedding::to_table`] are all built on this path; prefer it whenever
//!   you touch more than a handful of nodes, and hand disjoint chunks to the
//!   crossbeam fork–join pool (as [`Embedding::dilation_parallel`] does) to
//!   scale with memory bandwidth.
//!
//! Evaluation never trusts the mapping function: [`Embedding::try_map_index`]
//! reports images outside the host as [`EmbeddingError::InvalidImage`], and
//! the sweeps above degrade to failure reports instead of panicking.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

use topology::parallel::{parallel_map_reduce, recommended_threads};
use topology::planes::{DigitPlanes, LANES};
use topology::{Coord, GraphKind, Grid};

use crate::error::{EmbeddingError, Result};

/// The mapping function of an embedding: guest node index → host coordinate.
pub type MapFn = Arc<dyn Fn(u64) -> Coord + Send + Sync>;

/// An embedding `f : V_G → V_H` of a guest torus/mesh `G` in a host
/// torus/mesh `H` of the same size.
///
/// The mapping is stored as a function of the guest node *index*, returning a
/// host *coordinate*; every construction in the paper evaluates in
/// `O(dimension of H)` time per node, so embeddings of multi-million-node
/// graphs never need to be materialized. Use [`Embedding::to_table`] when an
/// explicit table is wanted.
#[derive(Clone)]
pub struct Embedding {
    guest: Grid,
    host: Grid,
    name: String,
    map: MapFn,
}

impl Embedding {
    /// Creates an embedding from a mapping function.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SizeMismatch`] if the graphs differ in size.
    /// The injectivity of `map` is *not* checked here (use
    /// [`Embedding::is_injective`] or [`crate::verify::verify`]).
    pub fn new(guest: Grid, host: Grid, name: impl Into<String>, map: MapFn) -> Result<Self> {
        if guest.size() != host.size() {
            return Err(EmbeddingError::SizeMismatch {
                guest: guest.size(),
                host: host.size(),
            });
        }
        Ok(Embedding {
            guest,
            host,
            name: name.into(),
            map,
        })
    }

    /// Creates an embedding from an explicit placement table (guest node
    /// index → host node index), validating the table up front.
    ///
    /// This is the trusted boundary for tables that arrive from outside the
    /// process — a deserialized [`crate::plan::Plan`], a service request, an
    /// annealing-refined table read back from disk. Validation checks the
    /// length, the range of every entry and injectivity, so the returned
    /// embedding's mapping function can never panic on a lookup.
    ///
    /// # Errors
    ///
    /// * [`EmbeddingError::SizeMismatch`] if the graphs differ in size;
    /// * [`EmbeddingError::InvalidTable`] if the table's length is not the
    ///   guest size, an entry is not a host node, or two guests map to the
    ///   same host node.
    pub fn from_table(
        guest: Grid,
        host: Grid,
        name: impl Into<String>,
        table: Vec<u64>,
    ) -> Result<Self> {
        if guest.size() != host.size() {
            return Err(EmbeddingError::SizeMismatch {
                guest: guest.size(),
                host: host.size(),
            });
        }
        if table.len() as u64 != guest.size() {
            return Err(EmbeddingError::InvalidTable {
                details: format!(
                    "table has {} entries for a guest of {} nodes",
                    table.len(),
                    guest.size()
                ),
            });
        }
        let n = host.size();
        let words = n.div_ceil(64) as usize;
        let mut seen = vec![0u64; words];
        for (x, &y) in table.iter().enumerate() {
            if y >= n {
                return Err(EmbeddingError::InvalidTable {
                    details: format!("guest node {x} maps to {y}, beyond the host's {n} nodes"),
                });
            }
            let (w, b) = ((y / 64) as usize, y % 64);
            if seen[w] >> b & 1 == 1 {
                return Err(EmbeddingError::InvalidTable {
                    details: format!("host node {y} is the image of two guest nodes"),
                });
            }
            seen[w] |= 1 << b;
        }
        let map_table: Arc<[u64]> = table.into();
        let map_host = host.clone();
        Embedding::new(
            guest,
            host,
            name,
            // Every entry was just checked to be a host node, so the
            // conversion to a coordinate cannot fail.
            Arc::new(move |x| {
                map_host
                    .coord(map_table[x as usize])
                    .expect("validated table entry")
            }),
        )
    }

    /// Creates the identity embedding between two graphs of the same shape.
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes differ.
    pub fn identity(guest: Grid, host: Grid) -> Result<Self> {
        if guest.shape() != host.shape() {
            return Err(EmbeddingError::Unsupported {
                details: format!(
                    "identity embedding requires equal shapes, got {} and {}",
                    guest.shape(),
                    host.shape()
                ),
            });
        }
        let shape = host.shape().clone();
        Embedding::new(
            guest,
            host,
            "identity",
            Arc::new(move |x| shape.to_digits(x).expect("index in range")),
        )
    }

    /// The guest graph `G`.
    pub fn guest(&self) -> &Grid {
        &self.guest
    }

    /// The host graph `H`.
    pub fn host(&self) -> &Grid {
        &self.host
    }

    /// A human-readable name of the construction (e.g. `"f_L"`, `"π∘H_V"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of nodes of either graph.
    pub fn size(&self) -> u64 {
        self.guest.size()
    }

    /// The image of guest node `x` as a host coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range (constructions map exactly `[0, n)`).
    pub fn map(&self, x: u64) -> Coord {
        (self.map)(x)
    }

    /// Writes the image of guest node `x` into a caller-owned scratch
    /// coordinate.
    ///
    /// This is the batched twin of [`Embedding::map`]: hot loops keep one
    /// `Coord` alive per endpoint and overwrite it per lookup instead of
    /// binding a fresh value per call.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range (constructions map exactly `[0, n)`).
    #[inline]
    pub fn map_into(&self, x: u64, out: &mut Coord) {
        *out = (self.map)(x);
    }

    /// The image of guest node `x` as a host linear index.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidImage`] if the mapping function
    /// produced a coordinate that is not a node of the host — the fallible
    /// path for code that must not abort on a buggy construction.
    pub fn try_map_index(&self, x: u64) -> Result<u64> {
        let image = self.map(x);
        self.host
            .index(&image)
            .map_err(|_| EmbeddingError::InvalidImage {
                guest: x,
                image: Box::new(image),
            })
    }

    /// The image of guest node `x` as a host linear index.
    ///
    /// # Panics
    ///
    /// Panics if the image is not a valid host node; use
    /// [`Embedding::try_map_index`] to handle that case as an error.
    pub fn map_index(&self, x: u64) -> u64 {
        self.try_map_index(x)
            .expect("embedding images must be valid host nodes")
    }

    /// Visits every node in `nodes` and every guest edge incident to it,
    /// with all images already evaluated — the chunked core of the batched
    /// pipeline.
    ///
    /// The range is processed in fixed-size chunks. Per chunk, the images of
    /// the chunk's nodes are materialized once into an internal scratch
    /// buffer (one dynamic `map` call per node); then for each node `x` (in
    /// increasing order) `node(x, f(x))` is called, followed by
    /// `edge(x, y, f(x), f(y))` for each edge obtained by *increasing* `x`'s
    /// coordinate in some dimension (modulo the length for toruses) — the
    /// same enumeration as [`Grid::edges`], so sweeping `0..size()` visits
    /// every edge exactly once and disjoint chunks partition the edge set
    /// for fork–join parallelism. Neighbors inside the current chunk reuse
    /// the materialized image; only edges leaving the chunk re-evaluate the
    /// map, so a sweep costs roughly one `map` call per node instead of two
    /// per edge, and nothing in the loop touches the allocator after the
    /// first chunk.
    ///
    /// Internally the guest-side arithmetic runs on the structure-of-arrays
    /// digit-plane codec: each batch of [`LANES`] consecutive nodes is
    /// decoded with [`DigitPlanes::decode_range`] (two divisions per batch
    /// per dimension instead of one per node per dimension), and the
    /// neighbor-by-increasing-coordinate of every lane is computed by
    /// per-dimension sweeps over the planes before any callback runs. The
    /// callbacks then replay in exactly the order documented above, so
    /// stateful visitors (congestion's per-node `Cell` handoff, verify's
    /// failure accumulation) observe the same sequence as the scalar code
    /// this replaces.
    ///
    /// # Panics
    ///
    /// Panics if the chunk contains an out-of-range node index.
    pub fn for_each_mapped<N, E>(&self, nodes: Range<u64>, mut node: N, mut edge: E)
    where
        N: FnMut(u64, &Coord),
        E: FnMut(u64, u64, &Coord, &Coord),
    {
        // 2¹⁴ images ≈ 2 MiB of scratch: large enough that the common
        // least-significant-dimension neighbors stay in-chunk, small enough
        // to live in cache.
        const CHUNK: u64 = 1 << 14;
        // No-edge sentinel for the neighbor planes. Never a real index: the
        // guest has at most u64::MAX nodes, so indices stop at u64::MAX − 1.
        const NO_EDGE: u64 = u64::MAX;
        let shape = self.guest.shape();
        let kind = self.guest.kind();
        let d = shape.dim();
        let mut planes = DigitPlanes::for_base(shape);
        let mut neighbors = vec![NO_EDGE; d * LANES];
        let mut images: Vec<Coord> = Vec::new();
        let mut fy = Coord::empty();
        let mut start = nodes.start;
        while start < nodes.end {
            let end = nodes.end.min(start + CHUNK);
            images.clear();
            for x in start..end {
                images.push((self.map)(x));
            }
            let mut batch = start;
            while batch < end {
                let count = (end - batch).min(LANES as u64) as usize;
                planes
                    .decode_range(shape, batch, count)
                    .expect("node in range");
                // Per-dimension sweeps: fixed-bound branches hoisted out of
                // the lane loops so each loop body is a select over one
                // digit plane — the autovectorizable shape.
                for j in 0..d {
                    let l = shape.radix(j);
                    let w = shape.weight(j + 1);
                    let plane = planes.plane(j);
                    let out = &mut neighbors[j * LANES..(j + 1) * LANES];
                    match kind {
                        GraphKind::Mesh => {
                            for (lane, slot) in out.iter_mut().enumerate().take(count) {
                                let x = batch + lane as u64;
                                *slot = if plane[lane] < l - 1 { x + w } else { NO_EDGE };
                            }
                        }
                        // Length-2 torus dimensions have a single edge, owned
                        // by the coordinate-0 endpoint.
                        GraphKind::Torus if l == 2 => {
                            for (lane, slot) in out.iter_mut().enumerate().take(count) {
                                let x = batch + lane as u64;
                                *slot = if plane[lane] == 0 { x + w } else { NO_EDGE };
                            }
                        }
                        GraphKind::Torus => {
                            let wrap = (l as u64 - 1) * w;
                            for (lane, slot) in out.iter_mut().enumerate().take(count) {
                                let x = batch + lane as u64;
                                // Interior: step forward. Last coordinate:
                                // wrap-around edge back to coordinate 0.
                                *slot = if plane[lane] < l - 1 { x + w } else { x - wrap };
                            }
                        }
                    }
                }
                // Replay the callbacks in the documented order: node(x),
                // then x's edges in dimension order, for increasing x.
                for lane in 0..count {
                    let x = batch + lane as u64;
                    let slot = (x - start) as usize;
                    node(x, &images[slot]);
                    for j in 0..d {
                        let y = neighbors[j * LANES + lane];
                        if y == NO_EDGE {
                            continue;
                        }
                        let fy_ref: &Coord = if y >= start && y < end {
                            &images[(y - start) as usize]
                        } else {
                            self.map_into(y, &mut fy);
                            &fy
                        };
                        edge(x, y, &images[slot], fy_ref);
                    }
                }
                batch += count as u64;
            }
            start = end;
        }
    }

    /// Visits every guest edge incident to a node in `nodes`, with both
    /// endpoint images already evaluated — [`Embedding::for_each_mapped`]
    /// without the per-node callback.
    ///
    /// # Panics
    ///
    /// Panics if the chunk contains an out-of-range node index.
    pub fn for_each_edge_mapped<F>(&self, nodes: Range<u64>, visit: F)
    where
        F: FnMut(u64, u64, &Coord, &Coord),
    {
        self.for_each_mapped(nodes, |_, _| (), visit);
    }

    /// The images of all guest nodes, as host linear indices.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::TooLarge`] for graphs with more than
    /// 2³⁰ nodes, and [`EmbeddingError::InvalidImage`] if the mapping
    /// function produces a coordinate outside the host.
    pub fn to_table(&self) -> Result<Vec<u64>> {
        const LIMIT: u64 = 1 << 30;
        if self.size() > LIMIT {
            return Err(EmbeddingError::TooLarge {
                size: self.size(),
                limit: LIMIT,
            });
        }
        let mut table = Vec::with_capacity(self.size() as usize);
        for x in 0..self.size() {
            table.push(self.try_map_index(x)?);
        }
        Ok(table)
    }

    /// Whether the mapping is injective (and therefore bijective, since the
    /// graphs have equal size). Images outside the host make the mapping
    /// non-injective into the host's node set, so they return `false`
    /// rather than panicking.
    pub fn is_injective(&self) -> bool {
        let n = self.size();
        let words = n.div_ceil(64) as usize;
        let mut seen = vec![0u64; words];
        for x in 0..n {
            let y = match self.try_map_index(x) {
                Ok(y) => y,
                Err(_) => return false,
            };
            let (w, b) = ((y / 64) as usize, y % 64);
            if seen[w] >> b & 1 == 1 {
                return false;
            }
            seen[w] |= 1 << b;
        }
        true
    }

    /// The dilation cost: the maximum host distance between the images of
    /// adjacent guest nodes (Definition 1), computed sequentially with the
    /// batched edge sweep.
    pub fn dilation(&self) -> u64 {
        let mut worst = 0u64;
        self.for_each_edge_mapped(0..self.size(), |_, _, fx, fy| {
            worst = worst.max(self.host.distance(fx, fy));
        });
        worst
    }

    /// The dilation cost, computed with a crossbeam fork–join sweep over the
    /// guest's nodes (each worker runs [`Embedding::for_each_edge_mapped`]
    /// on its node range). `threads = 0` selects [`recommended_threads`].
    pub fn dilation_parallel(&self, threads: usize) -> u64 {
        let threads = if threads == 0 {
            recommended_threads()
        } else {
            threads
        };
        parallel_map_reduce(
            self.size(),
            threads,
            0u64,
            |range| {
                let mut worst = 0u64;
                self.for_each_edge_mapped(range, |_, _, fx, fy| {
                    worst = worst.max(self.host.distance(fx, fy));
                });
                worst
            },
            u64::max,
        )
    }

    /// The average host distance over all guest edges (a secondary measure
    /// sometimes reported alongside dilation), together with the edge count.
    pub fn average_dilation(&self) -> (f64, u64) {
        let mut total = 0u64;
        let mut edges = 0u64;
        self.for_each_edge_mapped(0..self.size(), |_, _, fx, fy| {
            total += self.host.distance(fx, fy);
            edges += 1;
        });
        if edges == 0 {
            (0.0, 0)
        } else {
            (total as f64 / edges as f64, edges)
        }
    }

    /// Histogram of host distances over all guest edges: distance → number of
    /// guest edges dilated to that distance.
    pub fn dilation_histogram(&self) -> BTreeMap<u64, u64> {
        let mut histogram = BTreeMap::new();
        self.for_each_edge_mapped(0..self.size(), |_, _, fx, fy| {
            *histogram.entry(self.host.distance(fx, fy)).or_insert(0) += 1;
        });
        histogram
    }

    /// Composes two embeddings: `self : G → I` followed by `other : I → H`,
    /// giving an embedding `G → H` (the paper repeatedly builds embeddings as
    /// such chains, e.g. `G → G′ → H′ → H`).
    ///
    /// # Errors
    ///
    /// Returns an error if `other`'s guest is not the same graph as `self`'s
    /// host.
    pub fn compose(&self, other: &Embedding) -> Result<Embedding> {
        if self.host != *other.guest() {
            return Err(EmbeddingError::Unsupported {
                details: format!(
                    "cannot compose: intermediate graphs differ ({} vs {})",
                    self.host,
                    other.guest()
                ),
            });
        }
        let first = self.clone();
        let second = other.clone();
        let name = format!("{} ∘ {}", other.name(), self.name());
        Embedding::new(
            self.guest.clone(),
            other.host().clone(),
            name,
            Arc::new(move |x| second.map(first.map_index(x))),
        )
    }

    /// Renames the embedding (used by higher-level constructions to attach
    /// the paper's function names to composed maps).
    pub fn with_name(mut self, name: impl Into<String>) -> Embedding {
        self.name = name.into();
        self
    }
}

impl core::fmt::Debug for Embedding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Embedding({} : {} -> {})",
            self.name, self.guest, self.host
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    /// Row-major (natural order) embedding of a line in a mesh — not optimal,
    /// but a convenient fixture.
    fn row_major(line_size: u64, host: Grid) -> Embedding {
        let line = Grid::line(line_size).unwrap();
        let host_shape = host.shape().clone();
        Embedding::new(
            line,
            host,
            "row-major",
            Arc::new(move |x| host_shape.to_digits(x).unwrap()),
        )
        .unwrap()
    }

    #[test]
    fn size_mismatch_is_rejected() {
        let line = Grid::line(6).unwrap();
        let mesh = Grid::mesh(shape(&[2, 2]));
        let result = Embedding::new(line, mesh, "bad", Arc::new(|_| Coord::empty()));
        assert!(matches!(result, Err(EmbeddingError::SizeMismatch { .. })));
    }

    #[test]
    fn row_major_line_in_mesh_has_dilation_four() {
        // The natural-order sequence P is not a good embedding: the jump from
        // (0,3) to (1,0) on a (3,4)-mesh costs 1 + 3 = 4.
        let e = row_major(12, Grid::mesh(shape(&[3, 4])));
        assert!(e.is_injective());
        assert_eq!(e.dilation(), 4);
        assert_eq!(e.dilation_parallel(4), e.dilation());
        let (avg, edges) = e.average_dilation();
        assert_eq!(edges, 11);
        assert!(avg >= 1.0);
    }

    #[test]
    fn identity_embedding_has_unit_dilation_mesh_to_torus() {
        let mesh = Grid::mesh(shape(&[3, 4]));
        let torus = Grid::torus(shape(&[3, 4]));
        let e = Embedding::identity(mesh, torus).unwrap();
        assert!(e.is_injective());
        assert_eq!(e.dilation(), 1);
        assert_eq!(e.name(), "identity");
    }

    #[test]
    fn identity_requires_equal_shapes() {
        let mesh = Grid::mesh(shape(&[3, 4]));
        let other = Grid::mesh(shape(&[4, 3]));
        assert!(Embedding::identity(mesh, other).is_err());
    }

    #[test]
    fn histogram_counts_every_edge() {
        let e = row_major(12, Grid::mesh(shape(&[3, 4])));
        let histogram = e.dilation_histogram();
        let total: u64 = histogram.values().sum();
        assert_eq!(total, e.guest().num_edges());
        assert_eq!(*histogram.keys().max().unwrap(), e.dilation());
    }

    #[test]
    fn non_injective_mapping_is_detected() {
        let line = Grid::line(4).unwrap();
        let host = Grid::line(4).unwrap();
        let e = Embedding::new(
            line,
            host,
            "constant",
            Arc::new(|_| Coord::from_slice(&[0]).unwrap()),
        )
        .unwrap();
        assert!(!e.is_injective());
    }

    #[test]
    fn table_matches_map_index() {
        let e = row_major(6, Grid::mesh(shape(&[2, 3])));
        let table = e.to_table().unwrap();
        assert_eq!(table.len(), 6);
        for (x, &y) in table.iter().enumerate() {
            assert_eq!(e.map_index(x as u64), y);
        }
    }

    #[test]
    fn compose_chains_mappings() {
        let mesh = Grid::mesh(shape(&[2, 3]));
        let torus = Grid::torus(shape(&[2, 3]));
        let a = Embedding::identity(Grid::mesh(shape(&[2, 3])), mesh.clone()).unwrap();
        let b = Embedding::identity(mesh, torus).unwrap();
        let c = a.compose(&b).unwrap();
        assert_eq!(c.guest().kind(), topology::GraphKind::Mesh);
        assert_eq!(c.host().kind(), topology::GraphKind::Torus);
        assert_eq!(c.dilation(), 1);
        assert!(c.name().contains("identity"));
    }

    #[test]
    fn compose_rejects_mismatched_intermediates() {
        let a = Embedding::identity(Grid::line(4).unwrap(), Grid::line(4).unwrap()).unwrap();
        let b = Embedding::identity(Grid::ring(4).unwrap(), Grid::ring(4).unwrap()).unwrap();
        assert!(a.compose(&b).is_err());
    }

    #[test]
    fn with_name_renames() {
        let e = Embedding::identity(Grid::line(4).unwrap(), Grid::line(4).unwrap())
            .unwrap()
            .with_name("custom");
        assert_eq!(e.name(), "custom");
        assert!(format!("{e:?}").contains("custom"));
    }

    #[test]
    fn map_into_matches_map() {
        let e = row_major(12, Grid::mesh(shape(&[3, 4])));
        let mut scratch = Coord::empty();
        for x in 0..e.size() {
            e.map_into(x, &mut scratch);
            assert_eq!(scratch, e.map(x));
        }
    }

    #[test]
    fn for_each_edge_mapped_enumerates_every_edge_once() {
        for host in [
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[4, 2, 3])),
        ] {
            let guest_kind = host.kind();
            let guest = Grid::new(guest_kind, shape(&[4, 2, 3]));
            let e = Embedding::identity(guest.clone(), host).unwrap();
            let mut seen = std::collections::HashSet::new();
            e.for_each_edge_mapped(0..e.size(), |x, y, fx, fy| {
                assert_eq!(*fx, e.map(x));
                assert_eq!(*fy, e.map(y));
                assert!(seen.insert((x.min(y), x.max(y))), "duplicate edge {x}-{y}");
            });
            let expected: std::collections::HashSet<(u64, u64)> =
                guest.edges().map(|(a, b)| (a.min(b), a.max(b))).collect();
            assert_eq!(seen, expected);
        }
    }

    #[test]
    fn chunked_edge_sweep_partitions_the_edge_set() {
        let e = row_major(24, Grid::mesh(shape(&[4, 6])));
        let mut all = 0u64;
        for range in [0..7, 7..8, 8..24] {
            e.for_each_edge_mapped(range, |_, _, _, _| all += 1);
        }
        assert_eq!(all, e.guest().num_edges());
    }

    #[test]
    fn invalid_images_surface_as_errors_not_panics() {
        let line = Grid::line(4).unwrap();
        let host = Grid::line(4).unwrap();
        let e = Embedding::new(
            line,
            host,
            "out-of-host",
            Arc::new(|x| Coord::from_slice(&[x as u32 + 7]).unwrap()),
        )
        .unwrap();
        assert!(matches!(
            e.try_map_index(0),
            Err(EmbeddingError::InvalidImage { guest: 0, .. })
        ));
        assert!(matches!(
            e.to_table(),
            Err(EmbeddingError::InvalidImage { .. })
        ));
        assert!(!e.is_injective());
    }

    #[test]
    fn parallel_dilation_matches_sequential_on_various_hosts() {
        for host in [
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[4, 2, 3])),
        ] {
            let e = row_major(24, host);
            for threads in [1, 2, 3, 8] {
                assert_eq!(e.dilation_parallel(threads), e.dilation());
            }
            assert_eq!(e.dilation_parallel(0), e.dilation());
        }
    }
}
