//! Error types for the `embeddings` crate.

use core::fmt;

use mixedradix::MixedRadixError;
use topology::TopologyError;

/// Errors produced when constructing embeddings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbeddingError {
    /// An underlying mixed-radix error.
    Radix(MixedRadixError),
    /// An underlying topology error.
    Topology(TopologyError),
    /// The two graphs must have the same number of nodes (all embeddings in
    /// the paper are between graphs of equal size).
    SizeMismatch {
        /// Size of the guest graph `G`.
        guest: u64,
        /// Size of the host graph `H`.
        host: u64,
    },
    /// The shapes do not satisfy the condition required by the requested
    /// construction (expansion, simple reduction, or general reduction).
    ConditionNotSatisfied {
        /// Which condition failed.
        condition: &'static str,
        /// Human-readable details.
        details: String,
    },
    /// The pair of graphs falls outside the cases covered by the paper's
    /// constructions.
    Unsupported {
        /// Human-readable description of the unsupported case.
        details: String,
    },
    /// A provided factor (expansion or reduction) is not valid for the given
    /// shapes.
    InvalidFactor {
        /// Human-readable description of the problem.
        details: String,
    },
    /// A mapping function produced an image that is not a node of the host
    /// graph (a buggy custom construction). Surfaced by the fallible
    /// evaluation paths ([`crate::Embedding::try_map_index`],
    /// [`crate::Embedding::to_table`], [`crate::congestion::congestion`])
    /// instead of aborting the process.
    InvalidImage {
        /// The guest node whose image is invalid.
        guest: u64,
        /// The offending image coordinate (boxed to keep the error small).
        image: Box<mixedradix::Digits>,
    },
    /// An explicit placement table is not a valid embedding of the given
    /// pair: wrong length, an entry outside the host, or a repeated image.
    /// Surfaced by [`crate::Embedding::from_table`] so that tables arriving
    /// from outside the process (a service request, a deserialized plan)
    /// become typed errors instead of panics deep in an evaluation sweep.
    InvalidTable {
        /// Human-readable description of the defect.
        details: String,
    },
    /// The requested graph is too large for the requested operation (e.g.
    /// materializing a table or running an exhaustive search).
    TooLarge {
        /// The offending size.
        size: u64,
        /// The limit for this operation.
        limit: u64,
    },
}

impl fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbeddingError::Radix(e) => write!(f, "radix error: {e}"),
            EmbeddingError::Topology(e) => write!(f, "topology error: {e}"),
            EmbeddingError::SizeMismatch { guest, host } => write!(
                f,
                "guest and host must have the same size, got {guest} and {host}"
            ),
            EmbeddingError::ConditionNotSatisfied { condition, details } => {
                write!(
                    f,
                    "the condition of {condition} is not satisfied: {details}"
                )
            }
            EmbeddingError::Unsupported { details } => {
                write!(f, "unsupported embedding case: {details}")
            }
            EmbeddingError::InvalidFactor { details } => {
                write!(f, "invalid factor: {details}")
            }
            EmbeddingError::InvalidImage { guest, image } => {
                write!(
                    f,
                    "guest node {guest} maps to {image}, which is not a host node"
                )
            }
            EmbeddingError::InvalidTable { details } => {
                write!(f, "invalid placement table: {details}")
            }
            EmbeddingError::TooLarge { size, limit } => {
                write!(
                    f,
                    "graph of size {size} exceeds the limit {limit} for this operation"
                )
            }
        }
    }
}

impl std::error::Error for EmbeddingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmbeddingError::Radix(e) => Some(e),
            EmbeddingError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MixedRadixError> for EmbeddingError {
    fn from(value: MixedRadixError) -> Self {
        EmbeddingError::Radix(value)
    }
}

impl From<TopologyError> for EmbeddingError {
    fn from(value: TopologyError) -> Self {
        EmbeddingError::Topology(value)
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EmbeddingError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = EmbeddingError::SizeMismatch { guest: 8, host: 9 };
        assert!(e.to_string().contains("same size"));
        let e = EmbeddingError::ConditionNotSatisfied {
            condition: "expansion",
            details: "no factor".into(),
        };
        assert!(e.to_string().contains("expansion"));
        let e: EmbeddingError = MixedRadixError::EmptyBase.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: EmbeddingError = TopologyError::GraphTooSmall { size: 1 }.into();
        assert!(e.to_string().contains("topology"));
        let e = EmbeddingError::TooLarge {
            size: 100,
            limit: 10,
        };
        assert!(e.to_string().contains("exceeds"));
        let e = EmbeddingError::Unsupported {
            details: "d=c".into(),
        };
        assert!(e.to_string().contains("unsupported"));
        let e = EmbeddingError::InvalidFactor {
            details: "bad".into(),
        };
        assert!(e.to_string().contains("invalid factor"));
        let e = EmbeddingError::InvalidTable {
            details: "entry 9 out of range".into(),
        };
        assert!(e.to_string().contains("invalid placement table"));
        let e = EmbeddingError::InvalidImage {
            guest: 3,
            image: Box::new(mixedradix::Digits::from_slice(&[9, 9]).unwrap()),
        };
        assert!(e.to_string().contains("guest node 3"));
        assert!(e.to_string().contains("(9, 9)"));
    }
}
