//! Independent verification of embeddings.
//!
//! [`verify`] measures an embedding from first principles — injectivity by
//! marking images, dilation by sweeping every guest edge — without trusting
//! the construction that produced it. The sweep runs on a crossbeam fork–join
//! pool; [`verify_sequential`] is the single-threaded reference used to test
//! the parallel path itself.

use std::collections::BTreeMap;

use topology::parallel::{parallel_map_reduce, recommended_threads};

use crate::embedding::Embedding;
use crate::error::{EmbeddingError, Result};

/// The outcome of verifying an embedding.
#[derive(Clone, Debug, PartialEq)]
pub struct VerificationReport {
    /// Whether the mapping is injective (and hence bijective for equal sizes).
    pub injective: bool,
    /// The measured dilation cost (maximum host distance over guest edges).
    pub dilation: u64,
    /// The mean host distance over guest edges.
    pub average_dilation: f64,
    /// The number of guest edges examined.
    pub edges: u64,
    /// Host distance → number of guest edges mapped to that distance.
    pub histogram: BTreeMap<u64, u64>,
}

impl VerificationReport {
    /// Whether the embedding is a valid embedding (injective) with dilation
    /// no larger than `bound`.
    pub fn satisfies(&self, bound: u64) -> bool {
        self.injective && self.dilation <= bound
    }
}

/// Verifies `embedding` sequentially.
pub fn verify_sequential(embedding: &Embedding) -> VerificationReport {
    let mut histogram = BTreeMap::new();
    let mut total = 0u64;
    let mut edges = 0u64;
    let mut dilation = 0u64;
    for (a, b) in embedding.guest().edges() {
        let d = embedding
            .host()
            .distance(&embedding.map(a), &embedding.map(b));
        *histogram.entry(d).or_insert(0) += 1;
        total += d;
        edges += 1;
        dilation = dilation.max(d);
    }
    VerificationReport {
        injective: embedding.is_injective(),
        dilation,
        average_dilation: if edges == 0 {
            0.0
        } else {
            total as f64 / edges as f64
        },
        edges,
        histogram,
    }
}

/// Verifies `embedding` using `threads` workers (`0` = automatic).
///
/// # Errors
///
/// Returns [`EmbeddingError::TooLarge`] if the guest has more than 2³⁴ nodes
/// (the injectivity bitmap would not fit comfortably in memory).
pub fn verify(embedding: &Embedding, threads: usize) -> Result<VerificationReport> {
    const LIMIT: u64 = 1 << 34;
    if embedding.size() > LIMIT {
        return Err(EmbeddingError::TooLarge {
            size: embedding.size(),
            limit: LIMIT,
        });
    }
    let threads = if threads == 0 {
        recommended_threads()
    } else {
        threads
    };

    #[derive(Clone)]
    struct Partial {
        histogram: BTreeMap<u64, u64>,
        total: u64,
        edges: u64,
        dilation: u64,
    }

    let identity = Partial {
        histogram: BTreeMap::new(),
        total: 0,
        edges: 0,
        dilation: 0,
    };

    let partial = parallel_map_reduce(
        embedding.size(),
        threads,
        identity,
        |range| {
            let mut p = Partial {
                histogram: BTreeMap::new(),
                total: 0,
                edges: 0,
                dilation: 0,
            };
            for x in range {
                let fx = embedding.map(x);
                for y in embedding.guest().neighbors(x).expect("node in range") {
                    if y > x {
                        let fy = embedding.map(y);
                        let d = embedding.host().distance(&fx, &fy);
                        *p.histogram.entry(d).or_insert(0) += 1;
                        p.total += d;
                        p.edges += 1;
                        p.dilation = p.dilation.max(d);
                    }
                }
            }
            p
        },
        |mut a, b| {
            for (k, v) in b.histogram {
                *a.histogram.entry(k).or_insert(0) += v;
            }
            a.total += b.total;
            a.edges += b.edges;
            a.dilation = a.dilation.max(b.dilation);
            a
        },
    );

    Ok(VerificationReport {
        injective: embedding.is_injective(),
        dilation: partial.dilation,
        average_dilation: if partial.edges == 0 {
            0.0
        } else {
            partial.total as f64 / partial.edges as f64
        },
        edges: partial.edges,
        histogram: partial.histogram,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{embed_line_in, embed_ring_in};
    use crate::same_shape::embed_same_shape;
    use topology::{Grid, Shape};

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn parallel_and_sequential_reports_agree() {
        let hosts = vec![
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[5, 5])),
            Grid::mesh(shape(&[3, 3, 3])),
            Grid::hypercube(6).unwrap(),
        ];
        for host in hosts {
            for embedding in [embed_line_in(&host).unwrap(), embed_ring_in(&host).unwrap()] {
                let sequential = verify_sequential(&embedding);
                for threads in [1, 2, 4, 0] {
                    let parallel = verify(&embedding, threads).unwrap();
                    assert_eq!(parallel, sequential, "threads={threads} for {host}");
                }
            }
        }
    }

    #[test]
    fn report_matches_embedding_methods() {
        let host = Grid::mesh(shape(&[4, 6]));
        let guest = Grid::torus(shape(&[4, 6]));
        let e = embed_same_shape(&guest, &host).unwrap();
        let report = verify(&e, 2).unwrap();
        assert_eq!(report.dilation, e.dilation());
        assert_eq!(report.edges, guest.num_edges());
        assert!(report.injective);
        assert!(report.satisfies(2));
        assert!(!report.satisfies(1));
        let total: u64 = report.histogram.values().sum();
        assert_eq!(total, report.edges);
        let (avg, _) = e.average_dilation();
        assert!((report.average_dilation - avg).abs() < 1e-12);
    }

    #[test]
    fn histogram_keys_are_bounded_by_dilation() {
        let host = Grid::mesh(shape(&[3, 5]));
        let e = embed_ring_in(&host).unwrap();
        let report = verify(&e, 3).unwrap();
        assert_eq!(*report.histogram.keys().max().unwrap(), report.dilation);
        assert!(report.histogram.keys().all(|&k| k >= 1));
    }
}
