//! Independent verification of embeddings.
//!
//! [`verify`] measures an embedding from first principles — injectivity by
//! marking images in a bitmap, dilation by sweeping every guest edge —
//! without trusting the construction that produced it. Everything runs in
//! one pass over the batched allocation-free pipeline
//! ([`Embedding::for_each_mapped`]): each chunk materializes its images
//! once, marks them in the injectivity bitmap, and measures its edges into a
//! flat histogram. The parallel path hands disjoint chunks to a crossbeam
//! fork–join pool and merges the partial bitmaps and histograms at the end;
//! [`verify_sequential`] runs the identical sweep on a single chunk and is
//! the reference used to test the parallel path itself. Both paths produce
//! bit-identical reports by construction.
//!
//! Verification never aborts the process it is meant to protect: a mapping
//! function that produces images outside the host yields a failure report
//! (`injective: false`, with the offenders counted in
//! [`VerificationReport::invalid_images`]) rather than a panic.

use std::cell::Cell;
use std::collections::BTreeMap;

use topology::parallel::{parallel_map_reduce, recommended_threads};

use crate::embedding::Embedding;
use crate::error::{EmbeddingError, Result};

/// Distances below this bound are counted in a flat per-chunk array; the
/// (rare) larger distances of extremely elongated hosts spill into a sparse
/// map so the scratch stays small no matter the host diameter.
const FLAT_HISTOGRAM_SPAN: u64 = 1 << 16;

/// The outcome of verifying an embedding.
#[derive(Clone, Debug, PartialEq)]
pub struct VerificationReport {
    /// Whether the mapping is injective (and hence bijective for equal
    /// sizes). `false` whenever any image falls outside the host.
    pub injective: bool,
    /// The measured dilation cost (maximum host distance over guest edges).
    pub dilation: u64,
    /// The mean host distance over guest edges.
    pub average_dilation: f64,
    /// The number of guest edges examined.
    pub edges: u64,
    /// Host distance → number of guest edges mapped to that distance.
    /// Edges with an endpoint mapped outside the host are not measurable and
    /// are excluded (the histogram then sums to less than `edges`).
    pub histogram: BTreeMap<u64, u64>,
    /// The number of guest nodes whose image is not a valid host node
    /// (always 0 for a correct construction).
    pub invalid_images: u64,
}

impl VerificationReport {
    /// Whether the embedding is a valid embedding (injective, every image a
    /// host node) with dilation no larger than `bound`.
    pub fn satisfies(&self, bound: u64) -> bool {
        self.injective && self.invalid_images == 0 && self.dilation <= bound
    }
}

/// Per-chunk sweep state: flat distance counts, the scalar aggregates, and
/// this chunk's share of the injectivity bitmap. Merging is elementwise
/// addition (max for dilation, bitwise OR with collision detection for the
/// bitmap), so any chunking of the node range reduces to the same report.
struct Partial {
    flat: Vec<u64>,
    spill: BTreeMap<u64, u64>,
    total: u64,
    edges: u64,
    unmeasurable: u64,
    dilation: u64,
    /// One bit per host node: set iff some node of this chunk maps there.
    seen: Vec<u64>,
    duplicate: bool,
    invalid_images: u64,
}

impl Partial {
    fn empty() -> Self {
        Partial {
            flat: Vec::new(),
            spill: BTreeMap::new(),
            total: 0,
            edges: 0,
            unmeasurable: 0,
            dilation: 0,
            seen: Vec::new(),
            duplicate: false,
            invalid_images: 0,
        }
    }

    fn record(&mut self, distance: u64) {
        if distance < FLAT_HISTOGRAM_SPAN {
            let slot = distance as usize;
            if self.flat.len() <= slot {
                self.flat.resize(slot + 1, 0);
            }
            self.flat[slot] += 1;
        } else {
            *self.spill.entry(distance).or_insert(0) += 1;
        }
        self.total += distance;
        self.edges += 1;
        self.dilation = self.dilation.max(distance);
    }

    fn merge(mut self, other: Partial) -> Partial {
        if self.flat.len() < other.flat.len() {
            self.flat.resize(other.flat.len(), 0);
        }
        for (slot, count) in other.flat.into_iter().enumerate() {
            self.flat[slot] += count;
        }
        for (distance, count) in other.spill {
            *self.spill.entry(distance).or_insert(0) += count;
        }
        if self.seen.is_empty() {
            self.seen = other.seen;
        } else if !other.seen.is_empty() {
            for (mine, theirs) in self.seen.iter_mut().zip(&other.seen) {
                if *mine & theirs != 0 {
                    self.duplicate = true;
                }
                *mine |= theirs;
            }
        }
        self.duplicate |= other.duplicate;
        self.invalid_images += other.invalid_images;
        self.total += other.total;
        self.edges += other.edges;
        self.unmeasurable += other.unmeasurable;
        self.dilation = self.dilation.max(other.dilation);
        self
    }

    fn into_report(self) -> VerificationReport {
        let measured = self.edges - self.unmeasurable;
        VerificationReport {
            injective: !self.duplicate && self.invalid_images == 0,
            dilation: self.dilation,
            average_dilation: if measured == 0 {
                0.0
            } else {
                self.total as f64 / measured as f64
            },
            edges: self.edges,
            invalid_images: self.invalid_images,
            histogram: {
                let mut histogram = self.spill;
                for (distance, count) in self.flat.into_iter().enumerate() {
                    if count > 0 {
                        histogram.insert(distance as u64, count);
                    }
                }
                histogram
            },
        }
    }
}

/// Sweeps the guest nodes in `range` in one chunked pass: marks every image
/// in the injectivity bitmap and measures the host distance of every
/// incident edge. Edges with an endpoint outside the host are counted in
/// `edges` but excluded from the distance statistics.
fn sweep_chunk(embedding: &Embedding, range: std::ops::Range<u64>) -> Partial {
    let host = embedding.host();
    let words = embedding.size().div_ceil(64) as usize;

    let mut partial = Partial::empty();
    let mut seen = vec![0u64; words];
    let mut duplicate = false;
    let mut invalid_images = 0u64;
    // Validity of the current node's image, handed from the node callback to
    // the edge callbacks that follow it.
    let current_valid = Cell::new(false);

    embedding.for_each_mapped(
        range,
        |_x, fx| match host.index(fx) {
            Ok(image) => {
                current_valid.set(true);
                let (w, b) = ((image / 64) as usize, image % 64);
                if seen[w] >> b & 1 == 1 {
                    duplicate = true;
                }
                seen[w] |= 1 << b;
            }
            Err(_) => {
                current_valid.set(false);
                invalid_images += 1;
            }
        },
        |_x, _y, fx, fy| {
            if current_valid.get() && host.contains(fy) {
                partial.record(host.distance(fx, fy));
            } else {
                partial.edges += 1;
                partial.unmeasurable += 1;
            }
        },
    );

    partial.seen = seen;
    partial.duplicate = duplicate;
    partial.invalid_images = invalid_images;
    partial
}

/// Verifies `embedding` sequentially (the single-chunk reference sweep).
pub fn verify_sequential(embedding: &Embedding) -> VerificationReport {
    sweep_chunk(embedding, 0..embedding.size()).into_report()
}

/// Verifies `embedding` using `threads` workers (`0` = automatic).
///
/// The report is bit-identical to [`verify_sequential`]'s for any thread
/// count: workers sweep disjoint node chunks with the same code and the
/// partial aggregates merge commutatively (bitmaps by OR with collision
/// detection). The worker count is additionally capped so the per-worker
/// bitmaps stay within a fixed scratch budget on very large guests.
///
/// # Errors
///
/// Returns [`EmbeddingError::TooLarge`] if the guest has more than 2³⁴ nodes
/// (the injectivity bitmap would not fit comfortably in memory).
pub fn verify(embedding: &Embedding, threads: usize) -> Result<VerificationReport> {
    const LIMIT: u64 = 1 << 34;
    if embedding.size() > LIMIT {
        return Err(EmbeddingError::TooLarge {
            size: embedding.size(),
            limit: LIMIT,
        });
    }
    let threads = if threads == 0 {
        recommended_threads()
    } else {
        threads
    };
    // Each worker owns one n-bit bitmap; stay under ~2 GiB of scratch.
    const SCRATCH_BUDGET_BYTES: u64 = 2 << 30;
    let per_worker_bytes = (embedding.size() / 8).max(1);
    let threads = threads.min(((SCRATCH_BUDGET_BYTES / per_worker_bytes).max(1)) as usize);

    let partial = parallel_map_reduce(
        embedding.size(),
        threads,
        Partial::empty(),
        |range| sweep_chunk(embedding, range),
        Partial::merge,
    );
    Ok(partial.into_report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{embed_line_in, embed_ring_in};
    use crate::same_shape::embed_same_shape;
    use std::sync::Arc;
    use topology::{Coord, Grid, Shape};

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn parallel_and_sequential_reports_agree() {
        let hosts = vec![
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[5, 5])),
            Grid::mesh(shape(&[3, 3, 3])),
            Grid::hypercube(6).unwrap(),
        ];
        for host in hosts {
            for embedding in [embed_line_in(&host).unwrap(), embed_ring_in(&host).unwrap()] {
                let sequential = verify_sequential(&embedding);
                for threads in [1, 2, 4, 0] {
                    let parallel = verify(&embedding, threads).unwrap();
                    assert_eq!(parallel, sequential, "threads={threads} for {host}");
                }
            }
        }
    }

    #[test]
    fn report_matches_embedding_methods() {
        let host = Grid::mesh(shape(&[4, 6]));
        let guest = Grid::torus(shape(&[4, 6]));
        let e = embed_same_shape(&guest, &host).unwrap();
        let report = verify(&e, 2).unwrap();
        assert_eq!(report.dilation, e.dilation());
        assert_eq!(report.edges, guest.num_edges());
        assert!(report.injective);
        assert_eq!(report.invalid_images, 0);
        assert!(report.satisfies(2));
        assert!(!report.satisfies(1));
        let total: u64 = report.histogram.values().sum();
        assert_eq!(total, report.edges);
        let (avg, _) = e.average_dilation();
        assert!((report.average_dilation - avg).abs() < 1e-12);
    }

    #[test]
    fn histogram_keys_are_bounded_by_dilation() {
        let host = Grid::mesh(shape(&[3, 5]));
        let e = embed_ring_in(&host).unwrap();
        let report = verify(&e, 3).unwrap();
        assert_eq!(*report.histogram.keys().max().unwrap(), report.dilation);
        assert!(report.histogram.keys().all(|&k| k >= 1));
    }

    #[test]
    fn non_injective_mappings_are_reported() {
        let line = Grid::line(6).unwrap();
        let host = Grid::line(6).unwrap();
        let e = crate::Embedding::new(
            line,
            host,
            "constant",
            Arc::new(|_| Coord::from_slice(&[0]).unwrap()),
        )
        .unwrap();
        let sequential = verify_sequential(&e);
        assert!(!sequential.injective);
        assert_eq!(sequential.invalid_images, 0);
        for threads in [1, 2, 4, 0] {
            assert_eq!(verify(&e, threads).unwrap(), sequential);
        }
    }

    #[test]
    fn out_of_host_images_yield_a_failure_report_not_a_panic() {
        // Guest node 5 maps outside the host; node 0 collides with node 1.
        let line = Grid::line(6).unwrap();
        let host = Grid::line(6).unwrap();
        let e = crate::Embedding::new(
            line,
            host,
            "broken",
            Arc::new(|x| Coord::from_slice(&[if x == 5 { 99 } else { x.max(1) as u32 }]).unwrap()),
        )
        .unwrap();
        let sequential = verify_sequential(&e);
        assert!(!sequential.injective);
        assert_eq!(sequential.invalid_images, 1);
        assert_eq!(sequential.edges, 5);
        // Only the edge 4–5 touches the invalid image.
        let measured: u64 = sequential.histogram.values().sum();
        assert_eq!(measured, 4);
        assert!(!sequential.satisfies(u64::MAX));
        for threads in [1, 2, 4, 0] {
            assert_eq!(verify(&e, threads).unwrap(), sequential);
        }
    }
}
