//! General reduction: lowering dimension via supernodes
//! (Section 4.2.2, Definitions 41–42, Theorem 43).
//!
//! For `c < d < 2c`, a shape `M` is a *general reduction* of `L` when `L`
//! splits into a multiplicant sublist `L′` (length `c`) and a multiplier
//! sublist `L″` (length `d − c`), each multiplier component factors into a
//! list `S_i` of integers > 1, and `M` is — up to dimension order — `L′` with
//! its first `b = |S_1 ∘ … ∘ S_{d−c}|` components multiplied by the factors.
//!
//! The guest is viewed as an `L′`-graph of supernodes, each an `L″`-graph; the
//! host as an `L′`-graph of supernodes, each an `S̄`-mesh. Supernodes map to
//! supernodes by the identity (or by `T` when a torus meets a mesh), and the
//! nodes inside each supernode are embedded with the increasing-dimension maps
//! of Section 4.1. The dilation cost is `max_i s_i`, doubled when a
//! (non-hypercube) torus is embedded in a mesh.

use std::sync::Arc;

use mixedradix::{Digits, Permutation};
use topology::{Grid, Shape};

use crate::basic::t_n;
use crate::embedding::Embedding;
use crate::error::{EmbeddingError, Result};
use crate::expansion::ExpansionFactor;
use crate::increase::{factor_shapes, map_increase_over, IncreaseFunction};

/// A general-reduction witness: the multiplicant sublist `L′`, the multiplier
/// sublist `L″`, and the factor lists `S_1, …, S_{d−c}`.
///
/// The ordering convention matters: the first `b` components of
/// [`GeneralReduction::multiplicant`] are the ones multiplied by
/// `s_1, …, s_b = S_1 ∘ … ∘ S_{d−c}` (in that order); the remaining `c − b`
/// components carry over to the host unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneralReduction {
    multiplicant: Vec<u32>,
    multiplier: Vec<u32>,
    s_lists: Vec<Vec<u32>>,
}

impl GeneralReduction {
    /// Creates a general-reduction witness and checks its internal
    /// consistency (components > 1, `Π S_i` equal to the `i`-th multiplier,
    /// `b ≤ c`).
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidFactor`] on malformed input.
    pub fn new(
        multiplicant: Vec<u32>,
        multiplier: Vec<u32>,
        s_lists: Vec<Vec<u32>>,
    ) -> Result<Self> {
        if multiplicant.is_empty() || multiplier.is_empty() {
            return Err(EmbeddingError::InvalidFactor {
                details: "both sublists of a general reduction must be non-empty".into(),
            });
        }
        if multiplier.len() != s_lists.len() {
            return Err(EmbeddingError::InvalidFactor {
                details: format!(
                    "{} multiplier components but {} factor lists",
                    multiplier.len(),
                    s_lists.len()
                ),
            });
        }
        for (&value, list) in multiplier.iter().zip(&s_lists) {
            if list.is_empty() || list.iter().any(|&v| v < 2) {
                return Err(EmbeddingError::InvalidFactor {
                    details: "every factor list must be non-empty with components > 1".into(),
                });
            }
            let product: u64 = list.iter().map(|&v| v as u64).product();
            if product != value as u64 {
                return Err(EmbeddingError::InvalidFactor {
                    details: format!("factor list {list:?} does not multiply to {value}"),
                });
            }
        }
        let red = GeneralReduction {
            multiplicant,
            multiplier,
            s_lists,
        };
        if red.b() > red.c() {
            return Err(EmbeddingError::InvalidFactor {
                details: format!(
                    "b = {} factors exceed the host dimension c = {}",
                    red.b(),
                    red.c()
                ),
            });
        }
        Ok(red)
    }

    /// The multiplicant sublist `L′`.
    pub fn multiplicant(&self) -> &[u32] {
        &self.multiplicant
    }

    /// The multiplier sublist `L″`.
    pub fn multiplier(&self) -> &[u32] {
        &self.multiplier
    }

    /// The factor lists `S_1, …, S_{d−c}`.
    pub fn s_lists(&self) -> &[Vec<u32>] {
        &self.s_lists
    }

    /// The flattened factor list `S̄ = S_1 ∘ … ∘ S_{d−c}`.
    pub fn s_flat(&self) -> Vec<u32> {
        self.s_lists.iter().flatten().copied().collect()
    }

    /// The host dimension `c = |L′|`.
    pub fn c(&self) -> usize {
        self.multiplicant.len()
    }

    /// The guest dimension `d = |L′| + |L″|`.
    pub fn d(&self) -> usize {
        self.multiplicant.len() + self.multiplier.len()
    }

    /// The number of factors `b = |S̄|`.
    pub fn b(&self) -> usize {
        self.s_lists.iter().map(Vec::len).sum()
    }

    /// The largest factor `max_i s_i` — the dilation cost of Theorem 43
    /// (before the ×2 of the torus-into-mesh case).
    pub fn max_s(&self) -> u64 {
        self.s_flat().iter().map(|&v| v as u64).max().unwrap_or(1)
    }

    /// The guest-side intermediate shape `L′ ∘ L″`.
    pub fn guest_intermediate(&self) -> Result<Shape> {
        let mut radices = self.multiplicant.clone();
        radices.extend_from_slice(&self.multiplier);
        Ok(Shape::new(radices)?)
    }

    /// The host-side intermediate shape `[S̄ ∘ 1] × L′`: the first `b`
    /// multiplicant components multiplied by the factors, the rest unchanged.
    pub fn host_intermediate(&self) -> Result<Shape> {
        let s = self.s_flat();
        let mut radices = Vec::with_capacity(self.c());
        for (j, &p) in self.multiplicant.iter().enumerate() {
            if j < s.len() {
                radices.push(p.checked_mul(s[j]).ok_or(EmbeddingError::InvalidFactor {
                    details: "host component overflows u32".into(),
                })?);
            } else {
                radices.push(p);
            }
        }
        Ok(Shape::new(radices)?)
    }

    /// Checks that this witness actually relates the shapes `l` and `m`:
    /// `l` is a permutation of `L′ ∘ L″`, `m` is a permutation of
    /// `[S̄ ∘ 1] × L′`, and `c < d < 2c` (with `d − c ≤ b ≤ c`).
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidFactor`] describing the first
    /// violation found.
    pub fn validate(&self, l: &Shape, m: &Shape) -> Result<()> {
        let d = self.d();
        let c = self.c();
        if !(c < d && d < 2 * c) {
            return Err(EmbeddingError::InvalidFactor {
                details: format!("general reduction requires c < d < 2c, got d = {d}, c = {c}"),
            });
        }
        if l.dim() != d || m.dim() != c {
            return Err(EmbeddingError::InvalidFactor {
                details: format!(
                    "shapes have dimensions {} and {}, witness expects {d} and {c}",
                    l.dim(),
                    m.dim()
                ),
            });
        }
        let mut expected_l = self.multiplicant.clone();
        expected_l.extend_from_slice(&self.multiplier);
        if !is_permutation(&expected_l, l.radices()) {
            return Err(EmbeddingError::InvalidFactor {
                details: format!("{l} is not a permutation of L′ ∘ L″"),
            });
        }
        let host = self.host_intermediate()?;
        if !is_permutation(host.radices(), m.radices()) {
            return Err(EmbeddingError::InvalidFactor {
                details: format!("{m} is not a permutation of [S̄ ∘ 1] × L′"),
            });
        }
        Ok(())
    }
}

fn is_permutation(a: &[u32], b: &[u32]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort_unstable();
    b.sort_unstable();
    a == b
}

/// Whether `m` is a general reduction of `l` (Definition 41).
pub fn is_general_reduction(l: &Shape, m: &Shape) -> bool {
    find_general_reduction(l, m).is_some()
}

/// Searches for a general-reduction witness of `l` into `m`.
///
/// The search enumerates the choice of multiplier components, their
/// factorizations, and the pairing of factors with multiplicant components;
/// shapes are tiny, so exhaustive backtracking is instantaneous in practice.
pub fn find_general_reduction(l: &Shape, m: &Shape) -> Option<GeneralReduction> {
    let d = l.dim();
    let c = m.dim();
    if !(c < d && d < 2 * c) || l.size() != m.size() {
        return None;
    }
    let k = d - c;
    // Enumerate which positions of `l` form the multiplier sublist.
    let positions: Vec<usize> = (0..d).collect();
    let mut chosen = Vec::with_capacity(k);
    subsets(&positions, k, &mut chosen, &mut |subset| {
        let multiplier: Vec<u32> = subset.iter().map(|&i| l.radix(i)).collect();
        let multiplicant: Vec<u32> = (0..d)
            .filter(|i| !subset.contains(i))
            .map(|i| l.radix(i))
            .collect();
        // Enumerate factorizations of every multiplier component.
        let factorizations: Vec<Vec<Vec<u32>>> = multiplier
            .iter()
            .map(|&value| factorizations_of(value))
            .collect();
        let mut pick = Vec::with_capacity(k);
        cartesian(&factorizations, &mut pick, &mut |s_lists| {
            let b: usize = s_lists.iter().map(|list| list.len()).sum();
            // Definition 41 requires d − c < b ≤ c (at least one multiplier
            // component genuinely splits); the b = d − c case is covered by
            // simple reduction instead.
            if b <= k || b > c {
                return None;
            }
            match_factors(&multiplicant, s_lists, m).map(|ordered_multiplicant| GeneralReduction {
                multiplicant: ordered_multiplicant,
                multiplier: multiplier.clone(),
                s_lists: s_lists.to_vec(),
            })
        })
    })
}

/// Enumerates `k`-element subsets of `items`, passing each to `visit`; stops
/// early when `visit` returns `Some`.
fn subsets<T: Copy, R>(
    items: &[T],
    k: usize,
    current: &mut Vec<T>,
    visit: &mut impl FnMut(&[T]) -> Option<R>,
) -> Option<R> {
    fn go<T: Copy, R>(
        items: &[T],
        k: usize,
        start: usize,
        current: &mut Vec<T>,
        visit: &mut impl FnMut(&[T]) -> Option<R>,
    ) -> Option<R> {
        if current.len() == k {
            return visit(current);
        }
        let needed = k - current.len();
        for i in start..items.len() {
            if items.len() - i < needed {
                break;
            }
            current.push(items[i]);
            if let Some(r) = go(items, k, i + 1, current, visit) {
                return Some(r);
            }
            current.pop();
        }
        None
    }
    go(items, k, 0, current, visit)
}

/// Enumerates one choice from each list of options, passing each combination
/// to `visit`; stops early when `visit` returns `Some`.
fn cartesian<T: Clone, R>(
    options: &[Vec<T>],
    current: &mut Vec<T>,
    visit: &mut impl FnMut(&[T]) -> Option<R>,
) -> Option<R> {
    if current.len() == options.len() {
        return visit(current);
    }
    let idx = current.len();
    for option in &options[idx] {
        current.push(option.clone());
        if let Some(r) = cartesian(options, current, visit) {
            return Some(r);
        }
        current.pop();
    }
    None
}

/// All factorizations of `value` into non-increasing lists of factors > 1.
fn factorizations_of(value: u32) -> Vec<Vec<u32>> {
    fn go(value: u32, max: u32, current: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if value == 1 {
            if !current.is_empty() {
                out.push(current.clone());
            }
            return;
        }
        let mut f = max.min(value);
        while f >= 2 {
            if value.is_multiple_of(f) {
                current.push(f);
                go(value / f, f, current, out);
                current.pop();
            }
            f -= 1;
        }
    }
    let mut out = Vec::new();
    go(value, value, &mut Vec::new(), &mut out);
    out
}

/// Tries to pair every factor in `s_lists` (flattened, in order) with a
/// distinct multiplicant component such that the resulting multiset of host
/// components equals `m`. On success returns the multiplicant reordered so
/// that the paired components come first, in factor order.
fn match_factors(multiplicant: &[u32], s_lists: &[Vec<u32>], m: &Shape) -> Option<Vec<u32>> {
    let s: Vec<u32> = s_lists.iter().flatten().copied().collect();
    let mut remaining: Vec<u32> = m.radices().to_vec();
    let mut used = vec![false; multiplicant.len()];
    let mut pairing: Vec<usize> = Vec::with_capacity(s.len());

    fn go(
        s: &[u32],
        idx: usize,
        multiplicant: &[u32],
        used: &mut [bool],
        remaining: &mut Vec<u32>,
        pairing: &mut Vec<usize>,
    ) -> bool {
        if idx == s.len() {
            // Unused multiplicant components must equal what is left of M.
            let mut leftovers: Vec<u32> = multiplicant
                .iter()
                .enumerate()
                .filter(|(i, _)| !used[*i])
                .map(|(_, &v)| v)
                .collect();
            let mut rest = remaining.clone();
            leftovers.sort_unstable();
            rest.sort_unstable();
            return leftovers == rest;
        }
        let mut tried: Vec<u32> = Vec::new();
        for p in 0..multiplicant.len() {
            if used[p] || tried.contains(&multiplicant[p]) {
                continue;
            }
            let product = multiplicant[p] as u64 * s[idx] as u64;
            if product > u32::MAX as u64 {
                continue;
            }
            let product = product as u32;
            if let Some(pos) = remaining.iter().position(|&x| x == product) {
                tried.push(multiplicant[p]);
                used[p] = true;
                let removed = remaining.swap_remove(pos);
                pairing.push(p);
                if go(s, idx + 1, multiplicant, used, remaining, pairing) {
                    return true;
                }
                pairing.pop();
                remaining.push(removed);
                used[p] = false;
            }
        }
        false
    }

    if go(&s, 0, multiplicant, &mut used, &mut remaining, &mut pairing) {
        let mut ordered: Vec<u32> = pairing.iter().map(|&p| multiplicant[p]).collect();
        for (i, &v) in multiplicant.iter().enumerate() {
            if !pairing.contains(&i) {
                ordered.push(v);
            }
        }
        Some(ordered)
    } else {
        None
    }
}

/// The dilation cost Theorem 43 guarantees for the given witness and graph
/// types.
pub fn predicted_dilation_general_reduction(
    guest: &Grid,
    host: &Grid,
    reduction: &GeneralReduction,
) -> u64 {
    let base = reduction.max_s();
    if guest.is_torus() && host.is_mesh() && !guest.is_hypercube() {
        2 * base
    } else {
        base
    }
}

/// Embeds `guest` in `host` with an explicit general-reduction witness
/// (Definition 42, Theorem 43).
///
/// # Errors
///
/// Returns an error if the witness does not relate the two shapes.
pub fn embed_general_reduction_with(
    guest: &Grid,
    host: &Grid,
    reduction: &GeneralReduction,
) -> Result<Embedding> {
    reduction.validate(guest.shape(), host.shape())?;
    let guest_mid = reduction.guest_intermediate()?;
    let host_mid = reduction.host_intermediate()?;
    // α reorders the guest's dimensions into L′ ∘ L″ order; β reorders the
    // intermediate host shape into the host's own order.
    let alpha = Permutation::mapping(guest.shape().radices(), guest_mid.radices()).ok_or(
        EmbeddingError::InvalidFactor {
            details: "guest shape is not a permutation of L′ ∘ L″".into(),
        },
    )?;
    let beta = Permutation::mapping(host_mid.radices(), host.shape().radices()).ok_or(
        EmbeddingError::InvalidFactor {
            details: "host shape is not a permutation of [S̄ ∘ 1] × L′".into(),
        },
    )?;
    let use_torus_offsets = guest.is_torus() && !guest.is_hypercube();
    let use_t_base = use_torus_offsets && host.is_mesh();
    let offset_function = if use_torus_offsets {
        IncreaseFunction::G
    } else {
        IncreaseFunction::F
    };
    let name = if use_t_base {
        "β ∘ G″_S ∘ α"
    } else if use_torus_offsets {
        "β ∘ G′_S ∘ α"
    } else {
        "β ∘ F′_S ∘ α"
    };

    let s_shapes = factor_shapes(&ExpansionFactor::new(reduction.s_lists().to_vec())?);
    let s_flat = reduction.s_flat();
    let multiplicant = reduction.multiplicant().to_vec();
    let c = reduction.c();
    let b = reduction.b();
    let guest_shape = guest.shape().clone();

    Embedding::new(
        guest.clone(),
        host.clone(),
        name,
        Arc::new(move |x| {
            let coord = guest_shape.to_digits(x).expect("index in range");
            let reordered = alpha
                .apply_digits(&coord)
                .expect("permutation matches dimension");
            // Split into the L′ part (supernode coordinates) and the L″ part
            // (coordinates inside the supernode).
            let base_part = reordered.slice(0, c);
            let inner_part = reordered.slice(c, reordered.dim());
            // Offset: embed the L″ coordinates in the S̄-mesh supernode.
            let offset = map_increase_over(&s_shapes, offset_function, &inner_part);
            // Base: the supernode coordinates, optionally passed through t.
            let mut out = Digits::zero(c).expect("dimension within bounds");
            for j in 0..c {
                let base_digit = if use_t_base {
                    t_n(multiplicant[j] as u64, base_part.get(j) as u64) as u32
                } else {
                    base_part.get(j)
                };
                let value = if j < b {
                    s_flat[j] * base_digit + offset.get(j)
                } else {
                    base_digit
                };
                out.set(j, value);
            }
            beta.apply_digits(&out)
                .expect("permutation matches dimension")
        }),
    )
}

/// Embeds `guest` in `host` for the general-reduction case, discovering a
/// witness automatically (Theorem 43).
///
/// # Errors
///
/// Returns [`EmbeddingError::ConditionNotSatisfied`] if no general-reduction
/// witness exists.
pub fn embed_general_reduction(guest: &Grid, host: &Grid) -> Result<Embedding> {
    if guest.size() != host.size() {
        return Err(EmbeddingError::SizeMismatch {
            guest: guest.size(),
            host: host.size(),
        });
    }
    let reduction = find_general_reduction(guest.shape(), host.shape()).ok_or(
        EmbeddingError::ConditionNotSatisfied {
            condition: "general reduction",
            details: format!(
                "{} is not a general reduction of {}",
                host.shape(),
                guest.shape()
            ),
        },
    )?;
    embed_general_reduction_with(guest, host, &reduction)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn figure_12_example_3_3_6_into_6_9() {
        // The (3,3,6)-mesh embeds in the (6,9)-mesh with dilation 3.
        let guest = Grid::mesh(shape(&[3, 3, 6]));
        let host = Grid::mesh(shape(&[6, 9]));
        let reduction = find_general_reduction(guest.shape(), host.shape()).unwrap();
        assert_eq!(reduction.multiplier(), &[6]);
        assert_eq!(reduction.max_s(), 3);
        let e = embed_general_reduction(&guest, &host).unwrap();
        assert!(e.is_injective());
        assert_eq!(e.dilation(), 3);
        assert_eq!(
            predicted_dilation_general_reduction(&guest, &host, &reduction),
            3
        );
    }

    #[test]
    fn paper_shape_example_definition_41() {
        // M = (4,3,5,28,10,18) is a general reduction of
        // L = (2,3,2,10,6,21,5,4).
        let l = shape(&[2, 3, 2, 10, 6, 21, 5, 4]);
        let m = shape(&[4, 3, 5, 28, 10, 18]);
        assert_eq!(l.size(), m.size());
        let reduction = find_general_reduction(&l, &m).unwrap();
        reduction.validate(&l, &m).unwrap();
    }

    #[test]
    fn theorem_43_dilation_bounds_hold() {
        // Mesh → mesh, mesh → torus, torus → torus: dilation ≤ max s_i.
        // Torus → mesh: dilation ≤ 2 max s_i.
        let l = shape(&[3, 3, 6]);
        let m = shape(&[6, 9]);
        let cases = vec![
            (Grid::mesh(l.clone()), Grid::mesh(m.clone())),
            (Grid::mesh(l.clone()), Grid::torus(m.clone())),
            (Grid::torus(l.clone()), Grid::torus(m.clone())),
            (Grid::torus(l.clone()), Grid::mesh(m.clone())),
        ];
        for (guest, host) in cases {
            let reduction = find_general_reduction(guest.shape(), host.shape()).unwrap();
            let bound = predicted_dilation_general_reduction(&guest, &host, &reduction);
            let e = embed_general_reduction(&guest, &host).unwrap();
            assert!(e.is_injective(), "injective for {guest} -> {host}");
            assert!(
                e.dilation() <= bound,
                "dilation {} exceeds bound {bound} for {guest} -> {host}",
                e.dilation()
            );
        }
    }

    #[test]
    fn degenerate_b_equals_d_minus_c_is_left_to_simple_reduction() {
        // L = (2,2,3) (d=3) into M = (4,3) (c=2) only admits b = d − c = 1,
        // which Definition 41 excludes — the finder returns None and the pair
        // is handled by simple reduction instead.
        let guest = Grid::mesh(shape(&[2, 2, 3]));
        let host = Grid::mesh(shape(&[4, 3]));
        assert!(find_general_reduction(guest.shape(), host.shape()).is_none());
        // An explicit witness with b = d − c is still accepted by the
        // construction itself (documented relaxation).
        let witness = GeneralReduction::new(vec![2, 3], vec![2], vec![vec![2]]).unwrap();
        let e = embed_general_reduction_with(&guest, &host, &witness).unwrap();
        assert!(e.is_injective());
        assert!(e.dilation() <= witness.max_s());
    }

    #[test]
    fn factor_splitting_shapes_are_general_reductions() {
        // (5,5,4) → (10,10): the multiplier 4 splits into (2,2) and each
        // factor multiplies one of the 5s.
        let guest = Grid::torus(shape(&[5, 5, 4]));
        let host = Grid::torus(shape(&[10, 10]));
        let reduction = find_general_reduction(guest.shape(), host.shape()).unwrap();
        assert_eq!(reduction.multiplier(), &[4]);
        assert_eq!(reduction.max_s(), 2);
        let e = embed_general_reduction(&guest, &host).unwrap();
        assert!(e.is_injective());
        assert!(e.dilation() <= 2);
    }

    #[test]
    fn witness_validation_catches_errors() {
        // Product mismatch.
        assert!(GeneralReduction::new(vec![3, 3], vec![6], vec![vec![2, 2]]).is_err());
        // Too many factors for the host dimension.
        assert!(GeneralReduction::new(vec![3], vec![8], vec![vec![2, 2, 2]]).is_err());
        // Components below 2.
        assert!(GeneralReduction::new(vec![3, 3], vec![6], vec![vec![6, 1]]).is_err());
        // Empty sublists.
        assert!(GeneralReduction::new(vec![], vec![6], vec![vec![6]]).is_err());
        // A valid witness for (3,3,6) -> (6,9).
        let ok = GeneralReduction::new(vec![3, 3], vec![6], vec![vec![3, 2]]).unwrap();
        assert_eq!(ok.b(), 2);
        assert_eq!(ok.max_s(), 3);
        assert_eq!(ok.host_intermediate().unwrap().radices(), &[9, 6]);
        ok.validate(&shape(&[3, 3, 6]), &shape(&[6, 9])).unwrap();
        // But it does not validate against unrelated shapes.
        assert!(ok.validate(&shape(&[3, 3, 6]), &shape(&[54])).is_err());
        assert!(ok.validate(&shape(&[3, 3, 7]), &shape(&[6, 9])).is_err());
    }

    #[test]
    fn non_general_reductions_are_rejected() {
        // Dimension constraint c < d < 2c violated.
        assert!(find_general_reduction(&shape(&[2, 2, 2, 2]), &shape(&[8, 2])).is_none());
        assert!(find_general_reduction(&shape(&[4, 4]), &shape(&[4, 4])).is_none());
        // Size mismatch.
        assert!(find_general_reduction(&shape(&[3, 3, 6]), &shape(&[6, 10])).is_none());
        // Equal size but every multiplier component is prime, so b cannot
        // exceed d − c.
        assert!(find_general_reduction(&shape(&[3, 5, 7]), &shape(&[15, 7])).is_none());
    }

    #[test]
    fn supernode_structure_is_respected() {
        // Every supernode of the guest (fixing the L′ coordinates) must land
        // inside the corresponding supernode of the host: host coordinate j
        // divided by s_j recovers the guest's supernode coordinate.
        let guest = Grid::mesh(shape(&[3, 3, 6]));
        let host = Grid::mesh(shape(&[6, 9]));
        let reduction = find_general_reduction(guest.shape(), host.shape()).unwrap();
        let e = embed_general_reduction_with(&guest, &host, &reduction).unwrap();
        // With multiplicant (3,3) and factors (s_1, s_2) the host intermediate
        // is (3 s_1, 3 s_2); find which host dimension each maps to by size.
        for x in 0..guest.size() {
            let g = guest.coord(x).unwrap();
            let h = e.map(x);
            // Host supernode coordinates.
            let hs: Vec<u32> = (0..2)
                .map(|j| {
                    let s = host.shape().radix(j) / 3;
                    h.get(j) / s
                })
                .collect();
            // Guest supernode coordinates are the first two (L′) coordinates,
            // possibly reordered; their multiset must match.
            let mut gs: Vec<u32> = vec![g.get(0), g.get(1)];
            let mut hs_sorted = hs.clone();
            gs.sort_unstable();
            hs_sorted.sort_unstable();
            assert_eq!(gs, hs_sorted, "supernode mismatch at node {x}");
        }
    }
}
