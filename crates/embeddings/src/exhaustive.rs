//! Exhaustive optimal-dilation search for tiny instances.
//!
//! The paper's optimality claims (e.g. a ring cannot be embedded in an
//! odd-size mesh with unit dilation; a torus of odd size cannot be embedded
//! in a mesh with unit dilation) are proved combinatorially. This module
//! provides a branch-and-bound search over all embeddings of tiny graphs so
//! the test-suite can cross-check those claims — and the optimality of the
//! constructions themselves — without trusting the proofs.

use topology::Grid;

use crate::error::{EmbeddingError, Result};

/// The default node-count limit for exhaustive searches.
pub const DEFAULT_LIMIT: u64 = 16;

/// Decides whether `guest` can be embedded in `host` with dilation at most
/// `bound`, by branch-and-bound over all injections.
///
/// Guest nodes are assigned in a BFS order from node 0, so every new
/// assignment is adjacent to an already-assigned node and can be pruned
/// against `bound` immediately.
///
/// # Errors
///
/// Returns [`EmbeddingError::TooLarge`] if either graph exceeds `limit` nodes
/// (default [`DEFAULT_LIMIT`]), or [`EmbeddingError::SizeMismatch`] if the
/// sizes differ.
pub fn embedding_exists_with_dilation(
    guest: &Grid,
    host: &Grid,
    bound: u64,
    limit: Option<u64>,
) -> Result<bool> {
    let limit = limit.unwrap_or(DEFAULT_LIMIT);
    if guest.size() != host.size() {
        return Err(EmbeddingError::SizeMismatch {
            guest: guest.size(),
            host: host.size(),
        });
    }
    if guest.size() > limit {
        return Err(EmbeddingError::TooLarge {
            size: guest.size(),
            limit,
        });
    }
    let n = guest.size() as usize;

    // Assignment order: BFS from node 0 so each node (after the first) has at
    // least one previously assigned neighbor.
    let order = bfs_order(guest);
    // For each node in `order`, the already-assigned neighbors (as positions
    // in `order`).
    let mut earlier_neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut position = vec![usize::MAX; n];
    for (pos, &node) in order.iter().enumerate() {
        position[node as usize] = pos;
    }
    for (pos, &node) in order.iter().enumerate() {
        for neighbor in guest.neighbors(node).expect("node in range") {
            let npos = position[neighbor as usize];
            if npos < pos {
                earlier_neighbors[pos].push(npos);
            }
        }
    }

    // Precompute host distances.
    let mut host_distance = vec![vec![0u64; n]; n];
    for (a, row) in host_distance.iter_mut().enumerate() {
        for (b, cell) in row.iter_mut().enumerate() {
            *cell = host.distance_index(a as u64, b as u64).expect("in range");
        }
    }

    let mut assignment: Vec<usize> = vec![usize::MAX; n];
    let mut used = vec![false; n];

    fn backtrack(
        pos: usize,
        n: usize,
        bound: u64,
        earlier_neighbors: &[Vec<usize>],
        host_distance: &[Vec<u64>],
        assignment: &mut [usize],
        used: &mut [bool],
    ) -> bool {
        if pos == n {
            return true;
        }
        for candidate in 0..n {
            if used[candidate] {
                continue;
            }
            // Symmetry breaking: the first node can go anywhere, but trying
            // every host node is wasteful only for large hosts; keep it exact.
            let ok = earlier_neighbors[pos]
                .iter()
                .all(|&e| host_distance[assignment[e]][candidate] <= bound);
            if !ok {
                continue;
            }
            used[candidate] = true;
            assignment[pos] = candidate;
            if backtrack(
                pos + 1,
                n,
                bound,
                earlier_neighbors,
                host_distance,
                assignment,
                used,
            ) {
                return true;
            }
            used[candidate] = false;
            assignment[pos] = usize::MAX;
        }
        false
    }

    Ok(backtrack(
        0,
        n,
        bound,
        &earlier_neighbors,
        &host_distance,
        &mut assignment,
        &mut used,
    ))
}

/// The optimal (minimum) dilation over all embeddings of `guest` in `host`,
/// found by increasing the bound until an embedding exists.
///
/// # Errors
///
/// Propagates the size and limit errors of [`embedding_exists_with_dilation`].
pub fn optimal_dilation_exhaustive(guest: &Grid, host: &Grid, limit: Option<u64>) -> Result<u64> {
    let max_bound = host.diameter().max(1);
    for bound in 1..=max_bound {
        if embedding_exists_with_dilation(guest, host, bound, limit)? {
            return Ok(bound);
        }
    }
    Ok(max_bound)
}

fn bfs_order(grid: &Grid) -> Vec<u64> {
    let n = grid.size() as usize;
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(0u64);
    seen[0] = true;
    while let Some(x) = queue.pop_front() {
        order.push(x);
        for y in grid.neighbors(x).expect("node in range") {
            if !seen[y as usize] {
                seen[y as usize] = true;
                queue.push_back(y);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::embed_ring_in;
    use crate::same_shape::embed_same_shape;
    use topology::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn ring_in_odd_mesh_needs_dilation_two() {
        // Theorem 17's optimality: a ring cannot be embedded in a mesh of odd
        // size with unit dilation.
        let host = Grid::mesh(shape(&[3, 3]));
        let guest = Grid::ring(9).unwrap();
        assert_eq!(optimal_dilation_exhaustive(&guest, &host, None).unwrap(), 2);
        // And our construction achieves exactly that optimum.
        assert_eq!(embed_ring_in(&host).unwrap().dilation(), 2);
    }

    #[test]
    fn ring_in_line_needs_dilation_two() {
        let host = Grid::line(6).unwrap();
        let guest = Grid::ring(6).unwrap();
        assert_eq!(optimal_dilation_exhaustive(&guest, &host, None).unwrap(), 2);
    }

    #[test]
    fn ring_in_even_mesh_admits_unit_dilation() {
        let host = Grid::mesh(shape(&[4, 3]));
        let guest = Grid::ring(12).unwrap();
        assert_eq!(optimal_dilation_exhaustive(&guest, &host, None).unwrap(), 1);
    }

    #[test]
    fn odd_torus_in_same_shape_mesh_needs_dilation_two() {
        // Lemma 36 / Theorem 32(iii) optimality on a tiny case.
        let guest = Grid::torus(shape(&[3, 3]));
        let host = Grid::mesh(shape(&[3, 3]));
        assert_eq!(optimal_dilation_exhaustive(&guest, &host, None).unwrap(), 2);
        assert_eq!(embed_same_shape(&guest, &host).unwrap().dilation(), 2);
    }

    #[test]
    fn line_in_anything_admits_unit_dilation() {
        for host in [
            Grid::mesh(shape(&[3, 4])),
            Grid::torus(shape(&[2, 2, 3])),
            Grid::hypercube(3).unwrap(),
        ] {
            let guest = Grid::line(host.size()).unwrap();
            assert_eq!(
                optimal_dilation_exhaustive(&guest, &host, None).unwrap(),
                1,
                "host {host}"
            );
        }
    }

    #[test]
    fn torus_of_even_size_in_mesh_of_same_shape_sometimes_needs_two() {
        // A (2,4)-torus in a (2,4)-mesh: the wrap edge of length 4 forces
        // dilation 2 even though the size is even.
        let guest = Grid::torus(shape(&[2, 4]));
        let host = Grid::mesh(shape(&[2, 4]));
        assert_eq!(optimal_dilation_exhaustive(&guest, &host, None).unwrap(), 2);
    }

    #[test]
    fn errors_on_large_or_mismatched_graphs() {
        let guest = Grid::ring(32).unwrap();
        let host = Grid::mesh(shape(&[4, 8]));
        assert!(matches!(
            optimal_dilation_exhaustive(&guest, &host, None),
            Err(EmbeddingError::TooLarge { .. })
        ));
        assert!(optimal_dilation_exhaustive(&guest, &host, Some(64)).is_ok());
        let mismatched = Grid::ring(6).unwrap();
        assert!(embedding_exists_with_dilation(&mismatched, &host, 1, None).is_err());
    }

    #[test]
    fn hypercube_into_ring_matches_corollary_40_on_a_tiny_case() {
        // A hypercube of size 8 into a ring of size 8: our bound is
        // max(m)/2 = 4; the true optimum on this tiny case is smaller, which
        // is consistent with Theorem 39 not being optimal in general.
        let guest = Grid::hypercube(3).unwrap();
        let host = Grid::ring(8).unwrap();
        let optimum = optimal_dilation_exhaustive(&guest, &host, None).unwrap();
        assert!(optimum <= 4);
        assert!(optimum >= 2);
    }
}
