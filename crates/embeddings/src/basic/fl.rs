//! The sequence `f_L` (Definition 9) — the mixed-radix reflected sequence.
//!
//! `f_L : [n] → Ω_L` generalizes the binary reflected Gray code: for every
//! `x`, digit `i` of `f_L(x)` equals the `i`-th radix-`L` digit of `x` if the
//! segment number `⌊x / w_{i−1}⌋` is even, and its reflection
//! `l_i − x̂_i − 1` if the segment number is odd. The resulting sequence is a
//! bijection (Lemma 10) with unit δ_m-spread (Lemma 11) and unit δ_t-spread
//! (Lemma 12), and therefore embeds a line in a mesh or torus with unit
//! dilation (Theorem 13).

use mixedradix::{Digits, RadixBase};

/// Evaluates `f_L(x)` (Definition 9).
///
/// # Panics
///
/// Panics if `x >= n` where `n` is the size of `base`.
pub fn f_l(base: &RadixBase, x: u64) -> Digits {
    assert!(x < base.size(), "f_L argument {x} out of range");
    let d = base.dim();
    let mut out = Digits::zero(d).expect("base dimension within bounds");
    for j in 0..d {
        let l = base.radix(j) as u64;
        // The paper indexes digits from 1; digit i uses weights w_{i-1} (the
        // segment) and w_i (the digit). With 0-based j these are weight(j)
        // and weight(j + 1).
        let digit = (x / base.weight(j + 1)) % l;
        let segment = x / base.weight(j);
        let value = if segment.is_multiple_of(2) {
            digit
        } else {
            l - digit - 1
        };
        out.set(j, value as u32);
    }
    out
}

/// Evaluates the inverse `f_L⁻¹(digits)`: the unique `x` with
/// `f_L(x) = digits`.
///
/// # Panics
///
/// Panics if `digits` is not a valid radix-`L` number.
pub fn f_l_inverse(base: &RadixBase, digits: &Digits) -> u64 {
    assert!(
        base.contains(digits),
        "f_L⁻¹ argument {digits} is not a radix-{base} number"
    );
    // Reconstruct the radix-L digits x̂_j most-significant first. The segment
    // number of digit j is the prefix value ⌊x / w_{j-1}⌋, which only depends
    // on digits 1..j−1, so a single left-to-right pass suffices.
    let mut prefix = 0u64; // ⌊x / w_j⌋ after processing digit j
    for j in 0..base.dim() {
        let l = base.radix(j) as u64;
        let y = digits.get(j) as u64;
        let segment = prefix; // ⌊x / w_{j-1}⌋
        let xhat = if segment.is_multiple_of(2) {
            y
        } else {
            l - y - 1
        };
        prefix = prefix * l + xhat;
    }
    prefix
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixedradix::sequence::{FnSequence, RadixSequence};

    fn base(radices: &[u32]) -> RadixBase {
        RadixBase::new(radices.to_vec()).unwrap()
    }

    fn fl_sequence(b: &RadixBase) -> FnSequence<impl Fn(u64) -> Digits> {
        let inner = b.clone();
        FnSequence::new(b.clone(), b.size(), move |x| f_l(&inner, x))
    }

    #[test]
    fn figure_4_prefix_for_l_423() {
        // Figure 4 lists the first elements of P' = f_L for L = (4,2,3):
        // the first segment of the innermost digit runs 0,1,2 then reflects.
        let b = base(&[4, 2, 3]);
        let expected_prefix: Vec<Vec<u32>> = vec![
            vec![0, 0, 0],
            vec![0, 0, 1],
            vec![0, 0, 2],
            vec![0, 1, 2],
            vec![0, 1, 1],
            vec![0, 1, 0],
            vec![1, 1, 0],
            vec![1, 1, 1],
            vec![1, 1, 2],
            vec![1, 0, 2],
            vec![1, 0, 1],
            vec![1, 0, 0],
        ];
        for (x, want) in expected_prefix.iter().enumerate() {
            assert_eq!(
                f_l(&b, x as u64).as_slice(),
                want.as_slice(),
                "f_L({x}) for L=(4,2,3)"
            );
        }
    }

    #[test]
    fn lemma_10_f_l_is_bijective() {
        for radices in [
            vec![4u32, 2, 3],
            vec![2, 2, 2, 2],
            vec![3, 5],
            vec![7],
            vec![2, 3, 2, 3],
        ] {
            let b = base(&radices);
            assert!(fl_sequence(&b).is_bijection(), "f_L bijective for {b}");
        }
    }

    #[test]
    fn lemma_11_unit_mesh_spread() {
        for radices in [vec![4u32, 2, 3], vec![3, 3, 3], vec![2, 5, 2], vec![6, 4]] {
            let b = base(&radices);
            assert_eq!(
                fl_sequence(&b).acyclic_spread_mesh(),
                1,
                "δ_m-spread of f_L for {b}"
            );
        }
    }

    #[test]
    fn lemma_12_unit_torus_spread() {
        for radices in [vec![4u32, 2, 3], vec![3, 3, 3], vec![2, 5, 2], vec![6, 4]] {
            let b = base(&radices);
            assert_eq!(
                fl_sequence(&b).acyclic_spread_torus(),
                1,
                "δ_t-spread of f_L for {b}"
            );
        }
    }

    #[test]
    fn lemma_19_last_element_when_l1_even() {
        // If l_1 is even, f_L(n−1) = (l_1 − 1, 0, …, 0).
        for radices in [vec![4u32, 2, 3], vec![2, 3, 3], vec![6, 5], vec![4, 4, 4]] {
            let b = base(&radices);
            let last = f_l(&b, b.size() - 1);
            assert_eq!(last.get(0), b.radix(0) - 1);
            for j in 1..b.dim() {
                assert_eq!(last.get(j), 0, "digit {j} of f_L(n-1) for {b}");
            }
        }
    }

    #[test]
    fn odd_l1_last_element_keeps_second_digit_high() {
        // Section 3.2.2: if l_1 is odd the leftmost two components of
        // f_L(n−1) are (l_1 − 1, l_2 − 1).
        for radices in [vec![3u32, 2, 3], vec![5, 4], vec![3, 3, 3]] {
            let b = base(&radices);
            let last = f_l(&b, b.size() - 1);
            assert_eq!(last.get(0), b.radix(0) - 1);
            assert_eq!(last.get(1), b.radix(1) - 1);
        }
    }

    #[test]
    fn reduces_to_binary_reflected_gray_code() {
        // On L = (2, …, 2) the sequence f_L is exactly the binary reflected
        // Gray code.
        use mixedradix::gray::BinaryGraySequence;
        for bits in 1..=8usize {
            let b = RadixBase::binary(bits).unwrap();
            let gray = BinaryGraySequence::new(bits).unwrap();
            for x in 0..b.size() {
                assert_eq!(
                    f_l(&b, x),
                    gray.at(x),
                    "f_L vs Gray code at {x}, {bits} bits"
                );
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        for radices in [vec![4u32, 2, 3], vec![3, 3, 3], vec![2, 2, 2, 2], vec![7]] {
            let b = base(&radices);
            for x in 0..b.size() {
                assert_eq!(f_l_inverse(&b, &f_l(&b, x)), x, "round trip at {x} for {b}");
            }
        }
    }

    #[test]
    fn single_dimension_is_the_identity() {
        let b = base(&[9]);
        for x in 0..9 {
            assert_eq!(f_l(&b, x).as_slice(), &[x as u32]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_argument_panics() {
        let b = base(&[2, 2]);
        let _ = f_l(&b, 4);
    }

    #[test]
    #[should_panic(expected = "is not a radix")]
    fn inverse_rejects_invalid_digits() {
        let b = base(&[2, 2]);
        let _ = f_l_inverse(&b, &Digits::from_slice(&[3, 0]).unwrap());
    }
}
