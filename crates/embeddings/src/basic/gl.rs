//! The cyclic sequence `g_L = f_L ∘ t_n` (Definition 15).
//!
//! `g_L` embeds a ring in a mesh with dilation cost 2 (Theorem 17). It is
//! optimal whenever the host is a line of size > 2 or has odd size: a ring
//! cannot be embedded with unit dilation in a line (boundary nodes have a
//! single neighbor) nor in a mesh of odd size (no Hamiltonian circuit,
//! Corollary 18).

use mixedradix::{Digits, RadixBase};

use super::fl::f_l;
use super::tn::t_n;

/// Evaluates `g_L(x) = f_L(t_n(x))` (Definition 15).
///
/// # Panics
///
/// Panics if `x >= n`.
pub fn g_l(base: &RadixBase, x: u64) -> Digits {
    f_l(base, t_n(base.size(), x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixedradix::sequence::{FnSequence, RadixSequence};

    fn base(radices: &[u32]) -> RadixBase {
        RadixBase::new(radices.to_vec()).unwrap()
    }

    fn gl_sequence(b: &RadixBase) -> FnSequence<impl Fn(u64) -> Digits> {
        let inner = b.clone();
        FnSequence::new(b.clone(), b.size(), move |x| g_l(&inner, x))
    }

    #[test]
    fn g_l_is_bijective() {
        for radices in [vec![4u32, 2, 3], vec![3, 3], vec![3, 5, 3], vec![2, 2, 2]] {
            let b = base(&radices);
            assert!(gl_sequence(&b).is_bijection(), "g_L bijective for {b}");
        }
    }

    #[test]
    fn lemma_16_cyclic_mesh_spread_at_most_two() {
        for radices in [
            vec![4u32, 2, 3],
            vec![3, 3],
            vec![3, 5, 3],
            vec![2, 2, 2],
            vec![5, 5],
            vec![7],
        ] {
            let b = base(&radices);
            let spread = gl_sequence(&b).cyclic_spread_mesh();
            assert!(spread <= 2, "cyclic δ_m-spread of g_L for {b} is {spread}");
        }
    }

    #[test]
    fn cyclic_spread_is_exactly_two_for_odd_sizes() {
        // For odd-size meshes no unit-spread cyclic sequence exists
        // (Corollary 18), so g_L's spread of 2 is optimal.
        for radices in [vec![3u32, 3], vec![3, 5, 3], vec![5, 5], vec![9]] {
            let b = base(&radices);
            assert_eq!(gl_sequence(&b).cyclic_spread_mesh(), 2);
        }
    }

    #[test]
    fn first_rows_for_paper_example() {
        // Figure 9 tabulates g_L for L = (4,2,3): g_L(x) = f_L(t_24(x)), so
        // g_L(0) = f_L(0) = (0,0,0), g_L(1) = f_L(2) = (0,0,2),
        // g_L(23) = f_L(1) = (0,0,1).
        let b = base(&[4, 2, 3]);
        assert_eq!(g_l(&b, 0).as_slice(), &[0, 0, 0]);
        assert_eq!(g_l(&b, 1).as_slice(), &[0, 0, 2]);
        assert_eq!(g_l(&b, 23).as_slice(), &[0, 0, 1]);
        assert_eq!(g_l(&b, 12).as_slice(), f_l(&b, 23).as_slice());
    }

    #[test]
    fn wrap_around_pair_is_close() {
        // The cyclic closure g_L(n−1) → g_L(0) corresponds to f_L(1) → f_L(0),
        // successive elements of f_L, hence at distance 1.
        for radices in [vec![4u32, 2, 3], vec![3, 3, 3], vec![5, 2]] {
            let b = base(&radices);
            let n = b.size();
            let dist = mixedradix::distance::delta_m(&b, &g_l(&b, n - 1), &g_l(&b, 0)).unwrap();
            assert_eq!(dist, 1);
        }
    }
}
