//! Basic embeddings: a line or a ring in a mesh or a torus (Section 3).
//!
//! | Guest | Host | Function | Dilation | Reference |
//! |---|---|---|---|---|
//! | line | mesh or torus | `f_L` | 1 | Theorem 13 |
//! | ring | torus | `h_L` | 1 | Theorem 28 |
//! | ring (even size) | mesh of dim ≥ 2 | `π ∘ h_{L*}` | 1 | Theorem 24 |
//! | ring (odd size, or host is a line) | mesh | `g_L` | 2 (optimal) | Theorem 17 |
//!
//! The raw sequence functions live in the submodules ([`f_l`], [`t_n`],
//! [`g_l`], [`r_l`], [`h_l`]); [`embed_line_in`] and [`embed_ring_in`] wrap
//! them as [`Embedding`] values, choosing the construction the paper
//! prescribes for the host at hand.

pub mod fl;
pub mod gl;
pub mod hl;
pub mod rl;
pub mod tn;
pub mod walk;

use std::sync::Arc;

use mixedradix::Permutation;
use topology::{Grid, Shape};

pub use fl::{f_l, f_l_inverse};
pub use gl::g_l;
pub use hl::h_l;
pub use rl::r_l;
pub use tn::{t_n, t_n_inverse};
pub use walk::{SnakeStep, SnakeWalk};

use crate::embedding::Embedding;
use crate::error::{EmbeddingError, Result};

/// Embeds a line of the same size in `host` with unit dilation using `f_L`
/// (Theorem 13).
///
/// # Errors
///
/// Returns an error if a line of the host's size cannot be built (host of
/// size < 2 never occurs for valid shapes).
pub fn embed_line_in(host: &Grid) -> Result<Embedding> {
    let guest = Grid::line(host.size())?;
    let shape = host.shape().clone();
    Embedding::new(
        guest,
        host.clone(),
        "f_L",
        Arc::new(move |x| f_l(&shape, x)),
    )
}

/// Embeds a ring of the same size in `host`, choosing the construction of
/// Theorems 17, 24 or 28:
///
/// * host torus → `h_L`, dilation 1;
/// * host mesh of even size and dimension ≥ 2 → `π ∘ h_{L*}`, dilation 1;
/// * otherwise (odd-size mesh, or a line) → `g_L`, dilation 2 (optimal).
///
/// # Errors
///
/// Returns an error if the ring guest cannot be built.
pub fn embed_ring_in(host: &Grid) -> Result<Embedding> {
    let guest = Grid::ring(host.size())?;
    let shape = host.shape().clone();
    if host.is_torus() {
        return Embedding::new(
            guest,
            host.clone(),
            "h_L",
            Arc::new(move |x| h_l(&shape, x)),
        );
    }
    // Host is a mesh.
    if host.dim() >= 2 && host.size().is_multiple_of(2) {
        let (star, perm) = even_first_permutation(&shape)?;
        return Embedding::new(
            guest,
            host.clone(),
            "π ∘ h_{L*}",
            Arc::new(move |x| {
                perm.apply_digits(&h_l(&star, x))
                    .expect("permutation matches dimension")
            }),
        );
    }
    Embedding::new(
        guest,
        host.clone(),
        "g_L",
        Arc::new(move |x| g_l(&shape, x)),
    )
}

/// The dilation cost the paper guarantees for [`embed_ring_in`] on `host`.
pub fn predicted_ring_dilation(host: &Grid) -> u64 {
    let even_mesh = host.dim() >= 2 && host.size().is_multiple_of(2);
    // The 2-node case is degenerate: both nodes are adjacent in any host.
    if host.is_torus() || even_mesh || host.size() == 2 {
        1
    } else {
        2
    }
}

/// The dilation cost the paper guarantees for [`embed_line_in`] on any host.
pub fn predicted_line_dilation(_host: &Grid) -> u64 {
    1
}

/// Builds a shape `L*` that is a reordering of `shape` with an even first
/// component, together with the permutation `π` such that `π(L*) = L`
/// (Theorem 24).
///
/// # Errors
///
/// Returns [`EmbeddingError::ConditionNotSatisfied`] if the shape has no even
/// component (i.e. the size is odd).
pub fn even_first_permutation(shape: &Shape) -> Result<(Shape, Permutation)> {
    let even = shape
        .first_even_component()
        .ok_or(EmbeddingError::ConditionNotSatisfied {
            condition: "even size",
            details: format!("shape {shape} has no even component"),
        })?;
    let mut reordered = Vec::with_capacity(shape.dim());
    reordered.push(shape.radix(even));
    for (i, &l) in shape.radices().iter().enumerate() {
        if i != even {
            reordered.push(l);
        }
    }
    let star = Shape::new(reordered)?;
    let perm = Permutation::mapping(star.radices(), shape.radices()).ok_or(
        EmbeddingError::InvalidFactor {
            details: "reordered shape is not a permutation of the original".into(),
        },
    )?;
    Ok((star, perm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn theorem_13_line_in_mesh_and_torus_unit_dilation() {
        for host in [
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[3, 3, 3])),
            Grid::torus(shape(&[5, 7])),
            Grid::hypercube(5).unwrap(),
            Grid::line(17).unwrap(),
            Grid::ring(17).unwrap(),
        ] {
            let e = embed_line_in(&host).unwrap();
            assert!(e.is_injective(), "injective into {host}");
            assert_eq!(e.dilation(), 1, "dilation into {host}");
            assert_eq!(e.dilation(), predicted_line_dilation(&host));
        }
    }

    #[test]
    fn theorem_28_ring_in_torus_unit_dilation() {
        for host in [
            Grid::torus(shape(&[4, 2, 3])),
            Grid::torus(shape(&[3, 3, 3])),
            Grid::torus(shape(&[5, 7])),
            Grid::torus(shape(&[2, 2, 2])),
            Grid::ring(9).unwrap(),
        ] {
            let e = embed_ring_in(&host).unwrap();
            assert!(e.is_injective(), "injective into {host}");
            assert_eq!(e.dilation(), 1, "dilation into {host}");
            assert_eq!(e.name(), "h_L");
        }
    }

    #[test]
    fn theorem_24_ring_in_even_mesh_unit_dilation() {
        for host in [
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[3, 4])),    // even component not first
            Grid::mesh(shape(&[3, 3, 2])), // even component last
            Grid::mesh(shape(&[2, 2, 2, 2])),
            Grid::mesh(shape(&[5, 6, 3])),
        ] {
            let e = embed_ring_in(&host).unwrap();
            assert!(e.is_injective(), "injective into {host}");
            assert_eq!(e.dilation(), 1, "dilation into {host}");
            assert_eq!(e.dilation(), predicted_ring_dilation(&host));
        }
    }

    #[test]
    fn theorem_17_ring_in_odd_mesh_or_line_dilation_two() {
        for host in [
            Grid::mesh(shape(&[3, 3])),
            Grid::mesh(shape(&[3, 5, 3])),
            Grid::line(10).unwrap(),
            Grid::line(9).unwrap(),
        ] {
            let e = embed_ring_in(&host).unwrap();
            assert!(e.is_injective(), "injective into {host}");
            assert_eq!(e.dilation(), 2, "dilation into {host}");
            assert_eq!(e.name(), "g_L");
            assert_eq!(e.dilation(), predicted_ring_dilation(&host));
        }
    }

    #[test]
    fn even_first_permutation_reorders_correctly() {
        let (star, perm) = even_first_permutation(&shape(&[3, 5, 4, 2])).unwrap();
        assert_eq!(star.radices(), &[4, 3, 5, 2]);
        assert_eq!(perm.apply_slice(star.radices()).unwrap(), vec![3, 5, 4, 2]);
        assert!(even_first_permutation(&shape(&[3, 5, 7])).is_err());
    }

    #[test]
    fn ring_embeddings_trace_hamiltonian_circuits() {
        // A unit-dilation ring embedding is exactly a Hamiltonian circuit of
        // the host (Corollaries 25 and 29).
        use topology::hamiltonian::is_hamiltonian_circuit;
        for host in [
            Grid::torus(shape(&[3, 3, 3])),
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[5, 3])),
            Grid::mesh(shape(&[2, 3])),
        ] {
            let e = embed_ring_in(&host).unwrap();
            assert_eq!(e.dilation(), 1);
            let circuit: Vec<u64> = (0..e.size()).map(|x| e.map_index(x)).collect();
            assert!(
                is_hamiltonian_circuit(&host, &circuit),
                "embedding of ring in {host} is not a Hamiltonian circuit"
            );
        }
    }

    #[test]
    fn line_embedding_images_cover_all_nodes() {
        let host = Grid::mesh(shape(&[3, 4]));
        let e = embed_line_in(&host).unwrap();
        let mut images: Vec<u64> = (0..12).map(|x| e.map_index(x)).collect();
        images.sort_unstable();
        assert_eq!(images, (0..12).collect::<Vec<u64>>());
    }
}
