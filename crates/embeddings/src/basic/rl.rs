//! The cyclic sequence `r_L` for 2-dimensional shapes (Definition 20).
//!
//! `r_L` walks down the first column of an `(l_1, l_2)`-mesh and then covers
//! the remaining `(l_1, l_2 − 1)`-mesh with `f_{(l_1, l_2−1)}`. When `l_1` is
//! even the resulting cyclic sequence has unit δ_m-spread (Lemma 21), giving a
//! unit-dilation embedding of a ring in the mesh; whatever the parity of
//! `l_1`, the cyclic sequence always has unit δ_t-spread (Lemma 26), giving a
//! unit-dilation embedding of a ring in the torus.

use mixedradix::{Digits, RadixBase};

/// Evaluates `r_L(x)` for a 2-dimensional radix base `L = (l_1, l_2)`
/// (Definition 20).
///
/// # Panics
///
/// Panics if `base` is not 2-dimensional or `x >= n`.
pub fn r_l(base: &RadixBase, x: u64) -> Digits {
    assert_eq!(base.dim(), 2, "r_L is defined for 2-dimensional bases only");
    let n = base.size();
    assert!(x < n, "r_L argument {x} out of range");
    let l1 = base.radix(0) as u64;
    let l2 = base.radix(1) as u64;
    let mut out = Digits::zero(2).expect("dimension 2");
    if x < l1 {
        // First column, walked from the top (l_1 − 1, 0) down to (0, 0).
        out.set(0, (l1 - 1 - x) as u32);
        out.set(1, 0);
        return out;
    }
    if l2 > 2 {
        // Remaining columns form an (l_1, l_2 − 1)-mesh covered by
        // f_{(l_1, l_2−1)}, evaluated directly: with y = x − l_1 < l_1·(l_2−1)
        // the digit-0 segment ⌊y / (l_1·(l_2−1))⌋ is always 0 (even), so
        // digit 0 is the plain quotient and digit 1 reflects by its parity —
        // no sub-shape needs constructing per call.
        let m = l2 - 1;
        let y = x - l1;
        let row = y / m;
        let rem = y % m;
        let col = if row.is_multiple_of(2) {
            rem
        } else {
            m - rem - 1
        };
        out.set(0, row as u32);
        out.set(1, (col + 1) as u32);
    } else {
        // l_2 = 2: walk the second column bottom-up.
        out.set(0, (x - l1) as u32);
        out.set(1, 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixedradix::sequence::{FnSequence, RadixSequence};

    fn base(l1: u32, l2: u32) -> RadixBase {
        RadixBase::new(vec![l1, l2]).unwrap()
    }

    fn rl_sequence(b: &RadixBase) -> FnSequence<impl Fn(u64) -> Digits> {
        let inner = b.clone();
        FnSequence::new(b.clone(), b.size(), move |x| r_l(&inner, x))
    }

    #[test]
    fn figure_5_shape_even_l1() {
        // For l_1 = 4, l_2 = 3 the first column is walked top-down …
        let b = base(4, 3);
        assert_eq!(r_l(&b, 0).as_slice(), &[3, 0]);
        assert_eq!(r_l(&b, 1).as_slice(), &[2, 0]);
        assert_eq!(r_l(&b, 2).as_slice(), &[1, 0]);
        assert_eq!(r_l(&b, 3).as_slice(), &[0, 0]);
        // … and the remaining (4,2)-mesh is covered by f_{(4,2)} shifted one
        // column to the right.
        assert_eq!(r_l(&b, 4).as_slice(), &[0, 1]);
        assert_eq!(r_l(&b, 5).as_slice(), &[0, 2]);
        assert_eq!(r_l(&b, 11).as_slice(), &[3, 1]);
    }

    #[test]
    fn r_l_is_bijective() {
        for (l1, l2) in [(4u32, 3u32), (3, 3), (2, 2), (5, 2), (6, 4), (3, 2), (2, 5)] {
            let b = base(l1, l2);
            assert!(rl_sequence(&b).is_bijection(), "r_L bijective for {b}");
        }
    }

    #[test]
    fn lemma_21_unit_cyclic_mesh_spread_for_even_l1() {
        for (l1, l2) in [(4u32, 3u32), (2, 2), (6, 4), (2, 5), (4, 2), (8, 3)] {
            let b = base(l1, l2);
            assert_eq!(
                rl_sequence(&b).cyclic_spread_mesh(),
                1,
                "cyclic δ_m-spread of r_L for {b}"
            );
        }
    }

    #[test]
    fn lemma_26_unit_cyclic_torus_spread_for_any_l1() {
        for (l1, l2) in [
            (4u32, 3u32),
            (3, 3),
            (5, 2),
            (3, 2),
            (7, 5),
            (2, 2),
            (6, 4),
            (5, 7),
        ] {
            let b = base(l1, l2);
            assert_eq!(
                rl_sequence(&b).cyclic_spread_torus(),
                1,
                "cyclic δ_t-spread of r_L for {b}"
            );
        }
    }

    #[test]
    fn figure_8_last_element_for_odd_l1() {
        // When l_1 is odd, r_L(n−1) = (l_1 − 1, l_2 − 1): the top node of the
        // last column, a torus neighbor of r_L(0) = (l_1 − 1, 0).
        for (l1, l2) in [(3u32, 3u32), (5, 2), (7, 4), (3, 2)] {
            let b = base(l1, l2);
            let last = r_l(&b, b.size() - 1);
            assert_eq!(last.as_slice(), &[l1 - 1, l2 - 1]);
            assert_eq!(r_l(&b, 0).as_slice(), &[l1 - 1, 0]);
        }
    }

    #[test]
    fn odd_l1_mesh_spread_exceeds_one() {
        // With odd l_1 the cyclic δ_m-spread cannot be 1 (Corollary 18 for
        // odd sizes; for odd l_1 and even l_2 the sequence closes across the
        // full column height instead).
        let b = base(3, 3);
        assert!(rl_sequence(&b).cyclic_spread_mesh() > 1);
    }

    #[test]
    fn l2_equal_two_special_case() {
        let b = base(5, 2);
        // Second column is walked bottom-up after the first column top-down.
        assert_eq!(r_l(&b, 5).as_slice(), &[0, 1]);
        assert_eq!(r_l(&b, 9).as_slice(), &[4, 1]);
        assert!(rl_sequence(&b).is_bijection());
    }

    #[test]
    #[should_panic(expected = "2-dimensional")]
    fn non_two_dimensional_base_panics() {
        let b = RadixBase::new(vec![2, 2, 2]).unwrap();
        let _ = r_l(&b, 0);
    }
}
