//! The cyclic renumbering `t_n` (Definition 14).
//!
//! `t_n : [n] → [n]` lists the even numbers in increasing order followed by
//! the odd numbers in decreasing order. Read as a cyclic sequence of the
//! numbers `0, …, n−1` (with `|a − b|` as the distance), successive elements
//! differ by at most 2; this is the paper's device for closing a reflected
//! sequence into a cycle at the cost of doubling the spread.

/// Evaluates `t_n(x)` (Definition 14).
///
/// # Panics
///
/// Panics if `x >= n` or `n == 0`.
#[inline]
pub fn t_n(n: u64, x: u64) -> u64 {
    assert!(n > 0, "t_n requires n > 0");
    assert!(x < n, "t_n argument {x} out of range for n = {n}");
    if 2 * x < n {
        2 * x
    } else {
        2 * n - 1 - 2 * x
    }
}

/// Evaluates the inverse `t_n⁻¹(y)`.
///
/// # Panics
///
/// Panics if `y >= n` or `n == 0`.
#[inline]
pub fn t_n_inverse(n: u64, y: u64) -> u64 {
    assert!(n > 0, "t_n⁻¹ requires n > 0");
    assert!(y < n, "t_n⁻¹ argument {y} out of range for n = {n}");
    if y.is_multiple_of(2) {
        y / 2
    } else {
        (2 * n - 1 - y) / 2
    }
}

/// The maximum difference `|t_n((x+1) mod n) − t_n(x)|` over all `x` — the
/// spread of the cyclic sequence `t_n` on the line `[n]`.
pub fn cyclic_line_spread(n: u64) -> u64 {
    (0..n)
        .map(|x| {
            let a = t_n(n, x) as i64;
            let b = t_n(n, (x + 1) % n) as i64;
            (a - b).unsigned_abs()
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_tables() {
        // n = 6: 0, 2, 4, 5, 3, 1.
        let t6: Vec<u64> = (0..6).map(|x| t_n(6, x)).collect();
        assert_eq!(t6, vec![0, 2, 4, 5, 3, 1]);
        // n = 5: 0, 2, 4, 3, 1.
        let t5: Vec<u64> = (0..5).map(|x| t_n(5, x)).collect();
        assert_eq!(t5, vec![0, 2, 4, 3, 1]);
        // n = 1 and n = 2 degenerate gracefully.
        assert_eq!(t_n(1, 0), 0);
        assert_eq!((0..2).map(|x| t_n(2, x)).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn t_n_is_a_bijection() {
        for n in 1..=64u64 {
            let mut seen = vec![false; n as usize];
            for x in 0..n {
                let y = t_n(n, x);
                assert!(y < n);
                assert!(!seen[y as usize], "duplicate image for n={n}");
                seen[y as usize] = true;
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        for n in 1..=64u64 {
            for x in 0..n {
                assert_eq!(t_n_inverse(n, t_n(n, x)), x);
                assert_eq!(t_n(n, t_n_inverse(n, x)), x);
            }
        }
    }

    #[test]
    fn cyclic_spread_is_at_most_two() {
        for n in 3..=200u64 {
            assert!(cyclic_line_spread(n) <= 2, "spread for n={n}");
        }
        // And exactly 2 for n >= 3 (a cyclic sequence of >= 3 distinct numbers
        // cannot have all successive differences equal to 1).
        for n in 3..=200u64 {
            assert_eq!(cyclic_line_spread(n), 2, "spread for n={n}");
        }
    }

    #[test]
    fn even_numbers_come_first() {
        let n = 10;
        for x in 0..5 {
            assert_eq!(t_n(n, x) % 2, 0);
        }
        for x in 5..10 {
            assert_eq!(t_n(n, x) % 2, 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = t_n(4, 4);
    }
}
