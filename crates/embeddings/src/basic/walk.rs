//! Incremental traversal of the `f_L` sequence ("snake order").
//!
//! Evaluating `f_L(x)` from scratch costs `O(d)` per node; many consumers —
//! stencil sweeps, cache-oblivious traversals, the network simulator's
//! workload generators — want to *walk* the sequence `f_L(0), f_L(1), …`
//! and know, at every step, which single dimension moved (Lemma 11
//! guarantees exactly one digit changes, by exactly 1). [`SnakeWalk`]
//! produces that stream: it advances a radix-`L` odometer and recomputes only
//! the one affected output digit, reporting which dimension moved and in
//! which direction.
//!
//! The walk visits every node of the host exactly once (Lemma 10) and every
//! step moves to a grid neighbor (Lemmas 11–12), i.e. it traces the
//! Hamiltonian *path* that `f_L` embeds a line along.

use mixedradix::{Digits, RadixBase};

use super::fl::f_l;

/// One step of a [`SnakeWalk`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnakeStep {
    /// The line node `x` (the position in the sequence).
    pub index: u64,
    /// The host coordinate `f_L(x)`.
    pub coord: Digits,
    /// The dimension whose digit changed relative to the previous step
    /// (`None` for the first step), together with the signed unit movement.
    pub moved: Option<(usize, i8)>,
}

/// An iterator over the `f_L` sequence of a radix base, reporting the single
/// dimension moved at each step.
#[derive(Clone, Debug)]
pub struct SnakeWalk {
    base: RadixBase,
    /// Radix-`L` digits of the *next* index to emit (the odometer).
    odometer: Digits,
    /// `f_L` image of the next index to emit.
    image: Digits,
    /// Next index to emit.
    next: u64,
    /// Movement that produced `image` from the previous image.
    pending_move: Option<(usize, i8)>,
}

impl SnakeWalk {
    /// Starts a walk over all `base.size()` nodes.
    pub fn new(base: RadixBase) -> SnakeWalk {
        let d = base.dim();
        SnakeWalk {
            image: f_l(&base, 0),
            odometer: Digits::zero(d).expect("base dimension within bounds"),
            base,
            next: 0,
            pending_move: None,
        }
    }

    /// The radix base (host shape) being walked.
    pub fn base(&self) -> &RadixBase {
        &self.base
    }

    /// The number of steps remaining.
    pub fn remaining(&self) -> u64 {
        self.base.size() - self.next
    }

    /// Advances the odometer from index `x` to `x + 1` and updates the
    /// `f_L` image in place, returning the moved dimension and direction.
    fn advance(&mut self) -> (usize, i8) {
        // Find the lowest-weight position k (scanning from the last
        // dimension) whose digit is below its radix; all positions after it
        // are at their maximum and reset to 0. Their output digits do not
        // change (Lemma 11, case 1), because their segment parity flips at
        // the same moment their reflected digit would.
        let d = self.base.dim();
        let mut k = d - 1;
        loop {
            let l = self.base.radix(k);
            if self.odometer.get(k) + 1 < l {
                break;
            }
            self.odometer.set(k, 0);
            debug_assert!(k > 0, "advance called past the end of the sequence");
            k -= 1;
        }
        self.odometer.set(k, self.odometer.get(k) + 1);
        // The segment of position k is the value of the odometer prefix
        // above k (Definition 9), which the increment left unchanged; its
        // parity decides whether digit k is written plainly or reflected.
        let mut segment = 0u64;
        for j in 0..k {
            segment = segment * self.base.radix(j) as u64 + self.odometer.get(j) as u64;
        }
        let l = self.base.radix(k) as u64;
        let digit = self.odometer.get(k) as u64;
        let value = if segment.is_multiple_of(2) {
            digit
        } else {
            l - digit - 1
        } as u32;
        let previous = self.image.get(k);
        debug_assert_eq!(previous.abs_diff(value), 1, "Lemma 11: unit move");
        self.image.set(k, value);
        let direction: i8 = if value > previous { 1 } else { -1 };
        (k, direction)
    }
}

impl Iterator for SnakeWalk {
    type Item = SnakeStep;

    fn next(&mut self) -> Option<SnakeStep> {
        if self.next >= self.base.size() {
            return None;
        }
        let step = SnakeStep {
            index: self.next,
            coord: self.image,
            moved: self.pending_move,
        };
        self.next += 1;
        if self.next < self.base.size() {
            let (dim, direction) = self.advance();
            self.pending_move = Some((dim, direction));
        }
        Some(step)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.remaining() as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SnakeWalk {}

#[cfg(test)]
mod tests {
    use super::*;
    use mixedradix::distance::{delta_m, delta_t};

    fn base(radices: &[u32]) -> RadixBase {
        RadixBase::new(radices.to_vec()).unwrap()
    }

    fn bases() -> Vec<RadixBase> {
        vec![
            base(&[4, 2, 3]),
            base(&[2, 2, 2, 2]),
            base(&[5]),
            base(&[3, 3, 3]),
            base(&[2, 5, 2]),
            base(&[7, 2]),
        ]
    }

    #[test]
    fn walk_reproduces_f_l_at_every_index() {
        for b in bases() {
            let walk = SnakeWalk::new(b.clone());
            assert_eq!(walk.len() as u64, b.size());
            for step in walk {
                assert_eq!(
                    step.coord,
                    f_l(&b, step.index),
                    "base {b}, x = {}",
                    step.index
                );
            }
        }
    }

    #[test]
    fn every_step_moves_exactly_one_dimension_by_one() {
        for b in bases() {
            let steps: Vec<SnakeStep> = SnakeWalk::new(b.clone()).collect();
            assert_eq!(steps[0].moved, None);
            for window in steps.windows(2) {
                let (previous, current) = (&window[0], &window[1]);
                let (dim, direction) = current.moved.expect("every later step reports a move");
                // The reported move reconstructs the coordinate change.
                let mut rebuilt = previous.coord;
                rebuilt.set(
                    dim,
                    (previous.coord.get(dim) as i64 + direction as i64) as u32,
                );
                assert_eq!(rebuilt, current.coord);
                // Unit spread in both metrics (Lemmas 11 and 12).
                assert_eq!(delta_m(&b, &previous.coord, &current.coord).unwrap(), 1);
                assert_eq!(delta_t(&b, &previous.coord, &current.coord).unwrap(), 1);
            }
        }
    }

    #[test]
    fn walk_visits_every_node_exactly_once() {
        for b in bases() {
            let mut seen = vec![false; b.size() as usize];
            for step in SnakeWalk::new(b.clone()) {
                let index = b.to_index(&step.coord).unwrap() as usize;
                assert!(!seen[index], "base {b}: node visited twice");
                seen[index] = true;
            }
            assert!(seen.into_iter().all(|v| v));
        }
    }

    #[test]
    fn size_hint_tracks_progress() {
        let b = base(&[3, 4]);
        let mut walk = SnakeWalk::new(b);
        assert_eq!(walk.size_hint(), (12, Some(12)));
        walk.next();
        walk.next();
        assert_eq!(walk.size_hint(), (10, Some(10)));
        assert_eq!(walk.remaining(), 10);
        assert_eq!(walk.count(), 10);
    }
}
