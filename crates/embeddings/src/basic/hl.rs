//! The cyclic sequence `h_L` (Definition 22).
//!
//! `h_L` marches through the `(l_1, l_2)`-planes of an `(l_1, …, l_d)`-mesh in
//! a forward pass (filling `l_1·l_2 − 1` nodes of each plane with `r_{L'}`)
//! followed by a backward pass (filling the last node of each plane). Its
//! cyclic sequence has unit δ_m-spread whenever `l_1` is even (Lemma 23) —
//! the Hamiltonian circuit of Corollary 25 — and unit δ_t-spread always
//! (Lemma 27), the Hamiltonian circuit of every torus (Corollary 29).

use mixedradix::{Digits, RadixBase};

use super::fl::f_l;
use super::rl::r_l;

/// Evaluates `h_L(x)` (Definition 22).
///
/// # Panics
///
/// Panics if `x >= n`.
pub fn h_l(base: &RadixBase, x: u64) -> Digits {
    let n = base.size();
    assert!(x < n, "h_L argument {x} out of range");
    let d = base.dim();
    match d {
        1 => {
            // h_L is the identity on rings.
            let mut out = Digits::zero(1).expect("dimension 1");
            out.set(0, x as u32);
            out
        }
        2 => r_l(base, x),
        _ => {
            let l_prime =
                RadixBase::new(vec![base.radix(0), base.radix(1)]).expect("two leading radices");
            let l_double =
                RadixBase::new(base.radices()[2..].to_vec()).expect("at least one trailing radix");
            let plane = l_prime.size(); // l_1 · l_2
            let m = l_double.size();
            let a = x / (plane - 1);
            let b = x % (plane - 1);
            if x < m * (plane - 1) {
                let head = if a.is_multiple_of(2) {
                    r_l(&l_prime, b)
                } else {
                    r_l(&l_prime, plane - b - 2)
                };
                head.concat(&f_l(&l_double, a)).expect("dimensions add up")
            } else {
                // Backward pass: the last node of each plane, planes visited
                // in reverse f_{L''} order.
                r_l(&l_prime, plane - 1)
                    .concat(&f_l(&l_double, n - x - 1))
                    .expect("dimensions add up")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixedradix::sequence::{FnSequence, RadixSequence};

    fn base(radices: &[u32]) -> RadixBase {
        RadixBase::new(radices.to_vec()).unwrap()
    }

    fn hl_sequence(b: &RadixBase) -> FnSequence<impl Fn(u64) -> Digits> {
        let inner = b.clone();
        FnSequence::new(b.clone(), b.size(), move |x| h_l(&inner, x))
    }

    #[test]
    fn h_l_is_bijective() {
        for radices in [
            vec![4u32, 2, 3],
            vec![2, 3, 3],
            vec![3, 3, 3],
            vec![2, 2, 2, 2],
            vec![4, 3],
            vec![5],
            vec![3, 2, 2, 3],
        ] {
            let b = base(&radices);
            assert!(hl_sequence(&b).is_bijection(), "h_L bijective for {b}");
        }
    }

    #[test]
    fn lemma_23_unit_cyclic_mesh_spread_when_l1_even() {
        for radices in [
            vec![4u32, 2, 3],
            vec![2, 3, 3],
            vec![2, 2, 2, 2],
            vec![4, 3],
            vec![6, 2, 2],
            vec![2, 5, 3],
            vec![4, 3, 2, 2],
        ] {
            let b = base(&radices);
            assert_eq!(
                hl_sequence(&b).cyclic_spread_mesh(),
                1,
                "cyclic δ_m-spread of h_L for {b}"
            );
        }
    }

    #[test]
    fn lemma_27_unit_cyclic_torus_spread_always() {
        for radices in [
            vec![4u32, 2, 3],
            vec![3, 3, 3],
            vec![5, 3],
            vec![3, 5, 7],
            vec![2, 2, 2],
            vec![9],
            vec![3, 3, 3, 3],
            vec![7, 2, 3],
        ] {
            let b = base(&radices);
            assert_eq!(
                hl_sequence(&b).cyclic_spread_torus(),
                1,
                "cyclic δ_t-spread of h_L for {b}"
            );
        }
    }

    #[test]
    fn dimension_one_is_the_identity() {
        let b = base(&[8]);
        for x in 0..8 {
            assert_eq!(h_l(&b, x).as_slice(), &[x as u32]);
        }
    }

    #[test]
    fn dimension_two_matches_r_l() {
        let b = base(&[4, 5]);
        for x in 0..b.size() {
            assert_eq!(h_l(&b, x), r_l(&b, x));
        }
    }

    #[test]
    fn forward_pass_then_backward_pass() {
        // For L = (4,2,3): planes of size 8, m = 3 planes; the forward pass
        // fills 7 nodes per plane (x < 21), the backward pass the last node of
        // each plane in reverse plane order (x = 21, 22, 23).
        let b = base(&[4, 2, 3]);
        // First forward element: plane 0, r_{(4,2)}(0) = (3,0), plane digit 0.
        assert_eq!(h_l(&b, 0).as_slice(), &[3, 0, 0]);
        // Last forward element of plane 0: r_{(4,2)}(6) = (2,1).
        assert_eq!(h_l(&b, 6).as_slice(), &[2, 1, 0]);
        // First element of plane 1 (odd plane: reversed inner order):
        // r_{(4,2)}(8 - 0 - 2) = r(6) = (2,1); plane f_{(3)}(1) = 1.
        assert_eq!(h_l(&b, 7).as_slice(), &[2, 1, 1]);
        // Backward pass: x = 21, 22, 23 fill r_{(4,2)}(7) = (3,1) in planes
        // f_{(3)}(2), f_{(3)}(1), f_{(3)}(0) = planes 2, 1, 0.
        assert_eq!(h_l(&b, 21).as_slice(), &[3, 1, 2]);
        assert_eq!(h_l(&b, 22).as_slice(), &[3, 1, 1]);
        assert_eq!(h_l(&b, 23).as_slice(), &[3, 1, 0]);
    }

    #[test]
    fn consecutive_images_are_mesh_neighbors_when_l1_even() {
        let b = base(&[4, 2, 3]);
        for x in 0..b.size() {
            let d = mixedradix::distance::delta_m(&b, &h_l(&b, x), &h_l(&b, (x + 1) % b.size()))
                .unwrap();
            assert_eq!(d, 1, "step {x}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let b = base(&[2, 2, 2]);
        let _ = h_l(&b, 8);
    }
}
