//! Multi-step embedding chains with per-step reporting.
//!
//! The paper repeatedly builds an embedding of `G` in `H` as a chain of
//! simpler embeddings through intermediate graphs — `G → H′ → H` for
//! increasing dimension (Section 4.1), `G → G′ → H′ → H` for general
//! reduction (Section 4.2.2), and `G = I₀ → I₁ → … → I_{u−v} = H` for square
//! graphs whose dimensions are not divisible (Theorem 51). The composed
//! [`Embedding`] hides the intermediates; an [`EmbeddingChain`] keeps them,
//! so that the examples and the `explab` sweep engine (whose `lab report`
//! subcommand regenerates the checked-in `EXPERIMENTS.md` at the repository
//! root) can report the dilation paid at every step and check it against the
//! multiplicative bound `dilation(chain) ≤ Π dilation(step)` — see
//! [`ChainReport`].

use topology::Grid;

use crate::auto::embed;
use crate::embedding::Embedding;
use crate::error::{EmbeddingError, Result};

/// One step of a chain, with the measurements the reports need.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainStep {
    /// The construction name of the step (e.g. `"π ∘ H_V"`).
    pub name: String,
    /// The step's guest graph, rendered (e.g. `"(4,2,3)-torus"`).
    pub guest: String,
    /// The step's host graph, rendered.
    pub host: String,
    /// The measured dilation of the step on its own.
    pub dilation: u64,
}

/// The structured per-step report of a chain: the measured dilation of every
/// step, the multiplicative bound their product implies, and whether the
/// composed embedding actually honors that bound. Consumers (trial records in
/// `explab`, the examples) read these fields instead of parsing ad-hoc
/// strings.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainReport {
    /// One entry per step of the chain, in order.
    pub steps: Vec<ChainStep>,
    /// `Π dilation(step)` — the upper bound the chain guarantees for the
    /// composed embedding.
    pub product_bound: u64,
    /// The measured dilation of the composed embedding.
    pub composed_dilation: u64,
}

impl ChainReport {
    /// Whether the composed embedding honors the multiplicative bound
    /// (`composed_dilation ≤ product_bound`). `false` would indicate a bug in
    /// a step construction or in composition, never a property of the inputs.
    pub fn within_bound(&self) -> bool {
        self.composed_dilation <= self.product_bound
    }
}

/// A chain of embeddings `G = G₀ → G₁ → … → G_k = H` whose composition is an
/// embedding of `G` in `H`.
#[derive(Clone, Debug)]
pub struct EmbeddingChain {
    steps: Vec<Embedding>,
}

impl EmbeddingChain {
    /// Builds a chain from explicit steps, checking that each step's host is
    /// the next step's guest.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::Unsupported`] if the chain is empty or the
    /// intermediate graphs do not line up.
    pub fn new(steps: Vec<Embedding>) -> Result<Self> {
        if steps.is_empty() {
            return Err(EmbeddingError::Unsupported {
                details: "an embedding chain needs at least one step".to_string(),
            });
        }
        for window in steps.windows(2) {
            if window[0].host() != window[1].guest() {
                return Err(EmbeddingError::Unsupported {
                    details: format!(
                        "chain steps do not line up: {} is followed by a step from {}",
                        window[0].host(),
                        window[1].guest()
                    ),
                });
            }
        }
        Ok(EmbeddingChain { steps })
    }

    /// Builds a chain from `guest`, through the listed intermediate graphs,
    /// to `host`, planning each leg with [`crate::auto::embed`].
    ///
    /// # Errors
    ///
    /// Propagates the planner's error for any leg the paper's constructions
    /// do not cover, and [`EmbeddingError::SizeMismatch`] if any graph in the
    /// chain differs in size.
    pub fn through(guest: &Grid, waypoints: &[Grid], host: &Grid) -> Result<Self> {
        let mut steps = Vec::with_capacity(waypoints.len() + 1);
        let mut current = guest.clone();
        for next in waypoints.iter().chain(std::iter::once(host)) {
            steps.push(embed(&current, next)?);
            current = next.clone();
        }
        EmbeddingChain::new(steps)
    }

    /// The steps of the chain, in order.
    pub fn steps(&self) -> &[Embedding] {
        &self.steps
    }

    /// The number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the chain has no steps (never true for a constructed chain).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The overall guest graph `G`.
    pub fn guest(&self) -> &Grid {
        self.steps.first().expect("chain is non-empty").guest()
    }

    /// The overall host graph `H`.
    pub fn host(&self) -> &Grid {
        self.steps.last().expect("chain is non-empty").host()
    }

    /// Composes the chain into a single embedding of [`Self::guest`] in
    /// [`Self::host`].
    ///
    /// # Errors
    ///
    /// Never fails for a chain constructed by [`EmbeddingChain::new`] or
    /// [`EmbeddingChain::through`]; the `Result` mirrors
    /// [`Embedding::compose`].
    pub fn compose(&self) -> Result<Embedding> {
        let mut composed = self.steps[0].clone();
        for step in &self.steps[1..] {
            composed = composed.compose(step)?;
        }
        Ok(composed)
    }

    /// The product of the per-step dilations — an upper bound on the dilation
    /// of the composed embedding, since a path of length `k` in an
    /// intermediate graph maps to a path of length at most `k · dilation` in
    /// the next graph.
    pub fn dilation_product_bound(&self) -> u64 {
        self.steps.iter().map(|step| step.dilation()).product()
    }

    /// Measures each step and the composition, and returns the structured
    /// [`ChainReport`] (per-step dilations plus the multiplicative bound
    /// check).
    pub fn report(&self) -> ChainReport {
        let steps: Vec<ChainStep> = self
            .steps
            .iter()
            .map(|step| ChainStep {
                name: step.name().to_string(),
                guest: step.guest().to_string(),
                host: step.host().to_string(),
                dilation: step.dilation(),
            })
            .collect();
        let composed_dilation = self
            .compose()
            .expect("a constructed chain always composes")
            .dilation();
        ChainReport {
            steps,
            product_bound: self.dilation_product_bound(),
            composed_dilation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn ring_to_mesh_to_higher_mesh_chain_composes_with_unit_dilation() {
        // ring(24) → (4,6)-mesh → (4,2,3)-mesh: both legs have unit dilation
        // and so does the composition.
        let ring = Grid::ring(24).unwrap();
        let mid = Grid::mesh(shape(&[4, 6]));
        let host = Grid::mesh(shape(&[4, 2, 3]));
        let chain = EmbeddingChain::through(&ring, &[mid], &host).unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.guest().size(), 24);
        assert_eq!(chain.host().shape().radices(), &[4, 2, 3]);

        let report = chain.report();
        assert_eq!(report.steps.len(), 2);
        assert!(report.steps.iter().all(|step| step.dilation == 1));
        assert_eq!(report.product_bound, 1);
        assert_eq!(report.composed_dilation, 1);
        assert!(report.within_bound());

        let composed = chain.compose().unwrap();
        assert!(composed.is_injective());
        assert_eq!(composed.dilation(), 1);
        assert_eq!(chain.dilation_product_bound(), 1);
    }

    #[test]
    fn composed_dilation_respects_the_product_bound() {
        // hypercube(16) → (4,4)-mesh → line(16): the second leg dominates.
        let guest = Grid::hypercube(4).unwrap();
        let mid = Grid::mesh(shape(&[4, 4]));
        let host = Grid::line(16).unwrap();
        let chain = EmbeddingChain::through(&guest, &[mid], &host).unwrap();
        let composed = chain.compose().unwrap();
        assert!(composed.is_injective());
        assert!(composed.dilation() <= chain.dilation_product_bound());
        let report = chain.report();
        assert!(report.steps.iter().any(|step| step.dilation > 1));
        assert_eq!(report.composed_dilation, composed.dilation());
        assert!(report.within_bound());
    }

    #[test]
    fn direct_and_chained_square_lowering_agree_on_the_guarantee() {
        // (4,4,4)-mesh → (8,8)-mesh directly, and via the same planner in a
        // one-step chain: the chain machinery must not change the measured
        // dilation.
        let guest = Grid::mesh(shape(&[4, 4, 4]));
        let host = Grid::mesh(shape(&[8, 8]));
        let direct = embed(&guest, &host).unwrap();
        let chain = EmbeddingChain::through(&guest, &[], &host).unwrap();
        let composed = chain.compose().unwrap();
        assert_eq!(composed.dilation(), direct.dilation());
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn empty_chains_are_rejected() {
        assert!(EmbeddingChain::new(Vec::new()).is_err());
    }

    #[test]
    fn misaligned_chains_are_rejected() {
        let a = Embedding::identity(Grid::ring(6).unwrap(), Grid::ring(6).unwrap()).unwrap();
        let b = Embedding::identity(Grid::line(6).unwrap(), Grid::line(6).unwrap()).unwrap();
        let err = EmbeddingChain::new(vec![a, b]).unwrap_err();
        assert!(matches!(err, EmbeddingError::Unsupported { .. }));
    }

    #[test]
    fn through_propagates_planner_errors() {
        // Mismatched sizes on the second leg.
        let guest = Grid::ring(8).unwrap();
        let waypoint = Grid::ring(8).unwrap();
        let host = Grid::line(9).unwrap();
        assert!(EmbeddingChain::through(&guest, &[waypoint], &host).is_err());
    }
}
