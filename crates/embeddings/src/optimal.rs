//! Known optimal dilation costs from the literature, used in Section 5 of the
//! paper to calibrate the square-graph embeddings, plus the appendix's
//! analysis of Harper's hypercube-in-line bound.
//!
//! | Instance | Optimal dilation | Source |
//! |---|---|---|
//! | `(ℓ,ℓ)`-mesh in a line | `ℓ` | FitzGerald 1974 |
//! | `(ℓ,ℓ)`-torus in a ring | `ℓ` | Ma & Narahari 1986 |
//! | `(ℓ,ℓ,ℓ)`-mesh in a line | `⌊3ℓ²/4 + ℓ/2⌋` | FitzGerald 1974 |
//! | hypercube of size `2^d` in a line | `Σ_{k=0}^{d−1} C(k, ⌊k/2⌋)` | Harper 1966 |
//!
//! The appendix shows that Harper's sum equals `ε_{d−1}·2^{d−1}` with
//! `ε_0 = ε_1 = ε_2 = 1` and `ε` strictly decreasing from `d ≥ 3`, so the
//! paper's hypercube-in-line dilation `2^{d−1}` is optimal only up to the
//! (slowly growing) factor `1/ε_{d−1}`.

/// Exact binomial coefficient `C(n, k)` in `u128` (panics on overflow, which
/// does not occur for the `n ≤ 128` used here).
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result * (n - i) as u128 / (i + 1) as u128;
    }
    result
}

/// Optimal dilation of embedding an `(ℓ,ℓ)`-mesh in a line of the same size
/// (FitzGerald 1974): `ℓ`.
pub fn optimal_square_mesh_in_line(ell: u64) -> u64 {
    ell
}

/// Optimal dilation of embedding an `(ℓ,ℓ)`-torus in a ring of the same size
/// (Ma & Narahari 1986): `ℓ`.
pub fn optimal_square_torus_in_ring(ell: u64) -> u64 {
    ell
}

/// Optimal dilation of embedding an `(ℓ,ℓ,ℓ)`-mesh in a line of the same size
/// (FitzGerald 1974): `⌊3ℓ²/4 + ℓ/2⌋`.
pub fn optimal_cube_mesh_in_line(ell: u64) -> u64 {
    (3 * ell * ell) / 4 + ell / 2
}

/// Optimal dilation of embedding a hypercube of size `2^d` in a line of the
/// same size (Harper 1966): `Σ_{k=0}^{d−1} C(k, ⌊k/2⌋)`.
pub fn optimal_hypercube_in_line(d: u32) -> u128 {
    (0..d as u64).map(|k| binomial(k, k / 2)).sum()
}

/// The dilation of the paper's embedding of a hypercube of size `2^d` in a
/// line: `2^{d−1}` (Corollary 49 with `m = 2^{d−1}`… i.e. `max m_i / 2`).
pub fn paper_hypercube_in_line(d: u32) -> u128 {
    1u128 << (d - 1)
}

/// The appendix's `ε_d` sequence: `ε_d = (Σ_{k=0}^{d} C(k, ⌊k/2⌋)) / 2^d`,
/// so Harper's optimum equals `ε_{d−1}·2^{d−1}`.
pub fn epsilon(d: u32) -> f64 {
    let sum: u128 = (0..=d as u64).map(|k| binomial(k, k / 2)).sum();
    sum as f64 / (1u128 << d) as f64
}

/// The appendix's `C_k` product: `Π (1 − 1/(2j+2))` over the first
/// `⌊(k)/2⌋`-ish terms (even/odd split as in the appendix). Used to verify the
/// recurrence `ε_m = (ε_{m−1} + C_{m−1})/2`.
pub fn c_k(k: u32) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k.is_multiple_of(2) {
        // k even: C_k = Π_{j=1}^{k/2} (1 − 1/(2j + 2)).
        (1..=k / 2)
            .map(|j| 1.0 - 1.0 / (2.0 * j as f64 + 2.0))
            .product()
    } else {
        // k odd: C_k = Π_{j=2}^{(k+1)/2} (1 − 1/(2j)).
        (2..=k.div_ceil(2))
            .map(|j| 1.0 - 1.0 / (2.0 * j as f64))
            .product()
    }
}

/// The ratio between the paper's hypercube-in-line dilation and Harper's
/// optimum, `1/ε_{d−1}`.
pub fn hypercube_in_line_ratio(d: u32) -> f64 {
    paper_hypercube_in_line(d) as f64 / optimal_hypercube_in_line(d) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomials() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(10, 5), 252);
        assert_eq!(binomial(3, 7), 0);
        assert_eq!(binomial(64, 32), 1_832_624_140_942_590_534);
    }

    #[test]
    fn harper_small_values() {
        // d = 1: C(0,0) = 1. d = 2: 1 + 1 = 2. d = 3: 1 + 1 + 2 = 4.
        // d = 4: + C(3,1) = 3 -> 7. d = 5: + C(4,2) = 6 -> 13.
        assert_eq!(optimal_hypercube_in_line(1), 1);
        assert_eq!(optimal_hypercube_in_line(2), 2);
        assert_eq!(optimal_hypercube_in_line(3), 4);
        assert_eq!(optimal_hypercube_in_line(4), 7);
        assert_eq!(optimal_hypercube_in_line(5), 13);
    }

    #[test]
    fn paper_matches_harper_exactly_up_to_dimension_three() {
        // "our embedding is truly optimal for 1 ≤ d ≤ 3."
        for d in 1..=3 {
            assert_eq!(
                paper_hypercube_in_line(d),
                optimal_hypercube_in_line(d),
                "dimension {d}"
            );
        }
        // Strictly worse afterwards.
        for d in 4..=20 {
            assert!(paper_hypercube_in_line(d) > optimal_hypercube_in_line(d));
        }
    }

    #[test]
    fn epsilon_is_one_up_to_two_then_strictly_decreasing() {
        assert_eq!(epsilon(0), 1.0);
        assert_eq!(epsilon(1), 1.0);
        assert_eq!(epsilon(2), 1.0);
        let mut previous = epsilon(2);
        for d in 3..=30 {
            let value = epsilon(d);
            assert!(
                value < previous,
                "ε_{d} = {value} is not smaller than ε_{} = {previous}",
                d - 1
            );
            assert!(value > 0.0);
            previous = value;
        }
    }

    #[test]
    fn harper_sum_equals_epsilon_times_power_of_two() {
        for d in 1..=25u32 {
            let lhs = optimal_hypercube_in_line(d) as f64;
            let rhs = epsilon(d - 1) * (1u128 << (d - 1)) as f64;
            assert!((lhs - rhs).abs() < 1e-6 * lhs.max(1.0), "dimension {d}");
        }
    }

    #[test]
    fn ratio_grows_with_dimension_and_is_unbounded_in_spirit() {
        // The ratio 1/ε_{d−1} is increasing in d for d > 3.
        let mut previous = hypercube_in_line_ratio(4);
        assert!(previous > 1.0);
        for d in 5..=25 {
            let ratio = hypercube_in_line_ratio(d);
            assert!(ratio > previous, "ratio at dimension {d}");
            previous = ratio;
        }
        // For d <= 3 the ratio is exactly 1.
        for d in 1..=3 {
            assert!((hypercube_in_line_ratio(d) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fitzgerald_and_ma_narahari_values() {
        assert_eq!(optimal_square_mesh_in_line(5), 5);
        assert_eq!(optimal_square_torus_in_ring(8), 8);
        // ⌊3·16/4 + 4/2⌋ = 12 + 2 = 14 for ℓ = 4.
        assert_eq!(optimal_cube_mesh_in_line(4), 14);
        // ℓ = 3: ⌊27/4⌋ + 1 = 6 + 1 = 7.
        assert_eq!(optimal_cube_mesh_in_line(3), 7);
    }

    #[test]
    fn c_k_products_are_in_unit_interval_and_decreasing() {
        let mut previous = c_k(0);
        assert_eq!(previous, 1.0);
        for k in 1..=20 {
            let value = c_k(k);
            assert!(value > 0.0 && value <= 1.0);
            assert!(value <= previous + 1e-12, "C_{k} increased");
            previous = value;
        }
    }

    #[test]
    fn appendix_recurrence_holds() {
        // ε_m = (ε_{m−1} + C_{m−1}) / 2 for m ≥ 3.
        for m in 3..=20u32 {
            let lhs = epsilon(m);
            let rhs = (epsilon(m - 1) + c_k(m - 1)) / 2.0;
            assert!(
                (lhs - rhs).abs() < 1e-9,
                "recurrence fails at m = {m}: {lhs} vs {rhs}"
            );
        }
    }
}
