//! Dilation-minimizing embeddings among toruses and meshes.
//!
//! This crate implements the constructions of *Eva Ma and Lixin Tao,
//! "Embeddings Among Toruses and Meshes"* (ICPP 1987; UPenn TR MS-CIS-88-63):
//! injective mappings between toruses, meshes, rings, lines and hypercubes of
//! equal size that minimize (or provably approach) the **dilation cost** —
//! the maximum host distance between images of adjacent guest nodes.
//!
//! # Module map
//!
//! * [`basic`] — Section 3: a line or ring into a mesh or torus
//!   (`f_L`, `t_n`, `g_L`, `r_L`, `h_L`).
//! * [`same_shape`] — Lemma 36: equal shapes, the `T_L` map.
//! * [`expansion`] / [`increase`] — Section 4.1: increasing dimension
//!   (`F_V`, `G_V`, `H_V`, Theorems 32–33).
//! * [`reduction`] — Section 4.2.1: simple reduction (`U_V`, Theorem 39,
//!   Corollary 40).
//! * [`general_reduction`] — Section 4.2.2: general reduction via supernodes
//!   (`F′_S`, `G′_S`, `G″_S`, Theorem 43).
//! * [`square`] — Section 5: square graphs (Theorems 48, 51, 52, 53).
//! * [`lower_bound`] — Theorem 47's dilation lower bound, plus Tang's exact
//!   minimum-wirelength bound for hypercubes in toruses and meshes
//!   (arXiv:2302.13237) — the crate's second analytic target.
//! * [`optimal`] — known optimal costs (FitzGerald, Harper, Ma–Narahari) and
//!   the appendix's `ε_d` analysis.
//! * [`exhaustive`] — branch-and-bound optimal dilation on tiny instances,
//!   used to cross-check optimality claims.
//! * [`auto`] — the planner: [`auto::embed`] picks the right construction for
//!   an arbitrary pair.
//! * [`verify`] — independent (parallel) measurement of dilation and
//!   injectivity on the batched allocation-free edge sweep
//!   ([`Embedding::for_each_edge_mapped`]).
//! * [`congestion`] — edge congestion under dimension-ordered routing (the
//!   next-hop rule shared with `netsim` via `topology::routing`), a
//!   library-level extension of the paper's cost model.
//! * [`metrics`] — a one-stop [`metrics::EmbeddingMetrics`] quality report
//!   (dilation, distribution, congestion, prediction, lower bound).
//! * [`optim`] — seeded local-search / simulated-annealing refinement of any
//!   embedding's placement table under pluggable, incrementally-evaluated
//!   objectives (max congestion, average dilation, weighted wirelength, …).
//! * [`plan`] — Plan-as-value: serializable embedding descriptions (graph
//!   pair, construction, dilation, optional explicit table) with a one-line
//!   text format, rebuilt into live embeddings by [`Plan::to_embedding`].
//! * [`chain`] — multi-step embedding chains with per-step dilation reports.
//! * [`paper_examples`] — the paper's worked instances (Figures 1–12,
//!   Definitions 30 and 41) as reusable constructors.
//!
//! # Example
//!
//! ```
//! use embeddings::auto::{embed, predicted_dilation};
//! use topology::{Grid, Shape};
//!
//! // Embed a (4,2,3)-torus in a (4,6)-mesh of the same size.
//! let guest = Grid::torus(Shape::new(vec![4, 2, 3]).unwrap());
//! let host = Grid::mesh(Shape::new(vec![4, 6]).unwrap());
//! let embedding = embed(&guest, &host).unwrap();
//! assert!(embedding.dilation() <= predicted_dilation(&guest, &host).unwrap());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod auto;
pub mod basic;
pub mod chain;
pub mod congestion;
pub mod embedding;
pub mod error;
pub mod exhaustive;
pub mod expansion;
pub mod general_reduction;
pub mod increase;
pub mod lower_bound;
pub mod metrics;
pub mod optim;
pub mod optimal;
pub mod paper_examples;
pub mod plan;
pub mod reduction;
pub mod same_shape;
pub mod square;
pub mod verify;

pub use embedding::Embedding;
pub use error::{EmbeddingError, Result};
pub use plan::{Plan, PlanError};

/// Commonly used items.
pub mod prelude {
    pub use crate::auto::{embed, embed_with_budget, predicted_dilation, TieBreakBudget};
    pub use crate::basic::{embed_line_in, embed_ring_in};
    pub use crate::chain::{ChainReport, ChainStep, EmbeddingChain};
    pub use crate::congestion::{
        congestion, congestion_parallel, congestion_sequential, CongestionReport,
    };
    pub use crate::embedding::Embedding;
    pub use crate::error::EmbeddingError;
    pub use crate::expansion::{find_expansion_factor, ExpansionFactor};
    pub use crate::general_reduction::{embed_general_reduction, GeneralReduction};
    pub use crate::increase::embed_increasing;
    pub use crate::lower_bound::{dilation_lower_bound, wirelength_lower_bound};
    pub use crate::metrics::EmbeddingMetrics;
    pub use crate::optim::parallel::{optimize_sharded, ShardedConfig, ShardedOutcome};
    pub use crate::optim::{
        CongestionObjective, Cost, DilationObjective, Objective, OptimOutcome, OptimReport,
        Optimizer, OptimizerConfig, WirelengthObjective,
    };
    pub use crate::plan::{format_grid_spec, parse_grid_spec, Plan, PlanError};
    pub use crate::reduction::embed_simple_reduction;
    pub use crate::same_shape::embed_same_shape;
    pub use crate::square::embed_square;
    pub use crate::verify::{verify, VerificationReport};
}
