//! Embeddings among square toruses and square meshes (Section 5,
//! Theorems 48, 51, 52 and 53).
//!
//! When both graphs are square (all dimensions of equal length) an embedding
//! can always be built from the Section 4 constructions:
//!
//! * **Lowering dimension** (`c < d`): simple reduction when `c | d`
//!   (Theorem 48), otherwise a chain of general reductions through
//!   intermediate graphs whose shapes interpolate between the two
//!   (Theorem 51). Dilation `ℓ^{(d−c)/c}`, doubled for a (non-hypercube)
//!   torus into a mesh; optimal to within a constant for fixed `d`, `c`
//!   (Theorem 47).
//! * **Increasing dimension** (`d < c`): a single expansion when `d | c`
//!   (Theorem 52, optimal), otherwise an expansion into an intermediate
//!   square mesh followed by a square lowering chain (Theorem 53), with
//!   dilation `ℓ^{(d−a)/c}` (`a = gcd(d, c)`), doubled for an odd-size torus
//!   into a mesh.

use topology::{GraphKind, Grid, Shape};

use crate::embedding::Embedding;
use crate::error::{EmbeddingError, Result};
use crate::general_reduction::{embed_general_reduction_with, GeneralReduction};
use crate::increase::embed_increasing;
use crate::reduction::embed_simple_reduction;
use crate::same_shape::{embed_same_shape, predicted_dilation_same_shape};

/// Greatest common divisor.
fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The exact integer `v`-th root of `x`, if `x` is a perfect `v`-th power.
fn integer_root(x: u64, v: u32) -> Option<u64> {
    if v == 0 {
        return None;
    }
    if v == 1 || x <= 1 {
        return Some(x);
    }
    let mut r = (x as f64).powf(1.0 / v as f64).round() as u64;
    // Correct floating-point error by scanning the neighborhood.
    while r > 1 && !matches!(r.checked_pow(v), Some(p) if p <= x) {
        r -= 1;
    }
    while matches!(r.checked_pow(v), Some(p) if p < x) {
        r += 1;
    }
    if r.checked_pow(v) == Some(x) {
        Some(r)
    } else {
        None
    }
}

/// Integer power with overflow checking.
fn checked_pow(base: u64, exp: u32) -> Result<u64> {
    base.checked_pow(exp).ok_or(EmbeddingError::TooLarge {
        size: base,
        limit: u64::MAX,
    })
}

fn require_square_pair(guest: &Grid, host: &Grid) -> Result<()> {
    if guest.size() != host.size() {
        return Err(EmbeddingError::SizeMismatch {
            guest: guest.size(),
            host: host.size(),
        });
    }
    if !guest.is_square() || !host.is_square() {
        return Err(EmbeddingError::ConditionNotSatisfied {
            condition: "square shapes",
            details: format!(
                "both graphs must be square, got {} and {}",
                guest.shape(),
                host.shape()
            ),
        });
    }
    Ok(())
}

/// The dilation cost guaranteed by Theorems 48, 51, 52 and 53 for
/// [`embed_square`].
///
/// # Errors
///
/// Returns an error if the graphs are not square or not of the same size.
pub fn predicted_dilation_square(guest: &Grid, host: &Grid) -> Result<u64> {
    require_square_pair(guest, host)?;
    let d = guest.dim();
    let c = host.dim();
    let ell = guest.shape().radix(0) as u64;
    let torus_into_mesh = guest.is_torus() && host.is_mesh() && !guest.is_hypercube();
    if d == c {
        return Ok(predicted_dilation_same_shape(guest, host));
    }
    if d > c {
        // Lowering: ℓ^{(d−c)/c}, doubled for torus → mesh.
        let a = gcd(d, c);
        let (u, v) = (d / a, c / a);
        let r = integer_root(ell, v as u32).ok_or(EmbeddingError::ConditionNotSatisfied {
            condition: "square sizes",
            details: format!("{ell} is not a perfect {v}-th power"),
        })?;
        let base = checked_pow(r, (u - v) as u32)?;
        return Ok(if torus_into_mesh { 2 * base } else { base });
    }
    // Increasing dimension.
    if c.is_multiple_of(d) {
        // Theorem 52.
        return Ok(if torus_into_mesh && guest.size() % 2 == 1 {
            2
        } else {
            1
        });
    }
    // Theorem 53: ℓ^{(d−a)/c} = r^{u−1}, doubled for an odd-size torus into a
    // mesh.
    let a = gcd(d, c);
    let (u, v) = (d / a, c / a);
    let r = integer_root(ell, v as u32).ok_or(EmbeddingError::ConditionNotSatisfied {
        condition: "square sizes",
        details: format!("{ell} is not a perfect {v}-th power"),
    })?;
    let base = checked_pow(r, (u - 1) as u32)?;
    Ok(if torus_into_mesh && guest.size() % 2 == 1 {
        2 * base
    } else {
        base
    })
}

/// Embeds a square `guest` in a square `host` of the same size
/// (Theorems 48, 51, 52, 53).
///
/// # Errors
///
/// Returns an error if the graphs are not square, not of the same size, or a
/// needed integer root does not exist (impossible for genuinely equal sizes).
pub fn embed_square(guest: &Grid, host: &Grid) -> Result<Embedding> {
    require_square_pair(guest, host)?;
    let d = guest.dim();
    let c = host.dim();
    if d == c {
        return embed_same_shape(guest, host);
    }
    if d > c {
        if d.is_multiple_of(c) {
            // Theorem 48: the square host shape is a simple reduction of the
            // square guest shape.
            return embed_simple_reduction(guest, host);
        }
        return embed_square_lowering_chain(guest, host);
    }
    // Increasing dimension.
    if c.is_multiple_of(d) {
        // Theorem 52: the host shape is an expansion of the guest shape.
        return embed_increasing(guest, host);
    }
    embed_square_increasing_via_intermediate(guest, host)
}

/// Theorem 51: a chain of general reductions through intermediate square-ish
/// graphs, each step lowering the dimension by `a = gcd(d, c)` and multiplying
/// `a·v` of the dimension lengths by `ℓ^{1/v}`.
fn embed_square_lowering_chain(guest: &Grid, host: &Grid) -> Result<Embedding> {
    let d = guest.dim();
    let c = host.dim();
    let ell = guest.shape().radix(0);
    let a = gcd(d, c);
    let (u, v) = (d / a, c / a);
    let r = integer_root(ell as u64, v as u32).ok_or(EmbeddingError::ConditionNotSatisfied {
        condition: "square sizes",
        details: format!("{ell} is not a perfect {v}-th power"),
    })? as u32;

    // Shape of the intermediate graph I_k: a·v components of ℓ·r^k and
    // a·(u−v−k) components of ℓ.
    let intermediate_shape = |k: usize| -> Result<Shape> {
        let big = (ell as u64) * checked_pow(r as u64, k as u32)?;
        let big = u32::try_from(big).map_err(|_| EmbeddingError::TooLarge {
            size: big,
            limit: u32::MAX as u64,
        })?;
        let mut radices = vec![big; a * v];
        radices.extend(std::iter::repeat_n(ell, a * (u - v - k)));
        Ok(Shape::new(radices)?)
    };

    // Graph kinds along the chain: all meshes for a mesh guest; all toruses
    // for a torus guest with a torus host; toruses with a final mesh for a
    // torus guest with a mesh host.
    let kind_of = |k: usize| -> GraphKind {
        if guest.is_mesh() || guest.is_hypercube() {
            GraphKind::Mesh
        } else if host.is_torus() {
            GraphKind::Torus
        } else if k == u - v {
            GraphKind::Mesh
        } else {
            GraphKind::Torus
        }
    };

    let mut chain: Option<Embedding> = None;
    let mut current = guest.clone();
    for k in 0..(u - v) {
        let next_shape = intermediate_shape(k + 1)?;
        let next = if k + 1 == u - v {
            host.clone()
        } else {
            Grid::new(kind_of(k + 1), next_shape)
        };
        // The general-reduction witness for I_k → I_{k+1}: the multiplier
        // sublist is `a` of the length-ℓ dimensions, each factored into `v`
        // factors of r; the multiplicant sublist is everything else, with the
        // a·v large components first (they are the ones multiplied).
        let big = current.shape().max_radix();
        let mut multiplicant = vec![big; a * v];
        multiplicant.extend(std::iter::repeat_n(ell, a * (u - v - k - 1)));
        let multiplier = vec![ell; a];
        let s_lists = vec![vec![r; v]; a];
        let witness = GeneralReduction::new(multiplicant, multiplier, s_lists)?;
        let step = embed_general_reduction_with(&current, &next, &witness)?;
        chain = Some(match chain {
            None => step,
            Some(prev) => prev.compose(&step)?,
        });
        current = next;
    }
    let chain = chain.ok_or(EmbeddingError::Unsupported {
        details: "empty lowering chain".into(),
    })?;
    Ok(chain.with_name(format!("Theorem 51 chain ({} steps)", u - v)))
}

/// Theorem 53: expand into an intermediate square mesh of dimension `v·d` and
/// side `ℓ^{1/v}`, then lower it into the host with the Theorem 48/51
/// machinery.
fn embed_square_increasing_via_intermediate(guest: &Grid, host: &Grid) -> Result<Embedding> {
    let d = guest.dim();
    let c = host.dim();
    let ell = guest.shape().radix(0);
    let a = gcd(d, c);
    let v = c / a;
    let r = integer_root(ell as u64, v as u32).ok_or(EmbeddingError::ConditionNotSatisfied {
        condition: "square sizes",
        details: format!("{ell} is not a perfect {v}-th power"),
    })? as u32;
    // The intermediate graph G′ is a mesh in the paper's exposition, but for
    // a torus guest with a torus host it must stay a torus: the expansion
    // G → G′ then has unit dilation for any parity (Theorem 32(ii)) and the
    // square lowering G′ → H pays no torus-into-mesh doubling, matching the
    // `ℓ^{(d−a)/c}` cost the theorem claims for that case.
    let intermediate_shape = Shape::square(r, v * d)?;
    let intermediate = if guest.is_torus() && host.is_torus() && !guest.is_hypercube() {
        Grid::torus(intermediate_shape)
    } else {
        Grid::mesh(intermediate_shape)
    };
    let first = embed_increasing(guest, &intermediate)?;
    let second = embed_square(&intermediate, host)?;
    let composed = first.compose(&second)?;
    Ok(composed.with_name("Theorem 53 (expand, then reduce)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_grid(kind: GraphKind, ell: u32, dim: usize) -> Grid {
        Grid::new(kind, Shape::square(ell, dim).unwrap())
    }

    fn check(guest: Grid, host: Grid, expected: u64, exact: bool) {
        let predicted = predicted_dilation_square(&guest, &host).unwrap();
        assert_eq!(predicted, expected, "prediction for {guest} -> {host}");
        let e = embed_square(&guest, &host).unwrap();
        assert!(e.is_injective(), "injective for {guest} -> {host}");
        let measured = e.dilation();
        if exact {
            assert_eq!(measured, expected, "dilation for {guest} -> {host}");
        } else {
            assert!(
                measured <= expected,
                "dilation {measured} exceeds bound {expected} for {guest} -> {host}"
            );
        }
    }

    #[test]
    fn integer_root_handles_exact_and_inexact_cases() {
        assert_eq!(integer_root(27, 3), Some(3));
        assert_eq!(integer_root(64, 2), Some(8));
        assert_eq!(integer_root(64, 3), Some(4));
        assert_eq!(integer_root(10, 2), None);
        assert_eq!(integer_root(1, 5), Some(1));
        assert_eq!(integer_root(7, 1), Some(7));
        assert_eq!(integer_root(5, 0), None);
        // Large perfect powers near floating-point rounding territory.
        assert_eq!(integer_root(10_000_000_000_000_000, 2), Some(100_000_000));
    }

    #[test]
    fn theorem_48_divisible_lowering() {
        // (4,4)-mesh into a 16-node line: dilation 4^{(2-1)/1} = 4.
        check(
            square_grid(GraphKind::Mesh, 4, 2),
            Grid::line(16).unwrap(),
            4,
            false,
        );
        // (4,4)-torus into a 16-node ring: dilation 4.
        check(
            square_grid(GraphKind::Torus, 4, 2),
            Grid::ring(16).unwrap(),
            4,
            false,
        );
        // (4,4)-torus into a 16-node line: dilation 8.
        check(
            square_grid(GraphKind::Torus, 4, 2),
            Grid::line(16).unwrap(),
            8,
            false,
        );
        // (2,2,2,2)-mesh into a (4,4)-mesh: dilation 2.
        check(
            square_grid(GraphKind::Mesh, 2, 4),
            square_grid(GraphKind::Mesh, 4, 2),
            2,
            false,
        );
        // (3,3,3,3)-mesh into a (9,9)-mesh: dilation 3.
        check(
            square_grid(GraphKind::Mesh, 3, 4),
            square_grid(GraphKind::Mesh, 9, 2),
            3,
            false,
        );
    }

    #[test]
    fn theorem_51_non_divisible_lowering() {
        // d = 3, c = 2, ℓ = 4: dilation 4^{1/2} = 2 per step, one step, total 2.
        check(
            square_grid(GraphKind::Mesh, 4, 3),
            square_grid(GraphKind::Mesh, 8, 2),
            2,
            false,
        );
        // Torus guest into torus host: same bound.
        check(
            square_grid(GraphKind::Torus, 4, 3),
            square_grid(GraphKind::Torus, 8, 2),
            2,
            false,
        );
        // Torus guest into mesh host: doubled bound.
        check(
            square_grid(GraphKind::Torus, 4, 3),
            square_grid(GraphKind::Mesh, 8, 2),
            4,
            false,
        );
        // d = 5, c = 3, ℓ = 8: r = 2, dilation 2^{5-3} = 4.
        check(
            square_grid(GraphKind::Mesh, 8, 5),
            square_grid(GraphKind::Mesh, 32, 3),
            4,
            false,
        );
        // d = 5, c = 2, ℓ = 4: r = 2, dilation 2^3 = 8.
        check(
            square_grid(GraphKind::Mesh, 4, 5),
            square_grid(GraphKind::Mesh, 32, 2),
            8,
            false,
        );
    }

    #[test]
    fn theorem_52_divisible_increasing() {
        // (4,4)-mesh into (2,2,2,2)-hypercube: unit dilation.
        check(
            square_grid(GraphKind::Mesh, 4, 2),
            Grid::hypercube(4).unwrap(),
            1,
            true,
        );
        // (4,4)-torus into (2,2,2,2)-mesh: even size, unit dilation.
        check(
            square_grid(GraphKind::Torus, 4, 2),
            square_grid(GraphKind::Mesh, 2, 4),
            1,
            true,
        );
        // (9,9)-torus into (3,3,3,3)-mesh: odd size, dilation 2 (optimal).
        check(
            square_grid(GraphKind::Torus, 9, 2),
            square_grid(GraphKind::Mesh, 3, 4),
            2,
            true,
        );
        // (9,9)-torus into (3,3,3,3)-torus: unit dilation.
        check(
            square_grid(GraphKind::Torus, 9, 2),
            square_grid(GraphKind::Torus, 3, 4),
            1,
            true,
        );
        // A 64-node line into a (4,4,4)-mesh: unit dilation.
        check(
            Grid::line(64).unwrap(),
            square_grid(GraphKind::Mesh, 4, 3),
            1,
            true,
        );
    }

    #[test]
    fn theorem_53_non_divisible_increasing() {
        // d = 2, c = 3, ℓ = 8 (a = 1, v = 3, r = 2): dilation 8^{(2-1)/3} = 2.
        check(
            square_grid(GraphKind::Mesh, 8, 2),
            square_grid(GraphKind::Mesh, 4, 3),
            2,
            false,
        );
        // Same shapes, torus into torus.
        check(
            square_grid(GraphKind::Torus, 8, 2),
            square_grid(GraphKind::Torus, 4, 3),
            2,
            false,
        );
        // d = 3, c = 4, ℓ = 16 (a = 1, v = 4, r = 2): dilation 16^{2/4} = 4.
        check(
            square_grid(GraphKind::Mesh, 16, 3),
            square_grid(GraphKind::Mesh, 8, 4),
            4,
            false,
        );
        // Odd-size torus into a mesh doubles: ℓ = 27, d = 2, c = 3, r = 3,
        // dilation 2·27^{1/3} = 6.
        check(
            square_grid(GraphKind::Torus, 27, 2),
            square_grid(GraphKind::Mesh, 9, 3),
            6,
            false,
        );
        // But an odd-size torus into a *torus* host pays no doubling: the
        // intermediate graph stays a torus (regression test for the
        // Theorem 53 torus-to-torus case).
        check(
            square_grid(GraphKind::Torus, 27, 2),
            square_grid(GraphKind::Torus, 9, 3),
            3,
            false,
        );
    }

    #[test]
    fn equal_dimension_square_graphs_use_same_shape_embeddings() {
        check(
            square_grid(GraphKind::Torus, 3, 2),
            square_grid(GraphKind::Mesh, 3, 2),
            2,
            true,
        );
        check(
            square_grid(GraphKind::Mesh, 3, 2),
            square_grid(GraphKind::Torus, 3, 2),
            1,
            true,
        );
    }

    #[test]
    fn non_square_or_mismatched_inputs_are_rejected() {
        let square = square_grid(GraphKind::Mesh, 4, 2);
        let rectangular = Grid::mesh(Shape::new(vec![8, 2]).unwrap());
        assert!(matches!(
            embed_square(&square, &rectangular),
            Err(EmbeddingError::ConditionNotSatisfied { .. })
        ));
        let other_size = square_grid(GraphKind::Mesh, 5, 2);
        assert!(matches!(
            embed_square(&square, &other_size),
            Err(EmbeddingError::SizeMismatch { .. })
        ));
        assert!(predicted_dilation_square(&square, &rectangular).is_err());
    }

    #[test]
    fn corollary_49_hypercube_into_square_grids() {
        // A hypercube of size 2^6 into an (8,8)-mesh or torus: dilation 8/2 = 4.
        let hypercube = Grid::hypercube(6).unwrap();
        check(
            hypercube.clone(),
            square_grid(GraphKind::Mesh, 8, 2),
            4,
            false,
        );
        check(hypercube, square_grid(GraphKind::Torus, 8, 2), 4, false);
    }
}
