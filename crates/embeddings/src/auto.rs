//! The high-level planner: `embed(G, H)` picks the paper's construction for
//! an arbitrary pair of toruses/meshes of the same size.
//!
//! The decision procedure mirrors the structure of the paper:
//!
//! 1. dimension-1 guests → basic embeddings (Section 3);
//! 2. equal shapes (up to dimension order) → same-shape embeddings
//!    (Lemma 36), composed with a dimension permutation if needed;
//! 3. `dim G < dim H` → increasing-dimension embeddings when the shapes
//!    satisfy expansion (Theorem 32), else the square construction
//!    (Theorems 52/53) when both graphs are square;
//! 4. `dim G > dim H` → simple reduction (Theorem 39), general reduction
//!    (Theorem 43), or the square chain (Theorems 48/51), in that order.
//!
//! Pairs outside every case return [`EmbeddingError::Unsupported`] — exactly
//! the cases the paper leaves open.
//!
//! When a pair is covered by *more than one* construction with the same
//! predicted dilation (e.g. a hypercube into a square mesh satisfies both
//! the simple-reduction and the square conditions), [`embed`] keeps the
//! paper's fixed precedence. [`embed_with_budget`] instead spends a small,
//! seeded sharded-annealing budget on each tied candidate and returns the
//! construction whose placement *optimizes* better — the measured-objective
//! tie-break the optimizer subsystem makes affordable.

use std::sync::Arc;

use mixedradix::Permutation;
use topology::{Grid, Shape};

use crate::basic::{
    embed_line_in, embed_ring_in, predicted_line_dilation, predicted_ring_dilation,
};
use crate::embedding::Embedding;
use crate::error::{EmbeddingError, Result};
use crate::expansion::is_expansion;
use crate::general_reduction::{
    embed_general_reduction, find_general_reduction, predicted_dilation_general_reduction,
};
use crate::increase::{embed_increasing, predicted_dilation_increasing};
use crate::reduction::{
    embed_simple_reduction, is_simple_reduction, predicted_dilation_simple_reduction,
};
use crate::same_shape::{embed_same_shape, predicted_dilation_same_shape};
use crate::square::{embed_square, predicted_dilation_square};

/// Embeds `guest` in `host` using the construction the paper prescribes for
/// the pair, together with a guarantee on its dilation cost.
///
/// # Errors
///
/// * [`EmbeddingError::SizeMismatch`] if the graphs differ in size;
/// * [`EmbeddingError::Unsupported`] if the pair falls outside the cases the
///   paper covers (shapes satisfying neither expansion, reduction, equality,
///   nor squareness).
pub fn embed(guest: &Grid, host: &Grid) -> Result<Embedding> {
    if guest.size() != host.size() {
        return Err(EmbeddingError::SizeMismatch {
            guest: guest.size(),
            host: host.size(),
        });
    }

    // Dimension-1 guests: the basic embeddings of Section 3.
    if guest.dim() == 1 {
        return if guest.is_torus() && !guest.is_hypercube() {
            if host.dim() == 1 && guest.shape() == host.shape() {
                // Ring into ring (or the degenerate 2-node cases).
                embed_same_shape(guest, host)
            } else {
                embed_ring_in(host).map(|e| retarget_guest(e, guest))
            }
        } else {
            embed_line_in(host).map(|e| retarget_guest(e, guest))
        };
    }

    // Equal dimension: identical shapes or a permutation of dimensions.
    if guest.dim() == host.dim() {
        if guest.shape() == host.shape() {
            return embed_same_shape(guest, host);
        }
        if let Some(perm) = Permutation::mapping(guest.shape().radices(), host.shape().radices()) {
            // G -> G_perm (same node set, permuted dimension order) -> H.
            let mid = Grid::new(guest.kind(), host.shape().clone());
            let first = permute_dimensions(guest, &mid, &perm)?;
            let second = embed_same_shape(&mid, host)?;
            return first.compose(&second);
        }
        return Err(EmbeddingError::Unsupported {
            details: format!(
                "equal-dimension embedding of {} in {} is outside the paper's constructions",
                guest.shape(),
                host.shape()
            ),
        });
    }

    if guest.dim() < host.dim() {
        // Increasing dimension.
        if is_expansion(guest.shape(), host.shape()) {
            return embed_increasing(guest, host);
        }
        if guest.is_square() && host.is_square() {
            return embed_square(guest, host);
        }
        return Err(EmbeddingError::Unsupported {
            details: format!(
                "{} is not an expansion of {} and the graphs are not square",
                host.shape(),
                guest.shape()
            ),
        });
    }

    // Lowering dimension.
    if is_simple_reduction(guest.shape(), host.shape()) {
        return embed_simple_reduction(guest, host);
    }
    if find_general_reduction(guest.shape(), host.shape()).is_some() {
        return embed_general_reduction(guest, host);
    }
    if guest.is_square() && host.is_square() {
        return embed_square(guest, host);
    }
    Err(EmbeddingError::Unsupported {
        details: format!(
            "{} is neither a simple nor a general reduction of {} and the graphs are not square",
            host.shape(),
            guest.shape()
        ),
    })
}

/// The dilation cost [`embed`] guarantees for the pair, without constructing
/// the embedding.
///
/// # Errors
///
/// Same error cases as [`embed`].
pub fn predicted_dilation(guest: &Grid, host: &Grid) -> Result<u64> {
    if guest.size() != host.size() {
        return Err(EmbeddingError::SizeMismatch {
            guest: guest.size(),
            host: host.size(),
        });
    }
    if guest.dim() == 1 {
        return Ok(if guest.is_torus() && !guest.is_hypercube() {
            if host.dim() == 1 && guest.shape() == host.shape() {
                predicted_dilation_same_shape(guest, host)
            } else {
                predicted_ring_dilation(host)
            }
        } else {
            predicted_line_dilation(host)
        });
    }
    if guest.dim() == host.dim() {
        if Permutation::mapping(guest.shape().radices(), host.shape().radices()).is_some() {
            return Ok(predicted_dilation_same_shape(guest, host));
        }
        return Err(EmbeddingError::Unsupported {
            details: "equal-dimension shapes that are not permutations of each other".into(),
        });
    }
    if guest.dim() < host.dim() {
        if is_expansion(guest.shape(), host.shape()) {
            return predicted_dilation_increasing(guest, host);
        }
        if guest.is_square() && host.is_square() {
            return predicted_dilation_square(guest, host);
        }
        return Err(EmbeddingError::Unsupported {
            details: "increasing dimension without expansion or squareness".into(),
        });
    }
    if is_simple_reduction(guest.shape(), host.shape()) {
        return predicted_dilation_simple_reduction(guest, host);
    }
    if let Some(reduction) = find_general_reduction(guest.shape(), host.shape()) {
        return Ok(predicted_dilation_general_reduction(
            guest, host, &reduction,
        ));
    }
    if guest.is_square() && host.is_square() {
        return predicted_dilation_square(guest, host);
    }
    Err(EmbeddingError::Unsupported {
        details: "lowering dimension without reduction or squareness".into(),
    })
}

/// The optimizer budget [`embed_with_budget`] spends per tied construction:
/// a small, seeded, sharded annealing run under the congestion objective.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TieBreakBudget {
    /// Annealing steps per shard (keep small — the budget runs once per
    /// tied candidate).
    pub steps: u64,
    /// Independently-seeded walks per candidate (reduced to the best by
    /// [`crate::optim::parallel::optimize_sharded`]).
    pub shards: u32,
    /// The base seed; the tie-break is a pure function of
    /// `(guest, host, budget)`.
    pub seed: u64,
}

impl Default for TieBreakBudget {
    fn default() -> Self {
        TieBreakBudget {
            steps: 300,
            shards: 2,
            seed: 0,
        }
    }
}

/// Like [`embed`], but when several constructions cover the pair with the
/// same predicted dilation as the paper-precedence winner, refines each
/// tied candidate's placement with the `budget` and returns the
/// *constructive* embedding of the candidate that optimized to the
/// lexicographically best congestion cost (ties keep the paper's precedence
/// order). A pair without such a tie returns exactly what [`embed`] returns
/// — the budget can arbitrate between equally-guaranteed constructions but
/// never overrides the planner's choice.
///
/// With `budget = None`, or when at most one construction applies, this is
/// exactly [`embed`]. The returned embedding is always the unrefined
/// construction — its analytic dilation guarantee is untouched; callers who
/// also want the refined placement can re-run the optimizer on the result
/// (the tie-break is seeded, so the refinement reproduces bit-identically).
///
/// # Errors
///
/// Same error cases as [`embed`]. Pairs too large to materialize as a
/// placement table fall back to the paper's precedence instead of erroring.
pub fn embed_with_budget(
    guest: &Grid,
    host: &Grid,
    budget: Option<TieBreakBudget>,
) -> Result<Embedding> {
    use crate::optim::parallel::{optimize_sharded, ShardedConfig};
    use crate::optim::{CongestionObjective, Cost, OptimizerConfig};

    let Some(budget) = budget else {
        return embed(guest, host);
    };
    let candidates = tied_candidates(guest, host)?;
    let mut tied: Vec<Embedding> = match candidates {
        None => return embed(guest, host),
        Some(tied) => tied,
    };
    if tied.len() < 2 {
        return match tied.pop() {
            Some(only) => Ok(only),
            None => embed(guest, host),
        };
    }
    let config = ShardedConfig {
        base: OptimizerConfig {
            seed: budget.seed,
            steps: budget.steps,
            ..OptimizerConfig::default()
        },
        shards: budget.shards,
        workers: 0,
        ..ShardedConfig::default()
    };
    let mut best: Option<(Cost, usize)> = None;
    for index in 0..tied.len() {
        let sharded = match optimize_sharded(
            &tied[index],
            || CongestionObjective::new(guest, host),
            &config,
        ) {
            Ok(sharded) => sharded,
            // Too large to table-ize: the tie-break cannot run; keep the
            // paper's precedence (the first tied candidate).
            Err(EmbeddingError::TooLarge { .. }) => return Ok(tied.swap_remove(0)),
            Err(error) => return Err(error),
        };
        let cost = sharded.outcome.report.best;
        if best.is_none_or(|(best_cost, _)| cost < best_cost) {
            best = Some((cost, index));
        }
    }
    let (_, winner) = best.expect("at least two candidates were scored");
    Ok(tied.swap_remove(winner))
}

/// The constructions that apply to a dimension-changing pair, restricted to
/// those tying with the paper-precedence winner's predicted dilation (the
/// first applicable construction — exactly what [`embed`] returns), in the
/// paper's precedence order. A later candidate with a *different* prediction
/// is not a tie and is dropped, so a budget can only ever arbitrate between
/// equally-guaranteed constructions, never silently override the paper's
/// choice. Returns `None` for the regimes with a single prescribed
/// construction (dimension-1 guests and equal dimensions), where no
/// tie-break can arise.
///
/// # Errors
///
/// [`EmbeddingError::SizeMismatch`] on unequal sizes;
/// [`EmbeddingError::Unsupported`] when no construction applies.
fn tied_candidates(guest: &Grid, host: &Grid) -> Result<Option<Vec<Embedding>>> {
    if guest.size() != host.size() {
        return Err(EmbeddingError::SizeMismatch {
            guest: guest.size(),
            host: host.size(),
        });
    }
    if guest.dim() == 1 || guest.dim() == host.dim() {
        return Ok(None);
    }
    // (predicted dilation, construction) for every applicable case, in the
    // precedence order of `embed`.
    let mut candidates: Vec<(u64, Embedding)> = Vec::new();
    if guest.dim() < host.dim() {
        if is_expansion(guest.shape(), host.shape()) {
            candidates.push((
                predicted_dilation_increasing(guest, host)?,
                embed_increasing(guest, host)?,
            ));
        }
        if guest.is_square() && host.is_square() {
            candidates.push((
                predicted_dilation_square(guest, host)?,
                embed_square(guest, host)?,
            ));
        }
    } else {
        if is_simple_reduction(guest.shape(), host.shape()) {
            candidates.push((
                predicted_dilation_simple_reduction(guest, host)?,
                embed_simple_reduction(guest, host)?,
            ));
        }
        if let Some(reduction) = find_general_reduction(guest.shape(), host.shape()) {
            candidates.push((
                predicted_dilation_general_reduction(guest, host, &reduction),
                embed_general_reduction(guest, host)?,
            ));
        }
        if guest.is_square() && host.is_square() {
            candidates.push((
                predicted_dilation_square(guest, host)?,
                embed_square(guest, host)?,
            ));
        }
    }
    if candidates.is_empty() {
        // No candidate applied: defer to `embed`, which reports the exact
        // per-regime unsupported-pair message (and stays authoritative if
        // its coverage ever grows beyond this list).
        return Ok(None);
    }
    // Ties are measured against the precedence winner — the construction
    // `embed` would return — not the minimum over all candidates: a later
    // candidate with a lower prediction is a planner-precedence question,
    // not a tie for the optimizer to break.
    let reference = candidates[0].0;
    Ok(Some(
        candidates
            .into_iter()
            .filter(|(predicted, _)| *predicted == reference)
            .map(|(_, embedding)| embedding)
            .collect(),
    ))
}

/// Replaces the guest graph of `embedding` by an equal-size dimension-1 guest
/// of the caller's choosing (used so that `embed(ring, host)` reports the
/// caller's ring rather than the internally constructed one).
fn retarget_guest(embedding: Embedding, guest: &Grid) -> Embedding {
    // `embed_line_in` / `embed_ring_in` build their own guest of the same
    // size; substituting the caller's guest is sound because dimension-1
    // graphs of equal size and kind are identical.
    Embedding::new(
        guest.clone(),
        embedding.host().clone(),
        embedding.name().to_string(),
        Arc::new(move |x| embedding.map(x)),
    )
    .expect("sizes already checked")
}

/// Embeds `guest` in a graph of the same kind whose shape is `perm` applied
/// to the guest's shape: node `(x_1, …, x_d)` maps to `perm((x_1, …, x_d))`.
fn permute_dimensions(guest: &Grid, host: &Grid, perm: &Permutation) -> Result<Embedding> {
    let guest_shape: Shape = guest.shape().clone();
    let perm = perm.clone();
    // Sanity: the permuted guest shape must equal the host shape.
    if &guest_shape.permute(&perm)? != host.shape() {
        return Err(EmbeddingError::InvalidFactor {
            details: "permutation does not map the guest shape onto the host shape".into(),
        });
    }
    let p = perm.clone();
    Embedding::new(
        guest.clone(),
        host.clone(),
        "π (dimension permutation)",
        Arc::new(move |x| {
            let digits = guest_shape.to_digits(x).expect("index in range");
            p.apply_digits(&digits).expect("dimension matches")
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::GraphKind;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    fn check(guest: Grid, host: Grid) {
        let predicted = predicted_dilation(&guest, &host).unwrap();
        let e = embed(&guest, &host).unwrap();
        assert!(e.is_injective(), "injective for {guest} -> {host}");
        assert!(
            e.dilation() <= predicted,
            "dilation {} exceeds prediction {predicted} for {guest} -> {host} ({})",
            e.dilation(),
            e.name()
        );
    }

    #[test]
    fn planner_covers_basic_cases() {
        check(Grid::ring(24).unwrap(), Grid::mesh(shape(&[4, 2, 3])));
        check(Grid::ring(24).unwrap(), Grid::torus(shape(&[4, 2, 3])));
        check(Grid::line(24).unwrap(), Grid::mesh(shape(&[4, 2, 3])));
        check(Grid::ring(9).unwrap(), Grid::mesh(shape(&[3, 3])));
        check(Grid::line(8).unwrap(), Grid::hypercube(3).unwrap());
        check(Grid::ring(6).unwrap(), Grid::line(6).unwrap());
        check(Grid::ring(6).unwrap(), Grid::ring(6).unwrap());
        check(Grid::line(6).unwrap(), Grid::ring(6).unwrap());
    }

    #[test]
    fn planner_covers_equal_dimension_cases() {
        check(Grid::torus(shape(&[3, 4])), Grid::mesh(shape(&[3, 4])));
        check(Grid::torus(shape(&[3, 4])), Grid::mesh(shape(&[4, 3])));
        check(Grid::mesh(shape(&[3, 4])), Grid::torus(shape(&[4, 3])));
        check(Grid::mesh(shape(&[2, 6])), Grid::mesh(shape(&[6, 2])));
    }

    #[test]
    fn planner_covers_increasing_dimension_cases() {
        check(Grid::mesh(shape(&[4, 6])), Grid::mesh(shape(&[2, 2, 2, 3])));
        check(
            Grid::torus(shape(&[4, 6])),
            Grid::mesh(shape(&[2, 2, 2, 3])),
        );
        check(
            Grid::torus(shape(&[9, 15])),
            Grid::mesh(shape(&[3, 3, 3, 5])),
        );
        check(Grid::mesh(shape(&[8, 8])), Grid::hypercube(6).unwrap());
        // Square, non-expansion case (Theorem 53).
        check(
            Grid::new(GraphKind::Mesh, Shape::square(8, 2).unwrap()),
            Grid::new(GraphKind::Mesh, Shape::square(4, 3).unwrap()),
        );
    }

    #[test]
    fn planner_covers_lowering_dimension_cases() {
        check(Grid::mesh(shape(&[4, 2, 3])), Grid::mesh(shape(&[4, 6])));
        check(Grid::torus(shape(&[4, 2, 3])), Grid::mesh(shape(&[4, 6])));
        check(Grid::mesh(shape(&[3, 3, 6])), Grid::mesh(shape(&[6, 9])));
        check(Grid::hypercube(4).unwrap(), Grid::mesh(shape(&[4, 4])));
        check(Grid::hypercube(4).unwrap(), Grid::ring(16).unwrap());
        // Square chain (Theorem 51).
        check(
            Grid::new(GraphKind::Mesh, Shape::square(4, 3).unwrap()),
            Grid::new(GraphKind::Mesh, Shape::square(8, 2).unwrap()),
        );
    }

    #[test]
    fn planner_rejects_unsupported_pairs() {
        // Equal size, equal dimension, but shapes are not permutations.
        let a = Grid::mesh(shape(&[4, 9]));
        let b = Grid::mesh(shape(&[6, 6]));
        assert!(matches!(
            embed(&a, &b),
            Err(EmbeddingError::Unsupported { .. })
        ));
        assert!(predicted_dilation(&a, &b).is_err());
        // Size mismatch.
        let c = Grid::mesh(shape(&[2, 2]));
        assert!(matches!(
            embed(&c, &b),
            Err(EmbeddingError::SizeMismatch { .. })
        ));
        // Increasing dimension, not an expansion, not square.
        let d = Grid::mesh(shape(&[6, 6]));
        let e = Grid::mesh(shape(&[4, 3, 3]));
        assert!(matches!(
            embed(&d, &e),
            Err(EmbeddingError::Unsupported { .. })
        ));
        assert!(predicted_dilation(&d, &e).is_err());
    }

    #[test]
    fn ring_guest_reports_the_callers_graph() {
        let guest = Grid::ring(12).unwrap();
        let host = Grid::mesh(shape(&[4, 3]));
        let e = embed(&guest, &host).unwrap();
        assert!(e.guest().is_ring());
        assert_eq!(e.guest().size(), 12);
        assert_eq!(e.dilation(), 1);
    }

    #[test]
    fn tie_break_budget_is_deterministic_and_sound() {
        // hypercube(4) -> (4,4)-mesh satisfies both the simple-reduction and
        // the square conditions with the same predicted dilation — a genuine
        // tie the budget can arbitrate.
        let guest = Grid::hypercube(4).unwrap();
        let host = Grid::mesh(shape(&[4, 4]));
        let tied = tied_candidates(&guest, &host).unwrap().unwrap();
        assert!(tied.len() >= 2, "expected a tie, got {}", tied.len());

        let budget = Some(TieBreakBudget::default());
        let first = embed_with_budget(&guest, &host, budget).unwrap();
        let second = embed_with_budget(&guest, &host, budget).unwrap();
        assert_eq!(first.name(), second.name(), "seeded tie-break");
        assert!(first.is_injective());
        // The winner keeps the analytic guarantee of the tied minimum.
        let predicted = predicted_dilation(&guest, &host).unwrap();
        assert!(first.dilation() <= predicted);
        // The winner is one of the tied constructions.
        assert!(tied.iter().any(|c| c.name() == first.name()));
    }

    #[test]
    fn no_budget_means_plain_embed() {
        for (guest, host) in [
            (Grid::hypercube(4).unwrap(), Grid::mesh(shape(&[4, 4]))),
            (
                Grid::torus(shape(&[4, 6])),
                Grid::mesh(shape(&[2, 2, 2, 3])),
            ),
            (Grid::ring(24).unwrap(), Grid::mesh(shape(&[4, 2, 3]))),
        ] {
            let plain = embed(&guest, &host).unwrap();
            let unbudgeted = embed_with_budget(&guest, &host, None).unwrap();
            assert_eq!(plain.name(), unbudgeted.name());
        }
    }

    #[test]
    fn untied_pairs_ignore_the_budget() {
        // A pure expansion pair has a single applicable construction; the
        // budget must not change the planner's choice.
        let guest = Grid::torus(shape(&[4, 6]));
        let host = Grid::mesh(shape(&[2, 2, 2, 3]));
        let plain = embed(&guest, &host).unwrap();
        let budgeted = embed_with_budget(&guest, &host, Some(TieBreakBudget::default())).unwrap();
        assert_eq!(plain.name(), budgeted.name());
        // Unsupported pairs keep erroring with the budget too.
        let a = Grid::mesh(shape(&[6, 6]));
        let b = Grid::mesh(shape(&[4, 3, 3]));
        assert!(embed_with_budget(&a, &b, Some(TieBreakBudget::default())).is_err());
    }

    #[test]
    fn budget_never_overrides_the_precedence_winner_on_untied_pairs() {
        // Both simple and general reduction apply here, but with *different*
        // predicted dilations — that is a precedence question, not a tie,
        // and the budget must hand back exactly what `embed` chooses.
        let guest = Grid::torus(shape(&[6, 6, 4, 3, 3]));
        let host = Grid::mesh(shape(&[36, 6, 6]));
        let tied = tied_candidates(&guest, &host).unwrap().unwrap();
        assert_eq!(tied.len(), 1, "different predictions must not tie");
        let plain = embed(&guest, &host).unwrap();
        let budgeted = embed_with_budget(
            &guest,
            &host,
            Some(TieBreakBudget {
                steps: 20,
                shards: 2,
                seed: 0,
            }),
        )
        .unwrap();
        assert_eq!(plain.name(), budgeted.name());
    }

    #[test]
    fn dimension_permutation_embedding_is_exact() {
        let guest = Grid::mesh(shape(&[2, 6]));
        let host = Grid::mesh(shape(&[6, 2]));
        let e = embed(&guest, &host).unwrap();
        assert!(e.is_injective());
        assert_eq!(e.dilation(), 1);
    }

    #[test]
    fn predicted_dilation_matches_paper_table_for_selected_cases() {
        // A compact version of the paper's summary table.
        let cases: Vec<(Grid, Grid, u64)> = vec![
            (Grid::line(24).unwrap(), Grid::mesh(shape(&[4, 2, 3])), 1),
            (Grid::ring(24).unwrap(), Grid::mesh(shape(&[4, 2, 3])), 1),
            (Grid::ring(9).unwrap(), Grid::mesh(shape(&[3, 3])), 2),
            (Grid::ring(24).unwrap(), Grid::torus(shape(&[4, 2, 3])), 1),
            (
                Grid::torus(shape(&[9, 15])),
                Grid::mesh(shape(&[3, 3, 3, 5])),
                2,
            ),
            (
                Grid::torus(shape(&[4, 6])),
                Grid::torus(shape(&[2, 2, 2, 3])),
                1,
            ),
            (Grid::hypercube(4).unwrap(), Grid::mesh(shape(&[4, 4])), 2),
            (Grid::mesh(shape(&[3, 3, 6])), Grid::mesh(shape(&[6, 9])), 3),
        ];
        for (guest, host, expected) in cases {
            assert_eq!(
                predicted_dilation(&guest, &host).unwrap(),
                expected,
                "prediction for {guest} -> {host}"
            );
        }
    }
}
