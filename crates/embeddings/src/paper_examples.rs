//! The worked examples of the paper, as reusable constructors.
//!
//! Ma & Tao develop every construction around a handful of concrete
//! instances: the `(4,2,3)`-torus and `(4,2,3)`-mesh of Figures 1–2, the
//! `[9] → Ω_(3,3)` bijection of Figure 3, the `f_L`/`g_L`/`h_L` tables of
//! Figure 9, the `(4,6) → (2,2,2,3)` expansion of Figure 11, the
//! `(3,3,6)-mesh → (6,9)-mesh` supernode example of Figure 12, and the
//! expansion/reduction examples of Definitions 30 and 41. Tests, benchmarks
//! and examples all want these instances; this module names them once so the
//! paper reference lives next to the data.

use topology::{Grid, Shape};

use crate::error::Result;
use crate::expansion::ExpansionFactor;

/// The shape `(4, 2, 3)` used by the paper's running example (Figures 1, 2,
/// 4, 9 and 10).
pub fn running_example_shape() -> Shape {
    Shape::new(vec![4, 2, 3]).expect("static shape is valid")
}

/// The `(4,2,3)`-torus of Figure 1.
pub fn fig1_torus() -> Grid {
    Grid::torus(running_example_shape())
}

/// The `(4,2,3)`-mesh of Figure 2.
pub fn fig2_mesh() -> Grid {
    Grid::mesh(running_example_shape())
}

/// The node pair quoted below Figures 1–2: `(0,0,1)` and `(3,0,0)`, whose
/// distance is 2 in the torus and 4 in the mesh. Returned as linear indices
/// into the `(4,2,3)` shape.
pub fn fig1_quoted_pair() -> (u64, u64) {
    let shape = running_example_shape();
    let a = shape
        .to_index(&topology::Coord::from_slice(&[0, 0, 1]).expect("valid coord"))
        .expect("coord in range");
    let b = shape
        .to_index(&topology::Coord::from_slice(&[3, 0, 0]).expect("valid coord"))
        .expect("coord in range");
    (a, b)
}

/// The radix base `(3, 3)` of Figure 3's example function `f : [9] → Ω_(3,3)`.
pub fn fig3_base() -> Shape {
    Shape::new(vec![3, 3]).expect("static shape is valid")
}

/// The guest and host of Figure 11: a 24-node graph of shape `(4, 6)`
/// embedded in one of shape `(2, 2, 2, 3)`.
pub fn fig11_shapes() -> (Shape, Shape) {
    (
        Shape::new(vec![4, 6]).expect("static shape is valid"),
        Shape::new(vec![2, 2, 2, 3]).expect("static shape is valid"),
    )
}

/// The expansion factor `V = ((2,2), (2,3))` the paper uses in Figure 11.
pub fn fig11_expansion_factor() -> Result<ExpansionFactor> {
    ExpansionFactor::new(vec![vec![2, 2], vec![2, 3]])
}

/// The guest and host of Figure 12's supernode illustration: a
/// `(3,3,6)`-mesh embedded in a `(6,9)`-mesh with dilation 3.
pub fn fig12_grids() -> (Grid, Grid) {
    (
        Grid::mesh(Shape::new(vec![3, 3, 6]).expect("static shape is valid")),
        Grid::mesh(Shape::new(vec![6, 9]).expect("static shape is valid")),
    )
}

/// Definition 30's expansion example: `M = (2,4,3,8,5,4)` is an expansion of
/// `L = (6,8,80)` with factor `V = ((2,3), (8), (4,5,4))`. Returns
/// `(L, M, V)`.
pub fn definition30_example() -> Result<(Shape, Shape, ExpansionFactor)> {
    Ok((
        Shape::new(vec![6, 8, 80])?,
        Shape::new(vec![2, 4, 3, 8, 5, 4])?,
        ExpansionFactor::new(vec![vec![2, 3], vec![8], vec![4, 5, 4]])?,
    ))
}

/// Definition 41's general-reduction example: `M = (4,3,5,28,10,18)` is a
/// general reduction of `L = (2,3,2,10,6,21,5,4)`. Returns `(L, M)`.
pub fn definition41_example() -> Result<(Shape, Shape)> {
    Ok((
        Shape::new(vec![2, 3, 2, 10, 6, 21, 5, 4])?,
        Shape::new(vec![4, 3, 5, 28, 10, 18])?,
    ))
}

/// The Theorem 32 discussion example: a `(6,12)`-torus embedded in a
/// `(6,3,2,2)`-mesh reaches dilation 1 with the expansion factor
/// `((2,3), (6,2))` but only dilation 2 with `((6), (3,2,2))`. Returns
/// `(guest shape, host shape, good factor, weak factor)`.
pub fn theorem32_even_first_example() -> Result<(Shape, Shape, ExpansionFactor, ExpansionFactor)> {
    Ok((
        Shape::new(vec![6, 12])?,
        Shape::new(vec![6, 3, 2, 2])?,
        ExpansionFactor::new(vec![vec![2, 3], vec![6, 2]])?,
        ExpansionFactor::new(vec![vec![6], vec![3, 2, 2]])?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auto::embed;
    use crate::expansion::is_expansion;
    use crate::general_reduction::is_general_reduction;
    use crate::increase::embed_increasing_with;
    use crate::increase::IncreaseFunction;

    #[test]
    fn running_example_matches_the_figures() {
        let torus = fig1_torus();
        let mesh = fig2_mesh();
        assert_eq!(torus.size(), 24);
        assert_eq!(mesh.size(), 24);
        let (a, b) = fig1_quoted_pair();
        assert_eq!(torus.distance_index(a, b).unwrap(), 2);
        assert_eq!(mesh.distance_index(a, b).unwrap(), 4);
    }

    #[test]
    fn fig3_base_has_nine_numbers() {
        assert_eq!(fig3_base().size(), 9);
    }

    #[test]
    fn fig11_factor_expands_the_guest_into_the_host() {
        let (l, m) = fig11_shapes();
        assert_eq!(l.size(), m.size());
        assert!(is_expansion(&l, &m));
        let v = fig11_expansion_factor().unwrap();
        assert!(v.validate(&l, &m).is_ok());
    }

    #[test]
    fn fig12_embedding_has_dilation_three() {
        let (guest, host) = fig12_grids();
        assert_eq!(guest.size(), host.size());
        let e = embed(&guest, &host).unwrap();
        assert_eq!(e.dilation(), 3);
    }

    #[test]
    fn definition30_factor_is_valid() {
        let (l, m, v) = definition30_example().unwrap();
        assert!(is_expansion(&l, &m));
        assert!(v.validate(&l, &m).is_ok());
    }

    #[test]
    fn definition41_is_a_general_reduction() {
        let (l, m) = definition41_example().unwrap();
        assert_eq!(l.size(), m.size());
        assert!(is_general_reduction(&l, &m));
    }

    #[test]
    fn theorem32_example_reaches_dilation_one_with_the_even_first_factor() {
        let (l, m, good, weak) = theorem32_even_first_example().unwrap();
        let guest = Grid::torus(l);
        let host = Grid::mesh(m);
        assert!(good.validate(guest.shape(), host.shape()).is_ok());
        assert!(weak.validate(guest.shape(), host.shape()).is_ok());
        let with_good = embed_increasing_with(&guest, &host, &good, IncreaseFunction::H).unwrap();
        assert_eq!(with_good.dilation(), 1);
        let with_weak = embed_increasing_with(&guest, &host, &weak, IncreaseFunction::G).unwrap();
        assert_eq!(with_weak.dilation(), 2);
    }
}
