//! Simple reduction: lowering dimension by collapsing groups of dimensions
//! (Section 4.2.1, Definitions 37–38, Theorem 39, Corollary 40).
//!
//! A shape `M = (m_1, …, m_c)` is a *simple reduction* of `L = (l_1, …, l_d)`
//! (`d > c`) when `L` is an expansion of `M`: the components of `L` can be
//! partitioned into lists `V_1, …, V_c` with `Π V_k = m_k`. The embedding
//! `U_V` collapses each group of guest coordinates into a single host
//! coordinate by reading it as a mixed-radix number. With each `V_k` sorted in
//! non-increasing order the dilation cost is `max_k m_k / l_{v_k}` (the first
//! component of `V_k`), doubled when a (non-hypercube) torus is embedded in a
//! mesh.

use std::sync::Arc;

use mixedradix::{Digits, Permutation};
use topology::{Coord, Grid, Shape};

use crate::embedding::Embedding;
use crate::error::{EmbeddingError, Result};
use crate::expansion::{find_expansion_factor, ExpansionFactor};
use crate::same_shape::t_l;

/// Finds a reduction factor of `l` into `m` — an expansion factor of `m` into
/// `l` (Definition 37) with each list sorted in non-increasing order, as
/// Theorem 39 requires.
pub fn find_reduction_factor(l: &Shape, m: &Shape) -> Option<ExpansionFactor> {
    let factor = find_expansion_factor(m, l)?;
    let mut lists = factor.lists().to_vec();
    for list in &mut lists {
        list.sort_unstable_by(|a, b| b.cmp(a));
    }
    ExpansionFactor::new(lists).ok()
}

/// Whether `m` is a simple reduction of `l` (Definition 37).
pub fn is_simple_reduction(l: &Shape, m: &Shape) -> bool {
    l.dim() > m.dim() && find_reduction_factor(l, m).is_some()
}

/// Evaluates `U_V` (Definition 38): collapses a coordinate of the intermediate
/// shape `V̄ = V_1 ∘ … ∘ V_c` into a coordinate of `M` by reading each group
/// of digits as a mixed-radix number.
///
/// # Panics
///
/// Panics if the coordinate's dimension does not match the factor.
pub fn u_v(factor: &ExpansionFactor, coord: &Coord) -> Digits {
    let total: usize = factor.lists().iter().map(Vec::len).sum();
    assert_eq!(
        coord.dim(),
        total,
        "coordinate dimension must match the reduction factor"
    );
    let mut out = Digits::empty();
    let mut offset = 0usize;
    for list in factor.lists() {
        let sub = Shape::new(list.clone()).expect("factor lists are valid shapes");
        let chunk = coord.slice(offset, offset + list.len());
        let value = sub.to_index(&chunk).expect("digits within their radices");
        out.push(value as u32).expect("dimension within bounds");
        offset += list.len();
    }
    out
}

/// The dilation cost Theorem 39 guarantees for [`embed_simple_reduction`], or
/// an error if the shapes do not satisfy the condition of simple reduction.
pub fn predicted_dilation_simple_reduction(guest: &Grid, host: &Grid) -> Result<u64> {
    let factor = find_reduction_factor(guest.shape(), host.shape()).ok_or(
        EmbeddingError::ConditionNotSatisfied {
            condition: "simple reduction",
            details: format!(
                "{} is not a simple reduction of {}",
                host.shape(),
                guest.shape()
            ),
        },
    )?;
    Ok(predicted_dilation_for_factor(guest, host, &factor))
}

fn predicted_dilation_for_factor(guest: &Grid, host: &Grid, factor: &ExpansionFactor) -> u64 {
    let base = (0..factor.len())
        .map(|k| factor.product(k) / factor.lists()[k][0] as u64)
        .max()
        .unwrap_or(1);
    if guest.is_torus() && host.is_mesh() && !guest.is_hypercube() {
        2 * base
    } else {
        base
    }
}

/// Embeds `guest` in `host` under simple reduction with an explicit factor.
///
/// # Errors
///
/// Returns an error if the factor is not a reduction factor of the shapes.
pub fn embed_simple_reduction_with(
    guest: &Grid,
    host: &Grid,
    factor: &ExpansionFactor,
) -> Result<Embedding> {
    // The factor must be an expansion factor of M into L.
    factor.validate(host.shape(), guest.shape())?;
    let vbar = Shape::new(factor.flattened())?;
    // α : reorder the guest's dimensions into V̄ order.
    let alpha = Permutation::mapping(guest.shape().radices(), vbar.radices()).ok_or(
        EmbeddingError::InvalidFactor {
            details: format!(
                "{} is not a permutation of the flattened factor",
                guest.shape()
            ),
        },
    )?;
    let use_t = guest.is_torus() && host.is_mesh() && !guest.is_hypercube();
    let name = if use_t {
        "U_V ∘ T_L ∘ π"
    } else {
        "U_V ∘ π"
    };
    let guest_shape = guest.shape().clone();
    let factor = factor.clone();
    Embedding::new(
        guest.clone(),
        host.clone(),
        name,
        Arc::new(move |x| {
            let coord = guest_shape.to_digits(x).expect("index in range");
            let mut reordered = alpha
                .apply_digits(&coord)
                .expect("permutation matches dimension");
            if use_t {
                reordered = t_l(&vbar, &reordered);
            }
            u_v(&factor, &reordered)
        }),
    )
}

/// Embeds `guest` in `host` for the simple-reduction case (Theorem 39).
///
/// # Errors
///
/// Returns [`EmbeddingError::ConditionNotSatisfied`] if the host's shape is
/// not a simple reduction of the guest's shape.
pub fn embed_simple_reduction(guest: &Grid, host: &Grid) -> Result<Embedding> {
    if guest.size() != host.size() {
        return Err(EmbeddingError::SizeMismatch {
            guest: guest.size(),
            host: host.size(),
        });
    }
    let factor = find_reduction_factor(guest.shape(), host.shape()).ok_or(
        EmbeddingError::ConditionNotSatisfied {
            condition: "simple reduction",
            details: format!(
                "{} is not a simple reduction of {}",
                host.shape(),
                guest.shape()
            ),
        },
    )?;
    embed_simple_reduction_with(guest, host, &factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    fn check_at_most(guest: Grid, host: Grid, bound: u64) -> u64 {
        let e = embed_simple_reduction(&guest, &host).unwrap();
        assert!(e.is_injective(), "injective: {guest} -> {host}");
        let dilation = e.dilation();
        assert!(
            dilation <= bound,
            "dilation {dilation} of {} exceeds the Theorem 39 bound {bound} for {guest} -> {host}",
            e.name()
        );
        assert_eq!(
            predicted_dilation_simple_reduction(&guest, &host).unwrap(),
            bound
        );
        dilation
    }

    #[test]
    fn reduction_factor_roundtrip() {
        let l = shape(&[2, 3, 2, 10, 6]);
        let m = shape(&[12, 60]);
        assert!(is_simple_reduction(&l, &m));
        let factor = find_reduction_factor(&l, &m).unwrap();
        assert_eq!(factor.len(), 2);
        assert_eq!(factor.product(0), 12);
        assert_eq!(factor.product(1), 60);
        // Lists are sorted in non-increasing order.
        for list in factor.lists() {
            for pair in list.windows(2) {
                assert!(pair[0] >= pair[1]);
            }
        }
        assert!(!is_simple_reduction(&m, &l), "roles are not symmetric");
    }

    #[test]
    fn theorem_39_mesh_to_mesh() {
        // (4,2,3)-mesh into (4,6)-mesh: V_1 = (4), V_2 = (3,2); bound
        // max{4/4, 6/3} = 2.
        check_at_most(Grid::mesh(shape(&[4, 2, 3])), Grid::mesh(shape(&[4, 6])), 2);
        // (2,2,2,2)-mesh into (4,4)-mesh: bound 4/2 = 2.
        check_at_most(
            Grid::mesh(shape(&[2, 2, 2, 2])),
            Grid::mesh(shape(&[4, 4])),
            2,
        );
        // (3,3,3)-mesh into (9,3)-mesh: bound 9/3 = 3.
        check_at_most(Grid::mesh(shape(&[3, 3, 3])), Grid::mesh(shape(&[9, 3])), 3);
    }

    #[test]
    fn theorem_39_other_type_combinations() {
        // Mesh into torus and torus into torus share the same bound.
        check_at_most(
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[4, 6])),
            2,
        );
        check_at_most(
            Grid::torus(shape(&[4, 2, 3])),
            Grid::torus(shape(&[4, 6])),
            2,
        );
        // Torus into mesh doubles the bound.
        check_at_most(
            Grid::torus(shape(&[4, 2, 3])),
            Grid::mesh(shape(&[4, 6])),
            4,
        );
        check_at_most(
            Grid::torus(shape(&[3, 3, 3])),
            Grid::mesh(shape(&[9, 3])),
            6,
        );
    }

    #[test]
    fn corollary_40_hypercube_into_meshes_and_toruses() {
        // A hypercube of size 2^4 into a (4,4)-mesh or torus: dilation
        // max{4,4}/2 = 2.
        let hypercube = Grid::hypercube(4).unwrap();
        check_at_most(hypercube.clone(), Grid::mesh(shape(&[4, 4])), 2);
        check_at_most(hypercube.clone(), Grid::torus(shape(&[4, 4])), 2);
        // Into a (8,2)-mesh: dilation max{8,2}/2 = 4.
        check_at_most(hypercube, Grid::mesh(shape(&[8, 2])), 4);
        // A hypercube of size 2^6 into an (8,8)-mesh: dilation 4.
        check_at_most(Grid::hypercube(6).unwrap(), Grid::mesh(shape(&[8, 8])), 4);
    }

    #[test]
    fn u_v_collapses_digit_groups() {
        let factor = ExpansionFactor::new(vec![vec![4], vec![3, 2]]).unwrap();
        let coord = Coord::from_slice(&[3, 2, 1]).unwrap();
        // Group 2 reads (2,1) in radix (3,2): value 2*2 + 1 = 5.
        assert_eq!(u_v(&factor, &coord).as_slice(), &[3, 5]);
    }

    #[test]
    fn unsupported_shapes_are_rejected() {
        // (3,3,3) cannot be simply reduced to (27) with... it can (V=(3,3,3));
        // but (2,3,5) cannot be reduced to (10, 3) because 2·5 = 10 requires
        // grouping the non-adjacent 2 and 5 — which IS allowed; pick a truly
        // impossible pair instead: (4, 9) from (2,2,3,3,?) … use size mismatch
        // and a non-divisible case.
        let guest = Grid::mesh(shape(&[2, 3, 5]));
        let host = Grid::mesh(shape(&[6, 5, 2]));
        // Same dimension count mismatch: d must exceed c.
        assert!(embed_simple_reduction(&guest, &host).is_err());

        let guest = Grid::mesh(shape(&[6, 6]));
        let host = Grid::mesh(shape(&[36]));
        assert!(embed_simple_reduction(&guest, &host).is_ok());

        let guest = Grid::mesh(shape(&[2, 2]));
        let host = Grid::mesh(shape(&[2, 3]));
        assert!(matches!(
            embed_simple_reduction(&guest, &host),
            Err(EmbeddingError::SizeMismatch { .. })
        ));

        // Equal size, but no grouping of (4, 9) produces (6, 6).
        let guest = Grid::mesh(shape(&[4, 9]));
        let host = Grid::mesh(shape(&[6, 6]));
        assert!(embed_simple_reduction(&host, &guest).is_err());
    }

    #[test]
    fn hypercube_into_ring_and_line() {
        // A hypercube of size 2^3 into a ring or line of size 8:
        // dilation 8/2 = 4 (×2 for the line would be 8, but a hypercube is
        // also a mesh so no doubling applies).
        let hypercube = Grid::hypercube(3).unwrap();
        check_at_most(hypercube.clone(), Grid::ring(8).unwrap(), 4);
        check_at_most(hypercube, Grid::line(8).unwrap(), 4);
    }
}
